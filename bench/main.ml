(* The benchmark harness.

   Two complementary views of every experiment in EXPERIMENTS.md:

   1. The deterministic counter tables from [Edb_experiments] — exact,
      machine-independent operation counts reproducing the shape of the
      paper's §6 complexity claims and §8 comparisons.

   2. One Bechamel wall-clock micro-benchmark per experiment table,
      timing the protocol operation at that experiment's core, so the
      asymptotic claims are confirmed in real time units too. *)

open Bechamel
open Toolkit
module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Message = Edb_core.Message
module Operation = Edb_store.Operation
module Workload = Edb_workload.Workload
module Demers = Edb_baselines.Demers
module Driver = Edb_baselines.Driver
module Vv = Edb_vv.Version_vector

(* ------------------------------------------------------------------ *)
(* Fixtures shared by the micro-benchmarks                             *)
(* ------------------------------------------------------------------ *)

let seeded_pair ~n_items ~dirty =
  let cluster = Cluster.create ~n:2 () in
  for rank = 0 to n_items - 1 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "s")
  done;
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  for rank = 0 to dirty - 1 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "d")
  done;
  cluster

(* SendPropagation is read-only apart from the IsSelected scratch flags
   (which it resets), so it can be timed repeatedly against a frozen
   recipient DBVV. *)
let bench_send_propagation ~n_items ~dirty =
  let cluster = seeded_pair ~n_items ~dirty in
  let source = Cluster.node cluster 0 in
  let request = Node.propagation_request (Cluster.node cluster 1) in
  Staged.stage (fun () -> ignore (Node.handle_propagation_request source request))

(* E1 — m = 64 dirty items in a 16k-item database. *)
let test_e1 =
  Test.make ~name:"e1 send-propagation N=16384 m=64"
    (bench_send_propagation ~n_items:16_384 ~dirty:64)

(* E1 baseline — the per-item O(N) scan of classic anti-entropy on an
   already-converged pair. *)
let test_e1_baseline =
  let demers = Demers.create ~n:2 ~universe:(Workload.universe 16_384) in
  Demers.session demers ~src:0 ~dst:1;
  Test.make ~name:"e1-baseline demers scan N=16384"
    (Staged.stage (fun () -> Demers.session demers ~src:0 ~dst:1))

(* E2 — same database, 16x the dirty items: time should scale ~16x
   relative to e1. *)
let test_e2 =
  Test.make ~name:"e2 send-propagation N=16384 m=1024"
    (bench_send_propagation ~n_items:16_384 ~dirty:1_024)

(* E3 — identical replicas: the constant-time you-are-current answer. *)
let test_e3 =
  let cluster = seeded_pair ~n_items:16_384 ~dirty:0 in
  let source = Cluster.node cluster 0 in
  let request = Node.propagation_request (Cluster.node cluster 1) in
  Test.make ~name:"e3 you-are-current N=16384"
    (Staged.stage (fun () -> ignore (Node.handle_propagation_request source request)))

(* E4 — the constant-size log record hot path: AddLogRecord with its
   O(1) unlink-and-append (paper Fig. 1). *)
let test_e4 =
  let component = Edb_log.Log_component.create () in
  let seq = ref 0 in
  Test.make ~name:"e4 add-log-record (dedup)"
    (Staged.stage (fun () ->
         incr seq;
         Edb_log.Log_component.add component
           ~item:(if !seq land 1 = 0 then "x" else "y")
           ~seq:!seq))

(* E5 — serving an out-of-bound request is O(1) in the database size. *)
let test_e5 =
  let cluster = seeded_pair ~n_items:16_384 ~dirty:0 in
  let source = Cluster.node cluster 0 in
  let request = { Message.item = Workload.item_name 7 } in
  Test.make ~name:"e5 serve-out-of-bound N=16384"
    (Staged.stage (fun () -> ignore (Node.serve_out_of_bound source request)))

(* E6/E7 — a full no-op anti-entropy round across 16 converged nodes:
   the steady-state cost the epidemic schedule pays forever. *)
let test_e7 =
  let cluster = Cluster.create ~n:16 () in
  Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "v");
  ignore (Cluster.sync_until_converged cluster);
  Test.make ~name:"e7 idle anti-entropy round n=16"
    (Staged.stage (fun () -> Cluster.random_pull_round cluster))

(* E8 — the per-update bookkeeping: apply + IVV + DBVV + log record. *)
let test_e8 =
  let cluster = Cluster.create ~n:2 () in
  let node = Cluster.node cluster 0 in
  Test.make ~name:"e8 update bookkeeping"
    (Staged.stage (fun () -> Node.update node "hot" (Operation.Set "v")))

(* E9 — the pairwise version-vector comparison every adoption and
   conflict check performs. *)
let test_e9 =
  let a = Vv.of_array (Array.init 16 (fun i -> i)) in
  let b = Vv.of_array (Array.init 16 (fun i -> 16 - i)) in
  Test.make ~name:"e9 vv-compare dim=16"
    (Staged.stage (fun () -> ignore (Vv.compare_vv a b)))

(* E10 — extracting a log tail is linear in the records selected, not
   the log size. *)
let test_e10 =
  let component = Edb_log.Log_component.create () in
  for seq = 1 to 16_384 do
    Edb_log.Log_component.add component ~item:(Workload.item_name seq) ~seq
  done;
  Test.make ~name:"e10 tail-after selecting 64 of 16384"
    (Staged.stage (fun () ->
         ignore (Edb_log.Log_component.tail_after component ~seq:16_320)))

(* E11 — the op-log transport's unit of work: applying one splice to a
   2KB value (vs adopting the whole copy). The value is sized so the
   result string stays under Max_young_wosize (256 words): a 4KB result
   is a major-heap allocation, and with this process's large live heap
   (every benchmark cluster stays reachable) the attendant GC slices are
   bimodal enough to ruin the OLS fit. *)
let test_e11 =
  let base = String.make 2_032 'a' in
  let op = Operation.Splice { offset = 1_000; data = "EDITEDIT" } in
  Test.make ~name:"e11 apply 8B splice to 2KB value"
    (Staged.stage (fun () -> ignore (Operation.apply base op)))

(* E12 — a full pull round-trip between converged nodes: request build,
   you-are-current answer, accept. The steady-state session cost that a
   short anti-entropy period multiplies. *)
let test_e12 =
  let cluster = seeded_pair ~n_items:1_024 ~dirty:0 in
  let a = Cluster.node cluster 0 and b = Cluster.node cluster 1 in
  Test.make ~name:"e12 idle pull round-trip N=1024"
    (Staged.stage (fun () -> ignore (Node.pull ~recipient:b ~source:a ())))

(* E13 — the histogram hot path used while tracking delays. A fresh
   histogram every 4096 adds keeps memory bounded across millions of
   benchmark iterations. *)
let test_e13 =
  let h = ref (Edb_metrics.Histogram.create ()) in
  let i = ref 0 in
  Test.make ~name:"e13 histogram add"
    (Staged.stage (fun () ->
         incr i;
         if !i land 0xFFF = 0 then h := Edb_metrics.Histogram.create ();
         Edb_metrics.Histogram.add !h (float_of_int (!i land 0xFF))))

(* E14 — token ping-pong between two nodes, including the out-of-bound
   copy that travels with each grant. *)
let test_e14 =
  let cluster = Cluster.create ~n:2 () in
  let tokens = Edb_tokens.Token_manager.create cluster in
  Cluster.update cluster ~node:0 ~item:"t" (Operation.Set "v");
  let turn = ref 0 in
  Test.make ~name:"e14 token transfer (ping-pong)"
    (Staged.stage (fun () ->
         turn := 1 - !turn;
         match Edb_tokens.Token_manager.acquire tokens ~node:!turn ~item:"t" with
         | Ok _ -> ()
         | Error (`Cycle _) -> assert false))

(* E15 — the steady-state fast path: with the peer-knowledge cache, an
   idle anti-entropy round on a converged cluster skips every session
   with zero messages (compare e7, the uncached idle round). *)
let test_e15 =
  let cluster = Cluster.create ~cache:true ~n:16 () in
  Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "v");
  ignore (Cluster.sync_until_converged cluster);
  (* Warm every ordered (recipient, source) pair, not just the ring
     neighbours: the measured round draws random sources, and a mix of
     cache-hit and cache-miss sessions inside the closure made the
     regression bimodal (r^2 well under 0.9). With all pairs marked
     current, every iteration is the pure skip path. *)
  let n = 16 in
  for recipient = 0 to n - 1 do
    for source = 0 to n - 1 do
      if source <> recipient then
        ignore (Cluster.pull cluster ~recipient ~source)
    done
  done;
  Test.make ~name:"e15 cached idle round n=16"
    (Staged.stage (fun () -> Cluster.random_pull_round cluster))

(* E16 — parallel multi-database anti-entropy: [sync_all] over
   share-nothing databases, sequential vs fanned out over a Domain
   pool. Identical results by construction; the wall clock divides. *)
let bench_sync_all ~domains =
  let group = Edb_server.Server_group.create ~n:4 () in
  for d = 0 to 7 do
    let db = Printf.sprintf "db%d" d in
    (match Edb_server.Server_group.create_database group db with
    | Ok () -> ()
    | Error msg -> failwith msg);
    for rank = 0 to 511 do
      match
        Edb_server.Server_group.update group ~db ~node:0
          ~item:(Workload.item_name rank) (Operation.Set "s")
      with
      | Ok () -> ()
      | Error msg -> failwith msg
    done
  done;
  let (_ : (string * int) list) = Edb_server.Server_group.sync_all group in
  Staged.stage (fun () ->
      ignore (Edb_server.Server_group.sync_all ~domains group))

let test_e16_seq =
  Test.make ~name:"e16 sync-all 8 dbs domains=1" (bench_sync_all ~domains:1)

let test_e16_par =
  Test.make ~name:"e16 sync-all 8 dbs domains=4" (bench_sync_all ~domains:4)

(* E18 — sharded replicas. Two instances:

   1. Per-shard skipping: a converged sharded pair with dirty items
      confined to one shard answers a propagation request by skipping
      every other shard (their per-shard DBVVs dominate), so the
      session costs one delta regardless of the shard count.

   2. Intra-pair parallelism: [sync_all] over a single fat sharded
      database, where domains beyond one-per-database fan the per-shard
      delta construction and acceptance of each pull out over a Domain
      pool. *)
let bench_e18_skip ~shards =
  let cluster = Cluster.create ~shards ~n:2 () in
  for rank = 0 to 4_095 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "s")
  done;
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  (* Dirty ~64 items that all live in shard 0, leaving every other
     shard converged. *)
  let source = Cluster.node cluster 0 in
  let dirtied = ref 0 in
  let rank = ref 0 in
  while !dirtied < 64 && !rank < 4_096 do
    let name = Workload.item_name !rank in
    if Node.shard_of_item source name = 0 then begin
      Cluster.update cluster ~node:0 ~item:name (Operation.Set "d");
      incr dirtied
    end;
    incr rank
  done;
  let request = Node.propagation_request_owned (Cluster.node cluster 1) in
  Staged.stage (fun () -> ignore (Node.handle_propagation_request source request))

let bench_e18_sync_all ~shards ~domains =
  let group = Edb_server.Server_group.create ~n:8 () in
  (match Edb_server.Server_group.create_database ~shards group "fat" with
  | Ok () -> ()
  | Error msg -> failwith msg);
  for rank = 0 to 2_047 do
    match
      Edb_server.Server_group.update group ~db:"fat" ~node:(rank land 7)
        ~item:(Workload.item_name rank) (Operation.Set "s")
    with
    | Ok () -> ()
    | Error msg -> failwith msg
  done;
  let (_ : (string * int) list) = Edb_server.Server_group.sync_all group in
  let turn = ref 0 in
  Staged.stage (fun () ->
      (* Re-dirty a rotating node so every iteration has one real
         delta to push through the cluster. *)
      incr turn;
      (match
         Edb_server.Server_group.update group ~db:"fat" ~node:(!turn land 7)
           ~item:(Workload.item_name (!turn land 2_047))
           (Operation.Set (string_of_int !turn))
       with
      | Ok () -> ()
      | Error msg -> failwith msg);
      ignore (Edb_server.Server_group.sync_all ~domains group))

(* E19 — wire codec cost: encode+decode of a diverged-session reply
   (16-node cluster, several origins contributed updates) in v1
   fixed-width vs v2 compact form. The bytes v2 saves must not cost
   meaningful CPU: the acceptance bar is v2 within 1.2x of v1. The
   reply is sized so even the v1 frame stays under Max_young_wosize —
   a per-iteration major-heap frame makes the fit as noisy as e11's
   old 4KB splice (see that comment); the per-field cost ratio the
   bench exists to pin is size-independent. *)
let bench_e19_codec ~version =
  let nodes = 16 in
  let cluster = Cluster.create ~n:nodes () in
  for rank = 0 to 3 do
    let name = Workload.item_name rank in
    Cluster.update cluster ~node:rank ~item:name
      (Operation.Set (Workload.payload ~item:name ~seq:1 ~size:64))
  done;
  (* Node 0 gathers everything; node 1 knows only its own update, so
     the reply to node 1 ships tails from several origins plus their
     items. *)
  for peer = 1 to nodes - 1 do
    ignore (Cluster.pull cluster ~recipient:0 ~source:peer)
  done;
  let source = Cluster.node cluster 0 in
  let request = Node.propagation_request_owned (Cluster.node cluster 1) in
  let reply = Node.handle_propagation_request source request in
  let module Codec = Edb_persist.Codec in
  let round_trip =
    if version = 1 then fun () ->
      let data =
        Codec.Writer.with_scratch (fun w ->
            Edb_persist.Wire.encode_propagation_reply w reply;
            Codec.Writer.contents w)
      in
      ignore
        (Edb_persist.Wire.decode_propagation_reply (Codec.Reader.create data))
    else fun () ->
      let data =
        Codec.Writer.with_scratch (fun w ->
            Edb_persist.Wire_v2.encode_propagation_reply w reply;
            Codec.Writer.contents w)
      in
      ignore
        (Edb_persist.Wire_v2.decode_propagation_reply
           (Codec.Reader.create data) ~n:nodes)
  in
  Staged.stage round_trip

let test_e19_v1 =
  Test.make ~name:"e19 reply codec v1" (bench_e19_codec ~version:1)

let test_e19_v2 =
  Test.make ~name:"e19 reply codec v2" (bench_e19_codec ~version:2)

(* E21 — dynamic membership. Two instances:

   1. Join bootstrap: the snapshot-v3 transfer a newcomer pays before
      catch-up anti-entropy starts — encode the donor, decode the blob,
      re-import the state under the vacated slot.

   2. The idle-pull dividend of retirement: an idle session between two
      live members of a 16-member group, with 0 vs 4 members retired.
      Session cost is dominated by the vectors shipped and compared, so
      the retired components' absence is measurable. *)

module Group = Edb_membership.Group
module Snapshot = Edb_persist.Snapshot

let bench_e21_join_bootstrap =
  let cluster = Cluster.create ~n:8 () in
  for rank = 0 to 1_023 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "s")
  done;
  let donor = Cluster.node cluster 0 in
  Staged.stage (fun () ->
      let blob = Snapshot.encode donor in
      match Snapshot.decode blob with
      | Error msg -> failwith msg
      | Ok node ->
        let state = Node.export_state node in
        ignore (Node.import_state { state with Node.State.id = 7 } : Node.t))

let e21_ring_pass g =
  let names =
    Array.to_list (Group.roster g)
    |> List.filter (fun name ->
           Group.alive g ~name
           &&
           match Group.status g ~name with
           | Group.Joining | Group.Active | Group.Draining -> true
           | Group.Departed | Group.Retiring | Group.Retired -> false)
  in
  let arr = Array.of_list names in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    match Group.sync g ~a:arr.(i) ~b:arr.((i + 1) mod k) with
    | Ok () -> ()
    | Error msg -> failwith msg
  done;
  ignore (Group.observe g : Group.event list)

let e21_group ~retired =
  let n = 16 in
  let g = Group.create ~shards:1 ~n () in
  for name = 0 to n - 1 do
    match
      Group.update g ~name ~item:(Workload.item_name name) (Operation.Set "s")
    with
    | Ok () -> ()
    | Error msg -> failwith msg
  done;
  for _ = 1 to n do
    e21_ring_pass g
  done;
  if retired > 0 then begin
    for name = n - retired to n - 1 do
      Group.crash g ~name;
      match Group.retire g ~name with
      | Ok () -> ()
      | Error msg -> failwith msg
    done;
    for _ = 1 to n do
      e21_ring_pass g
    done
  end;
  assert (Group.converged g && Group.pending_fences g = []);
  g

let bench_e21_idle_pull ~retired =
  let g = e21_group ~retired in
  Staged.stage (fun () ->
      match Group.sync g ~a:0 ~b:1 with
      | Ok () -> ()
      | Error msg -> failwith msg)

let test_e21_join =
  Test.make ~name:"e21 join bootstrap n=8 items=1024" bench_e21_join_bootstrap

let test_e21_idle_pre =
  Test.make ~name:"e21 idle pull n=16 retired=0" (bench_e21_idle_pull ~retired:0)

let test_e21_idle_post =
  Test.make ~name:"e21 idle pull n=16 retired=4" (bench_e21_idle_pull ~retired:4)

let micro_tests ~shards =
  let test_e18_skip =
    Test.make
      ~name:(Printf.sprintf "e18 sharded skip shards=%d m=64" shards)
      (bench_e18_skip ~shards)
  in
  let test_e18_syncall_seq =
    Test.make
      ~name:(Printf.sprintf "e18 sync-all 1 db shards=%d domains=1" shards)
      (bench_e18_sync_all ~shards ~domains:1)
  in
  let test_e18_syncall_par =
    Test.make
      ~name:(Printf.sprintf "e18 sync-all 1 db shards=%d domains=4" shards)
      (bench_e18_sync_all ~shards ~domains:4)
  in
  [
    test_e1;
    test_e1_baseline;
    test_e2;
    test_e3;
    test_e4;
    test_e5;
    test_e7;
    test_e8;
    test_e9;
    test_e10;
    test_e11;
    test_e12;
    test_e13;
    test_e14;
    test_e15;
    test_e16_seq;
    test_e16_par;
    test_e18_skip;
    test_e18_syncall_seq;
    test_e18_syncall_par;
    test_e19_v1;
    test_e19_v2;
    test_e21_join;
    test_e21_idle_pre;
    test_e21_idle_post;
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                     *)
(* ------------------------------------------------------------------ *)

type micro_result = {
  name : string;
  ns_per_op : float option;
  r_square : float option;
  minor_words : float option;
      (* Minor-heap words allocated per operation — the allocation-free
         hot-path regression gate. *)
}

let estimate ols_result =
  match Analyze.OLS.estimates ols_result with
  | Some (value :: _) -> Some value
  | Some [] | None -> None

let run_micro_benchmarks ~shards () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  (* Both instances are recorded in the same run: wall clock for the
     asymptotic claims, minor words for the allocation claims. *)
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:3_000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 1_000) ()
  in
  let grouped = Test.make_grouped ~name:"edb" ~fmt:"%s %s" (micro_tests ~shards) in
  let raw = Benchmark.all cfg instances grouped in
  let clock_results = Analyze.all ols Instance.monotonic_clock raw in
  let minor_results = Analyze.all ols Instance.minor_allocated raw in
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) clock_results []
    |> List.sort String.compare
  in
  List.map
    (fun name ->
      let clock = Hashtbl.find clock_results name in
      let minor = Hashtbl.find_opt minor_results name in
      {
        name;
        ns_per_op = estimate clock;
        r_square = Analyze.OLS.r_square clock;
        minor_words = Option.bind minor estimate;
      })
    names

(* ------------------------------------------------------------------ *)
(* E22 — daemon throughput: the fork-N select-loop cluster             *)
(*                                                                     *)
(* Unlike the in-process micro-benchmarks above, these instances time  *)
(* the real `edb_cli serve` engine: N forked daemons over Unix-domain  *)
(* sockets, non-blocking writes, WAL group commit. Two rates per       *)
(* anti-entropy fan-out (max_sessions = 1 / 4 / 8):                    *)
(*                                                                     *)
(*   sessions   — completed initiator sessions (real + no-op) per      *)
(*                second cluster-wide, from source-side counter deltas *)
(*                over a fixed idle window;                            *)
(*   visibility — update-visibility events per second: K updates       *)
(*                spread round-robin, each visible on the n-1 other    *)
(*                nodes once `await_converged` returns.                *)
(*                                                                     *)
(* fan-out=1 restores the old one-session-at-a-time loop, so the pair  *)
(* is the before/after for the concurrent event loop. Wall-clock       *)
(* rates from a 9-process cluster on a shared box, so no OLS fit:      *)
(* ns_per_op = 1e9 / rate, r² and minor words are n/a.                 *)
(* ------------------------------------------------------------------ *)

module Harness = Edb_transport.Harness

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Sessions are charged on the source side (`Node.handle_sharded`), so
   the cluster-wide completed-session count is the sum over all nodes
   of both session counters. *)
let daemon_session_total h ~n =
  let total = ref 0 in
  for node = 0 to n - 1 do
    match Harness.counters_of h ~node with
    | Error msg -> failwith ("daemon bench counters: " ^ msg)
    | Ok fields ->
        List.iter
          (fun (field, v) ->
            match field with
            | "propagation_sessions" | "noop_sessions" -> total := !total + v
            | _ -> ())
          fields
  done;
  !total

let run_daemon_fanout ~quick ~fanout =
  let n = 9 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "edb-bench-daemon-%d-f%d" (Unix.getpid ()) fanout)
  in
  rm_rf dir;
  (* 20 ms ticks: the single-session baseline is then bounded by its
     one-dial-per-tick serialization (the regime the tentpole attacks),
     not by this container's single core — cranking the tick rate until
     fan-out=1 saturates the CPU would flatten the very ratio the
     instances exist to show. *)
  let h =
    Harness.start ~ae_period:0.02 ~seed:(41 + fanout) ~max_sessions:fanout
      ~dir ~n ()
  in
  Fun.protect
    ~finally:(fun () ->
      Harness.shutdown h;
      rm_rf dir)
    (fun () ->
      (* Warm up to an identical steady state: one update per node,
         fully converged, every daemon past its boot transient. *)
      for node = 0 to n - 1 do
        match
          Harness.update h ~node
            ~item:(Printf.sprintf "seed.%d" node)
            (Operation.Set "s")
        with
        | Ok () -> ()
        | Error msg -> failwith ("daemon bench warm-up update: " ^ msg)
      done;
      (match Harness.await_converged ~deadline:60.0 h with
      | Ok _ -> ()
      | Error msg -> failwith ("daemon bench warm-up: " ^ msg));
      let window = if quick then 0.8 else 2.5 in
      let c0 = daemon_session_total h ~n in
      let t0 = Unix.gettimeofday () in
      Unix.sleepf window;
      let elapsed = Unix.gettimeofday () -. t0 in
      let c1 = daemon_session_total h ~n in
      let sessions = max 1 (c1 - c0) in
      let ns_session = elapsed *. 1e9 /. float_of_int sessions in
      let k = if quick then 18 else 64 in
      let t1 = Unix.gettimeofday () in
      for i = 0 to k - 1 do
        match
          Harness.update h ~node:(i mod n)
            ~item:(Printf.sprintf "vis.%d" i)
            (Operation.Set (string_of_int i))
        with
        | Ok () -> ()
        | Error msg -> failwith ("daemon bench visibility update: " ^ msg)
      done;
      (match Harness.await_converged ~deadline:60.0 h with
      | Ok _ -> ()
      | Error msg -> failwith ("daemon bench visibility: " ^ msg));
      let vis_elapsed = Unix.gettimeofday () -. t1 in
      let ns_visibility = vis_elapsed *. 1e9 /. float_of_int (k * (n - 1)) in
      (ns_session, ns_visibility))

let daemon_fanouts = [ 1; 4; 8 ]

let run_daemon_benchmarks ~quick () =
  List.concat_map
    (fun fanout ->
      let ns_session, ns_visibility = run_daemon_fanout ~quick ~fanout in
      [
        {
          name = Printf.sprintf "edb e22 daemon sessions fan-out=%d" fanout;
          ns_per_op = Some ns_session;
          r_square = None;
          minor_words = None;
        };
        {
          name = Printf.sprintf "edb e22 daemon visibility fan-out=%d" fanout;
          ns_per_op = Some ns_visibility;
          r_square = None;
          minor_words = None;
        };
      ])
    daemon_fanouts

let print_micro_table results =
  let table =
    Edb_metrics.Table.create
      ~title:"Wall-clock micro-benchmarks (monotonic clock + minor words/op)"
      ~columns:[ "benchmark"; "ns/op"; "minor words"; "r^2" ]
  in
  let cell fmt = function Some v -> Printf.sprintf fmt v | None -> "n/a" in
  List.iter
    (fun r ->
      Edb_metrics.Table.add_row table
        [
          r.name;
          cell "%.1f" r.ns_per_op;
          cell "%.1f" r.minor_words;
          cell "%.4f" r.r_square;
        ])
    results;
  Edb_metrics.Table.print table

(* ------------------------------------------------------------------ *)
(* JSON emission: the machine-readable perf trajectory                 *)
(* ------------------------------------------------------------------ *)

module Json = Edb_metrics.Json

let json_schema_version = 1

let json_of_results ~quick experiments results =
  let num = function Some v -> Json.Float v | None -> Json.Null in
  let benchmarks =
    List.map
      (fun r ->
        ( r.name,
          Json.Obj
            [
              ("ns_per_op", num r.ns_per_op);
              ("minor_words", num r.minor_words);
              ("r_square", num r.r_square);
            ] ))
      results
  in
  Json.Obj
    [
      ("schema", Json.Int json_schema_version);
      ( "generated_by",
        Json.String
          (if quick then "dune exec bench/main.exe -- --quick --json"
           else "dune exec bench/main.exe -- --json") );
      ("quick", Json.Bool quick);
      ("benchmarks", Json.Obj benchmarks);
      ( "experiments",
        Json.List (List.map (fun (_, table) -> Json.of_table table) experiments) );
    ]

let write_json ~quick ~path experiments results =
  let doc = json_of_results ~quick experiments results in
  let oc = open_out_bin path in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  (* The PR 5 stabilization trick, one level up: the measured closures
     already keep their per-op allocations on the minor heap (see e11,
     e15, e19), but this process carries every suite's live clusters,
     so with the default 256K-word nursery the minor collections that
     do land inside a sample are dominated by major GC slices. An 8M-
     word nursery makes them ~32× rarer, so far fewer samples carry a
     slice and the OLS fits (e10, e19 v1 were the noisy ones) tighten. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let json = List.mem "--json" argv in
  let shards =
    let rec find = function
      | "--shards" :: k :: _ -> int_of_string k
      | _ :: rest -> find rest
      | [] -> 16
    in
    find argv
  in
  let out =
    let rec find = function
      | "--out" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    Option.value (find argv) ~default:"BENCH_micro.json"
  in
  print_endline "=== Experiment tables (deterministic operation counts) ===";
  print_newline ();
  let experiments = Edb_experiments.Experiments.all ~quick () in
  List.iter
    (fun (id, table) ->
      Printf.printf "[%s]\n" id;
      Edb_metrics.Table.print table)
    experiments;
  print_endline "=== Bechamel micro-benchmarks ===";
  print_newline ();
  let results = run_micro_benchmarks ~shards () in
  print_endline "=== Daemon throughput (fork-N select-loop cluster) ===";
  print_newline ();
  let daemon = run_daemon_benchmarks ~quick () in
  let results =
    List.sort (fun a b -> String.compare a.name b.name) (results @ daemon)
  in
  print_micro_table results;
  if json then write_json ~quick ~path:out experiments results

(* Validator for BENCH_micro.json, run by the @bench-smoke alias so a
   bit-rotted bench harness (or a malformed emission) fails tier-1
   instead of being discovered when someone needs the perf trajectory. *)

module Json = Edb_metrics.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let require what = function Some v -> v | None -> fail "missing or ill-typed %s" what

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_micro.json" in
  let blob =
    match open_in_bin path with
    | exception Sys_error msg -> fail "cannot open %s: %s" path msg
    | ic ->
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      data
  in
  let doc =
    match Json.of_string blob with
    | Ok doc -> doc
    | Error msg -> fail "%s: parse error: %s" path msg
  in
  let schema =
    require "schema" (Option.bind (Json.member "schema" doc) Json.to_float_opt)
  in
  if schema <> 1.0 then fail "%s: unknown schema version %g" path schema;
  let benchmarks =
    match Json.member "benchmarks" doc with
    | Some (Json.Obj fields) -> fields
    | _ -> fail "%s: missing benchmarks object" path
  in
  if benchmarks = [] then fail "%s: benchmarks object is empty" path;
  List.iter
    (fun (name, entry) ->
      let field key =
        match Json.member key entry with
        | Some Json.Null -> ()
        | Some v when Json.to_float_opt v <> None ->
          let value = Option.get (Json.to_float_opt v) in
          if Float.is_nan value || value < 0.0 then
            fail "%s: benchmark %S has invalid %s" path name key
        | _ -> fail "%s: benchmark %S lacks numeric %s" path name key
      in
      field "ns_per_op";
      field "minor_words";
      field "r_square")
    benchmarks;
  let has substring =
    List.exists
      (fun (name, _) ->
        Astring.String.is_infix ~affix:substring name)
      benchmarks
  in
  (* The entries the acceptance criteria and future PR diffs key on. *)
  List.iter
    (fun probe -> if not (has probe) then fail "%s: no %S benchmark" path probe)
    [
      "e12 idle pull round-trip"; "e15 cached idle round"; "sync-all";
      "e18 sharded skip"; "e18 sync-all"; "e19 reply codec v1";
      "e19 reply codec v2";
    ];
  let experiments =
    require "experiments list"
      (Option.bind (Json.member "experiments" doc) Json.to_list_opt)
  in
  if experiments = [] then fail "%s: experiments list is empty" path;
  List.iter
    (fun table ->
      let title =
        require "experiment title"
          (Option.bind (Json.member "title" table) Json.to_string_opt)
      in
      let columns =
        require "experiment columns"
          (Option.bind (Json.member "columns" table) Json.to_list_opt)
      in
      let rows =
        require "experiment rows"
          (Option.bind (Json.member "rows" table) Json.to_list_opt)
      in
      let width = List.length columns in
      if width = 0 then fail "%s: experiment %S has no columns" path title;
      List.iter
        (fun row ->
          match Json.to_list_opt row with
          | Some cells when List.length cells = width -> ()
          | _ -> fail "%s: experiment %S has a malformed row" path title)
        rows)
    experiments;
  (* The loss/retry sweep must carry the transport-robustness counters:
     future PR diffs key on the timeout/retry/abandoned columns. *)
  let e17 =
    List.find_opt
      (fun table ->
        match Option.bind (Json.member "title" table) Json.to_string_opt with
        | Some title -> Astring.String.is_prefix ~affix:"E17:" title
        | None -> false)
      experiments
  in
  (match e17 with
  | None -> fail "%s: no E17 message-loss experiment table" path
  | Some table ->
    let columns =
      List.filter_map Json.to_string_opt
        (Option.value ~default:[]
           (Option.bind (Json.member "columns" table) Json.to_list_opt))
    in
    List.iter
      (fun column ->
        if not (List.mem column columns) then
          fail "%s: E17 table lacks the %S column" path column)
      [ "timeouts"; "retries"; "abandoned" ]);
  (* The sharding experiment must carry the per-shard skipping counter:
     E18's acceptance keys on converged shards shipping zero bytes. *)
  let e18 =
    List.find_opt
      (fun table ->
        match Option.bind (Json.member "title" table) Json.to_string_opt with
        | Some title -> Astring.String.is_prefix ~affix:"E18:" title
        | None -> false)
      experiments
  in
  (match e18 with
  | None -> fail "%s: no E18 sharded-replicas experiment table" path
  | Some table ->
    let columns =
      List.filter_map Json.to_string_opt
        (Option.value ~default:[]
           (Option.bind (Json.member "columns" table) Json.to_list_opt))
    in
    List.iter
      (fun column ->
        if not (List.mem column columns) then
          fail "%s: E18 table lacks the %S column" path column)
      [ "shards"; "domains"; "shards skipped"; "bytes" ]);
  (* The wire-codec experiment must report real bytes on the wire next
     to the size model: E19's acceptance keys on measured
     bytes-per-session, v2 vs v1. *)
  let e19 =
    List.find_opt
      (fun table ->
        match Option.bind (Json.member "title" table) Json.to_string_opt with
        | Some title -> Astring.String.is_prefix ~affix:"E19:" title
        | None -> false)
      experiments
  in
  (match e19 with
  | None -> fail "%s: no E19 wire-codec experiment table" path
  | Some table ->
    let columns =
      List.filter_map Json.to_string_opt
        (Option.value ~default:[]
           (Option.bind (Json.member "columns" table) Json.to_list_opt))
    in
    List.iter
      (fun column ->
        if not (List.mem column columns) then
          fail "%s: E19 table lacks the %S column" path column)
      [ "codec"; "bytes (model)"; "wire bytes"; "wire B/session" ]);
  Printf.printf "%s OK: %d benchmarks, %d experiment tables\n" path
    (List.length benchmarks) (List.length experiments)

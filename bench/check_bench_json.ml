(* Validator for the bench emissions, run by the @bench-smoke and
   @scenario aliases so a bit-rotted harness (or a malformed emission)
   fails tier-1 instead of being discovered when someone needs the perf
   trajectory. Dispatches on the document's "kind": scenario time
   series ("timeseries", BENCH_timeseries.json) or the default
   micro-benchmark document (BENCH_micro.json). *)

module Json = Edb_metrics.Json
module Counters = Edb_metrics.Counters

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let require what = function Some v -> v | None -> fail "missing or ill-typed %s" what

(* ------------------------------------------------------------------ *)
(* BENCH_micro.json                                                    *)
(* ------------------------------------------------------------------ *)

let check_micro path doc =
  let benchmarks =
    match Json.member "benchmarks" doc with
    | Some (Json.Obj fields) -> fields
    | _ -> fail "%s: missing benchmarks object" path
  in
  if benchmarks = [] then fail "%s: benchmarks object is empty" path;
  List.iter
    (fun (name, entry) ->
      let field key =
        match Json.member key entry with
        | Some Json.Null -> ()
        | Some v when Json.to_float_opt v <> None ->
          let value = Option.get (Json.to_float_opt v) in
          if Float.is_nan value || value < 0.0 then
            fail "%s: benchmark %S has invalid %s" path name key
        | _ -> fail "%s: benchmark %S lacks numeric %s" path name key
      in
      field "ns_per_op";
      field "minor_words";
      field "r_square")
    benchmarks;
  let has substring =
    List.exists
      (fun (name, _) ->
        Astring.String.is_infix ~affix:substring name)
      benchmarks
  in
  (* The entries the acceptance criteria and future PR diffs key on. *)
  List.iter
    (fun probe -> if not (has probe) then fail "%s: no %S benchmark" path probe)
    [
      "e12 idle pull round-trip"; "e15 cached idle round"; "sync-all";
      "e18 sharded skip"; "e18 sync-all"; "e19 reply codec v1";
      "e19 reply codec v2"; "e21 join bootstrap"; "e21 idle pull";
    ];
  (* The daemon-path instances (E22): every fan-out present with a
     finite positive rate, and the concurrent loop must not lose to the
     single-session one — sessions/sec at fan-out=4 at least the
     fan-out=1 rate (lower ns_per_op). The committed trajectory shows
     ~4x; >= 1x is the regression floor here so a bench_smoke.json
     generated on a loaded box doesn't flake tier-1, while a
     multi-session loop that got slower than the old serial one still
     fails. *)
  let daemon_ns metric fanout =
    let name = Printf.sprintf "edb e22 daemon %s fan-out=%d" metric fanout in
    match List.assoc_opt name benchmarks with
    | None -> fail "%s: no %S benchmark" path name
    | Some entry -> (
      match Option.bind (Json.member "ns_per_op" entry) Json.to_float_opt with
      | Some v when Float.is_finite v && v > 0.0 -> v
      | _ ->
        fail "%s: benchmark %S lacks a finite positive ns_per_op" path name)
  in
  List.iter
    (fun metric ->
      List.iter (fun fanout -> ignore (daemon_ns metric fanout)) [ 1; 4; 8 ])
    [ "sessions"; "visibility" ];
  if daemon_ns "sessions" 4 > daemon_ns "sessions" 1 then
    fail "%s: e22 daemon sessions fan-out=4 slower than fan-out=1 (%g > %g ns)"
      path (daemon_ns "sessions" 4) (daemon_ns "sessions" 1);
  let experiments =
    require "experiments list"
      (Option.bind (Json.member "experiments" doc) Json.to_list_opt)
  in
  if experiments = [] then fail "%s: experiments list is empty" path;
  List.iter
    (fun table ->
      let title =
        require "experiment title"
          (Option.bind (Json.member "title" table) Json.to_string_opt)
      in
      let columns =
        require "experiment columns"
          (Option.bind (Json.member "columns" table) Json.to_list_opt)
      in
      let rows =
        require "experiment rows"
          (Option.bind (Json.member "rows" table) Json.to_list_opt)
      in
      let width = List.length columns in
      if width = 0 then fail "%s: experiment %S has no columns" path title;
      List.iter
        (fun row ->
          match Json.to_list_opt row with
          | Some cells when List.length cells = width -> ()
          | _ -> fail "%s: experiment %S has a malformed row" path title)
        rows)
    experiments;
  let columns_of table =
    List.filter_map Json.to_string_opt
      (Option.value ~default:[]
         (Option.bind (Json.member "columns" table) Json.to_list_opt))
  in
  let find_table prefix =
    List.find_opt
      (fun table ->
        match Option.bind (Json.member "title" table) Json.to_string_opt with
        | Some title -> Astring.String.is_prefix ~affix:prefix title
        | None -> false)
      experiments
  in
  let require_columns ~what prefix wanted =
    match find_table prefix with
    | None -> fail "%s: no %s experiment table" path what
    | Some table ->
      let columns = columns_of table in
      List.iter
        (fun column ->
          if not (List.mem column columns) then
            fail "%s: %s table lacks the %S column" path what column)
        wanted
  in
  (* The loss/retry sweep must carry the transport-robustness counters:
     future PR diffs key on the timeout/retry/abandoned columns. *)
  require_columns ~what:"E17 message-loss" "E17:"
    [ "timeouts"; "retries"; "abandoned"; "conns"; "conn retries" ];
  (* The sharding experiment must carry the per-shard skipping counter:
     E18's acceptance keys on converged shards shipping zero bytes. *)
  require_columns ~what:"E18 sharded-replicas" "E18:"
    [ "shards"; "domains"; "shards skipped"; "bytes" ];
  (* The wire-codec experiment must report real bytes on the wire next
     to the size model: E19's acceptance keys on measured
     bytes-per-session, v2 vs v1. *)
  require_columns ~what:"E19 wire-codec" "E19:"
    [ "codec"; "bytes (model)"; "wire bytes"; "wire B/session" ];
  (* The push experiment must report both arms' staleness percentiles
     and the anti-entropy savings — and its lossless cell must actually
     show the headline effect: p99 at least 10x lower with push on, at
     least half the AE sessions arriving already converged. *)
  require_columns ~what:"E20 push-vs-pull" "E20:"
    [
      "loss"; "capacity"; "pull p99"; "push p99"; "p99 ratio";
      "ae skipped frac"; "ae bytes saved"; "push overflow";
    ];
  (match find_table "E20:" with
  | None -> fail "%s: no E20 push-vs-pull experiment table" path
  | Some table ->
    let columns = columns_of table in
    let index column =
      let rec go i = function
        | [] -> fail "%s: E20 table lacks the %S column" path column
        | c :: _ when String.equal c column -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 columns
    in
    let cell row i =
      match List.nth_opt row i with
      | Some (Json.String s) -> s
      | _ -> fail "%s: E20 row lacks a string cell at index %d" path i
    in
    let rows =
      List.filter_map Json.to_list_opt
        (Option.value ~default:[]
           (Option.bind (Json.member "rows" table) Json.to_list_opt))
    in
    let loss_i = index "loss" in
    let lossless =
      match
        List.find_opt (fun row -> String.equal (cell row loss_i) "0.00") rows
      with
      | Some row -> row
      | None -> fail "%s: E20 table has no loss = 0.00 row" path
    in
    let number column =
      let s = cell lossless (index column) in
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> v
      | _ -> fail "%s: E20 lossless %s cell %S is not a number" path column s
    in
    let ratio = number "p99 ratio" in
    if ratio < 10.0 then
      fail "%s: E20 lossless p99 ratio %g below the 10x acceptance bar" path
        ratio;
    let skipped = number "ae skipped frac" in
    if skipped < 0.5 then
      fail "%s: E20 lossless ae skipped frac %g below the 0.5 acceptance bar"
        path skipped);
  (* The membership-GC experiment must show retirement actually
     reclaiming vector components: on every row, the post-retirement
     dimension is exactly [n - retired], and both the wire encoding of
     a DBVV and the idle-session bytes shrink. *)
  require_columns ~what:"E21 membership-gc" "E21:"
    [
      "n"; "retired"; "components"; "components'"; "dbvv wire B";
      "dbvv wire B'"; "idle pass B"; "idle pass B'"; "gc'd";
    ];
  (match find_table "E21:" with
  | None -> fail "%s: no E21 membership-gc experiment table" path
  | Some table ->
    let columns = columns_of table in
    let index column =
      let rec go i = function
        | [] -> fail "%s: E21 table lacks the %S column" path column
        | c :: _ when String.equal c column -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 columns
    in
    let rows =
      List.filter_map Json.to_list_opt
        (Option.value ~default:[]
           (Option.bind (Json.member "rows" table) Json.to_list_opt))
    in
    if rows = [] then fail "%s: E21 table has no rows" path;
    let number row column =
      match List.nth_opt row (index column) with
      | Some (Json.String s) -> (
        match float_of_string_opt s with
        | Some v when Float.is_finite v -> v
        | _ -> fail "%s: E21 %s cell %S is not a number" path column s)
      | _ -> fail "%s: E21 row lacks a string cell for %S" path column
    in
    List.iter
      (fun row ->
        let n = number row "n" in
        let retired = number row "retired" in
        let before = number row "components" in
        let after = number row "components'" in
        let wire = number row "dbvv wire B" in
        let wire' = number row "dbvv wire B'" in
        let idle = number row "idle pass B" in
        let idle' = number row "idle pass B'" in
        let gced = number row "gc'd" in
        if before <> n then
          fail "%s: E21 n=%g row starts at %g components, want %g" path n
            before n;
        if after <> n -. retired then
          fail "%s: E21 n=%g row retains %g components, want %g" path n after
            (n -. retired);
        if retired > 0.0 && wire' >= wire then
          fail "%s: E21 n=%g DBVV wire bytes did not shrink (%g -> %g)" path n
            wire wire';
        if retired > 0.0 && idle' >= idle then
          fail "%s: E21 n=%g idle-pass bytes did not shrink (%g -> %g)" path n
            idle idle';
        if retired > 0.0 && gced <= 0.0 then
          fail "%s: E21 n=%g retired %g members but gc'd no components" path n
            retired)
      rows);
  Printf.printf "%s OK: %d benchmarks, %d experiment tables\n" path
    (List.length benchmarks) (List.length experiments)

(* ------------------------------------------------------------------ *)
(* BENCH_timeseries.json                                               *)
(* ------------------------------------------------------------------ *)

let get what conv v =
  match conv v with Some x -> x | None -> fail "ill-typed %s" what

let mem what doc key conv =
  get what conv (require what (Json.member key doc))

let check_stale ~path ~where stale =
  let num key =
    let v =
      mem (Printf.sprintf "%s staleness %s" where key) stale key Json.to_float_opt
    in
    if not (Float.is_finite v) || v < 0.0 then
      fail "%s: %s staleness %s = %g out of range" path where key v;
    v
  in
  let count =
    match Json.member "count" stale with
    | Some (Json.Int c) when c >= 1 -> c
    | _ -> fail "%s: %s staleness lacks a positive count" path where
  in
  let mean = num "mean" in
  let p50 = num "p50" in
  let p90 = num "p90" in
  let p99 = num "p99" in
  let max_ = num "max" in
  if p50 > p90 || p90 > p99 || p99 > max_ then
    fail
      "%s: %s staleness percentiles not ordered (p50 %g, p90 %g, p99 %g, max %g)"
      path where p50 p90 p99 max_;
  if mean > max_ then
    fail "%s: %s staleness mean %g exceeds max %g" path where mean max_;
  count

let check_timeseries path doc =
  let generated_by =
    mem "generated_by" doc "generated_by" Json.to_string_opt
  in
  if generated_by = "" then fail "%s: empty generated_by" path;
  let scenario = require "scenario object" (Json.member "scenario" doc) in
  let nodes =
    match Json.member "nodes" scenario with
    | Some (Json.Int n) when n >= 2 -> n
    | _ -> fail "%s: scenario lacks a node count >= 2" path
  in
  (* Each scheduled join can grow the live set past the initial node
     count; leaves and retirements only shrink it. *)
  let max_alive =
    let joins =
      match Json.member "churn" scenario with
      | None | Some Json.Null -> 0
      | Some churn ->
        Option.value ~default:[]
          (Option.bind (Json.member "ops" churn) Json.to_list_opt)
        |> List.filter (fun op ->
               Json.member "kind" op = Some (Json.String "join"))
        |> List.length
    in
    nodes + joins
  in
  let name = mem "scenario name" scenario "name" Json.to_string_opt in
  let ticks =
    require "ticks list" (Option.bind (Json.member "ticks" doc) Json.to_list_opt)
  in
  if List.length ticks < 2 then fail "%s: fewer than two ticks" path;
  (* Walk the series checking monotonicity tick over tick: indices
     count up by one, virtual time strictly advances, and every
     cumulative quantity — sessions, updates, each cost counter — never
     steps backwards (the sampler folds node-replacement resets into a
     preserved base, so a backward step is an emission bug). *)
  let prev_index = ref (-1) in
  let prev_time = ref neg_infinity in
  let prev_attempted = ref 0 and prev_lost = ref 0 in
  let prev_issued = ref 0 and prev_visible = ref 0 in
  let field_count = List.length Counters.field_names in
  let prev_counters = Array.make field_count 0 in
  let stale_total = ref 0 in
  let membership_ticks = ref 0 in
  List.iter
    (fun tick ->
      let index =
        match Json.member "index" tick with
        | Some (Json.Int i) -> i
        | _ -> fail "%s: tick lacks an integer index" path
      in
      let where = Printf.sprintf "tick %d" index in
      if index <> !prev_index + 1 then
        fail "%s: tick indices jump from %d to %d" path !prev_index index;
      prev_index := index;
      let time = mem (where ^ " time") tick "time" Json.to_float_opt in
      if not (Float.is_finite time) then fail "%s: %s time not finite" path where;
      if index = 0 then begin
        if time <> 0.0 then fail "%s: first tick at time %g, want 0" path time
      end
      else if time <= !prev_time then
        fail "%s: %s time %g does not advance past %g" path where time !prev_time;
      prev_time := time;
      let alive =
        match Json.member "alive" tick with
        | Some (Json.Int a) when a >= 0 && a <= max_alive -> a
        | _ -> fail "%s: %s alive count out of [0, %d]" path where max_alive
      in
      ignore alive;
      let sub obj key field =
        match Option.bind (Json.member key obj) (Json.member field) with
        | Some (Json.Int v) when v >= 0 -> v
        | _ -> fail "%s: %s lacks non-negative %s.%s" path where key field
      in
      let attempted = sub tick "sessions" "attempted" in
      let lost = sub tick "sessions" "lost" in
      let _in_flight = sub tick "sessions" "in_flight" in
      if lost > attempted then
        fail "%s: %s lost %d exceeds attempted %d" path where lost attempted;
      if attempted < !prev_attempted || lost < !prev_lost then
        fail "%s: %s session totals step backwards" path where;
      prev_attempted := attempted;
      prev_lost := lost;
      let issued = sub tick "updates" "issued" in
      let visible = sub tick "updates" "visible" in
      if visible > issued then
        fail "%s: %s visible %d exceeds issued %d" path where visible issued;
      if issued < !prev_issued || visible < !prev_visible then
        fail "%s: %s update totals step backwards" path where;
      prev_issued := issued;
      prev_visible := visible;
      let counters =
        match Json.member "counters" tick with
        | Some (Json.Obj fields) -> fields
        | _ -> fail "%s: %s lacks a counters object" path where
      in
      (* Exact ordered key agreement with Counters.fields: a counter
         added to the library but missing here is the dangling-total
         bug class this validator exists to catch. *)
      if List.map fst counters <> Counters.field_names then
        fail "%s: %s counters keys disagree with Counters.field_names" path where;
      List.iteri
        (fun i (key, v) ->
          match v with
          | Json.Int v when v >= 0 ->
            if v < prev_counters.(i) then
              fail "%s: %s counter %s steps backwards (%d -> %d)" path where key
                prev_counters.(i) v;
            prev_counters.(i) <- v
          | _ -> fail "%s: %s counter %s not a non-negative integer" path where key)
        counters;
      (match Json.member "staleness" tick with
      | Some Json.Null -> ()
      | Some stale -> stale_total := !stale_total + check_stale ~path ~where stale
      | None -> fail "%s: %s lacks a staleness field" path where);
      (match Json.member "membership" tick with
      | Some Json.Null -> ()
      | Some m ->
        incr membership_ticks;
        (match Json.member "live" m with
        | Some (Json.Int v) when v >= 0 -> ()
        | _ -> fail "%s: %s membership lacks a non-negative live count" path where);
        (match
           Option.bind (Json.member "mean_vector_components" m) Json.to_float_opt
         with
        | Some v when Float.is_finite v && v >= 0.0 -> ()
        | _ ->
          fail "%s: %s membership lacks a valid mean_vector_components" path
            where)
      | None -> fail "%s: %s lacks a membership field" path where))
    ticks;
  (* A churn scenario samples membership on every tick; a classic
     fixed-membership run on none. *)
  let churn_run =
    match Json.member "churn" scenario with
    | None | Some Json.Null -> false
    | Some _ -> true
  in
  if churn_run && !membership_ticks <> List.length ticks then
    fail "%s: churn run sampled membership on %d of %d ticks" path
      !membership_ticks (List.length ticks);
  if (not churn_run) && !membership_ticks <> 0 then
    fail "%s: fixed-membership run carries %d membership samples" path
      !membership_ticks;
  (* Every visible update contributes exactly one staleness sample —
     on the engine path. The membership runner tracks visibility as a
     per-tick bound, not per update, so churn runs carry no staleness
     samples at all. *)
  if churn_run then begin
    if !stale_total <> 0 then
      fail "%s: churn run unexpectedly carries %d staleness samples" path
        !stale_total
  end
  else if !stale_total <> !prev_visible then
    fail "%s: staleness samples (%d) disagree with visible updates (%d)" path
      !stale_total !prev_visible;
  let summary = require "summary object" (Json.member "summary" doc) in
  (match Json.member "converged_at" summary with
  | Some Json.Null -> ()
  | Some (Json.Float t) when Float.is_finite t && t >= 0.0 -> ()
  | _ -> fail "%s: summary converged_at neither null nor a finite time" path);
  let end_time = mem "summary end_time" summary "end_time" Json.to_float_opt in
  if not (Float.is_finite end_time) || end_time < 0.0 then
    fail "%s: summary end_time %g out of range" path end_time;
  let sub obj key field =
    match Option.bind (Json.member key obj) (Json.member field) with
    | Some (Json.Int v) when v >= 0 -> v
    | _ -> fail "%s: summary lacks non-negative %s.%s" path key field
  in
  if sub summary "updates" "issued" <> !prev_issued
     || sub summary "updates" "visible" <> !prev_visible
  then fail "%s: summary update totals disagree with the last tick" path;
  if sub summary "sessions" "attempted" <> !prev_attempted
     || sub summary "sessions" "lost" <> !prev_lost
  then fail "%s: summary session totals disagree with the last tick" path;
  (match Json.member "staleness" summary with
  | Some Json.Null ->
    if !prev_visible > 0 && not churn_run then
      fail "%s: summary staleness null with %d visible updates" path !prev_visible
  | Some stale ->
    let count = check_stale ~path ~where:"summary" stale in
    if count <> !prev_visible then
      fail "%s: summary staleness count %d, want %d visible" path count !prev_visible
  | None -> fail "%s: summary lacks a staleness field" path);
  (match Json.member "counters" summary with
  | Some (Json.Obj fields) ->
    List.iteri
      (fun i (key, v) ->
        match v with
        | Json.Int v when v = prev_counters.(i) -> ()
        | _ ->
          fail "%s: summary counter %s disagrees with the last tick" path key)
      fields;
    if List.map fst fields <> Counters.field_names then
      fail "%s: summary counters keys disagree with Counters.field_names" path;
    (* The membership and connection counters are probed by name: a
       library refactor that drops or renames them must fail here, not
       silently emit a series without them. *)
    List.iter
      (fun key ->
        if not (List.mem_assoc key fields) then
          fail "%s: summary counters lack %s" path key)
      [
        "joins_completed"; "retirements_completed"; "vector_components_gced";
        "connections_opened"; "connection_retries";
      ]
  | _ -> fail "%s: summary lacks a counters object" path);
  (* A scenario with the push channel on must show it actually ran:
     updates streamed to peers and at least one applied as causally
     fresh. A push block that produces zero traffic is a wiring bug. *)
  (match Json.member "push" scenario with
  | None | Some Json.Null -> ()
  | Some _ ->
    let counter key =
      match
        Option.bind (Json.member "counters" summary) (Json.member key)
      with
      | Some (Json.Int v) -> v
      | _ -> fail "%s: summary lacks integer counter %s" path key
    in
    if !prev_issued > 0 && counter "push_sent" < 1 then
      fail "%s: push scenario issued %d updates but sent no pushes" path
        !prev_issued;
    if !prev_issued > 0 && counter "push_applied" < 1 then
      fail "%s: push scenario sent pushes but none were applied" path);
  (* A churn scenario's membership operations must show up in the
     counters: a scheduled retirement that completes GCs components. *)
  (match Json.member "churn" scenario with
  | None | Some Json.Null -> ()
  | Some churn ->
    let counter key =
      match
        Option.bind (Json.member "counters" summary) (Json.member key)
      with
      | Some (Json.Int v) -> v
      | _ -> fail "%s: summary lacks integer counter %s" path key
    in
    let ops =
      Option.value ~default:[]
        (Option.bind (Json.member "ops" churn) Json.to_list_opt)
    in
    let scheduled kind =
      List.exists
        (fun op -> Json.member "kind" op = Some (Json.String kind))
        ops
    in
    if scheduled "join" && counter "joins_completed" < 1 then
      fail "%s: churn run scheduled a join but none completed" path;
    if scheduled "retire" && counter "retirements_completed" < 1 then
      fail "%s: churn run scheduled a retirement but none completed" path;
    if scheduled "retire" && counter "vector_components_gced" < 1 then
      fail "%s: churn run retired a member but gc'd no vector components" path);
  Printf.printf "%s OK: scenario %S, %d ticks, %d/%d updates visible\n" path name
    (List.length ticks) !prev_visible !prev_issued

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_micro.json" in
  let blob =
    match open_in_bin path with
    | exception Sys_error msg -> fail "cannot open %s: %s" path msg
    | ic ->
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      data
  in
  let doc =
    match Json.of_string blob with
    | Ok doc -> doc
    | Error msg -> fail "%s: parse error: %s" path msg
  in
  let schema =
    require "schema" (Option.bind (Json.member "schema" doc) Json.to_float_opt)
  in
  if schema <> 1.0 then fail "%s: unknown schema version %g" path schema;
  match Json.member "kind" doc with
  | Some (Json.String "timeseries") -> check_timeseries path doc
  | Some (Json.String other) -> fail "%s: unknown document kind %S" path other
  | _ -> check_micro path doc

(* edb — command-line front end for the reproduction.

   Subcommands:
     bench      print experiment tables (all, or selected by id)
     simulate   run a workload + anti-entropy simulation for any protocol
     check      randomized invariant checking against the lockstep oracle
     chaos      the same battery over the message-granular transport
                (per-message faults, mid-session crashes, retry active)
     shard      sharded-replica soak: cache equivalence + granular chaos
                at a fixed shard count
     member     dynamic membership: narrate a join / graceful leave /
                dead-node retirement, or soak join/leave/retire
                schedules against the lockstep oracle
     push       push-channel equivalence soak: every schedule run with
                the realtime push channel on must converge bit-identical
                to the same schedule pull-only
     wire       hex-dump and pretty-decode wire frames (v1 and v2), or
                walk a sample session showing negotiation and deltas
     scenario   run a declarative scenario (built-in or from a JSON
                file) and report its per-tick time series
     serve      run one node as a daemon over Unix/TCP sockets (WAL +
                checkpoints on disk, anti-entropy on a timer)
     cluster    boot an N-process cluster of serve daemons, drive
                updates (with an optional kill -9 / restart mid-run)
                and wait for checker-clean convergence
     demo       a tiny three-node walkthrough *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Workload = Edb_workload.Workload
module Driver = Edb_baselines.Driver
module Engine = Edb_sim.Engine
open Cmdliner

(* ------------------------------------------------------------------ *)
(* bench                                                               *)
(* ------------------------------------------------------------------ *)

let bench_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shrink the sweeps (for smoke runs).")
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids to run (e.g. E1 E9). Default: all.")
  in
  let run quick ids =
    let wanted = List.map String.uppercase_ascii ids in
    let tables = Edb_experiments.Experiments.all ~quick () in
    let selected =
      if wanted = [] then tables
      else List.filter (fun (id, _) -> List.mem id wanted) tables
    in
    if selected = [] then `Error (false, "no such experiment; ids are E1..E14")
    else begin
      List.iter
        (fun (id, table) ->
          Printf.printf "[%s]\n" id;
          Edb_metrics.Table.print table)
        selected;
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ quick $ ids)) in
  Cmd.v
    (Cmd.info "bench" ~doc:"Print experiment tables (deterministic operation counts).")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic last-writer-wins style resolver: the lexicographically
   larger value survives; both sides pick the same winner. *)
let lww_resolver ~(local : Edb_core.Message.shipped_item)
    ~(remote : Edb_core.Message.shipped_item) =
  let value s = Option.value ~default:"" (Edb_core.Message.whole_value s) in
  if String.compare (value local) (value remote) >= 0 then value local
  else value remote

let make_driver protocol ~n ~items ~seed ~resolve ~oplog_depth =
  let universe = Workload.universe items in
  match protocol with
  | "dbvv" ->
    let policy = if resolve then Some (Node.Resolve lww_resolver) else None in
    let mode =
      match oplog_depth with
      | Some depth -> Some (Node.Op_log { depth })
      | None -> None
    in
    snd (Edb_baselines.Epidemic_driver.create ?policy ?mode ~seed ~n ())
  | "demers" -> Edb_baselines.Demers.driver (Edb_baselines.Demers.create ~n ~universe)
  | "lotus" -> Edb_baselines.Lotus.driver (Edb_baselines.Lotus.create ~n ~universe)
  | "oracle" -> Edb_baselines.Oracle_push.driver (Edb_baselines.Oracle_push.create ~n)
  | "wuu" -> Edb_baselines.Wuu_bernstein.driver (Edb_baselines.Wuu_bernstein.create ~n)
  | "2pg" ->
    Edb_baselines.Two_phase_gossip.driver (Edb_baselines.Two_phase_gossip.create ~n)
  | "ficus" -> Edb_baselines.Ficus.driver (Edb_baselines.Ficus.create ~n ~universe)
  | other -> invalid_arg (Printf.sprintf "unknown protocol %S" other)

let simulate_cmd =
  let protocol =
    Arg.(
      value
      & opt string "dbvv"
      & info [ "p"; "protocol" ] ~docv:"NAME"
          ~doc:"Protocol: dbvv, demers, lotus, oracle, wuu, 2pg or ficus.")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Replica count.")
  in
  let items =
    Arg.(value & opt int 1_000 & info [ "items" ] ~docv:"K" ~doc:"Item universe size.")
  in
  let updates =
    Arg.(value & opt int 200 & info [ "u"; "updates" ] ~docv:"U" ~doc:"User updates.")
  in
  let zipf =
    Arg.(
      value & opt float 1.0
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf exponent of the item popularity (0 = uniform).")
  in
  let period =
    Arg.(
      value & opt float 1.0
      & info [ "period" ] ~docv:"T" ~doc:"Anti-entropy period in virtual time units.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P" ~doc:"Session loss probability in [0,1].")
  in
  let duration =
    Arg.(
      value & opt float 50.0
      & info [ "duration" ] ~docv:"T"
          ~doc:"Virtual time window over which the updates arrive.")
  in
  let deadline =
    Arg.(
      value & opt float 1_000.0
      & info [ "deadline" ] ~docv:"T"
          ~doc:"Give up waiting for convergence after this much virtual time.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let resolve =
    Arg.(
      value & flag
      & info [ "resolve" ]
          ~doc:
            "dbvv only: auto-resolve conflicts deterministically instead of the \
             paper's report-only behaviour.")
  in
  let single_writer =
    Arg.(
      value & flag
      & info [ "single-writer" ]
          ~doc:
            "Route every update for an item to one fixed owner node, so no \
             conflicts can arise.")
  in
  let oplog_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "oplog" ] ~docv:"DEPTH"
          ~doc:
            "dbvv only: ship update records (op-log transport) with a per-item \
             history of DEPTH operations instead of whole item values.")
  in
  let run protocol nodes items updates zipf period loss duration deadline seed resolve
      single_writer oplog_depth =
    match make_driver protocol ~n:nodes ~items ~seed ~resolve ~oplog_depth with
    | exception Invalid_argument msg -> `Error (false, msg)
    | driver ->
      let network = Edb_sim.Network.create ~loss_probability:loss () in
      let engine = Engine.create ~seed:(seed + 1) ~network ~driver () in
      let selector = Workload.Selector.zipfian ~n:items ~exponent:zipf in
      let steps =
        Workload.update_stream ~seed ~selector ~nodes ~count:updates ~value_size:64
      in
      let steps =
        if not single_writer then steps
        else
          (* Reassign each update to the item's fixed owner. *)
          List.map
            (fun (step : Workload.step) ->
              let rank = Scanf.sscanf step.item "item-%d" Fun.id in
              { step with node = rank mod nodes })
            steps
      in
      (* Spread the updates over the duration window, then measure how
         long full convergence takes once the workload quiesces. *)
      List.iteri
        (fun i (step : Workload.step) ->
          let at = duration *. float_of_int i /. float_of_int (max 1 updates) in
          Engine.schedule engine ~at
            (Engine.User_update { node = step.node; item = step.item; op = step.op }))
        steps;
      Engine.schedule engine ~at:(period /. 2.0)
        (Engine.Anti_entropy_round { period; policy = Engine.Random_peer });
      Engine.run_until engine duration;
      let converge_time =
        Engine.run_until_converged engine ~check_every:period ~deadline
      in
      Printf.printf "protocol:            %s\n" driver.Driver.name;
      Printf.printf "nodes/items/updates: %d / %d / %d\n" nodes items updates;
      (match converge_time with
      | Some t -> Printf.printf "converged at:        %.1f (virtual time)\n" t
      | None -> Printf.printf "converged at:        not within %.1f\n" deadline);
      Printf.printf "sessions attempted:  %d (lost: %d)\n"
        (Engine.sessions_attempted engine)
        (Engine.sessions_lost engine);
      let total = driver.Driver.total_counters () in
      Format.printf "totals:@.%a@." Counters.pp total;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ protocol $ nodes $ items $ updates $ zipf $ period $ loss
       $ duration $ deadline $ seed $ resolve $ single_writer $ oplog_depth))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a workload under periodic anti-entropy and report cost counters.")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let module Explorer = Edb_check.Explorer in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"K" ~doc:"Schedules to explore per topology.")
  in
  let topology =
    Arg.(
      value & opt string "all"
      & info [ "topology" ] ~docv:"T"
          ~doc:"Session topology: clique, ring, star, or all (mixed).")
  in
  let oplog_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "oplog" ] ~docv:"DEPTH"
          ~doc:"Run in op-log transport mode with per-item history DEPTH.")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Inject a state corruption into every schedule; the checker is \
             expected to FAIL (smoke test for the checker itself).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:"Per-node shard count for every schedule (default 1).")
  in
  let run seed runs topology oplog_depth mutate shards =
    let topology =
      match String.lowercase_ascii topology with
      | "all" -> Ok None
      | name -> (
        match Explorer.topology_of_string name with
        | Some t -> Ok (Some t)
        | None -> Error (Printf.sprintf "unknown topology %S" name))
    in
    match topology with
    | Error msg -> `Error (false, msg)
    | Ok topology -> (
      let mode =
        Option.map (fun depth -> Node.Op_log { depth }) oplog_depth
      in
      match Explorer.run ?mode ?topology ~mutate ~shards ~seed ~runs () with
      | Ok report ->
        Printf.printf "ok: %d schedules passed every invariant and oracle check\n"
          report.Explorer.schedules;
        `Ok ()
      | Error msg ->
        print_string msg;
        if not (String.length msg > 0 && msg.[String.length msg - 1] = '\n') then
          print_newline ();
        `Error (false, "invariant check failed (shrunk counterexample above)"))
  in
  let term =
    Term.(ret (const run $ seed $ runs $ topology $ oplog_depth $ mutate $ shards))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Explore randomized fault schedules, asserting protocol invariants and \
          equivalence with a naive full-compare oracle.")
    term

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Explorer = Edb_check.Explorer in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let runs =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"K" ~doc:"Message-granular schedules to explore.")
  in
  let topology =
    Arg.(
      value & opt string "all"
      & info [ "topology" ] ~docv:"T"
          ~doc:"Session topology: clique, ring, star, or all (mixed).")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Inject a state corruption into every schedule; the checker is \
             expected to FAIL (smoke test for the checker itself).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:"Per-node shard count for every schedule (default 1).")
  in
  let run seed runs topology mutate shards =
    let topology =
      match String.lowercase_ascii topology with
      | "all" -> Ok None
      | name -> (
        match Explorer.topology_of_string name with
        | Some t -> Ok (Some t)
        | None -> Error (Printf.sprintf "unknown topology %S" name))
    in
    match topology with
    | Error msg -> `Error (false, msg)
    | Ok topology -> (
      match Explorer.run ~granular:true ?topology ~mutate ~shards ~seed ~runs () with
      | Ok report ->
        Printf.printf
          "ok: %d message-granular schedules passed every invariant and oracle \
           check\n"
          report.Explorer.schedules;
        `Ok ()
      | Error msg ->
        print_string msg;
        if not (String.length msg > 0 && msg.[String.length msg - 1] = '\n') then
          print_newline ();
        `Error (false, "chaos check failed (shrunk counterexample above)"))
  in
  let term = Term.(ret (const run $ seed $ runs $ topology $ mutate $ shards)) in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Explore randomized fault schedules over the message-granular \
          transport: per-message loss, duplication and reordering, crashes and \
          partitions landing between a session's request and reply, \
          timeout/retry/backoff active — all under the lockstep-oracle and \
          invariant battery.")
    term

(* ------------------------------------------------------------------ *)
(* shard                                                               *)
(* ------------------------------------------------------------------ *)

let shard_cmd =
  let module Explorer = Edb_check.Explorer in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"K" ~doc:"Schedules per battery.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"K" ~doc:"Per-node shard count (default 4).")
  in
  let run seed runs shards =
    let fail msg =
      print_string msg;
      if not (String.length msg > 0 && msg.[String.length msg - 1] = '\n') then
        print_newline ();
      `Error (false, "sharded soak failed (shrunk counterexample above)")
    in
    (* Cache equivalence doubles as a sharding-determinism check: the
       cached and uncached executions only compare equal if every
       sharded session is deterministic (parallel or not). *)
    match Explorer.run_equivalence ~shards ~seed ~runs () with
    | Error msg -> fail msg
    | Ok eq -> (
      match Explorer.run ~granular:true ~shards ~seed ~runs () with
      | Error msg -> fail msg
      | Ok gr ->
        Printf.printf
          "ok: shards=%d — %d cache-equivalence schedules + %d message-granular \
           schedules passed every invariant and oracle check\n"
          shards eq.Explorer.schedules gr.Explorer.schedules;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Soak the sharded protocol: the peer-cache equivalence battery and the \
          message-granular chaos battery, both with every node split into the \
          given number of shards.")
    Term.(ret (const run $ seed $ runs $ shards))

(* ------------------------------------------------------------------ *)
(* member                                                              *)
(* ------------------------------------------------------------------ *)

let member_cmd =
  let module Explorer = Edb_check.Explorer in
  let module Group = Edb_membership.Group in
  let mode =
    Arg.(
      required
      & pos 0 (some (enum [ ("join", `Join); ("leave", `Leave);
                            ("retire", `Retire); ("soak", `Soak) ])) None
      & info [] ~docv:"MODE"
          ~doc:
            "$(b,join), $(b,leave) or $(b,retire) walk one membership \
             operation through a small cluster, narrating the event log; \
             $(b,soak) runs the randomized membership-equivalence battery.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let runs =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"K" ~doc:"Schedules for $(b,soak) (default 200).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:"Per-node shard count for $(b,soak) (default 1).")
  in
  (* Shared stage: a 3-member group with one update per member applied
     everywhere, so every vector is non-trivial before the operation
     under demonstration runs. *)
  let stage () =
    let g = Group.create ~shards:1 ~n:3 () in
    for name = 0 to 2 do
      match
        Group.update g ~name ~item:(Printf.sprintf "item-%d" name)
          (Edb_store.Operation.Set (Printf.sprintf "v%d" name))
      with
      | Ok () -> ()
      | Error msg -> failwith msg
    done;
    ignore (Group.observe g : Group.event list);
    g
  in
  let round g =
    let names =
      Array.to_list (Group.roster g)
      |> List.filter (fun name -> Group.alive g ~name
                                  && Group.status g ~name <> Group.Departed
                                  && Group.status g ~name <> Group.Retired)
    in
    let arr = Array.of_list names in
    let k = Array.length arr in
    for i = 0 to k - 1 do
      ignore
        (Group.sync g ~a:arr.(i) ~b:arr.((i + 1) mod k)
          : (unit, string) Stdlib.result)
    done;
    List.iter
      (fun ev -> Printf.printf "  event: %s\n" (Group.event_to_string ev))
      (Group.observe g)
  in
  let show g =
    Printf.printf
      "  epoch %d · live %d · mean vector length %.2f · fences pending [%s]\n"
      (Group.epoch g) (Group.live_count g)
      (Group.mean_vector_components g)
      (String.concat "; " (List.map string_of_int (Group.pending_fences g)))
  in
  let finish g =
    (match Group.check g with
    | Ok () -> print_endline "group invariants: ok"
    | Error msg -> Printf.printf "group invariants: FAILED — %s\n" msg);
    `Ok ()
  in
  let run mode seed runs shards =
    match mode with
    | `Join ->
      let g = stage () in
      print_endline "three members staged; a newcomer joins from donor 0:";
      let name =
        match Group.join g ~donor:0 with Ok n -> n | Error m -> failwith m
      in
      (match Group.read g ~name ~item:"item-1" with
      | Error msg -> Printf.printf "  read gate holds while Joining: %s\n" msg
      | Ok _ -> print_endline "  read gate FAILED to hold");
      show g;
      print_endline "catch-up anti-entropy until the DBVV dominates the donor watermark:";
      round g;
      Printf.printf "  member %d is now %s\n" name
        (Group.status_to_string (Group.status g ~name));
      show g;
      finish g
    | `Leave ->
      let g = stage () in
      print_endline "three members staged; member 1 leaves gracefully:";
      (match Group.leave g ~name:1 with Ok () -> () | Error m -> failwith m);
      (match Group.update g ~name:1 ~item:"item-1" (Edb_store.Operation.Set "late") with
      | Error msg -> Printf.printf "  draining member refuses updates: %s\n" msg
      | Ok () -> print_endline "  drain FAILED to refuse an update");
      show g;
      print_endline "final anti-entropy rounds drain the member out:";
      round g;
      round g;
      Printf.printf "  member 1 is now %s\n"
        (Group.status_to_string (Group.status g ~name:1));
      show g;
      finish g
    | `Retire ->
      let g = stage () in
      print_endline "three members staged; member 2 crashes and is retired:";
      Group.crash g ~name:2;
      (match Group.retire g ~name:2 with Ok () -> () | Error m -> failwith m);
      show g;
      print_endline "the fence gathers acks epidemically:";
      round g;
      round g;
      Printf.printf "  member 2 is now %s\n"
        (Group.status_to_string (Group.status g ~name:2));
      show g;
      let c = Group.counters_total g in
      Printf.printf
        "  counters: joins_completed=%d retirements_completed=%d \
         vector_components_gced=%d\n"
        c.Counters.joins_completed c.Counters.retirements_completed
        c.Counters.vector_components_gced;
      finish g
    | `Soak -> (
      match Explorer.run_membership_equivalence ~shards ~seed ~runs () with
      | Ok report ->
        Printf.printf
          "ok: %d membership schedules (join/leave/retire under faults) \
           converged oracle-identical with no retired component surviving\n"
          report.Explorer.schedules;
        `Ok ()
      | Error msg ->
        print_string msg;
        if not (String.length msg > 0 && msg.[String.length msg - 1] = '\n') then
          print_newline ();
        `Error (false, "membership soak failed (shrunk counterexample above)"))
  in
  Cmd.v
    (Cmd.info "member"
       ~doc:
         "Dynamic membership: narrate a join (snapshot bootstrap + catch-up \
          gate), a graceful leave (drain then depart) or a dead-node \
          retirement (two-phase fence, then the origin's vector component is \
          garbage-collected everywhere) — or soak the whole subsystem against \
          the lockstep oracle with $(b,soak).")
    Term.(ret (const run $ mode $ seed $ runs $ shards))

(* ------------------------------------------------------------------ *)
(* push                                                                *)
(* ------------------------------------------------------------------ *)

let push_cmd =
  let module Explorer = Edb_check.Explorer in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"K" ~doc:"Schedules per shard count.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"K"
          ~doc:"Sharded battery's per-node shard count (default 4).")
  in
  let run seed runs shards =
    let fail msg =
      print_string msg;
      if not (String.length msg > 0 && msg.[String.length msg - 1] = '\n') then
        print_newline ();
      `Error (false, "push equivalence failed (shrunk counterexample above)")
    in
    match Explorer.run_push_equivalence ~shards:1 ~seed ~runs () with
    | Error msg -> fail msg
    | Ok unsharded -> (
      match Explorer.run_push_equivalence ~shards ~seed ~runs () with
      | Error msg -> fail msg
      | Ok sharded ->
        Printf.printf
          "ok: %d push-equivalence schedules at shards=1 + %d at shards=%d — \
           push-on and pull-only runs converged bit-identical\n"
          unsharded.Explorer.schedules sharded.Explorer.schedules shards;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "push"
       ~doc:
         "Soak the best-effort push channel: every message-granular fault \
          schedule is executed push-on and pull-only under identical \
          randomness, and the converged states must be bit-identical — \
          anti-entropy alone carries correctness.")
    Term.(ret (const run $ seed $ runs $ shards))

(* ------------------------------------------------------------------ *)
(* wire                                                                *)
(* ------------------------------------------------------------------ *)

module Frame = Edb_persist.Frame

(* xxd-style dump: offset, 16 hex bytes, printable ASCII. *)
let hex_dump data =
  let n = String.length data in
  let buf = Buffer.create (n * 4) in
  let rows = (n + 15) / 16 in
  for row = 0 to rows - 1 do
    Printf.bprintf buf "  %04x  " (row * 16);
    for i = 0 to 15 do
      let pos = (row * 16) + i in
      if pos < n then Printf.bprintf buf "%02x " (Char.code data.[pos])
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to 15 do
      let pos = (row * 16) + i in
      if pos < n then
        let c = data.[pos] in
        Buffer.add_char buf (if c >= ' ' && c < '\x7f' then c else '.')
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf

let frame_of_hex s =
  let digits = Buffer.create (String.length s) in
  String.iter
    (function ' ' | '\t' | '\n' | '\r' -> () | c -> Buffer.add_char digits c)
    s;
  let h = Buffer.contents digits in
  if String.length h mod 2 <> 0 then invalid_arg "odd number of hex digits";
  let nibble = function
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> invalid_arg (Printf.sprintf "invalid hex digit %C" c)
  in
  String.init
    (String.length h / 2)
    (fun i -> Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))

let wire_cmd =
  let hex =
    Arg.(
      value
      & opt (some string) None
      & info [ "hex" ] ~docv:"HEX"
          ~doc:
            "Decode this hex-encoded frame (whitespace ignored) instead of \
             walking the sample session.")
  in
  let nodes =
    Arg.(
      value & opt int 4
      & info [ "n"; "nodes" ] ~docv:"N"
          ~doc:
            "Replica count — the version-vector dimension, which v2 bodies \
             leave implicit and so must be supplied to decode them.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let run hex nodes seed =
    let show label data =
      Printf.printf "-- %s (%d bytes)\n" label (String.length data);
      print_string (hex_dump data);
      print_string (Frame.describe ~n:nodes data);
      print_newline ()
    in
    match hex with
    | Some h -> (
      match frame_of_hex h with
      | exception Invalid_argument msg -> `Error (false, msg)
      | data -> (
        try
          show "frame" data;
          `Ok ()
        with Edb_persist.Codec.Reader.Corrupt msg ->
          `Error (false, Printf.sprintf "corrupt frame: %s" msg)))
    | None ->
      (* A sample anti-entropy exchange between two diverged nodes,
         showing the negotiation ladder: a pessimistic v1 request, a v2
         reply (the request advertised v2), a v2 absolute request, and
         finally a delta-encoded request against the acked baseline. *)
      let cluster = Cluster.create ~seed ~n:nodes () in
      Cluster.update cluster ~node:0 ~item:"alpha" (Operation.Set "from node 0");
      Cluster.update cluster ~node:1 ~item:"beta" (Operation.Set "from node 1");
      let a = Cluster.node cluster 0 and b = Cluster.node cluster 1 in
      let session label =
        let req = Frame.encode_request b ~dst:0 in
        show (label ^ ": request node1 -> node0") req;
        let reply = Frame.respond a ~src:1 req in
        show (label ^ ": reply node0 -> node1") reply;
        match Frame.decode_reply b ~src:0 reply with
        | Frame.Nak _ -> ()
        | Frame.Reply (r, _) -> ignore (Node.accept_propagation b ~source:0 r)
      in
      session "session 1 (fresh peers, pessimistic v1)";
      session "session 2 (negotiated v2, absolute DBVV)";
      Cluster.update cluster ~node:1 ~item:"beta" (Operation.Set "edited");
      session "session 3 (v2, DBVV delta against acked baseline)";
      `Ok ()
  in
  let term = Term.(ret (const run $ hex $ nodes $ seed)) in
  Cmd.v
    (Cmd.info "wire"
       ~doc:
         "Hex-dump and pretty-decode wire frames: either a caller-supplied \
          hex frame, or a generated sample session showing version \
          negotiation and delta-encoded version vectors.")
    term

(* ------------------------------------------------------------------ *)
(* scenario                                                            *)
(* ------------------------------------------------------------------ *)

module Scenario = Edb_scenario.Scenario
module Orchestrator = Edb_scenario.Orchestrator

let print_scenario_report (sc : Scenario.t) (r : Orchestrator.result) =
  Printf.printf "scenario: %s — %s\n" sc.Scenario.name sc.Scenario.description;
  Printf.printf "nodes/shards/items:  %d / %d / %d\n" sc.Scenario.nodes
    sc.Scenario.shards sc.Scenario.items;
  Printf.printf "%5s %8s %6s %7s %8s %9s %11s %10s\n" "tick" "time" "alive" "issued"
    "visible" "sessions" "bytes_sent" "staleness";
  List.iter
    (fun (t : Orchestrator.tick) ->
      let bytes =
        match List.assoc_opt "bytes_sent" t.Orchestrator.counters with
        | Some v -> v
        | None -> 0
      in
      let stale =
        match t.Orchestrator.staleness with
        | None -> "-"
        | Some s -> Printf.sprintf "%.1f" s.Orchestrator.mean
      in
      Printf.printf "%5d %8.1f %6d %7d %8d %9d %11d %10s\n" t.Orchestrator.index
        t.Orchestrator.time t.Orchestrator.alive t.Orchestrator.issued
        t.Orchestrator.visible t.Orchestrator.attempted bytes stale)
    r.Orchestrator.ticks;
  (match r.Orchestrator.converged_at with
  | Some t -> Printf.printf "converged at:        %.1f (virtual time)\n" t
  | None ->
    if sc.Scenario.until_converged then
      Printf.printf "converged at:        not within %.1f\n" sc.Scenario.deadline);
  Printf.printf "updates:             %d issued, %d globally visible\n"
    r.Orchestrator.issued r.Orchestrator.visible;
  Printf.printf "sessions attempted:  %d (lost: %d)\n" r.Orchestrator.attempted
    r.Orchestrator.lost;
  Format.printf "totals:@.%a@." Counters.pp r.Orchestrator.totals

let scenario_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME|FILE"
          ~doc:"Built-in scenario name, or path to a scenario JSON file.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Also write the per-tick time series as JSON to $(b,--out).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_timeseries.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output file for $(b,--json).")
  in
  let list_ =
    Arg.(value & flag & info [ "list" ] ~doc:"List built-in scenarios and exit.")
  in
  let print =
    Arg.(
      value & flag
      & info [ "print" ]
          ~doc:
            "Print the scenario itself as canonical JSON and exit without \
             running it — the committed scenarios/*.json files are exactly \
             this output.")
  in
  let run name json out list_ print =
    if list_ then begin
      List.iter
        (fun (sc : Scenario.t) ->
          Printf.printf "%-16s %s\n" sc.Scenario.name sc.Scenario.description)
        Scenario.builtins;
      `Ok ()
    end
    else
      match name with
      | None -> `Error (true, "missing scenario name or file (try --list)")
      | Some name -> (
        let load () =
          match Scenario.builtin name with
          | Some sc -> Ok sc
          | None ->
            if Sys.file_exists name then
              match In_channel.with_open_bin name In_channel.input_all with
              | contents -> (
                match Scenario.of_string contents with
                | Ok sc -> Ok sc
                | Error msg -> Error (Printf.sprintf "%s: %s" name msg))
              | exception Sys_error msg -> Error msg
            else
              Error
                (Printf.sprintf "no built-in scenario or file named %S (try --list)"
                   name)
        in
        match load () with
        | Error msg -> `Error (false, msg)
        | Ok sc when print ->
          print_string (Scenario.to_string sc);
          `Ok ()
        | Ok sc ->
          let r = Orchestrator.run sc in
          if json then begin
            (* The golden-run test pins this emission byte-for-byte,
               [generated_by] included: keep it the canonical
               invocation, independent of how the scenario was named
               on this particular command line. *)
            let generated_by =
              Printf.sprintf "edb_cli scenario %s --json" sc.Scenario.name
            in
            Out_channel.with_open_bin out (fun oc ->
                Out_channel.output_string oc (Orchestrator.to_string ~generated_by r));
            Printf.printf "wrote %s (%d ticks)\n" out
              (List.length r.Orchestrator.ticks)
          end;
          print_scenario_report sc r;
          `Ok ())
  in
  let term = Term.(ret (const run $ name_arg $ json $ out $ list_ $ print)) in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run a declarative scenario — arrival phases or an explicit script, \
          faults, anti-entropy cadence — and sample every cost counter plus \
          update staleness per tick.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let module Daemon = Edb_transport.Daemon in
  let module Socket_transport = Edb_transport.Socket_transport in
  let id =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"I" ~doc:"This node's id, in [0, n).")
  in
  let n =
    Arg.(
      required
      & opt (some int) None
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Durable state directory (WAL + checkpoints; created if \
             missing). Restarting over the same directory recovers.")
  in
  let listen =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:)$(i,PATH) or \
             $(b,tcp:)$(i,HOST):$(i,PORT) (port 0 picks a free port).")
  in
  let peers =
    Arg.(
      value & opt_all string []
      & info [ "peer" ] ~docv:"ID=ADDR"
          ~doc:
            "A peer's address, e.g. $(b,--peer 1=unix:/tmp/n1.sock). \
             Repeat for every other node.")
  in
  let ae_period =
    Arg.(
      value & opt float 0.05
      & info [ "ae-period" ] ~docv:"SECS"
          ~doc:"Seconds between anti-entropy pulls from a random peer.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let checkpoint_every =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Checkpoint when the journal reaches K records (0: never).")
  in
  let max_runtime =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-runtime" ] ~docv:"SECS"
          ~doc:"Self-terminate after this many seconds.")
  in
  let max_sessions =
    Arg.(
      value & opt int 4
      & info [ "max-sessions" ] ~docv:"K"
          ~doc:
            "Concurrent anti-entropy sessions kept in flight (clamped to \
             n-1 peers). 1 restores the old one-session-at-a-time loop.")
  in
  let parse_peer s =
    match String.index_opt s '=' with
    | None -> Error (`Msg (Printf.sprintf "bad --peer %S: expected ID=ADDR" s))
    | Some eq -> (
      match int_of_string_opt (String.sub s 0 eq) with
      | None -> Error (`Msg (Printf.sprintf "bad --peer %S: ID not a number" s))
      | Some id -> (
        let addr = String.sub s (eq + 1) (String.length s - eq - 1) in
        match Socket_transport.addr_of_string addr with
        | Ok a -> Ok (id, a)
        | Error m ->
          Error (`Msg (Printf.sprintf "bad --peer %S: %s" s m))))
  in
  let run id n dir listen peers ae_period seed checkpoint_every max_runtime max_sessions =
    match Socket_transport.addr_of_string listen with
    | Error m -> `Error (true, "bad --listen: " ^ m)
    | Ok listen -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
          match parse_peer s with
          | Ok p -> parse (p :: acc) rest
          | Error (`Msg m) -> Error m)
      in
      match parse [] peers with
      | Error m -> `Error (true, m)
      | Ok peers -> (
        let config =
          Daemon.Config.make ~ae_period ~seed ~checkpoint_every ?max_runtime
            ~max_sessions ~id ~n ~dir ~listen ~peers ()
        in
        match Daemon.serve config with
        | Ok () -> `Ok ()
        | Error m -> `Error (false, m)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one protocol node as a daemon: a durable node (WAL + \
          checkpoints) served over Unix-domain or TCP sockets, answering \
          propagation requests, applying pushes, and pulling from a random \
          peer on an anti-entropy timer.")
    Term.(
      ret
        (const run $ id $ n $ dir $ listen $ peers $ ae_period $ seed
       $ checkpoint_every $ max_runtime $ max_sessions))

(* ------------------------------------------------------------------ *)
(* cluster                                                             *)
(* ------------------------------------------------------------------ *)

let cluster_cmd =
  let module Harness = Edb_transport.Harness in
  let module Invariant = Edb_check.Invariant in
  let n =
    Arg.(
      value & opt int 3
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("unix", `Unix); ("tcp", `Tcp) ]) `Unix
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Socket flavor: $(b,unix) (default) or $(b,tcp).")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Cluster directory (sockets + per-node state); default a fresh \
             directory under the system temp dir.")
  in
  let updates =
    Arg.(
      value & opt int 24
      & info [ "updates" ] ~docv:"K"
          ~doc:"Scripted updates, issued round-robin across the nodes.")
  in
  let kill =
    Arg.(
      value
      & opt (some int) (Some 1)
      & info [ "kill" ] ~docv:"I"
          ~doc:
            "Mid-run, SIGKILL node I (nothing flushed), keep updating the \
             others, then restart it over its WAL. $(b,--no-kill) to skip.")
  in
  let no_kill =
    Arg.(value & flag & info [ "no-kill" ] ~doc:"Skip the kill/restart leg.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let deadline =
    Arg.(
      value & opt float 30.0
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Seconds to wait for convergence before failing.")
  in
  let max_sessions =
    Arg.(
      value & opt int 4
      & info [ "max-sessions" ] ~docv:"K"
          ~doc:
            "Concurrent anti-entropy sessions per daemon (clamped to n-1 \
             peers).")
  in
  let run n kind dir updates kill no_kill seed deadline max_sessions =
    if n < 2 then `Error (true, "--n must be at least 2")
    else begin
      let dir =
        match dir with
        | Some d -> d
        | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "edb-cluster-%d" (Unix.getpid ()))
      in
      let kill = if no_kill then None else kill in
      (match kill with
      | Some k when k < 0 || k >= n ->
        invalid_arg (Printf.sprintf "--kill %d out of range [0, %d)" k n)
      | _ -> ());
      Printf.printf "booting %d daemons (%s sockets) under %s\n%!" n
        (match kind with `Unix -> "unix" | `Tcp -> "tcp")
        dir;
      let h =
        Harness.start ~kind ~seed ~max_runtime:(deadline +. 60.0) ~max_sessions ~dir ~n ()
      in
      Fun.protect
        ~finally:(fun () -> Harness.shutdown h)
        (fun () ->
          let items = [| "alpha"; "beta"; "gamma"; "delta" |] in
          let issued = ref 0 in
          let update ~node =
            (* Single-writer per item (the item name carries its owner):
               cross-node updates to one item would be genuine concurrent
               writes, reported as conflicts — which, under the paper's
               report-only policy, correctly never merge. *)
            let item =
              Printf.sprintf "%s.%d" items.(!issued mod Array.length items) node
            in
            let op =
              Operation.Set (Printf.sprintf "v%d from node %d" !issued node)
            in
            (match Harness.update h ~node ~item op with
            | Ok () -> ()
            | Error m -> failwith (Printf.sprintf "update on node %d: %s" node m));
            incr issued
          in
          (* First leg: updates spread round-robin over every node. *)
          let first = match kill with None -> updates | Some _ -> updates / 2 in
          for i = 0 to first - 1 do
            update ~node:(i mod n)
          done;
          (match kill with
          | None -> ()
          | Some victim ->
            Printf.printf "kill -9 node %d mid-run, updating the others\n%!"
              victim;
            Harness.kill h ~node:victim;
            (* Second leg lands only on survivors; the victim must catch
               up from its WAL via anti-entropy after restart. *)
            let survivors =
              Array.of_list
                (List.filter (fun i -> i <> victim) (List.init n Fun.id))
            in
            for i = 0 to updates - first - 1 do
              update ~node:survivors.(i mod Array.length survivors)
            done;
            Printf.printf "restarting node %d over its WAL\n%!" victim;
            Harness.restart h ~node:victim);
          match
            Harness.await_converged ~deadline
              ~invariant:(fun node -> Invariant.check_node node)
              h
          with
          | Error m -> `Error (false, Printf.sprintf "cluster did not converge: %s" m)
          | Ok elapsed ->
            Printf.printf "converged checker-clean in %.2fs (%d updates)\n"
              elapsed !issued;
            let total key =
              List.fold_left
                (fun acc node ->
                  match Harness.counters_of h ~node with
                  | Ok fields ->
                    acc + (try List.assoc key fields with Not_found -> 0)
                  | Error _ -> acc)
                0
                (List.init n Fun.id)
            in
            Printf.printf
              "totals: %d conns opened, %d conn retries, %d wire bytes, %d \
               timeouts, %d abandoned\n"
              (total "connections_opened")
              (total "connection_retries")
              (total "wire_bytes_sent") (total "timeouts")
              (total "sessions_abandoned");
            `Ok ())
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Boot an N-process cluster of $(b,serve) daemons over real \
          sockets, drive scripted updates (optionally SIGKILLing and \
          restarting a daemon mid-run), and wait for every store to \
          converge checker-clean.")
    Term.(
      ret
        (const run $ n $ kind $ dir $ updates $ kill $ no_kill $ seed
       $ deadline $ max_sessions))

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  let run () =
    let cluster = Cluster.create ~seed:1 ~n:3 () in
    Cluster.update cluster ~node:0 ~item:"motd" (Operation.Set "hello from node 0");
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    ignore (Cluster.pull cluster ~recipient:2 ~source:1);
    for node = 0 to 2 do
      Printf.printf "node %d reads: %s\n" node
        (Option.value ~default:"<absent>" (Cluster.read cluster ~node ~item:"motd"))
    done;
    (match Cluster.pull cluster ~recipient:2 ~source:0 with
    | Node.Already_current ->
      print_endline "identical replicas detected in O(1) (you-are-current)"
    | Node.Pulled _ -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Three-node walkthrough of the protocol.")
    Term.(ret (const run $ const ()))

let () =
  let doc = "Scalable update propagation in epidemic replicated databases (EDBT '96)" in
  let info = Cmd.info "edb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            bench_cmd; simulate_cmd; check_cmd; chaos_cmd; shard_cmd;
            member_cmd; push_cmd; wire_cmd; scenario_cmd; serve_cmd;
            cluster_cmd; demo_cmd;
          ]))

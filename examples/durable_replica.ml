(* Durability walkthrough: checkpoint + write-ahead journal + recovery.

   A replica crashes and recovers from disk with its exact pre-crash
   state — including the update sequence numbers its peers have already
   seen, which deterministic journal replay reproduces. To the
   epidemic, a recovered replica is indistinguishable from one that was
   merely disconnected: anti-entropy brings it current (paper §8.2's
   failure model).

   Run with: dune exec examples/durable_replica.exe *)

module Node = Edb_core.Node
module Durable = Edb_persist.Durable_node
module Operation = Edb_store.Operation

let dir = Filename.concat (Filename.get_temp_dir_name ()) "edb-durable-example"

let clean () =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let () =
  clean ();
  let peer = Node.create ~id:1 ~n:2 () in

  print_endline "Opening a durable replica (fresh directory):";
  let replica, _ =
    match Durable.open_or_create ~dir ~id:0 ~n:2 () with
    | Ok v -> v
    | Error msg -> failwith msg
  in
  Durable.update replica "inventory" (Operation.Set "100 units");
  Durable.update replica "price" (Operation.Set "$9.99");
  Printf.printf "  2 updates journaled (journal: %d records)\n"
    (Durable.journal_records replica);

  print_endline "\nCheckpoint: snapshot written, journal reset:";
  Durable.checkpoint replica;
  Printf.printf "  journal: %d records\n" (Durable.journal_records replica);

  print_endline "\nMore activity after the checkpoint:";
  Durable.update replica "price" (Operation.Set "$8.99");
  Node.update peer "promo" (Operation.Set "SAVE10");
  (match Durable.pull_from replica ~source:peer with
  | Node.Pulled { copied; _ } ->
    Printf.printf "  pulled %d item(s) from the peer (journaled too)\n"
      (List.length copied)
  | Node.Already_current -> ());
  (* The peer also pulls OUR post-checkpoint update: it now holds log
     records naming our sequence numbers. *)
  ignore (Node.pull ~recipient:peer ~source:(Durable.node replica) ());
  Printf.printf "  journal: %d records\n" (Durable.journal_records replica);

  print_endline "\n*** CRASH *** (process dies; only the disk survives)";
  Durable.close replica;

  print_endline "\nRecovery: load checkpoint, replay journal:";
  let recovered, replay =
    match Durable.open_or_create ~dir ~id:0 ~n:2 () with
    | Ok v -> v
    | Error msg -> failwith msg
  in
  Printf.printf "  replayed %d journal record(s)%s\n" replay.Edb_persist.Wal.records
    (if replay.Edb_persist.Wal.torn_tail then " (torn tail discarded)" else "");
  Printf.printf "  price     = %S\n"
    (Option.value ~default:"" (Node.read (Durable.node recovered) "price"));
  Printf.printf "  promo     = %S (remote data recovered from the journal)\n"
    (Option.value ~default:"" (Node.read (Durable.node recovered) "promo"));
  Printf.printf "  inventory = %S (from the checkpoint)\n"
    (Option.value ~default:"" (Node.read (Durable.node recovered) "inventory"));

  print_endline "\nThe peer re-syncs with the recovered replica - no conflicts:";
  (match Node.pull ~recipient:peer ~source:(Durable.node recovered) () with
  | Node.Already_current ->
    print_endline "  already current: recovery reproduced the exact pre-crash state"
  | Node.Pulled { conflicts; _ } ->
    Printf.printf "  pulled with %d conflict(s)\n" conflicts);

  Durable.close recovered;
  clean ()

(* Tests for the persistence layer: the binary codec, snapshot
   round-trips, corruption rejection, and crash-recovery semantics. *)

module Codec = Edb_persist.Codec
module Snapshot = Edb_persist.Snapshot
module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

(* ---------- Codec ---------- *)

let test_codec_roundtrip_scalars () =
  let w = Codec.Writer.create () in
  Codec.Writer.int w 42;
  Codec.Writer.int w (-7);
  Codec.Writer.int w max_int;
  Codec.Writer.string w "hello";
  Codec.Writer.string w "";
  Codec.Writer.bool w true;
  Codec.Writer.bool w false;
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check int) "int" 42 (Codec.Reader.int r);
  Alcotest.(check int) "negative int" (-7) (Codec.Reader.int r);
  Alcotest.(check int) "max_int" max_int (Codec.Reader.int r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check string) "empty string" "" (Codec.Reader.string r);
  Alcotest.(check bool) "true" true (Codec.Reader.bool r);
  Alcotest.(check bool) "false" false (Codec.Reader.bool r);
  Codec.Reader.expect_end r

let test_codec_roundtrip_containers () =
  let w = Codec.Writer.create () in
  Codec.Writer.list w Codec.Writer.int [ 1; 2; 3 ];
  Codec.Writer.array w Codec.Writer.string [| "a"; "bb" |];
  Codec.Writer.list w Codec.Writer.int [];
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.Reader.list r Codec.Reader.int);
  Alcotest.(check (array string)) "array" [| "a"; "bb" |]
    (Codec.Reader.array r Codec.Reader.string);
  Alcotest.(check (list int)) "empty list" [] (Codec.Reader.list r Codec.Reader.int);
  Codec.Reader.expect_end r

let expect_corrupt f =
  match f () with
  | exception Codec.Reader.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_codec_rejects_bit_flip () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "important data";
  let blob = Bytes.of_string (Codec.Writer.contents w) in
  Bytes.set blob 10 (Char.chr (Char.code (Bytes.get blob 10) lxor 0x40));
  expect_corrupt (fun () -> Codec.Reader.create (Bytes.to_string blob))

let test_codec_rejects_truncation () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "important data";
  let blob = Codec.Writer.contents w in
  expect_corrupt (fun () ->
      Codec.Reader.create (String.sub blob 0 (String.length blob - 3)))

let test_codec_rejects_short_read_past_end () =
  let w = Codec.Writer.create () in
  Codec.Writer.int w 1;
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  let (_ : int) = Codec.Reader.int r in
  expect_corrupt (fun () -> Codec.Reader.int r)

let test_codec_expect_end_catches_garbage () =
  let w = Codec.Writer.create () in
  Codec.Writer.int w 1;
  Codec.Writer.int w 2;
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  let (_ : int) = Codec.Reader.int r in
  expect_corrupt (fun () -> Codec.Reader.expect_end r)

(* Property: any int/string script round-trips. *)
let prop_codec_roundtrip =
  QCheck2.Gen.(
    let field = oneof [ map (fun i -> `Int i) int; map (fun s -> `Str s) string_small ] in
    QCheck2.Test.make ~name:"codec roundtrips arbitrary scripts" ~count:300 (list field)
      (fun script ->
        let w = Codec.Writer.create () in
        List.iter
          (function `Int i -> Codec.Writer.int w i | `Str s -> Codec.Writer.string w s)
          script;
        let r = Codec.Reader.create (Codec.Writer.contents w) in
        let ok =
          List.for_all
            (function
              | `Int i -> Codec.Reader.int r = i
              | `Str s -> String.equal (Codec.Reader.string r) s)
            script
        in
        Codec.Reader.expect_end r;
        ok))

(* ---------- Node state round-trip ---------- *)

(* A node with every kind of state: regular items, logs from several
   origins, an auxiliary copy with pending deferred updates. *)
let busy_node () =
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  Node.update b "shared" (set "b1");
  Node.update b "b-only" (set "b2");
  let (_ : Node.pull_result) = Node.pull ~recipient:a ~source:b () in
  Node.update a "shared" (set "a1");
  Node.update a "a-only" (Operation.Splice { offset = 1; data = "XY" });
  (* Auxiliary state: fetch a newer copy of an item out of bound and
     defer two updates on it. *)
  Node.update b "hot" (set "h1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:a ~source:b "hot" in
  Node.update a "hot" (set "h2");
  Node.update a "hot" (set "h3");
  a

(* [Node.export_state] is canonical (per-shard, item lists in sorted
   name order), so structural equality is state equivalence. *)
let nodes_equivalent x y = Node.export_state x = Node.export_state y

let test_snapshot_roundtrip () =
  let original = busy_node () in
  match Snapshot.decode (Snapshot.encode original) with
  | Error msg -> Alcotest.fail msg
  | Ok restored ->
    Alcotest.(check bool) "states equivalent" true (nodes_equivalent original restored);
    (match Node.check_invariants restored with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("restored node invalid: " ^ msg));
    Alcotest.(check (option string)) "reads aux value" (Some "h3")
      (Node.read restored "hot");
    Alcotest.(check bool) "aux copy restored" true (Node.has_aux restored "hot");
    Alcotest.(check int) "aux log restored" 2
      (Edb_log.Aux_log.length (Node.aux_log restored))

let test_snapshot_rejects_corruption () =
  let blob = Bytes.of_string (Snapshot.encode (busy_node ())) in
  Bytes.set blob 40 (Char.chr (Char.code (Bytes.get blob 40) lxor 1));
  match Snapshot.decode (Bytes.to_string blob) with
  | Error msg ->
    Alcotest.(check bool) "mentions corruption" true
      (Astring.String.is_infix ~affix:"corrupt" msg)
  | Ok _ -> Alcotest.fail "corrupted snapshot must not load"

let test_snapshot_rejects_wrong_magic () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "NOTASNAP";
  match Snapshot.decode (Codec.Writer.contents w) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must not load"

let test_snapshot_file_roundtrip () =
  let path = Filename.temp_file "edb-snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let original = busy_node () in
      Snapshot.save original ~path;
      match Snapshot.load ~path () with
      | Ok restored ->
        Alcotest.(check bool) "file round-trip" true (nodes_equivalent original restored)
      | Error msg -> Alcotest.fail msg)

let test_snapshot_load_missing_file () =
  match Snapshot.load ~path:"/nonexistent/edb.snap" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must not load"

(* Crash-recovery semantics: a node restored from a checkpoint taken
   before some remote updates looks like a disconnected node, and plain
   anti-entropy brings it up to date. *)
let test_recovered_node_rejoins_epidemic () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "v1");
  Node.sync_pair a b;
  let checkpoint = Snapshot.encode b in
  (* After the checkpoint, more updates happen elsewhere. *)
  Node.update a "x" (set "v2");
  Node.update a "y" (set "w1");
  (* b crashes and recovers from its checkpoint. *)
  let b' =
    match Snapshot.decode checkpoint with
    | Ok node -> node
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (option string)) "recovered at checkpoint state" (Some "v1")
    (Node.read b' "x");
  (match Node.pull ~recipient:b' ~source:a () with
  | Node.Pulled { copied; conflicts; _ } ->
    Alcotest.(check int) "no conflicts on rejoin" 0 conflicts;
    Alcotest.(check int) "caught up both items" 2 (List.length copied)
  | Node.Already_current -> Alcotest.fail "recovered node must be behind");
  Alcotest.(check (option string)) "x current" (Some "v2") (Node.read b' "x");
  Alcotest.(check (option string)) "y current" (Some "w1") (Node.read b' "y");
  Alcotest.(check bool) "dbvvs equal" true (Vv.equal (Node.dbvv a) (Node.dbvv b'))

(* A recovered node can also serve as a propagation source again: its
   restored log vector still carries forwardable records. *)
let test_recovered_node_forwards () =
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  let c = Node.create ~id:2 ~n:3 () in
  Node.update a "x" (set "v");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  let b' =
    match Snapshot.decode (Snapshot.encode b) with
    | Ok node -> node
    | Error msg -> Alcotest.fail msg
  in
  (match Node.pull ~recipient:c ~source:b' () with
  | Node.Pulled { copied; _ } -> Alcotest.(check int) "forwarded" 1 (List.length copied)
  | Node.Already_current -> Alcotest.fail "c is behind");
  Alcotest.(check (option string)) "c got it via restored b" (Some "v") (Node.read c "x")

(* Property: export/import round-trips after arbitrary single-writer
   scripts. *)
let prop_state_roundtrip =
  QCheck2.Gen.(
    let action = pair (int_bound 3) (int_bound 5) in
    QCheck2.Test.make ~name:"export/import identity after random runs" ~count:150
      (list_size (int_range 0 40) action)
      (fun script ->
        let cluster = Cluster.create ~seed:31 ~n:3 () in
        List.iter
          (fun (kind, rank) ->
            let item = Printf.sprintf "i%d" rank in
            match kind with
            | 0 | 1 ->
              Cluster.update cluster ~node:(rank mod 3) ~item
                (set (Printf.sprintf "v%d" rank))
            | 2 -> ignore (Cluster.pull cluster ~recipient:0 ~source:1)
            | _ -> ignore (Cluster.pull cluster ~recipient:1 ~source:0))
          script;
        let node = Cluster.node cluster 0 in
        match Snapshot.decode (Snapshot.encode node) with
        | Ok restored ->
          nodes_equivalent node restored && Node.check_invariants restored = Ok ()
        | Error _ -> false))

(* Fuzz: random mutations of a valid snapshot never crash the decoder —
   they either load (mutation hit a don't-care byte and still passed the
   checksum, practically impossible) or return a clean [Error]. *)
let prop_decoder_never_crashes =
  QCheck2.Gen.(
    let gen = pair (int_bound 10_000) (int_bound 255) in
    QCheck2.Test.make ~name:"snapshot decoder survives fuzzing" ~count:300 gen
      (fun (position, byte) ->
        let blob = Bytes.of_string (Snapshot.encode (busy_node ())) in
        let position = position mod Bytes.length blob in
        Bytes.set blob position (Char.chr byte);
        match Snapshot.decode (Bytes.to_string blob) with
        | Ok _ | Error _ -> true))

(* Fuzz: arbitrary garbage is always rejected cleanly. *)
let prop_decoder_rejects_garbage =
  QCheck2.Test.make ~name:"snapshot decoder rejects garbage" ~count:300
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun garbage ->
      match Snapshot.decode garbage with
      | Error _ -> true
      | Ok _ -> (* vanishingly unlikely; would mean a forged checksum *) false)

let suite =
  [
    Alcotest.test_case "codec scalars" `Quick test_codec_roundtrip_scalars;
    QCheck_alcotest.to_alcotest prop_decoder_never_crashes;
    QCheck_alcotest.to_alcotest prop_decoder_rejects_garbage;
    Alcotest.test_case "codec containers" `Quick test_codec_roundtrip_containers;
    Alcotest.test_case "codec rejects bit flip" `Quick test_codec_rejects_bit_flip;
    Alcotest.test_case "codec rejects truncation" `Quick test_codec_rejects_truncation;
    Alcotest.test_case "codec rejects read past end" `Quick
      test_codec_rejects_short_read_past_end;
    Alcotest.test_case "codec expect_end" `Quick test_codec_expect_end_catches_garbage;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot rejects corruption" `Quick
      test_snapshot_rejects_corruption;
    Alcotest.test_case "snapshot rejects wrong magic" `Quick
      test_snapshot_rejects_wrong_magic;
    Alcotest.test_case "snapshot file round-trip" `Quick test_snapshot_file_roundtrip;
    Alcotest.test_case "snapshot missing file" `Quick test_snapshot_load_missing_file;
    Alcotest.test_case "recovered node rejoins epidemic" `Quick
      test_recovered_node_rejoins_epidemic;
    Alcotest.test_case "recovered node forwards" `Quick test_recovered_node_forwards;
    QCheck_alcotest.to_alcotest prop_state_roundtrip;
  ]

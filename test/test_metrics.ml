(* Tests for counters and table rendering. *)

module Counters = Edb_metrics.Counters
module Table = Edb_metrics.Table

let test_create_zero () =
  let c = Counters.create () in
  Alcotest.(check int) "total work zero" 0 (Counters.total_work c);
  Alcotest.(check int) "messages zero" 0 c.messages

let test_add_into () =
  let a = Counters.create () and b = Counters.create () in
  a.vv_comparisons <- 3;
  b.vv_comparisons <- 4;
  b.items_copied <- 2;
  Counters.add_into a b;
  Alcotest.(check int) "summed comparisons" 7 a.vv_comparisons;
  Alcotest.(check int) "summed copies" 2 a.items_copied;
  Alcotest.(check int) "b untouched" 4 b.vv_comparisons

let test_diff () =
  let before = Counters.create () in
  before.messages <- 5;
  let after = Counters.copy before in
  after.messages <- 9;
  after.bytes_sent <- 100;
  let d = Counters.diff ~after ~before in
  Alcotest.(check int) "message delta" 4 d.messages;
  Alcotest.(check int) "bytes delta" 100 d.bytes_sent

let test_copy_independent () =
  let a = Counters.create () in
  let b = Counters.copy a in
  b.messages <- 1;
  Alcotest.(check int) "original unchanged" 0 a.messages

let test_reset () =
  let c = Counters.create () in
  c.vv_comparisons <- 10;
  c.oob_copies <- 3;
  Counters.reset c;
  Alcotest.(check int) "comparisons cleared" 0 c.vv_comparisons;
  Alcotest.(check int) "oob cleared" 0 c.oob_copies

let test_total_work () =
  let c = Counters.create () in
  c.vv_comparisons <- 1;
  c.items_examined <- 2;
  c.log_records_examined <- 3;
  c.items_copied <- 4;
  c.messages <- 100;
  Alcotest.(check int) "work excludes messages" 10 (Counters.total_work c)

let test_pp_omits_zero_fields () =
  let c = Counters.create () in
  c.messages <- 2;
  let rendered = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check bool) "mentions messages" true
    (Astring.String.is_infix ~affix:"messages" rendered);
  Alcotest.(check bool) "omits zero fields" false
    (Astring.String.is_infix ~affix:"oob_copies" rendered)

let test_table_rendering () =
  let t = Table.create ~title:"T" ~columns:[ "k"; "a"; "b" ] in
  Table.add_row t [ "row1"; "1"; "22" ];
  Table.add_int_row t ~label:"row2" [ 333; 4 ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | title :: header :: rule :: row1 :: row2 :: _ ->
    Alcotest.(check string) "title line" "T" title;
    Alcotest.(check bool) "header has columns" true
      (Astring.String.is_infix ~affix:"a" header);
    Alcotest.(check bool) "rule present" true (Astring.String.is_infix ~affix:"--" rule);
    Alcotest.(check bool) "row1 present" true (Astring.String.is_infix ~affix:"row1" row1);
    Alcotest.(check bool) "row2 values" true (Astring.String.is_infix ~affix:"333" row2)
  | _ -> Alcotest.fail "unexpected table layout");
  (* All data lines align to the same width. *)
  let data_lines =
    List.filter (fun l -> String.length l > 0 && l <> List.nth lines 0) lines
  in
  match data_lines with
  | first :: rest ->
    List.iter
      (fun l -> Alcotest.(check int) "aligned widths" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no data lines"

(* The dangling-total guard: [Counters.fields] must enumerate every
   counter in the record, in declaration order, with getters that each
   read their own field — and [add_into]/[diff] must cover the same
   set. All counter fields are immediate ints, so the record's runtime
   block size is exactly the field count; a counter added to the record
   but left out of [fields] (or of the arithmetic) fails here. *)
let test_fields_enumerate_every_counter () =
  let c = Counters.create () in
  Alcotest.(check int) "fields covers the whole record"
    (Obj.size (Obj.repr c))
    (List.length Counters.fields);
  Alcotest.(check int) "field names unique"
    (List.length Counters.field_names)
    (List.length (List.sort_uniq compare Counters.field_names));
  List.iter
    (fun (name, get) -> Alcotest.(check int) (name ^ " zero at create") 0 (get c))
    Counters.fields;
  (* Give field i the distinct value 100 + i and check each getter
     reads its own slot: [fields] is in declaration order and no getter
     aliases another field. *)
  List.iteri (fun i _ -> Obj.set_field (Obj.repr c) i (Obj.repr (100 + i))) Counters.fields;
  List.iteri
    (fun i (name, get) ->
      Alcotest.(check int) (name ^ " getter reads its own field") (100 + i) (get c))
    Counters.fields;
  let sum = Counters.create () in
  Counters.add_into sum c;
  List.iteri
    (fun i (name, get) ->
      Alcotest.(check int) (name ^ " summed by add_into") (100 + i) (get sum))
    Counters.fields;
  let d = Counters.diff ~after:c ~before:(Counters.create ()) in
  List.iteri
    (fun i (name, get) ->
      Alcotest.(check int) (name ^ " carried by diff") (100 + i) (get d))
    Counters.fields;
  Counters.reset c;
  List.iter
    (fun (name, get) -> Alcotest.(check int) (name ^ " cleared by reset") 0 (get c))
    Counters.fields

let test_table_rejects_ragged_rows () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table.add_row: cell count does not match column count") (fun () ->
      Table.add_row t [ "only-one" ])

(* ---------- Histogram ---------- *)

module Histogram = Edb_metrics.Histogram

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Histogram.mean h);
  Alcotest.(check string) "summary" "empty" (Histogram.summary h);
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Histogram.percentile h 50.0))

let test_histogram_stats () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Histogram.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0 (Histogram.percentile h 0.0)

let test_histogram_add_after_query () =
  let h = Histogram.create () in
  Histogram.add h 1.0;
  Alcotest.(check (float 1e-9)) "first max" 1.0 (Histogram.max_value h);
  Histogram.add h 9.0;
  (* The sorted cache must be invalidated. *)
  Alcotest.(check (float 1e-9)) "new max" 9.0 (Histogram.max_value h)

let test_histogram_percentile_range () =
  let h = Histogram.create () in
  Histogram.add h 1.0;
  Alcotest.check_raises "p>100" (Invalid_argument "Histogram.percentile: p out of range")
    (fun () -> ignore (Histogram.percentile h 101.0))

let suite =
  [
    Alcotest.test_case "create zero" `Quick test_create_zero;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
    Alcotest.test_case "histogram add after query" `Quick test_histogram_add_after_query;
    Alcotest.test_case "histogram percentile range" `Quick
      test_histogram_percentile_range;
    Alcotest.test_case "add_into" `Quick test_add_into;
    Alcotest.test_case "diff" `Quick test_diff;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "total_work" `Quick test_total_work;
    Alcotest.test_case "pp omits zero fields" `Quick test_pp_omits_zero_fields;
    Alcotest.test_case "fields enumerate every counter" `Quick
      test_fields_enumerate_every_counter;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table rejects ragged rows" `Quick test_table_rejects_ragged_rows;
  ]

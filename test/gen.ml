(* Shared QCheck2 generators for the whole test suite, so property
   tests across files agree on what "an arbitrary workload" means
   instead of each keeping its own ad-hoc copy. *)

module Operation = Edb_store.Operation

(* An arbitrary update operation: mostly whole-value sets, occasionally
   a byte-range splice (§4.4). *)
let operation =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun k -> Operation.Set (Printf.sprintf "v%d" k)) (int_bound 99));
        ( 1,
          map2
            (fun offset k -> Operation.Splice { offset; data = Printf.sprintf "s%d" k })
            (int_bound 8) (int_bound 9) );
      ])

(* ---------- Single-writer cluster scripts (test_convergence) ---------- *)

(* A scripted run over an in-process cluster whose items are owned by a
   single writer each (ownership = rank mod n), so no conflicts can
   arise and convergence must be exact. *)
type action =
  | Update of { owner_choice : int; item_rank : int }
  | Pull of { recipient : int; source : int }
  | Oob of { recipient : int; source : int; item_rank : int }

let actions ~nodes ~items =
  QCheck2.Gen.(
    let action =
      frequency
        [
          ( 4,
            map2
              (fun o r -> Update { owner_choice = o; item_rank = r })
              (int_bound 1000)
              (int_bound (items - 1)) );
          ( 4,
            map2
              (fun a b -> Pull { recipient = a mod nodes; source = b mod nodes })
              (int_bound 1000) (int_bound 1000) );
          ( 1,
            map3
              (fun a b r ->
                Oob { recipient = a mod nodes; source = b mod nodes; item_rank = r })
              (int_bound 1000) (int_bound 1000)
              (int_bound (items - 1)) );
        ]
    in
    list_size (int_range 0 120) action)

(* ---------- Log-structure scripts (test_log) ---------- *)

(* Item ids to add to one log component with increasing seq. *)
let item_script = QCheck2.Gen.(list_size (int_range 0 60) (int_bound 9))

(* Append/remove-earliest interleavings over a small item universe, for
   the auxiliary-log FIFO model. *)
let aux_script = QCheck2.Gen.(list (pair bool (int_bound 4)))

(* ---------- Whole simulation schedules (lib/check) ---------- *)

let schedule = Edb_check.Explorer.gen

(* ---------- Scenarios (test_scenario) ---------- *)

module Scenario = Edb_scenario.Scenario

(* An arbitrary {e valid} scenario, for the print/parse round-trip
   property. Floats are drawn on eighth-steps so every generated value
   is binary-exact (validity constraints like [until <= duration]
   survive the trip regardless — %.17g round-trips any float — but
   exact values keep counterexamples readable). Names exercise the JSON
   string escaper: quotes, backslashes, newlines, control bytes. *)
let scenario =
  QCheck2.Gen.(
    let eighth lo hi =
      map (fun i -> float_of_int i /. 8.0) (int_range (lo * 8) (hi * 8))
    in
    let prob = map (fun i -> float_of_int i /. 16.0) (int_range 0 16) in
    let name_char =
      frequency
        [ (8, char_range 'a' 'z'); (2, char_range '0' '9');
          (1, oneofl [ '"'; '\\'; '\n'; '\t'; '\r'; ' '; '-'; '\001'; '\127' ]) ]
    in
    let text = string_size ~gen:name_char (int_range 0 24) in
    (* [validate] rejects an empty name. *)
    let nonempty_text = string_size ~gen:name_char (int_range 1 24) in
    let* nodes = int_range 2 12 in
    let* shards = int_range 1 4 in
    let* items = int_range 1 64 in
    let* duration = eighth 1 20 in
    let phase =
      (* Cut [0, duration] at two grid points: a well-formed window. *)
      let* a = int_range 0 ((int_of_float (duration *. 8.0)) - 1) in
      let* b = int_range (a + 1) (int_of_float (duration *. 8.0)) in
      let* rate = eighth 0 4 in
      return { Scenario.from_ = float_of_int a /. 8.0;
               until = float_of_int b /. 8.0; rate }
    in
    let scripted =
      let* at = eighth 0 (int_of_float duration) in
      let* node = int_range 0 (nodes - 1) in
      let* item = int_range 0 (items - 1) in
      let* seq = int_range 1 9 in
      return { Scenario.at = Float.min at duration; node; item; seq }
    in
    let* arrival =
      oneof
        [
          map (fun ps -> Scenario.Phases ps) (list_size (int_range 1 3) phase);
          map (fun ss -> Scenario.Script ss) (list_size (int_range 0 8) scripted);
        ]
    in
    let fault =
      let* at = eighth 0 30 in
      let* node = int_range 0 (nodes - 1) in
      let* other = int_range 0 (nodes - 2) in
      let pair_b = if other >= node then other + 1 else other in
      let* p = prob in
      oneofl
        [
          Scenario.Crash { at; node };
          Scenario.Recover { at; node };
          Scenario.Partition { at; a = node; b = pair_b };
          Scenario.Heal { at; a = node; b = pair_b };
          Scenario.Loss { at; p };
          Scenario.Duplication { at; p };
        ]
    in
    let* faults = list_size (int_range 0 4) fault in
    let* transport =
      oneof
        [
          return Scenario.Session;
          (let* timeout = eighth 1 8 in
           let* backoff_base = eighth 0 2 in
           let* factor_step = int_range 8 24 in
           let* backoff_max = eighth 2 10 in
           let* jitter = eighth 0 2 in
           let* max_retries = int_range 0 5 in
           return
             (Scenario.Message
                {
                  Scenario.timeout;
                  backoff_base;
                  backoff_factor = float_of_int factor_step /. 8.0;
                  backoff_max = Float.max backoff_max backoff_base;
                  jitter;
                  max_retries;
                }));
        ]
    in
    let* push =
      match transport with
      | Scenario.Session -> return None
      | Scenario.Message _ ->
        oneof
          [
            return None;
            (let* capacity = int_range 1 128 in
             let* drop = oneofl [ Scenario.Drop_oldest; Scenario.Drop_newest ] in
             let* flush_period = eighth 1 8 in
             return (Some { Scenario.capacity; drop; flush_period }));
          ]
    in
    let* name = nonempty_text and* description = text in
    let* value_size = int_range 1 128 in
    let* zipf = eighth 0 2 in
    let* single_writer = bool and* cache = bool in
    let* driver = int_bound 9999 and* engine = int_bound 9999
    and* workload = int_bound 9999 in
    let* topology = oneofl [ Scenario.Random; Scenario.Ring ] in
    let* period = eighth 1 8 in
    let* first_at = eighth 0 8 in
    let* latency = eighth 0 4 in
    let* loss = prob and* duplication = prob in
    let* tick = eighth 1 8 in
    let* until_converged = bool in
    let* headroom = eighth 0 100 in
    return
      {
        Scenario.name;
        description;
        nodes;
        shards;
        items;
        value_size;
        zipf;
        single_writer;
        cache;
        seeds = { Scenario.driver; engine; workload };
        topology;
        period;
        first_at;
        latency;
        loss;
        duplication;
        transport;
        push;
        arrival;
        faults;
        churn = None;
        duration;
        tick;
        until_converged;
        deadline = duration +. headroom;
      })

(* Shared QCheck2 generators for the whole test suite, so property
   tests across files agree on what "an arbitrary workload" means
   instead of each keeping its own ad-hoc copy. *)

module Operation = Edb_store.Operation

(* An arbitrary update operation: mostly whole-value sets, occasionally
   a byte-range splice (§4.4). *)
let operation =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun k -> Operation.Set (Printf.sprintf "v%d" k)) (int_bound 99));
        ( 1,
          map2
            (fun offset k -> Operation.Splice { offset; data = Printf.sprintf "s%d" k })
            (int_bound 8) (int_bound 9) );
      ])

(* ---------- Single-writer cluster scripts (test_convergence) ---------- *)

(* A scripted run over an in-process cluster whose items are owned by a
   single writer each (ownership = rank mod n), so no conflicts can
   arise and convergence must be exact. *)
type action =
  | Update of { owner_choice : int; item_rank : int }
  | Pull of { recipient : int; source : int }
  | Oob of { recipient : int; source : int; item_rank : int }

let actions ~nodes ~items =
  QCheck2.Gen.(
    let action =
      frequency
        [
          ( 4,
            map2
              (fun o r -> Update { owner_choice = o; item_rank = r })
              (int_bound 1000)
              (int_bound (items - 1)) );
          ( 4,
            map2
              (fun a b -> Pull { recipient = a mod nodes; source = b mod nodes })
              (int_bound 1000) (int_bound 1000) );
          ( 1,
            map3
              (fun a b r ->
                Oob { recipient = a mod nodes; source = b mod nodes; item_rank = r })
              (int_bound 1000) (int_bound 1000)
              (int_bound (items - 1)) );
        ]
    in
    list_size (int_range 0 120) action)

(* ---------- Log-structure scripts (test_log) ---------- *)

(* Item ids to add to one log component with increasing seq. *)
let item_script = QCheck2.Gen.(list_size (int_range 0 60) (int_bound 9))

(* Append/remove-earliest interleavings over a small item universe, for
   the auxiliary-log FIFO model. *)
let aux_script = QCheck2.Gen.(list (pair bool (int_bound 4)))

(* ---------- Whole simulation schedules (lib/check) ---------- *)

let schedule = Edb_check.Explorer.gen

(* Tests for the wire-message byte model (paper §6's "constant amount of
   information per data item" depends on these sizes). *)

module Message = Edb_core.Message
module Vv = Edb_vv.Version_vector
module Operation = Edb_store.Operation

let vv l = Vv.of_array (Array.of_list l)

let whole name value ivv = { Message.name; payload = Message.Whole value; ivv }

let test_vv_bytes () =
  Alcotest.(check int) "8 bytes per component" 24 (Message.vv_bytes (vv [ 1; 2; 3 ]))

let test_request_bytes () =
  let request = { Message.recipient = 0; recipient_dbvv = vv [ 0; 0 ]; recipient_shard_dbvvs = [||] } in
  Alcotest.(check int) "id + vv" (8 + 16) (Message.request_bytes request)

let test_you_are_current_bytes () =
  Alcotest.(check int) "constant" 8 (Message.reply_bytes Message.You_are_current)

let test_propagate_bytes_scale_with_content () =
  let item = whole "x" "0123456789" (vv [ 1; 0 ]) in
  let reply =
    Message.Propagate
      {
        tails = [| [ { Edb_log.Log_record.item = "x"; seq = 1 } ]; [] |];
        items = [ item ];
      }
  in
  (* 8 header + 16 record + (8 name + 10 value + 16 ivv). *)
  Alcotest.(check int) "accounted exactly" (8 + 16 + 8 + 10 + 16)
    (Message.reply_bytes reply)

let test_delta_payload_bytes () =
  let ops =
    [
      { Message.origin = 0; seq = 1; op = Operation.Set "abcd" };
      { Message.origin = 1; seq = 2; op = Operation.Splice { offset = 0; data = "xy" } };
    ]
  in
  let item = { Message.name = "x"; payload = Message.Delta ops; ivv = vv [ 1; 1 ] } in
  let reply = Message.Propagate { tails = [| []; [] |]; items = [ item ] } in
  (* 8 header + 8 name + 16 ivv + (16 + 4) + (16 + 8 + 2). *)
  Alcotest.(check int) "delta ops accounted" (8 + 8 + 16 + 20 + 26)
    (Message.reply_bytes reply)

let test_oob_bytes () =
  let request = { Message.item = "anything" } in
  Alcotest.(check int) "oob request constant" 16 (Message.oob_request_bytes request);
  let reply = { Message.item = "x"; value = "12345"; ivv = vv [ 0; 1 ] } in
  Alcotest.(check int) "oob reply" (8 + 5 + 16) (Message.oob_reply_bytes reply)

let test_whole_value_accessor () =
  Alcotest.(check (option string)) "whole" (Some "v")
    (Message.whole_value (whole "x" "v" (vv [ 0 ])));
  let delta = { Message.name = "x"; payload = Message.Delta []; ivv = vv [ 0 ] } in
  Alcotest.(check (option string)) "delta has no whole value" None
    (Message.whole_value delta)

let suite =
  [
    Alcotest.test_case "vv bytes" `Quick test_vv_bytes;
    Alcotest.test_case "request bytes" `Quick test_request_bytes;
    Alcotest.test_case "you-are-current bytes" `Quick test_you_are_current_bytes;
    Alcotest.test_case "propagate bytes exact" `Quick test_propagate_bytes_scale_with_content;
    Alcotest.test_case "delta payload bytes" `Quick test_delta_payload_bytes;
    Alcotest.test_case "oob bytes" `Quick test_oob_bytes;
    Alcotest.test_case "whole_value accessor" `Quick test_whole_value_accessor;
  ]

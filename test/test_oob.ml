(* Tests for out-of-bound copying (§5.2), auxiliary data structures
   (§4.3–4.4), and IntraNodePropagation (Fig. 4). *)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Conflict = Edb_core.Conflict
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

let expect_ok node =
  match Node.check_invariants node with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let check_vv msg expected actual =
  Alcotest.(check (array int)) msg expected (Vv.to_array actual)

let make_pair () = (Node.create ~id:0 ~n:2 (), Node.create ~id:1 ~n:2 ())

let test_oob_fetch_creates_aux () =
  let a, b = make_pair () in
  Node.update a "x" (set "hot");
  (match Node.fetch_out_of_bound ~recipient:b ~source:a "x" with
  | `Adopted -> ()
  | `Already_current | `Conflict -> Alcotest.fail "expected adoption");
  Alcotest.(check bool) "aux copy exists" true (Node.has_aux b "x");
  Alcotest.(check (option string)) "user sees the fresh value" (Some "hot")
    (Node.read b "x");
  (* Regular structures untouched: DBVV still zero, regular copy stale. *)
  check_vv "dbvv unchanged" [| 0; 0 |] (Node.dbvv b);
  Alcotest.(check (option string)) "regular copy still old" (Some "")
    (Node.read_regular b "x");
  expect_ok b

let test_oob_fetch_when_current () =
  let a, b = make_pair () in
  Node.update a "x" (set "v");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  (match Node.fetch_out_of_bound ~recipient:b ~source:a "x" with
  | `Already_current -> ()
  | `Adopted | `Conflict -> Alcotest.fail "already current");
  Alcotest.(check bool) "no aux created" false (Node.has_aux b "x")

let test_oob_fetch_older_ignored () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Node.update b "x" (set "v2");
  (* a now has the older copy; fetching from it must change nothing. *)
  (match Node.fetch_out_of_bound ~recipient:b ~source:a "x" with
  | `Already_current -> ()
  | `Adopted | `Conflict -> Alcotest.fail "received copy is older");
  Alcotest.(check (option string)) "value kept" (Some "v2") (Node.read b "x")

let test_update_goes_to_aux () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Node.update b "x" (set "v2");
  Alcotest.(check (option string)) "aux value updated" (Some "v2") (Node.read b "x");
  (* Regular structures still untouched (§5.3 first case). *)
  check_vv "dbvv unchanged" [| 0; 0 |] (Node.dbvv b);
  Alcotest.(check int) "one aux record" 1 (Edb_log.Aux_log.length (Node.aux_log b));
  (match Node.aux_vv b "x" with
  | Some ivv -> check_vv "aux ivv bumped" [| 1; 1 |] ivv
  | None -> Alcotest.fail "aux should exist");
  expect_ok b

let test_oob_serve_prefers_aux () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Node.update b "x" (set "v2-aux");
  (* Serving from b must return the auxiliary copy, which is newer than
     b's regular copy. *)
  let reply = Node.serve_out_of_bound b { Message.item = "x" } in
  Alcotest.(check string) "aux value served" "v2-aux" reply.Message.value;
  check_vv "aux ivv served" [| 1; 1 |] reply.Message.ivv

let test_aux_discarded_when_no_pending_updates () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Alcotest.(check bool) "aux exists" true (Node.has_aux b "x");
  (* Normal propagation copies x; the regular copy catches up with the
     auxiliary copy, which is then discarded (Fig. 4 last comparison). *)
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Alcotest.(check bool) "aux discarded" false (Node.has_aux b "x");
  Alcotest.(check (option string)) "regular has the value" (Some "v1")
    (Node.read_regular b "x");
  expect_ok b

let test_intra_node_replay () =
  (* Full §5 life cycle: OOB fetch, two deferred updates, catch-up via
     regular propagation, replay, aux discard, propagation back. *)
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Node.update b "x" (set "v2");
  Node.update b "x" (set "v3");
  Alcotest.(check int) "two deferred updates" 2 (Edb_log.Aux_log.length (Node.aux_log b));
  (* Regular propagation brings a's copy of x; intra-node propagation
     replays the deferred updates on top of it. *)
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Alcotest.(check bool) "aux discarded after replay" false (Node.has_aux b "x");
  Alcotest.(check int) "aux log drained" 0 (Edb_log.Aux_log.length (Node.aux_log b));
  Alcotest.(check (option string)) "regular value is replayed v3" (Some "v3")
    (Node.read_regular b "x");
  (match Node.item_vv b "x" with
  | Some ivv -> check_vv "regular ivv" [| 1; 2 |] ivv
  | None -> Alcotest.fail "item must exist");
  check_vv "dbvv" [| 1; 2 |] (Node.dbvv b);
  Alcotest.(check int) "two replays counted" 2 (Node.counters b).aux_replays;
  expect_ok b;
  (* The replayed updates are ordinary updates now: a can pull them. *)
  (match Node.pull ~recipient:a ~source:b () with
  | Node.Pulled { copied; _ } -> Alcotest.(check (list string)) "x travels back" [ "x" ] copied
  | Node.Already_current -> Alcotest.fail "expected propagation");
  Alcotest.(check (option string)) "a converged" (Some "v3") (Node.read a "x");
  Alcotest.(check bool) "dbvvs equal" true (Vv.equal (Node.dbvv a) (Node.dbvv b));
  expect_ok a

let test_oob_never_reduces_propagation_work () =
  (* §5.1: "out-of-bound copying never reduces the amount of work done
     during update propagation" — x is copied again even though b
     already fetched it out of bound. *)
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled { copied; _ } ->
    Alcotest.(check (list string)) "x copied regardless" [ "x" ] copied
  | Node.Already_current -> Alcotest.fail "regular copy is still stale"

let test_oob_overwrite_keeps_aux_log () =
  (* A second, fresher OOB copy overwrites the aux copy without touching
     the aux log (§5.2 last paragraph). Reachable when the first fetch
     carried no pending local updates. *)
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  let c = Node.create ~id:2 ~n:3 () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:c ~source:a "x" in
  (* a's copy advances (b pulls it, updates, a pulls back). *)
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Node.update b "x" (set "v2");
  let (_ : Node.pull_result) = Node.pull ~recipient:a ~source:b () in
  (* Fresher OOB fetch: replaces the aux copy. *)
  (match Node.fetch_out_of_bound ~recipient:c ~source:a "x" with
  | `Adopted -> ()
  | `Already_current | `Conflict -> Alcotest.fail "expected adoption");
  Alcotest.(check (option string)) "newest value visible" (Some "v2") (Node.read c "x");
  Alcotest.(check int) "aux log untouched" 0 (Edb_log.Aux_log.length (Node.aux_log c));
  expect_ok c

let test_oob_conflict_detected () =
  (* b updates its aux copy; a's regular copy advances concurrently;
     fetching from a now yields conflicting IVVs. *)
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Node.update b "x" (set "b-side");
  Node.update a "x" (set "a-side");
  (match Node.fetch_out_of_bound ~recipient:b ~source:a "x" with
  | `Conflict -> ()
  | `Adopted | `Already_current -> Alcotest.fail "expected conflict");
  match Node.conflicts b with
  | [ conflict ] -> (
    match conflict.Conflict.origin with
    | Conflict.Out_of_bound { source } -> Alcotest.(check int) "source" 0 source
    | Conflict.Propagation _ | Conflict.Intra_node -> Alcotest.fail "wrong origin")
  | conflicts ->
    Alcotest.fail (Printf.sprintf "expected one conflict, got %d" (List.length conflicts))

let test_intra_node_conflict () =
  (* The deferred aux update conflicts with what regular propagation
     brought: IntraNodePropagation must declare it (Fig. 4). *)
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Node.update b "x" (set "deferred");
  (* a's copy advances past the state the aux update was applied at. *)
  Node.update a "x" (set "v2");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  let intra_conflicts =
    List.filter
      (fun c -> c.Conflict.origin = Conflict.Intra_node)
      (Node.conflicts b)
  in
  Alcotest.(check int) "intra-node conflict declared" 1 (List.length intra_conflicts);
  (* The deferred update is kept (not silently dropped). *)
  Alcotest.(check int) "aux record kept" 1 (Edb_log.Aux_log.length (Node.aux_log b))

let test_read_regular_vs_read () =
  let a, b = make_pair () in
  Node.update a "x" (set "fresh");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Alcotest.(check (option string)) "read sees aux" (Some "fresh") (Node.read b "x");
  Alcotest.(check (option string)) "read_regular sees stale" (Some "")
    (Node.read_regular b "x")

let test_oob_counters () =
  let a, b = make_pair () in
  Node.update a "x" (set "v");
  let (_ : Node.oob_result) = Node.fetch_out_of_bound ~recipient:b ~source:a "x" in
  Alcotest.(check int) "oob copy counted" 1 (Node.counters b).oob_copies;
  Alcotest.(check bool) "bytes charged at source" true ((Node.counters a).bytes_sent > 0)

let suite =
  [
    Alcotest.test_case "oob fetch creates aux" `Quick test_oob_fetch_creates_aux;
    Alcotest.test_case "oob fetch when current" `Quick test_oob_fetch_when_current;
    Alcotest.test_case "oob fetch of older copy ignored" `Quick test_oob_fetch_older_ignored;
    Alcotest.test_case "update goes to aux" `Quick test_update_goes_to_aux;
    Alcotest.test_case "oob serve prefers aux" `Quick test_oob_serve_prefers_aux;
    Alcotest.test_case "aux discarded when no pending updates" `Quick
      test_aux_discarded_when_no_pending_updates;
    Alcotest.test_case "intra-node replay full cycle" `Quick test_intra_node_replay;
    Alcotest.test_case "oob never reduces propagation work" `Quick
      test_oob_never_reduces_propagation_work;
    Alcotest.test_case "oob overwrite keeps aux log" `Quick test_oob_overwrite_keeps_aux_log;
    Alcotest.test_case "oob conflict detected" `Quick test_oob_conflict_detected;
    Alcotest.test_case "intra-node conflict" `Quick test_intra_node_conflict;
    Alcotest.test_case "read vs read_regular" `Quick test_read_regular_vs_read;
    Alcotest.test_case "oob counters" `Quick test_oob_counters;
  ]

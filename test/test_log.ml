(* Tests for log components (paper §4.2, Figure 1), the log vector, and
   the auxiliary log (§4.4). *)

module Log_record = Edb_log.Log_record
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector
module Aux_log = Edb_log.Aux_log
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let record = Alcotest.testable Log_record.pp Log_record.equal

let records_of list = List.map (fun (item, seq) -> { Log_record.item; seq }) list

let check_records msg expected component =
  Alcotest.(check (list record)) msg (records_of expected) (Log_component.to_list component)

let expect_ok = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

(* ---------- Log component ---------- *)

let test_figure_1 () =
  (* Exactly the paper's Figure 1: L_ij = [y1; x3; z4]; adding (x,5)
     unlinks (x,3) and appends (x,5), yielding [y1; z4; x5]. *)
  let c = Log_component.create () in
  Log_component.add c ~item:"y" ~seq:1;
  Log_component.add c ~item:"x" ~seq:3;
  Log_component.add c ~item:"z" ~seq:4;
  check_records "figure 1a" [ ("y", 1); ("x", 3); ("z", 4) ] c;
  Log_component.add c ~item:"x" ~seq:5;
  check_records "figure 1b" [ ("y", 1); ("z", 4); ("x", 5) ] c;
  expect_ok (Log_component.check_invariants c)

let test_one_record_per_item () =
  let c = Log_component.create () in
  for seq = 1 to 100 do
    Log_component.add c ~item:"hot" ~seq
  done;
  Alcotest.(check int) "single retained record" 1 (Log_component.length c);
  check_records "latest wins" [ ("hot", 100) ] c

let test_latest_seq () =
  let c = Log_component.create () in
  Alcotest.(check int) "empty" 0 (Log_component.latest_seq c);
  Log_component.add c ~item:"a" ~seq:7;
  Alcotest.(check int) "after add" 7 (Log_component.latest_seq c)

let test_monotonic_seq_enforced () =
  let c = Log_component.create () in
  Log_component.add c ~item:"a" ~seq:5;
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Log_component.add: sequence numbers must increase") (fun () ->
      Log_component.add c ~item:"b" ~seq:5)

let test_tail_after () =
  let c = Log_component.create () in
  List.iter
    (fun (item, seq) -> Log_component.add c ~item ~seq)
    [ ("a", 1); ("b", 2); ("c", 5); ("d", 9) ];
  Alcotest.(check (list record)) "tail above 2" (records_of [ ("c", 5); ("d", 9) ])
    (Log_component.tail_after c ~seq:2);
  Alcotest.(check (list record)) "tail above 0 is all"
    (records_of [ ("a", 1); ("b", 2); ("c", 5); ("d", 9) ])
    (Log_component.tail_after c ~seq:0);
  Alcotest.(check (list record)) "tail above newest is empty" []
    (Log_component.tail_after c ~seq:9)

let test_tail_after_respects_dedup () =
  let c = Log_component.create () in
  Log_component.add c ~item:"a" ~seq:1;
  Log_component.add c ~item:"b" ~seq:2;
  Log_component.add c ~item:"a" ~seq:3;
  (* The (a,1) record no longer exists; the tail above 0 sees only the
     latest per item. *)
  Alcotest.(check (list record)) "dedup visible in tail"
    (records_of [ ("b", 2); ("a", 3) ])
    (Log_component.tail_after c ~seq:0)

let test_find_record () =
  let c = Log_component.create () in
  Log_component.add c ~item:"a" ~seq:1;
  Log_component.add c ~item:"a" ~seq:4;
  (match Log_component.find_record c "a" with
  | Some r -> Alcotest.(check int) "latest seq" 4 r.Log_record.seq
  | None -> Alcotest.fail "expected record");
  Alcotest.(check bool) "absent item" true (Log_component.find_record c "zz" = None)

(* Property: after any sequence of adds with increasing seq, the
   component holds the latest record per item, in seq order. *)
let prop_component_model =
  QCheck2.Test.make ~name:"log component matches latest-per-item model" ~count:300
    Gen.item_script
    (fun item_ids ->
      let c = Log_component.create () in
      let model = Hashtbl.create 8 in
      List.iteri
        (fun i id ->
          let seq = i + 1 in
          let item = Printf.sprintf "i%d" id in
          Log_component.add c ~item ~seq;
          Hashtbl.replace model item seq)
        item_ids;
      let expected =
        Hashtbl.fold (fun item seq acc -> { Log_record.item; seq } :: acc) model []
        |> List.sort (fun (a : Log_record.t) b -> compare a.seq b.seq)
      in
      Log_component.to_list c = expected
      && Log_component.check_invariants c = Ok ())

(* ---------- Log vector ---------- *)

let test_log_vector_dispatch () =
  let lv = Log_vector.create ~n:3 in
  Log_vector.add lv ~origin:0 ~item:"x" ~seq:1;
  Log_vector.add lv ~origin:2 ~item:"x" ~seq:1;
  Log_vector.add lv ~origin:2 ~item:"y" ~seq:2;
  Alcotest.(check int) "component 0" 1 (Log_component.length (Log_vector.component lv 0));
  Alcotest.(check int) "component 1" 0 (Log_component.length (Log_vector.component lv 1));
  Alcotest.(check int) "component 2" 2 (Log_component.length (Log_vector.component lv 2));
  Alcotest.(check int) "total" 3 (Log_vector.total_records lv);
  expect_ok (Log_vector.check_invariants lv)

let test_log_vector_bound () =
  (* The paper's bound: at most n * N records, whatever the update count. *)
  let n = 3 and items = 5 in
  let lv = Log_vector.create ~n in
  let seq = Array.make n 0 in
  for round = 1 to 200 do
    let origin = round mod n in
    let item = Printf.sprintf "i%d" (round mod items) in
    seq.(origin) <- seq.(origin) + 1;
    Log_vector.add lv ~origin ~item ~seq:seq.(origin)
  done;
  Alcotest.(check bool) "bounded by n*N" true (Log_vector.total_records lv <= n * items)

(* ---------- Auxiliary log ---------- *)

let aux_record item ivv op = { Aux_log.item; ivv = Vv.of_array ivv; op }

let test_aux_append_earliest () =
  let log = Aux_log.create () in
  Aux_log.append log (aux_record "x" [| 0; 0 |] (Operation.Set "1"));
  Aux_log.append log (aux_record "x" [| 1; 0 |] (Operation.Set "2"));
  Aux_log.append log (aux_record "y" [| 0; 0 |] (Operation.Set "a"));
  (match Aux_log.earliest log "x" with
  | Some r -> Alcotest.(check bool) "earliest is first" true (Vv.get r.Aux_log.ivv 0 = 0)
  | None -> Alcotest.fail "expected record");
  Alcotest.(check int) "length" 3 (Aux_log.length log)

let test_aux_remove_earliest_fifo () =
  let log = Aux_log.create () in
  Aux_log.append log (aux_record "x" [| 0 |] (Operation.Set "1"));
  Aux_log.append log (aux_record "x" [| 1 |] (Operation.Set "2"));
  Aux_log.remove_earliest log "x";
  (match Aux_log.earliest log "x" with
  | Some r -> Alcotest.(check int) "second is now earliest" 1 (Vv.get r.Aux_log.ivv 0)
  | None -> Alcotest.fail "expected record");
  Aux_log.remove_earliest log "x";
  Alcotest.(check bool) "drained" true (Aux_log.earliest log "x" = None);
  Alcotest.(check bool) "no records left" false (Aux_log.has_records_for log "x")

let test_aux_remove_missing_raises () =
  let log = Aux_log.create () in
  Alcotest.check_raises "missing" (Invalid_argument "Aux_log.remove_earliest: no record for item")
    (fun () -> Aux_log.remove_earliest log "nope")

let test_aux_per_item_isolation () =
  let log = Aux_log.create () in
  Aux_log.append log (aux_record "x" [| 0 |] (Operation.Set "1"));
  Aux_log.append log (aux_record "y" [| 0 |] (Operation.Set "a"));
  Aux_log.remove_earliest log "x";
  Alcotest.(check bool) "y untouched" true (Aux_log.has_records_for log "y");
  Alcotest.(check int) "one record left" 1 (Aux_log.length log)

let test_aux_to_list_order () =
  let log = Aux_log.create () in
  Aux_log.append log (aux_record "x" [| 0 |] (Operation.Set "1"));
  Aux_log.append log (aux_record "y" [| 0 |] (Operation.Set "2"));
  Aux_log.append log (aux_record "x" [| 1 |] (Operation.Set "3"));
  let items = List.map (fun r -> r.Aux_log.item) (Aux_log.to_list log) in
  Alcotest.(check (list string)) "global order kept" [ "x"; "y"; "x" ] items

let test_aux_storage_bytes () =
  let log = Aux_log.create () in
  Alcotest.(check int) "empty" 0 (Aux_log.storage_bytes log);
  Aux_log.append log (aux_record "x" [| 0; 0 |] (Operation.Set "abcd"));
  (* 4 bytes op + 16 bytes of vv + 16 fixed. *)
  Alcotest.(check int) "one record" 36 (Aux_log.storage_bytes log)

(* Property: the auxiliary log matches a per-item FIFO model under any
   interleaving of appends and earliest-removals. *)
let prop_aux_log_model =
  QCheck2.Test.make ~name:"aux log matches per-item FIFO model" ~count:300
    Gen.aux_script
    (fun script ->
      let log = Aux_log.create () in
      let model : (string, int Queue.t) Hashtbl.t = Hashtbl.create 4 in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_append, item_id) ->
          let item = Printf.sprintf "i%d" item_id in
          if is_append then begin
            incr counter;
            Aux_log.append log
              { Aux_log.item; ivv = Vv.of_array [| !counter |];
                op = Operation.Set (string_of_int !counter) };
            let q =
              match Hashtbl.find_opt model item with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.add model item q;
                q
            in
            Queue.add !counter q
          end
          else begin
            let expected =
              match Hashtbl.find_opt model item with
              | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
              | Some _ | None -> None
            in
            match (Aux_log.earliest log item, expected) with
            | Some r, Some stamp ->
              if Vv.get r.Aux_log.ivv 0 <> stamp then ok := false
              else Aux_log.remove_earliest log item
            | None, None -> ()
            | Some _, None | None, Some _ -> ok := false
          end)
        script;
      let model_size = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) model 0 in
      !ok && Aux_log.length log = model_size)

let suite =
  [
    Alcotest.test_case "paper figure 1" `Quick test_figure_1;
    QCheck_alcotest.to_alcotest prop_aux_log_model;
    Alcotest.test_case "one record per item" `Quick test_one_record_per_item;
    Alcotest.test_case "latest_seq" `Quick test_latest_seq;
    Alcotest.test_case "monotonic seq enforced" `Quick test_monotonic_seq_enforced;
    Alcotest.test_case "tail_after" `Quick test_tail_after;
    Alcotest.test_case "tail_after respects dedup" `Quick test_tail_after_respects_dedup;
    Alcotest.test_case "find_record" `Quick test_find_record;
    QCheck_alcotest.to_alcotest prop_component_model;
    Alcotest.test_case "log vector dispatch" `Quick test_log_vector_dispatch;
    Alcotest.test_case "log vector n*N bound" `Quick test_log_vector_bound;
    Alcotest.test_case "aux append/earliest" `Quick test_aux_append_earliest;
    Alcotest.test_case "aux remove earliest FIFO" `Quick test_aux_remove_earliest_fifo;
    Alcotest.test_case "aux remove missing raises" `Quick test_aux_remove_missing_raises;
    Alcotest.test_case "aux per-item isolation" `Quick test_aux_per_item_isolation;
    Alcotest.test_case "aux global order" `Quick test_aux_to_list_order;
    Alcotest.test_case "aux storage bytes" `Quick test_aux_storage_bytes;
  ]

(* The message-granular transport: duplicated delivery of any single
   protocol message must be idempotent, the retry layer must count and
   bound its work, and the whole thing must stay deterministic in the
   seed. *)

module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Message = Edb_core.Message
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Driver = Edb_baselines.Driver
module Epidemic_driver = Edb_baselines.Epidemic_driver
module Demers = Edb_baselines.Demers
module Engine = Edb_sim.Engine
module Network = Edb_sim.Network

let set v = Operation.Set v

(* [Node.export_state] is already canonical: each shard's item lists
   come out in sorted name order, so states compare with (=). *)
let normalized_state = Node.export_state

(* ---------- Duplicate-delivery idempotence (property) ---------- *)

(* A small scripted workload to put the cluster in an arbitrary
   reachable state — including conflicted ones — before the duplicated
   message is delivered. *)
type prep = Upd of { node : int; item : int; op : Operation.t } | Pull of int * int

let nodes = 3

let prep_gen =
  QCheck2.Gen.(
    let upd =
      map3
        (fun node item op -> Upd { node = node mod nodes; item; op })
        (int_bound 1000)
        (int_bound 2) Gen.operation
    in
    let pull =
      map2 (fun a b -> Pull (a mod nodes, b mod nodes)) (int_bound 1000)
        (int_bound 1000)
    in
    list_size (int_range 0 40) (frequency [ (3, upd); (2, pull) ]))

let item_name rank = Printf.sprintf "it%d" rank

let build_cluster script =
  let cluster = Cluster.create ~seed:7 ~n:nodes () in
  List.iter
    (function
      | Upd { node; item; op } -> Cluster.update cluster ~node ~item:(item_name item) op
      | Pull (recipient, source) ->
        if recipient <> source then
          ignore (Cluster.pull cluster ~recipient ~source))
    script;
  cluster

(* Delivering the same propagation request twice must leave the source
   bitwise-unchanged and produce two identical replies. *)
let prop_duplicate_request_idempotent =
  QCheck2.Test.make ~name:"duplicate request: source unchanged, replies equal"
    ~count:100
    QCheck2.Gen.(triple prep_gen (int_bound 1000) (int_bound 1000))
    (fun (script, a, b) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      let request = Node.propagation_request recipient in
      let before = normalized_state source in
      let reply1 = Node.handle_propagation_request source request in
      let reply2 = Node.handle_propagation_request source request in
      normalized_state source = before && reply1 = reply2)

(* Delivering the same propagation reply twice must leave the recipient
   exactly where one delivery left it. *)
let prop_duplicate_reply_idempotent =
  QCheck2.Test.make ~name:"duplicate reply: second delivery is a no-op" ~count:100
    QCheck2.Gen.(triple prep_gen (int_bound 1000) (int_bound 1000))
    (fun (script, a, b) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      let request = Node.propagation_request recipient in
      let reply = Node.handle_propagation_request source request in
      let (_ : Node.accept_result) =
        Node.accept_propagation recipient ~source:src reply
      in
      let once = normalized_state recipient in
      let (_ : Node.accept_result) =
        Node.accept_propagation recipient ~source:src reply
      in
      normalized_state recipient = once)

(* Same for an out-of-bound reply. *)
let prop_duplicate_oob_idempotent =
  QCheck2.Test.make ~name:"duplicate OOB reply: second delivery is a no-op"
    ~count:100
    QCheck2.Gen.(quad prep_gen (int_bound 1000) (int_bound 1000) (int_bound 2))
    (fun (script, a, b, rank) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      let reply = Node.serve_out_of_bound source { Message.item = item_name rank } in
      let (_ : Node.oob_result) =
        Node.accept_out_of_bound recipient ~source:src reply
      in
      let once = normalized_state recipient in
      let (_ : Node.oob_result) =
        Node.accept_out_of_bound recipient ~source:src reply
      in
      normalized_state recipient = once)

(* ---------- Granular engine semantics ---------- *)

let test_message_grain_needs_granular_driver () =
  let driver = Demers.driver (Demers.create ~n:3 ~universe:[ "x" ]) in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Engine.create: driver has no message-granular support")
    (fun () ->
      ignore
        (Engine.create ~transport:(Engine.Message_grain Engine.default_retry_policy)
           ~driver ()))

(* Reliable network: every scheduled session completes with its first
   attempt — no timeouts, no retries, no abandonments — and the cluster
   converges just as under session-grain transport. *)
let test_granular_reliable_converges () =
  let cluster, driver = Epidemic_driver.create ~seed:3 ~n:4 () in
  let engine =
    Engine.create ~seed:5
      ~transport:(Engine.Message_grain Engine.default_retry_policy)
      ~driver ()
  in
  for i = 0 to 3 do
    Engine.schedule engine ~at:0.0
      (Engine.User_update { node = i; item = Printf.sprintf "it%d" i; op = set "v" })
  done;
  let sessions = ref 0 in
  for round = 0 to 4 do
    for dst = 0 to 3 do
      Engine.schedule engine
        ~at:(1.0 +. (10.0 *. float_of_int round))
        (Engine.Session { src = (dst + 1) mod 4; dst });
      incr sessions
    done
  done;
  Alcotest.(check bool) "drained" true (Engine.run_until_quiescent engine);
  Alcotest.(check bool) "converged" true (Cluster.converged cluster);
  let totals = driver.Driver.total_counters () in
  Alcotest.(check int) "no timeouts" 0 totals.Counters.timeouts;
  Alcotest.(check int) "no retries" 0 totals.Counters.retries;
  Alcotest.(check int) "no abandonments" 0 totals.Counters.sessions_abandoned;
  Alcotest.(check int) "all sessions completed" !sessions
    (Engine.sessions_attempted engine);
  Alcotest.(check int) "none in flight" 0 (Engine.sessions_in_flight engine)

(* Total loss: every attempt times out, the backoff ladder runs to the
   retry budget, and the session is abandoned — with every step
   visible in the counters and the event queue still draining. *)
let test_granular_total_loss_abandons () =
  let policy = Engine.default_retry_policy in
  let cluster, driver = Epidemic_driver.create ~seed:3 ~n:2 () in
  let network = Network.create ~loss_probability:1.0 () in
  let engine =
    Engine.create ~seed:5 ~network ~transport:(Engine.Message_grain policy) ~driver ()
  in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:1.0 (Engine.Session { src = 0; dst = 1 });
  Engine.schedule engine ~at:1.0 (Engine.Session { src = 1; dst = 0 });
  Alcotest.(check bool) "drained" true (Engine.run_until_quiescent engine);
  Alcotest.(check bool) "not converged" false (Cluster.converged cluster);
  let totals = driver.Driver.total_counters () in
  Alcotest.(check int) "a timeout per attempt"
    (2 * (policy.Engine.max_retries + 1))
    totals.Counters.timeouts;
  Alcotest.(check int) "a retry per re-send" (2 * policy.Engine.max_retries)
    totals.Counters.retries;
  Alcotest.(check int) "both sessions abandoned" 2
    totals.Counters.sessions_abandoned;
  Alcotest.(check int) "abandoned counts as lost" 2 (Engine.sessions_lost engine);
  Alcotest.(check int) "never completed" 0 (Engine.sessions_attempted engine);
  Alcotest.(check int) "none in flight" 0 (Engine.sessions_in_flight engine)

(* Wire-level duplication of every message: the protocol absorbs the
   copies (idempotence end to end) and still converges. *)
let test_granular_duplication_converges () =
  let cluster, driver = Epidemic_driver.create ~seed:3 ~n:4 () in
  let network = Network.create ~duplicate_probability:1.0 () in
  let engine =
    Engine.create ~seed:5 ~network
      ~transport:(Engine.Message_grain Engine.default_retry_policy)
      ~driver ()
  in
  for i = 0 to 3 do
    Engine.schedule engine ~at:0.0
      (Engine.User_update { node = i; item = Printf.sprintf "it%d" i; op = set "v" })
  done;
  let sessions = ref 0 in
  for round = 0 to 4 do
    for dst = 0 to 3 do
      Engine.schedule engine
        ~at:(1.0 +. (10.0 *. float_of_int round))
        (Engine.Session { src = (dst + 1) mod 4; dst });
      incr sessions
    done
  done;
  Alcotest.(check bool) "drained" true (Engine.run_until_quiescent engine);
  Alcotest.(check bool) "converged" true (Cluster.converged cluster);
  Alcotest.(check int) "first reply completes each session" !sessions
    (Engine.sessions_attempted engine)

(* A crash between request and reply: the reply finds the initiator
   dead, the timeout ladder runs dry, and the session is abandoned
   without corrupting either endpoint. *)
let test_granular_crash_between_messages () =
  let cluster, driver = Epidemic_driver.create ~seed:3 ~n:2 () in
  let engine =
    Engine.create ~seed:5
      ~transport:(Engine.Message_grain Engine.default_retry_policy)
      ~driver ()
  in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:1.0 (Engine.Session { src = 0; dst = 1 });
  (* Initiator dies on the half-beat while its request is in flight. *)
  Engine.schedule engine ~at:1.5 (Engine.Crash 1);
  Alcotest.(check bool) "drained" true (Engine.run_until_quiescent engine);
  let totals = driver.Driver.total_counters () in
  Alcotest.(check int) "session abandoned" 1 totals.Counters.sessions_abandoned;
  Alcotest.(check int) "never completed" 0 (Engine.sessions_attempted engine);
  (* Recover and pull again: the update still propagates. *)
  Engine.schedule engine ~at:(Engine.now engine) (Engine.Recover 1);
  Engine.schedule engine
    ~at:(Engine.now engine +. 1.0)
    (Engine.Session { src = 0; dst = 1 });
  Alcotest.(check bool) "drained again" true (Engine.run_until_quiescent engine);
  Alcotest.(check bool) "converged after recovery" true (Cluster.converged cluster)

(* Determinism: identical seeds reproduce every loss, delay, backoff
   jitter and final state bit for bit. *)
let test_granular_deterministic () =
  let run () =
    let cluster, driver = Epidemic_driver.create ~seed:3 ~n:4 () in
    let network =
      Network.create ~loss_probability:0.3 ~duplicate_probability:0.2
        ~reorder_probability:0.2 ~jitter_mean:0.5 ()
    in
    let engine =
      Engine.create ~seed:11 ~network
        ~transport:(Engine.Message_grain Engine.default_retry_policy)
        ~driver ()
    in
    for i = 0 to 3 do
      Engine.schedule engine ~at:0.0
        (Engine.User_update { node = i; item = Printf.sprintf "it%d" i; op = set "v" })
    done;
    for round = 0 to 6 do
      for dst = 0 to 3 do
        Engine.schedule engine
          ~at:(1.0 +. (15.0 *. float_of_int round))
          (Engine.Session { src = (dst + 1) mod 4; dst })
      done
    done;
    Alcotest.(check bool) "drained" true (Engine.run_until_quiescent engine);
    let states = List.init 4 (fun i -> normalized_state (Cluster.node cluster i)) in
    let totals = driver.Driver.total_counters () in
    ( states,
      totals.Counters.timeouts,
      totals.Counters.retries,
      totals.Counters.sessions_abandoned,
      Engine.sessions_attempted engine,
      Engine.sessions_lost engine )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_duplicate_request_idempotent;
    QCheck_alcotest.to_alcotest prop_duplicate_reply_idempotent;
    QCheck_alcotest.to_alcotest prop_duplicate_oob_idempotent;
    Alcotest.test_case "message-grain needs granular driver" `Quick
      test_message_grain_needs_granular_driver;
    Alcotest.test_case "reliable network: first-attempt completion" `Quick
      test_granular_reliable_converges;
    Alcotest.test_case "total loss: bounded retries then abandon" `Quick
      test_granular_total_loss_abandons;
    Alcotest.test_case "full duplication still converges" `Quick
      test_granular_duplication_converges;
    Alcotest.test_case "crash between request and reply" `Quick
      test_granular_crash_between_messages;
    Alcotest.test_case "deterministic in the seed" `Quick
      test_granular_deterministic;
  ]

(* The item → shard mapping (Shard_map): pinned golden hashes, the
   determinism/stability properties every replica relies on, and
   uniformity of the placement over a realistic (Zipf-universe) name
   population. *)

module Shard_map = Edb_core.Shard_map
module Node = Edb_core.Node
module Workload = Edb_workload.Workload

(* FNV-1a 64-bit reference vectors (the first two are the classic
   published test vectors). A change here means every existing sharded
   WAL and snapshot would re-home its items — the hash is part of the
   durable format and must never drift. *)
let test_golden_hashes () =
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int64)
        (Printf.sprintf "fnv1a(%S)" name)
        expected (Shard_map.hash name))
    [
      ("", 0xcbf29ce484222325L);
      ("a", 0xaf63dc4c8601ec8cL);
      ("foobar", 0x85944171f73967e8L);
      ("item-000000", 0x3f220b15f6993ec9L);
      ("it07", 0x28d3e6c597535935L);
    ]

let test_edge_cases () =
  Alcotest.(check int) "shards=1 is always 0" 0 (Shard_map.shard_of ~shards:1 "anything");
  Alcotest.check_raises "shards=0 rejected"
    (Invalid_argument "Shard_map.shard_of: shards must be positive") (fun () ->
      ignore (Shard_map.shard_of ~shards:0 "x"))

let name_gen =
  QCheck2.Gen.(oneof [ map Workload.item_name (int_bound 999_999); string_small ])

(* Stability: the shard of an item is a pure function of the name and
   the shard count — the same on every node, regardless of that node's
   id or replication factor [n], and within range. Two nodes that
   disagreed here would file the same update under different per-shard
   DBVVs and the summary-vector dominance argument would collapse. *)
let prop_mapping_stable =
  QCheck2.Test.make ~name:"shard_of: deterministic, in range, independent of n"
    ~count:500
    QCheck2.Gen.(pair name_gen (int_range 1 32))
    (fun (name, shards) ->
      let s = Shard_map.shard_of ~shards name in
      s >= 0 && s < shards
      && s = Shard_map.shard_of ~shards name
      &&
      (* Node-level view: nodes of different clusters (different n,
         different ids) place the item identically. *)
      let a = Node.create ~id:0 ~n:2 ~shards () in
      let b = Node.create ~id:3 ~n:7 ~shards () in
      Node.shard_of_item a name = s && Node.shard_of_item b name = s)

(* A fresh process must agree with this one: the mapping depends on no
   per-process seed. [Marshal]-free check: the golden vectors above pin
   the hash itself; here we pin a handful of full placements. *)
let test_placement_pinned () =
  List.iter
    (fun (name, shards, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "shard_of ~shards:%d %S" shards name)
        expected
        (Shard_map.shard_of ~shards name))
    [
      ("item-000000", 4, 0);
      ("item-000001", 4, 3);
      ("item-000002", 4, 1);
      ("item-000000", 16, 4);
      ("item-000007", 16, 14);
      ("x", 7, 4);
    ]

(* Uniformity: over the 10k-name universe a Zipf workload draws from,
   every shard's share must sit within 10% of the ideal [names/shards].
   (Uniform placement of the *universe* is what bounds per-shard state;
   the Zipf skew of the *draws* concentrates traffic, not placement.) *)
let test_uniform_over_zipf_universe () =
  let names = 10_000 and shards = 16 in
  let selector = Workload.Selector.zipfian ~n:names ~exponent:1.2 in
  let counts = Array.make shards 0 in
  for rank = 0 to Workload.Selector.universe_size selector - 1 do
    let s = Shard_map.shard_of ~shards (Workload.item_name rank) in
    counts.(s) <- counts.(s) + 1
  done;
  let ideal = float_of_int names /. float_of_int shards in
  Array.iteri
    (fun s c ->
      let deviation = Float.abs (float_of_int c -. ideal) /. ideal in
      if deviation > 0.10 then
        Alcotest.failf "shard %d holds %d names (%.1f%% off the ideal %.0f)" s c
          (100.0 *. deviation) ideal)
    counts

let suite =
  [
    Alcotest.test_case "golden FNV-1a vectors" `Quick test_golden_hashes;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    QCheck_alcotest.to_alcotest prop_mapping_stable;
    Alcotest.test_case "pinned placements" `Quick test_placement_pinned;
    Alcotest.test_case "uniform within 10% over 10k Zipf names" `Quick
      test_uniform_over_zipf_universe;
  ]

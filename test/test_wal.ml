(* Tests for the write-ahead log and the durable node wrapper. *)

module Wal = Edb_persist.Wal
module Durable = Edb_persist.Durable_node
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let with_temp_dir f =
  let dir = Filename.temp_file "edb-wal" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let with_temp_file f =
  let path = Filename.temp_file "edb-wal" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---------- WAL framing ---------- *)

let test_wal_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      List.iter (Wal.append w) [ "one"; "two"; ""; "four" ];
      Wal.close_writer w;
      let seen = ref [] in
      let result = ok (Wal.replay ~path ~f:(fun r -> seen := r :: !seen)) in
      Alcotest.(check int) "records" 4 result.Wal.records;
      Alcotest.(check bool) "no torn tail" false result.Wal.torn_tail;
      Alcotest.(check (list string)) "in order" [ "one"; "two"; ""; "four" ]
        (List.rev !seen))

let test_wal_missing_file_is_empty () =
  let result = ok (Wal.replay ~path:"/nonexistent/edb.wal" ~f:(fun _ -> ())) in
  Alcotest.(check int) "no records" 0 result.Wal.records

let test_wal_append_survives_reopen () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      Wal.append w "first";
      Wal.close_writer w;
      let w = Wal.open_writer ~path in
      Wal.append w "second";
      Wal.close_writer w;
      let count = ref 0 in
      let (_ : Wal.replay_result) = ok (Wal.replay ~path ~f:(fun _ -> incr count)) in
      Alcotest.(check int) "both records" 2 !count)

let test_wal_torn_tail_discarded () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      Wal.append w "complete";
      Wal.append w "will-be-torn";
      Wal.close_writer w;
      (* Chop the last 3 bytes: the second frame loses its checksum. *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data - 3));
      close_out oc;
      let seen = ref [] in
      let result = ok (Wal.replay ~path ~f:(fun r -> seen := r :: !seen)) in
      Alcotest.(check int) "one intact record" 1 result.Wal.records;
      Alcotest.(check bool) "torn tail flagged" true result.Wal.torn_tail;
      Alcotest.(check (list string)) "prefix recovered" [ "complete" ] !seen)

(* A damaged frame in the *middle* of the log is not a torn tail — it is
   corruption of data that was durably written and acknowledged, and
   replay must refuse rather than silently drop it and everything
   after. *)
let test_wal_corrupt_record_is_error () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      Wal.append w "good1";
      Wal.append w "damaged";
      Wal.append w "good2";
      Wal.close_writer w;
      (* Flip a payload byte of the middle record: frames are
         8 + len + 4 bytes, so record 2's payload starts at 17 + 8. *)
      let ic = open_in_bin path in
      let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let pos = 17 + 8 in
      Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      let seen = ref [] in
      match Wal.replay ~path ~f:(fun r -> seen := r :: !seen) with
      | Ok _ -> Alcotest.fail "mid-log corruption not detected"
      | Error msg ->
        Alcotest.(check bool) "names the damage" true
          (Astring.String.is_infix ~affix:"checksum mismatch" msg);
        Alcotest.(check (list string)) "records before the damage applied"
          [ "good1" ] (List.rev !seen))

(* Same for the final frame when it is fully present: only frames cut
   short by end-of-file count as a crash's torn tail. *)
let test_wal_corrupt_last_record_is_error () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      Wal.append w "good";
      Wal.append w "bad";
      Wal.close_writer w;
      let ic = open_in_bin path in
      let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let pos = Bytes.length data - 5 in
      Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      match Wal.replay ~path ~f:(fun _ -> ()) with
      | Ok _ -> Alcotest.fail "complete-frame corruption not detected"
      | Error msg ->
        Alcotest.(check bool) "names the damage" true
          (Astring.String.is_infix ~affix:"checksum mismatch" msg))

let test_wal_reset () =
  with_temp_file (fun path ->
      Sys.remove path;
      let w = Wal.open_writer ~path in
      Wal.append w "x";
      Wal.close_writer w;
      Wal.reset ~path;
      let result = ok (Wal.replay ~path ~f:(fun _ -> ())) in
      Alcotest.(check int) "empty after reset" 0 result.Wal.records)

(* ---------- Durable node ---------- *)

let reopen ~dir ~id ~n =
  let t, _ = ok (Durable.open_or_create ~dir ~id ~n ()) in
  t

let test_durable_fresh_and_recover_updates () =
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v1");
      Durable.update d "x" (set "v2");
      Durable.update d "y" (set "w");
      Alcotest.(check int) "journaled" 3 (Durable.journal_records d);
      Durable.close d;
      (* "Crash" and recover. *)
      let d = reopen ~dir ~id:0 ~n:2 in
      Alcotest.(check (option string)) "x recovered" (Some "v2")
        (Node.read (Durable.node d) "x");
      Alcotest.(check (option string)) "y recovered" (Some "w")
        (Node.read (Durable.node d) "y");
      (* The DBVV (and so the globally visible sequence numbers) are
         reproduced exactly. *)
      Alcotest.(check (array int)) "dbvv exact" [| 3; 0 |]
        (Vv.to_array (Node.dbvv (Durable.node d)));
      Durable.close d)

let test_durable_checkpoint_resets_journal () =
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v1");
      Durable.checkpoint d;
      Alcotest.(check int) "journal reset" 0 (Durable.journal_records d);
      Durable.update d "x" (set "v2");
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      Alcotest.(check (option string)) "snapshot + journal" (Some "v2")
        (Node.read (Durable.node d) "x");
      Durable.close d)

let test_durable_recovers_accepted_propagation () =
  with_temp_dir (fun dir ->
      let remote = Node.create ~id:1 ~n:2 () in
      Node.update remote "r" (set "remote-v");
      let d = reopen ~dir ~id:0 ~n:2 in
      (match Durable.pull_from d ~source:remote with
      | Node.Pulled { copied; _ } -> Alcotest.(check int) "copied" 1 (List.length copied)
      | Node.Already_current -> Alcotest.fail "expected propagation");
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      Alcotest.(check (option string)) "remote data recovered" (Some "remote-v")
        (Node.read (Durable.node d) "r");
      Alcotest.(check bool) "dbvv recovered" true
        (Vv.equal (Node.dbvv (Durable.node d)) (Node.dbvv remote));
      (* Invariants hold on the recovered node. *)
      (match Node.check_invariants (Durable.node d) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Durable.close d)

let test_durable_recovers_oob_and_aux () =
  with_temp_dir (fun dir ->
      let remote = Node.create ~id:1 ~n:2 () in
      Node.update remote "hot" (set "h1");
      let d = reopen ~dir ~id:0 ~n:2 in
      (match Durable.fetch_out_of_bound_from d ~source:remote "hot" with
      | `Adopted -> ()
      | `Already_current | `Conflict -> Alcotest.fail "expected adoption");
      Durable.update d "hot" (set "h2");
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      let node = Durable.node d in
      Alcotest.(check bool) "aux copy recovered" true (Node.has_aux node "hot");
      Alcotest.(check (option string)) "aux value recovered" (Some "h2")
        (Node.read node "hot");
      Alcotest.(check int) "deferred update recovered" 1
        (Edb_log.Aux_log.length (Node.aux_log node));
      Durable.close d)

let test_durable_exact_seq_reproduction () =
  (* The critical property: updates a peer already pulled keep their
     sequence numbers across recovery — the peer and the recovered node
     agree without conflicts. *)
  with_temp_dir (fun dir ->
      let peer = Node.create ~id:1 ~n:2 () in
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v1");
      (* The peer pulls BEFORE the crash. *)
      let (_ : Node.pull_result) = Node.pull ~recipient:peer ~source:(Durable.node d) () in
      Durable.update d "x" (set "v2");
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      (* After recovery the peer pulls again: no conflict, clean catch-up. *)
      (match Node.pull ~recipient:peer ~source:(Durable.node d) () with
      | Node.Pulled { conflicts; copied; _ } ->
        Alcotest.(check int) "no conflicts after recovery" 0 conflicts;
        Alcotest.(check (list string)) "catches up" [ "x" ] copied
      | Node.Already_current -> Alcotest.fail "peer is behind");
      Alcotest.(check (option string)) "peer current" (Some "v2") (Node.read peer "x");
      Durable.close d)

let test_durable_rejects_mismatched_identity () =
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v");
      Durable.checkpoint d;
      Durable.close d;
      match Durable.open_or_create ~dir ~id:1 ~n:2 () with
      | Error msg ->
        Alcotest.(check bool) "explains mismatch" true
          (Astring.String.is_infix ~affix:"node" msg)
      | Ok _ -> Alcotest.fail "must reject wrong id")

let test_durable_torn_journal_recovers_prefix () =
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v1");
      Durable.update d "x" (set "v2");
      Durable.close d;
      (* Tear the journal's tail. *)
      let wal_path = Filename.concat dir "node.wal" in
      let ic = open_in_bin wal_path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin wal_path in
      output_string oc (String.sub data 0 (String.length data - 2));
      close_out oc;
      let d, replay = ok (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
      Alcotest.(check bool) "torn tail reported" true replay.Wal.torn_tail;
      Alcotest.(check int) "prefix applied" 1 replay.Wal.records;
      Alcotest.(check (option string)) "state at prefix" (Some "v1")
        (Node.read (Durable.node d) "x");
      Durable.close d)

(* ---------- Realtime push vs. durability (DESIGN.md §10) ---------- *)

(* A remote origin plus one captured push-stream update for it. *)
let make_push_origin () =
  let remote = Node.create ~id:1 ~n:2 () in
  let buf = ref [] in
  Node.set_update_hook remote (Some (fun u -> buf := u :: !buf));
  Node.update remote "hot" (set "pushed");
  match List.rev !buf with
  | [ u ] -> (remote, u)
  | us -> Alcotest.failf "hook fired %d times" (List.length us)

(* An applied push is journaled, so it survives a crash: later
   journaled AE replies assume the pushed update is part of the
   per-origin prefix. *)
let test_durable_recovers_applied_push () =
  with_temp_dir (fun dir ->
      let _remote, u = make_push_origin () in
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "mine" (set "local");
      (match Durable.apply_push d ~source:1 u with
      | `Applied -> ()
      | `Stale -> Alcotest.fail "fresh push judged stale");
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      Alcotest.(check (option string)) "pushed value recovered" (Some "pushed")
        (Node.read (Durable.node d) "hot");
      Alcotest.(check (array int)) "origin component recovered" [| 1; 1 |]
        (Vv.to_array (Node.dbvv (Durable.node d)));
      (match Node.check_invariants (Durable.node d) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Durable.close d)

(* Crash-atomicity around apply_push: before the journal append the
   push is invisible (it is best-effort traffic — losing it is the
   normal case anti-entropy repairs); after the append, recovery must
   replay it to exactly the post-push state. Never a torn middle. *)
let test_durable_crash_mid_push () =
  let module Fault = Edb_fault.Fault in
  List.iter
    (fun (fault, applied_after_recovery) ->
      with_temp_dir (fun dir ->
          Fault.clear ();
          let _remote, u = make_push_origin () in
          let d = reopen ~dir ~id:0 ~n:2 in
          Durable.update d "mine" (set "local");
          let pre = Node.export_state (Durable.node d) in
          let crashed =
            try
              Fault.with_point fault (fun () ->
                  ignore (Durable.apply_push d ~source:1 u);
                  false)
            with Fault.Injected _ -> true
          in
          Alcotest.(check bool) (fault ^ " fired") true crashed;
          let d' = reopen ~dir ~id:0 ~n:2 in
          let recovered = Node.export_state (Durable.node d') in
          if applied_after_recovery then begin
            Alcotest.(check (option string))
              (fault ^ ": push replayed from the journal")
              (Some "pushed")
              (Node.read (Durable.node d') "hot");
            Alcotest.(check bool) (fault ^ ": not the pre state") true
              (recovered <> pre)
          end
          else begin
            Alcotest.(check bool) (fault ^ ": push invisible") true
              (recovered = pre);
            (* The stream is volatile; the straggler (or anti-entropy)
               simply delivers again. *)
            match Durable.apply_push d' ~source:1 u with
            | `Applied ->
              Alcotest.(check (option string))
                (fault ^ ": redelivery applies")
                (Some "pushed")
                (Node.read (Durable.node d') "hot")
            | `Stale -> Alcotest.fail (fault ^ ": redelivery judged stale")
          end;
          Durable.close d'))
    [ ("durable.journal.before", false); ("durable.apply.before", true) ]

(* Stale pushes are journaled too (replay re-judges and drops them):
   the journal grows but the recovered state is untouched. *)
let test_durable_stale_push_journaled_but_inert () =
  with_temp_dir (fun dir ->
      let remote, u = make_push_origin () in
      let d = reopen ~dir ~id:0 ~n:2 in
      (* Anti-entropy wins the race; the straggling push is stale. *)
      (match Durable.pull_from d ~source:remote with
      | Node.Pulled _ -> ()
      | Node.Already_current -> Alcotest.fail "expected a propagation");
      let before = Durable.journal_records d in
      (match Durable.apply_push d ~source:1 u with
      | `Stale -> ()
      | `Applied -> Alcotest.fail "duplicate push applied");
      Alcotest.(check int) "stale push journaled" (before + 1)
        (Durable.journal_records d);
      let served = Node.export_state (Durable.node d) in
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:2 in
      Alcotest.(check bool) "replay drops the stale push again" true
        (Node.export_state (Durable.node d) = served);
      Durable.close d)

(* With push off nothing about the journal changes: the same script
   writes byte-identical WALs whether or not the push subsystem exists
   in the build — pinned here so a tag renumbering or frame change
   can't silently orphan pre-push WALs. *)
let test_wal_bytes_stable_when_push_off () =
  let run dir =
    let d = reopen ~dir ~id:0 ~n:2 in
    Durable.update d "x" (set "v1");
    Durable.update d "y" (set "w");
    Durable.close d;
    let ic = open_in_bin (Filename.concat dir "node.wal") in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    data
  in
  let a = with_temp_dir run and b = with_temp_dir run in
  Alcotest.(check string) "push-off WAL bytes deterministic" a b;
  (* No tag-3 (push) records: every journal record of this run starts
     with an update tag. *)
  let seen = ref [] in
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:2 in
      Durable.update d "x" (set "v1");
      Durable.update d "y" (set "w");
      Durable.close d;
      let (_ : Wal.replay_result) =
        ok
          (Wal.replay
             ~path:(Filename.concat dir "node.wal")
             ~f:(fun r -> seen := r :: !seen))
      in
      List.iter
        (fun r ->
          Alcotest.(check bool) "no push tags in a push-off journal" true
            (String.length r > 0 && r.[0] <> '\003'))
        !seen)

(* Property: crash-recovery equivalence. For any script of updates and
   pulls and any crash point, a node that recovers from disk is in the
   same state as a node that executed the same operations in memory. *)
let prop_crash_recovery_equivalence =
  QCheck2.Gen.(
    let action = pair (int_bound 2) (int_bound 3) in
    let gen = pair (list_size (int_range 1 25) action) (int_bound 25) in
    QCheck2.Test.make ~name:"crash recovery reproduces in-memory state" ~count:60 gen
      (fun (script, crash_at) ->
        with_temp_dir (fun dir ->
            (* A remote peer provides propagation and OOB sources. *)
            let make_remote () =
              let remote = Node.create ~id:1 ~n:2 () in
              Node.update remote "r1" (set "a");
              Node.update remote "r2" (set "b");
              remote
            in
            let run_step ~update ~pull ~oob i (kind, rank) =
              let item = Printf.sprintf "i%d" rank in
              match kind with
              | 0 -> update item (set (Printf.sprintf "v%d" i))
              | 1 -> pull ()
              | _ -> oob item
            in
            (* Reference: plain in-memory node. *)
            let remote_a = make_remote () in
            let reference = Node.create ~id:0 ~n:2 () in
            List.iteri
              (run_step
                 ~update:(fun item op -> Node.update reference item op)
                 ~pull:(fun () ->
                   ignore (Node.pull ~recipient:reference ~source:remote_a ()))
                 ~oob:(fun item ->
                   ignore (Node.fetch_out_of_bound ~recipient:reference ~source:remote_a item)))
              script;
            (* Durable run with a crash (close + reopen) at [crash_at]. *)
            let remote_b = make_remote () in
            let d = ref (reopen ~dir ~id:0 ~n:2) in
            List.iteri
              (fun i step ->
                if i = crash_at then begin
                  Durable.close !d;
                  d := reopen ~dir ~id:0 ~n:2
                end;
                run_step
                  ~update:(fun item op -> Durable.update !d item op)
                  ~pull:(fun () -> ignore (Durable.pull_from !d ~source:remote_b))
                  ~oob:(fun item ->
                    ignore (Durable.fetch_out_of_bound_from !d ~source:remote_b item))
                  i step)
              script;
            Durable.close !d;
            let recovered = reopen ~dir ~id:0 ~n:2 in
            let state_of node = Node.export_state node in
            let norm (s : Node.State.t) =
              (* Item lists are exported in sorted name order, so the
                 per-shard durable core compares structurally. *)
              Array.map
                (fun (sh : Node.State.shard) -> (sh.dbvv, sh.items, sh.logs))
                s.shards
            in
            let equal =
              norm (state_of reference) = norm (state_of (Durable.node recovered))
            in
            Durable.close recovered;
            equal)))

let suite =
  [
    Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
    QCheck_alcotest.to_alcotest prop_crash_recovery_equivalence;
    Alcotest.test_case "wal missing file" `Quick test_wal_missing_file_is_empty;
    Alcotest.test_case "wal reopen appends" `Quick test_wal_append_survives_reopen;
    Alcotest.test_case "wal torn tail discarded" `Quick test_wal_torn_tail_discarded;
    Alcotest.test_case "wal mid-log corruption is an error" `Quick
      test_wal_corrupt_record_is_error;
    Alcotest.test_case "wal complete-frame corruption is an error" `Quick
      test_wal_corrupt_last_record_is_error;
    Alcotest.test_case "wal reset" `Quick test_wal_reset;
    Alcotest.test_case "durable: recover updates" `Quick
      test_durable_fresh_and_recover_updates;
    Alcotest.test_case "durable: checkpoint resets journal" `Quick
      test_durable_checkpoint_resets_journal;
    Alcotest.test_case "durable: recover accepted propagation" `Quick
      test_durable_recovers_accepted_propagation;
    Alcotest.test_case "durable: recover OOB and aux" `Quick
      test_durable_recovers_oob_and_aux;
    Alcotest.test_case "durable: exact seq reproduction" `Quick
      test_durable_exact_seq_reproduction;
    Alcotest.test_case "durable: rejects mismatched identity" `Quick
      test_durable_rejects_mismatched_identity;
    Alcotest.test_case "durable: torn journal recovers prefix" `Quick
      test_durable_torn_journal_recovers_prefix;
    Alcotest.test_case "durable: recover applied push" `Quick
      test_durable_recovers_applied_push;
    Alcotest.test_case "durable: crash mid-push is atomic" `Quick
      test_durable_crash_mid_push;
    Alcotest.test_case "durable: stale push journaled but inert" `Quick
      test_durable_stale_push_journaled_but_inert;
    Alcotest.test_case "wal bytes stable with push off" `Quick
      test_wal_bytes_stable_when_push_off;
  ]

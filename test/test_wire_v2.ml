(* Wire codec v2 and the framing/negotiation layer (DESIGN.md §8):
   pinned v2 byte fixtures, v1/v2 round-trips over real messages at
   shard counts 1 and 4, the cross-version matrix (a pinned-v1 node
   negotiates everything down to exactly v1 bytes), baseline loss
   recovery via nak, and decoder fuzzing — nothing but
   [Codec.Reader.Corrupt] may escape a wire decoder. *)

module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Message = Edb_core.Message
module Peer_cache = Edb_core.Peer_cache
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Codec = Edb_persist.Codec
module Wire = Edb_persist.Wire
module Wire_v2 = Edb_persist.Wire_v2
module Frame = Edb_persist.Frame
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let encode f = Codec.Writer.with_scratch (fun w -> f w; Codec.Writer.contents w)

let expect_corrupt what f =
  match f () with
  | exception Codec.Reader.Corrupt _ -> ()
  | _ -> Alcotest.fail ("expected Corrupt: " ^ what)

(* ---------- version constants ---------- *)

let test_default_version () =
  Alcotest.(check int) "Frame.max_version" 2 Frame.max_version;
  (* The peer cache's default advertised version is the frame layer's
     maximum — the pessimistic-start negotiation relies on it. *)
  Alcotest.(check int) "fresh node advertises max_version" Frame.max_version
    (Node.wire_version (Node.create ~id:0 ~n:2 ()));
  let n = Node.create ~id:0 ~n:2 () in
  Node.set_wire_version n 1;
  Alcotest.(check int) "pinned" 1 (Node.wire_version n)

(* ---------- pinned v2 fixtures ---------- *)

(* The same scenario as the pinned v1 fixture in [Test_sharding]: two
   fresh n=2 nodes, two updates at the source, one session. Any
   byte-level drift in the v2 reply layout — varint widths, dictionary
   numbering, sparse-vv order, field order — fails here. *)
let pinned_v2_reply =
  "010100020001780100017902020100027631010001020002763201000157029520"

let v2_reply_scenario () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "v1");
  Node.update a "y" (set "v2");
  Node.handle_propagation_request a (Node.propagation_request b)

let test_v2_reply_fixture () =
  let reply = v2_reply_scenario () in
  let blob = encode (fun w -> Wire_v2.encode_propagation_reply w reply) in
  Alcotest.(check string) "pinned v2 reply bytes" pinned_v2_reply (hex blob);
  let decoded = Wire_v2.decode_propagation_reply (Codec.Reader.create blob) ~n:2 in
  Alcotest.(check bool) "round-trips" true (decoded = reply)

(* Absolute and delta request forms over a hand-built vector, so the
   widths of every field are visible in the fixture. *)
let pinned_v2_request_absolute = "030005000502ac0204110501072a000a01ec07"
let pinned_v2_request_delta = "030109fac0bef5020102a902002b04e21f"

let test_v2_request_fixtures () =
  let req =
    {
      Message.recipient = 3;
      recipient_dbvv = Vv.of_array [| 5; 0; 300; 0; 17; 1; 0; 42 |];
      recipient_shard_dbvvs = [||];
    }
  in
  let absolute = encode (fun w -> Wire_v2.encode_propagation_request w req) in
  Alcotest.(check string) "pinned absolute request" pinned_v2_request_absolute
    (hex absolute);
  let baseline = Vv.of_array [| 5; 0; 3; 0; 17; 1; 0; 42 |] in
  let delta =
    encode (fun w ->
        Wire_v2.encode_propagation_request w ~baseline:(9, baseline) req)
  in
  Alcotest.(check string) "pinned delta request" pinned_v2_request_delta (hex delta);
  Alcotest.(check bool) "delta form is smaller" true
    (String.length delta < String.length absolute);
  (* The delta decodes only against the right baseline. *)
  let resolve id = if id = 9 then Some baseline else None in
  let decoded, used =
    Wire_v2.decode_propagation_request (Codec.Reader.create delta) ~n:8 ~resolve
  in
  Alcotest.(check (option int)) "baseline id used" (Some 9) used;
  Alcotest.(check bool) "vv reconstructed" true
    (Vv.equal decoded.Message.recipient_dbvv req.Message.recipient_dbvv);
  expect_corrupt "unknown baseline" (fun () ->
      Wire_v2.decode_propagation_request (Codec.Reader.create delta) ~n:8
        ~resolve:(fun _ -> None));
  expect_corrupt "baseline checksum mismatch" (fun () ->
      Wire_v2.decode_propagation_request (Codec.Reader.create delta) ~n:8
        ~resolve:(fun _ -> Some (Vv.of_array [| 5; 1; 3; 0; 17; 1; 0; 42 |])))

(* ---------- round-trips over real protocol messages ---------- *)

(* Drive a random script on a small cluster at shard counts 1 and 4,
   then check that every request and reply of every node pair survives
   both codecs structurally intact. *)
let prop_wire_roundtrip =
  QCheck2.Gen.(
    let action = triple (int_bound 3) (int_bound 5) (int_bound 2) in
    QCheck2.Test.make
      ~name:"v1 and v2 codecs round-trip live messages (shards 1 and 4)"
      ~count:60
      (pair (oneofl [ 1; 4 ]) (list_size (int_range 0 25) action))
      (fun (shards, script) ->
        let n = 3 in
        let cluster = Cluster.create ~seed:17 ~shards ~n () in
        List.iter
          (fun (kind, rank, node) ->
            let item = Printf.sprintf "i%d" rank in
            match kind with
            | 0 | 1 ->
              Cluster.update cluster ~node ~item
                (set (Printf.sprintf "v%d-%d" rank node))
            | 2 ->
              Cluster.update cluster ~node ~item
                (Operation.Splice { offset = rank; data = "ZZ" })
            | _ ->
              ignore (Cluster.pull cluster ~recipient:node ~source:((node + 1) mod n)))
          script;
        let ok = ref true in
        for r = 0 to n - 1 do
          for s = 0 to n - 1 do
            if r <> s then begin
              let recipient = Cluster.node cluster r in
              let source = Cluster.node cluster s in
              let req = Node.propagation_request_owned recipient in
              let reply = Node.handle_propagation_request source req in
              (* v1 *)
              let req1 =
                Wire.decode_propagation_request
                  (Codec.Reader.create
                     (encode (fun w -> Wire.encode_propagation_request w req)))
              in
              let reply1 =
                Wire.decode_propagation_reply
                  (Codec.Reader.create
                     (encode (fun w -> Wire.encode_propagation_reply w reply)))
              in
              (* v2 (absolute: no baseline) *)
              let req2, used =
                Wire_v2.decode_propagation_request
                  (Codec.Reader.create
                     (encode (fun w -> Wire_v2.encode_propagation_request w req)))
                  ~n
                  ~resolve:(fun _ -> None)
              in
              let reply2 =
                Wire_v2.decode_propagation_reply
                  (Codec.Reader.create
                     (encode (fun w -> Wire_v2.encode_propagation_reply w reply)))
                  ~n
              in
              ok :=
                !ok && req1 = req && reply1 = reply && req2 = req && used = None
                && reply2 = reply
            end
          done
        done;
        !ok))

(* ---------- cross-version matrix ---------- *)

(* Converge the same diverged pair under every (requester, source)
   version combination. Everything must converge to the same state; any
   pair involving a pinned-v1 node must negotiate down to byte-for-byte
   v1 traffic; the all-v2 pair must be strictly cheaper on the wire;
   and the modeled [bytes_sent] must not depend on the codec at all. *)
let matrix_pair ~pin_a ~pin_b =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  if pin_a then Node.set_wire_version a 1;
  if pin_b then Node.set_wire_version b 1;
  Node.update a "x" (set "ax");
  Node.update a "y" (set (String.make 64 'y'));
  Node.update b "z" (set "bz");
  (* Three exchanges: divergence, then the converged idle round where
     v2's sparse/delta requests and tiny replies pay off. *)
  Frame.sync_pair a b;
  Frame.sync_pair a b;
  Frame.sync_pair a b;
  (a, b)

let test_cross_version_matrix () =
  let summarize (a, b) =
    Alcotest.(check bool) "converged" true (Vv.equal (Node.dbvv a) (Node.dbvv b));
    Alcotest.(check (option string)) "x" (Some "ax") (Node.read b "x");
    Alcotest.(check (option string)) "z" (Some "bz") (Node.read a "z");
    let ca = Node.counters a and cb = Node.counters b in
    ( ca.Counters.wire_bytes_sent + cb.Counters.wire_bytes_sent,
      ca.Counters.bytes_sent + cb.Counters.bytes_sent )
  in
  let v1v1 = summarize (matrix_pair ~pin_a:true ~pin_b:true) in
  let v1v2 = summarize (matrix_pair ~pin_a:true ~pin_b:false) in
  let v2v1 = summarize (matrix_pair ~pin_a:false ~pin_b:true) in
  let v2v2 = summarize (matrix_pair ~pin_a:false ~pin_b:false) in
  (* A pinned-v1 participant forces exactly v1 bytes in both roles. *)
  Alcotest.(check int) "v1<-v2 wire bytes = pure v1" (fst v1v1) (fst v1v2);
  Alcotest.(check int) "v2<-v1 wire bytes = pure v1" (fst v1v1) (fst v2v1);
  Alcotest.(check bool) "all-v2 strictly cheaper" true (fst v2v2 < fst v1v1);
  (* The size model is codec-independent. *)
  Alcotest.(check int) "modeled bytes: v1v2" (snd v1v1) (snd v1v2);
  Alcotest.(check int) "modeled bytes: v2v1" (snd v1v1) (snd v2v1);
  Alcotest.(check int) "modeled bytes: v2v2" (snd v1v1) (snd v2v2)

(* ---------- baseline loss recovers via nak ---------- *)

let test_nak_recovery () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "v1");
  (* Establish v2 and an acked baseline. *)
  Frame.sync_pair a b;
  Frame.sync_pair a b;
  (* The source crashes and recovers: its volatile retention slots are
     gone, so b's next delta request cannot be resolved. *)
  Peer_cache.reset (Node.peer_cache a);
  Node.update a "x" (set "v2");
  (match Frame.pull ~recipient:b ~source:a () with
  | Node.Pulled _ -> ()
  | Node.Already_current -> Alcotest.fail "b is behind, must pull");
  Alcotest.(check (option string)) "recovered and caught up" (Some "v2")
    (Node.read b "x")

(* ---------- fuzzing: only Corrupt escapes ---------- *)

(* Valid blobs for every message type, built deterministically; the
   fuzzer bit-flips them (or replaces them with garbage) and feeds every
   decoder. Succeeding is fine (the flip may land in a value); any
   exception other than [Corrupt] fails the property. *)
let fuzz_blobs =
  lazy
    (let reply = v2_reply_scenario () in
     let req =
       {
         Message.recipient = 1;
         recipient_dbvv = Vv.of_array [| 2; 1 |];
         recipient_shard_dbvvs = [||];
       }
     in
     let baseline = Vv.of_array [| 1; 1 |] in
     let oob_req = { Message.item = "x" } in
     let oob_reply =
       { Message.item = "x"; value = "v"; ivv = Vv.of_array [| 1; 0 |] }
     in
     let a = Node.create ~id:0 ~n:2 () in
     let b = Node.create ~id:1 ~n:2 () in
     Node.update a "x" (set "v1");
     let frame_req = Frame.encode_request b ~dst:0 in
     let frame_reply = Frame.respond a ~src:1 frame_req in
     let frame_nak = Frame.encode_nak a ~dst:1 ~req_id:1 in
     let frame_push =
       Frame.encode_push a ~dst:1
         [
           {
             Message.item = "x";
             seq = 1;
             ivv = Vv.of_array [| 1; 0 |];
             value = "v1";
           };
         ]
     in
     [
       ("v1 request", encode (fun w -> Wire.encode_propagation_request w req));
       ("v1 reply", encode (fun w -> Wire.encode_propagation_reply w reply));
       ("v1 oob request", encode (fun w -> Wire.encode_oob_request w oob_req));
       ("v1 oob reply", encode (fun w -> Wire.encode_oob_reply w oob_reply));
       ("v2 request", encode (fun w -> Wire_v2.encode_propagation_request w req));
       ( "v2 delta request",
         encode (fun w ->
             Wire_v2.encode_propagation_request w ~baseline:(1, baseline) req) );
       ("v2 reply", encode (fun w -> Wire_v2.encode_propagation_reply w reply));
       ("v2 oob request", encode (fun w -> Wire_v2.encode_oob_request w oob_req));
       ("v2 oob reply", encode (fun w -> Wire_v2.encode_oob_reply w oob_reply));
       ("frame request", frame_req);
       ("frame reply", frame_reply);
       ("frame nak", frame_nak);
       ("frame push", frame_push);
     ])

(* Run every decoder that could plausibly be handed this blob; each must
   return or raise [Corrupt]. *)
let feed_all_decoders blob =
  let attempts : (unit -> unit) list =
    [
      (fun () ->
        ignore
          (Wire.decode_propagation_request (Codec.Reader.create blob)));
      (fun () ->
        ignore (Wire.decode_propagation_reply (Codec.Reader.create blob)));
      (fun () -> ignore (Wire.decode_oob_request (Codec.Reader.create blob)));
      (fun () -> ignore (Wire.decode_oob_reply (Codec.Reader.create blob)));
      (fun () ->
        ignore
          (Wire_v2.decode_propagation_request (Codec.Reader.create blob) ~n:2
             ~resolve:(fun _ -> Some (Vv.of_array [| 1; 1 |]))));
      (fun () ->
        ignore (Wire_v2.decode_propagation_reply (Codec.Reader.create blob) ~n:2));
      (fun () -> ignore (Wire_v2.decode_oob_request (Codec.Reader.create blob)));
      (fun () ->
        ignore (Wire_v2.decode_oob_reply (Codec.Reader.create blob) ~n:2));
      (fun () ->
        let node = Node.create ~id:0 ~n:2 () in
        ignore (Frame.decode_request node ~src:1 blob));
      (fun () ->
        let node = Node.create ~id:1 ~n:2 () in
        ignore (Frame.decode_reply node ~src:0 blob));
      (fun () ->
        let node = Node.create ~id:1 ~n:2 () in
        ignore (Frame.decode_push node ~src:0 blob));
      (fun () -> ignore (Wire_v2.decode_push (Codec.Reader.create blob) ~n:2));
      (fun () -> ignore (Frame.describe ~n:2 blob));
    ]
  in
  List.for_all
    (fun attempt ->
      match attempt () with
      | () -> true
      | exception Codec.Reader.Corrupt _ -> true
      | exception _ -> false)
    attempts

let prop_fuzz_bit_flips =
  QCheck2.Gen.(
    let gen = triple (int_bound 12) (int_bound 10_000) (int_range 1 255) in
    QCheck2.Test.make
      ~name:"bit-flipped frames: every decoder returns or raises Corrupt"
      ~count:400 gen
      (fun (which, position, mask) ->
        let _, blob = List.nth (Lazy.force fuzz_blobs) (which mod 13) in
        let mutated = Bytes.of_string blob in
        let position = position mod Bytes.length mutated in
        Bytes.set mutated position
          (Char.chr (Char.code (Bytes.get mutated position) lxor mask));
        feed_all_decoders (Bytes.to_string mutated)))

let prop_fuzz_garbage =
  QCheck2.Test.make
    ~name:"random garbage: every decoder returns or raises Corrupt" ~count:300
    QCheck2.Gen.(string_size (int_range 0 120))
    feed_all_decoders

(* Every fuzz blob decodes cleanly before mutation (guards against the
   fuzzers vacuously passing on already-broken fixtures). *)
let test_fuzz_blobs_valid () =
  List.iter
    (fun (name, blob) ->
      match Codec.Reader.create blob with
      | (_ : Codec.Reader.t) -> ()
      | exception Codec.Reader.Corrupt msg ->
        Alcotest.fail (Printf.sprintf "fixture %s invalid: %s" name msg))
    (Lazy.force fuzz_blobs)

(* ---------- stream framing: the incremental reader ---------- *)

(* One fixture frame of every kind, produced by the real encoders over
   a negotiated pair — request, reply, nak and push all ride the same
   stream framing in the socket transport. *)
let stream_fixture_frames () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "first");
  Node.update a "y" (set (String.make 40 'p'));
  (* Negotiate v2 both ways so the push frame is encodable. *)
  Frame.sync_pair b a;
  Frame.sync_pair a b;
  let request = Frame.encode_request b ~dst:0 in
  let reply = Frame.respond a ~src:1 request in
  let nak = Frame.encode_nak a ~dst:1 ~req_id:7 in
  Node.update a "x" (set "pushed");
  let push =
    Frame.encode_push a ~dst:1
      [ { Message.item = "x"; seq = 3; ivv = Vv.of_array [| 3; 0 |]; value = "pushed" } ]
  in
  [ ("request", request); ("reply", reply); ("nak", nak); ("push", push) ]

(* Feeding a wire stream cut at every possible boundary — including
   mid-length-prefix, mid-header and mid-checksum — must reassemble
   exactly the original records, in order, with nothing left pending. *)
let test_reader_all_split_points () =
  let frames = stream_fixture_frames () in
  let stream = String.concat "" (List.map (fun (_, f) -> Frame.to_wire f) frames) in
  let expected = List.map snd frames in
  let drain reader acc =
    let rec go acc =
      match Frame.Reader.next reader with
      | Some record -> go (record :: acc)
      | None -> acc
    in
    go acc
  in
  for cut = 0 to String.length stream do
    let reader = Frame.Reader.create () in
    Frame.Reader.feed reader ~off:0 ~len:cut stream;
    let acc = drain reader [] in
    Frame.Reader.feed reader ~off:cut ~len:(String.length stream - cut) stream;
    let acc = drain reader acc in
    if List.rev acc <> expected then
      Alcotest.fail (Printf.sprintf "split at byte %d reassembled wrongly" cut);
    Alcotest.(check int)
      (Printf.sprintf "nothing pending after split at %d" cut)
      0
      (Frame.Reader.pending reader)
  done

(* The pathological stream: one byte per feed. *)
let test_reader_byte_at_a_time () =
  let frames = stream_fixture_frames () in
  let stream = String.concat "" (List.map (fun (_, f) -> Frame.to_wire f) frames) in
  let reader = Frame.Reader.create () in
  let acc = ref [] in
  String.iteri
    (fun i _ ->
      Frame.Reader.feed reader ~off:i ~len:1 stream;
      let rec go () =
        match Frame.Reader.next reader with
        | Some record ->
          acc := record :: !acc;
          go ()
        | None -> ()
      in
      go ())
    stream;
  Alcotest.(check bool) "all records, in order" true
    (List.rev !acc = List.map snd frames);
  Alcotest.(check int) "drained" 0 (Frame.Reader.pending reader)

(* Random chunking over a long stream (sizes drawn from the generator):
   the reader must be insensitive to chunk geometry. *)
let prop_reader_random_chunks =
  QCheck2.Test.make ~name:"Frame.Reader: random chunk sizes reassemble" ~count:60
    QCheck2.Gen.(list_size (int_range 1 80) (int_range 1 17))
    (fun sizes ->
      let frames = stream_fixture_frames () in
      let stream =
        String.concat "" (List.map (fun (_, f) -> Frame.to_wire f) frames)
      in
      (* Repeat the fixture stream so the chunk list spans several
         records regardless of the drawn sizes. *)
      let stream = stream ^ stream ^ stream in
      let expected =
        List.concat (List.init 3 (fun _ -> List.map snd frames))
      in
      let reader = Frame.Reader.create () in
      let acc = ref [] in
      let pos = ref 0 in
      let feed len =
        let len = min len (String.length stream - !pos) in
        if len > 0 then begin
          Frame.Reader.feed reader ~off:!pos ~len stream;
          pos := !pos + len;
          let rec go () =
            match Frame.Reader.next reader with
            | Some r ->
              acc := r :: !acc;
              go ()
            | None -> ()
          in
          go ()
        end
      in
      List.iter feed sizes;
      feed (String.length stream - !pos);
      List.rev !acc = expected && Frame.Reader.pending reader = 0)

(* A length prefix claiming more than [max_stream_record] must raise
   Corrupt as soon as the prefix is complete — before any allocation —
   even when the prefix itself arrives byte by byte. *)
let test_reader_oversized_claim () =
  let prefix = Bytes.create 4 in
  Bytes.set_int32_le prefix 0 (Int32.of_int (Frame.max_stream_record + 1));
  let prefix = Bytes.to_string prefix in
  let reader = Frame.Reader.create () in
  Frame.Reader.feed reader ~off:0 ~len:3 prefix;
  Alcotest.(check bool) "incomplete prefix: no record" true
    (Frame.Reader.next reader = None);
  Frame.Reader.feed reader ~off:3 ~len:1 prefix;
  expect_corrupt "oversized stream record" (fun () -> Frame.Reader.next reader);
  (* At the limit itself the claim is accepted and waits for bytes. *)
  let ok = Bytes.create 4 in
  Bytes.set_int32_le ok 0 (Int32.of_int Frame.max_stream_record);
  let reader = Frame.Reader.create () in
  Frame.Reader.feed reader (Bytes.to_string ok);
  Alcotest.(check bool) "limit-sized claim pends" true
    (Frame.Reader.next reader = None)

(* to_wire round-trips a record unchanged (prefix + payload, nothing
   else), so the socket transport ships byte-identical frames. *)
let test_to_wire_roundtrip () =
  List.iter
    (fun (name, frame) ->
      let wire = Frame.to_wire frame in
      Alcotest.(check int)
        (name ^ ": prefix adds 4 bytes")
        (String.length frame + 4) (String.length wire);
      Alcotest.(check string)
        (name ^ ": payload unchanged")
        frame
        (String.sub wire 4 (String.length frame)))
    (stream_fixture_frames ())

let suite =
  [
    Alcotest.test_case "default version constants" `Quick test_default_version;
    Alcotest.test_case "v2 reply fixture (pinned)" `Quick test_v2_reply_fixture;
    Alcotest.test_case "v2 request fixtures (pinned)" `Quick
      test_v2_request_fixtures;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "cross-version matrix" `Quick test_cross_version_matrix;
    Alcotest.test_case "nak recovery after baseline loss" `Quick
      test_nak_recovery;
    Alcotest.test_case "fuzz fixtures valid" `Quick test_fuzz_blobs_valid;
    QCheck_alcotest.to_alcotest prop_fuzz_bit_flips;
    QCheck_alcotest.to_alcotest prop_fuzz_garbage;
    Alcotest.test_case "stream reader: every split point" `Quick
      test_reader_all_split_points;
    Alcotest.test_case "stream reader: byte at a time" `Quick
      test_reader_byte_at_a_time;
    QCheck_alcotest.to_alcotest prop_reader_random_chunks;
    Alcotest.test_case "stream reader: oversized claim is corrupt" `Quick
      test_reader_oversized_claim;
    Alcotest.test_case "to_wire round-trip" `Quick test_to_wire_roundtrip;
  ]

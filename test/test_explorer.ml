(* The randomized fault-schedule explorer: 200+ schedules across three
   topologies must pass every check, an injected corruption must be
   caught and shrunk, and everything must be deterministic in the
   seed. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Conflict = Edb_core.Conflict
module Operation = Edb_store.Operation
module Explorer = Edb_check.Explorer
module Oracle = Edb_check.Oracle

let set v = Operation.Set v

let expect_pass label = function
  | Ok ({ Explorer.schedules } : Explorer.report) ->
    Alcotest.(check bool) (label ^ " explored") true (schedules > 0)
  | Error msg -> Alcotest.fail (label ^ " failed:\n" ^ msg)

(* 70 schedules per topology = 210 total, every one through the full
   invariant + oracle-equivalence + conflict-exactness battery. *)
let test_explorer_passes () =
  List.iter
    (fun topology ->
      expect_pass
        (Explorer.topology_name topology)
        (Explorer.run ~topology ~seed:11 ~runs:70 ()))
    [ Explorer.Clique; Explorer.Ring; Explorer.Star ]

let test_explorer_passes_oplog () =
  expect_pass "op-log mode"
    (Explorer.run ~mode:(Node.Op_log { depth = 6 }) ~seed:13 ~runs:25 ())

(* Mutation smoke test: schedules that corrupt a node's state behind
   the protocol's back must be caught, and the report must carry a
   shrunk counterexample plus the replay seed. *)
let test_explorer_catches_mutation () =
  match Explorer.run ~mutate:true ~seed:42 ~runs:20 () with
  | Ok _ -> Alcotest.fail "injected corruption went undetected"
  | Error msg ->
    Alcotest.(check bool) "reports a counterexample" true
      (Astring.String.is_infix ~affix:"counterexample" msg);
    Alcotest.(check bool) "reports the replay seed" true
      (Astring.String.is_infix ~affix:"--seed 42" msg)

(* Determinism: the same seed must explore the same schedules and
   shrink to the identical counterexample report. *)
let test_explorer_deterministic () =
  let once () =
    match Explorer.run ~mutate:true ~seed:77 ~runs:10 () with
    | Ok _ -> Alcotest.fail "injected corruption went undetected"
    | Error msg -> msg
  in
  Alcotest.(check string) "same seed, same report" (once ()) (once ())

(* Regression for conflict-detection exactness (§3, §7): three origins
   update the same item concurrently; after full anti-entropy, every
   node's conflict set must equal the naive oracle's — no missed and no
   spurious conflicts. *)
let test_conflict_exactness_three_origins () =
  let n = 4 in
  let cluster = Cluster.create ~seed:3 ~n () in
  let oracle = Oracle.create ~n in
  let update node op =
    Cluster.update cluster ~node ~item:"x" op;
    Oracle.update oracle ~node ~item:"x" ~op
  in
  let session ~src ~dst =
    ignore (Cluster.pull cluster ~recipient:dst ~source:src);
    Oracle.session oracle ~src ~dst
  in
  (* Three concurrent writers on "x"; node 3 only observes. *)
  update 0 (set "a");
  update 1 (set "b");
  update 2 (set "c");
  for _round = 1 to n + 1 do
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if src <> dst then session ~src ~dst
      done
    done
  done;
  for node = 0 to n - 1 do
    let real =
      List.sort_uniq String.compare
        (List.map (fun (c : Conflict.t) -> c.item) (Node.conflicts (Cluster.node cluster node)))
    in
    Alcotest.(check (list string))
      (Printf.sprintf "node %d conflict set" node)
      (Oracle.conflict_items oracle ~node)
      real
  done;
  (* Every node saw the three-way race. *)
  for node = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d flagged x" node)
      true
      (Oracle.conflicted oracle ~node ~item:"x")
  done

(* A conflict-free workload through run_schedule directly: must pass
   and leave converged replicas. *)
let test_run_schedule_direct () =
  let schedule =
    {
      Explorer.nodes = 3;
      items = 2;
      topology = Explorer.Clique;
      loss = 0.0;
      duplication = 0.0;
      reorder = 0.0;
      seed = 9;
      steps =
        [
          Explorer.Update { node = 0; item = 0; op = set "v1" };
          Explorer.Sync { src = 0; dst = 1 };
          Explorer.Fault (Explorer.Crash 2);
          Explorer.Update { node = 0; item = 1; op = set "v2" };
          Explorer.Fault (Explorer.Recover 2);
          Explorer.Sync { src = 1; dst = 2 };
        ];
      corrupt_at = None;
      granular = false;
      shards = 1;
    }
  in
  match Explorer.run_schedule schedule with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* The same conflict-free workload over the message-granular transport:
   request and reply travel (and fail) separately, yet the run must
   still pass every lockstep check and converge. *)
let test_run_schedule_granular_direct () =
  let schedule =
    {
      Explorer.nodes = 3;
      items = 2;
      topology = Explorer.Clique;
      loss = 0.1;
      duplication = 0.1;
      reorder = 0.1;
      seed = 9;
      steps =
        [
          Explorer.Update { node = 0; item = 0; op = set "v1" };
          Explorer.Sync { src = 0; dst = 1 };
          Explorer.Fault (Explorer.Crash 2);
          Explorer.Update { node = 0; item = 1; op = set "v2" };
          Explorer.Fault (Explorer.Recover 2);
          Explorer.Sync { src = 1; dst = 2 };
        ];
      corrupt_at = None;
      granular = true;
      shards = 1;
    }
  in
  match Explorer.run_schedule schedule with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* The headline chaos soak: 200+ message-granular schedules — per-message
   loss/duplication/reordering, crashes and partitions landing between a
   session's request and reply, timeout/retry/backoff active — all under
   the full invariant + lockstep-oracle battery. *)
let test_explorer_granular_passes () =
  List.iter
    (fun topology ->
      expect_pass
        ("granular " ^ Explorer.topology_name topology)
        (Explorer.run ~granular:true ~topology ~seed:19 ~runs:70 ()))
    [ Explorer.Clique; Explorer.Ring; Explorer.Star ]

(* Granular schedules must still catch out-of-band state corruption. *)
let test_explorer_granular_catches_mutation () =
  match Explorer.run ~granular:true ~mutate:true ~seed:42 ~runs:20 () with
  | Ok _ -> Alcotest.fail "injected corruption went undetected"
  | Error msg ->
    Alcotest.(check bool) "reports a counterexample" true
      (Astring.String.is_infix ~affix:"counterexample" msg);
    Alcotest.(check bool) "schedule is granular" true
      (Astring.String.is_infix ~affix:"granular" msg)

(* Determinism must survive the extra per-message randomness: same seed,
   same schedules, same shrunk counterexample. *)
let test_explorer_granular_deterministic () =
  let once () =
    match Explorer.run ~granular:true ~mutate:true ~seed:77 ~runs:10 () with
    | Ok _ -> Alcotest.fail "injected corruption went undetected"
    | Error msg -> msg
  in
  Alcotest.(check string) "same seed, same report" (once ()) (once ())

(* Push-channel equivalence (DESIGN.md §10): 100 message-granular fault
   schedules per shard count, each executed push-on and pull-only under
   identical randomness; the converged states must be bit-identical.
   Anti-entropy alone carries correctness — the push channel can drop,
   duplicate, reorder or lose anything and the outcome cannot change. *)
let test_push_equivalence () =
  List.iter
    (fun shards ->
      expect_pass
        (Printf.sprintf "push equivalence, shards=%d" shards)
        (Explorer.run_push_equivalence ~shards ~seed:23 ~runs:100 ()))
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "210 schedules, 3 topologies" `Quick test_explorer_passes;
    Alcotest.test_case "op-log mode schedules" `Quick test_explorer_passes_oplog;
    Alcotest.test_case "mutation smoke test" `Quick test_explorer_catches_mutation;
    Alcotest.test_case "deterministic in the seed" `Quick test_explorer_deterministic;
    Alcotest.test_case "conflict exactness, 3 origins" `Quick
      test_conflict_exactness_three_origins;
    Alcotest.test_case "direct schedule run" `Quick test_run_schedule_direct;
    Alcotest.test_case "direct granular schedule run" `Quick
      test_run_schedule_granular_direct;
    Alcotest.test_case "210 granular schedules, 3 topologies" `Quick
      test_explorer_granular_passes;
    Alcotest.test_case "granular mutation smoke test" `Quick
      test_explorer_granular_catches_mutation;
    Alcotest.test_case "granular deterministic in the seed" `Quick
      test_explorer_granular_deterministic;
    Alcotest.test_case "200 push-equivalence schedules, shards {1,4}" `Quick
      test_push_equivalence;
  ]

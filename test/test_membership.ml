(* Dynamic membership: join, graceful leave, dead-node retirement with
   version-vector GC, the crash-safe durable reshape records, and the
   randomized membership-equivalence explorer. *)

module Group = Edb_membership.Group
module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Peer_cache = Edb_core.Peer_cache
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Vv = Edb_vv.Version_vector
module Durable = Edb_persist.Durable_node
module Explorer = Edb_check.Explorer
module Fault = Edb_fault.Fault

let set v = Operation.Set v

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let check_group g =
  match Group.check g with Ok () -> () | Error msg -> Alcotest.fail msg

let sync g a b = ok (Group.sync g ~a ~b)

(* Sessions over every live pair plus a controller pass, repeated until
   nothing changes — the test-side quiescence drive. *)
let settle g =
  for _ = 1 to 8 do
    let names = Array.to_list (Group.roster g) in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then ignore (Group.sync g ~a ~b : (unit, string) result))
          names)
      names;
    ignore (Group.observe g : Group.event list)
  done

(* ---------- Join ---------- *)

let test_join_bootstraps_and_activates () =
  let g = Group.create ~n:3 () in
  ok (Group.update g ~name:0 ~item:"a" (set "v0"));
  ok (Group.update g ~name:1 ~item:"b" (set "v1"));
  sync g 0 1;
  sync g 1 2;
  let name = ok (Group.join g ~donor:1) in
  Alcotest.(check int) "fresh stable name" 3 name;
  Alcotest.(check string) "joining" "joining"
    (Group.status_to_string (Group.status g ~name));
  (* The catch-up window serves no reads... *)
  (match Group.read g ~name ~item:"a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "joining member served a read");
  (* ...and accepts no user updates. *)
  (match Group.update g ~name ~item:"c" (set "nope") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "joining member accepted an update");
  (* Every member that reconciles extends its vectors for the newcomer. *)
  sync g 0 1;
  Alcotest.(check int) "donor extended" 4 (Node.dimension (Group.node g ~name:1));
  Alcotest.(check int) "peer extended" 4 (Node.dimension (Group.node g ~name:0));
  settle g;
  Alcotest.(check string) "activated" "active"
    (Group.status_to_string (Group.status g ~name));
  Alcotest.(check (option string)) "reads after activation" (Some "v0")
    (ok (Group.read g ~name ~item:"a"));
  Alcotest.(check int) "join counted" 1
    (Group.counters_total g).Counters.joins_completed;
  check_group g;
  Alcotest.(check bool) "converged" true (Group.converged g)

let test_crash_during_join_stalls_then_finishes () =
  let g = Group.create ~n:3 () in
  ok (Group.update g ~name:0 ~item:"a" (set "v0"));
  sync g 0 1;
  let name = ok (Group.join g ~donor:0) in
  ok (Group.update g ~name:0 ~item:"a" (set "v1"));
  Group.crash g ~name;
  (* A crashed joiner cannot activate; nothing corrupts meanwhile. *)
  for _ = 1 to 3 do
    sync g 0 1;
    sync g 1 2;
    ignore (Group.observe g : Group.event list)
  done;
  Alcotest.(check string) "still joining" "joining"
    (Group.status_to_string (Group.status g ~name));
  check_group g;
  ok (Group.recover g ~name);
  settle g;
  Alcotest.(check string) "activates after recovery" "active"
    (Group.status_to_string (Group.status g ~name));
  Alcotest.(check bool) "converged" true (Group.converged g);
  check_group g

(* ---------- Graceful leave ---------- *)

let test_leave_drains_then_departs () =
  let g = Group.create ~n:3 () in
  ok (Group.update g ~name:2 ~item:"x" (set "last-words"));
  ok (Group.leave g ~name:2);
  (* Draining members refuse user updates but still serve reads and
     still run anti-entropy — they must, to finish. *)
  (match Group.update g ~name:2 ~item:"x" (set "more") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "draining member accepted an update");
  Alcotest.(check (option string)) "still serves reads" (Some "last-words")
    (ok (Group.read g ~name:2 ~item:"x"));
  Alcotest.(check int) "not departed before a peer subsumes it" 3
    (Group.live_count g);
  settle g;
  Alcotest.(check string) "departed" "departed"
    (Group.status_to_string (Group.status g ~name:2));
  Alcotest.(check int) "two participants left" 2 (Group.live_count g);
  (* The update survived the drain: it was propagated before departure. *)
  Alcotest.(check (option string)) "drained update survives" (Some "last-words")
    (ok (Group.read g ~name:0 ~item:"x"));
  check_group g

let test_peer_cache_forgets_departed_peer () =
  let g = Group.create ~n:3 () in
  ok (Group.update g ~name:1 ~item:"k" (set "v"));
  sync g 0 1;
  sync g 1 2;
  let cache0 = Node.peer_cache (Group.node g ~name:0) in
  Alcotest.(check bool) "proven DBVV cached after the session" true
    (Peer_cache.proven cache0 ~peer:1 <> None);
  ok (Group.leave g ~name:1);
  settle g;
  Alcotest.(check string) "departed" "departed"
    (Group.status_to_string (Group.status g ~name:1));
  (* Proven lower bounds must not outlive the peer they were proven
     against: the departed slot will never answer a session again. *)
  Alcotest.(check (option string)) "cached baseline forgotten" None
    (Option.map Vv.to_string (Peer_cache.proven cache0 ~peer:1))

(* ---------- Retirement ---------- *)

let test_retirement_gcs_the_component () =
  let g = Group.create ~n:4 () in
  ok (Group.update g ~name:3 ~item:"doomed" (set "payload"));
  settle g;
  Group.crash g ~name:3;
  ok (Group.retire g ~name:3);
  (match Group.recover g ~name:3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "retirement victim recovered");
  Alcotest.(check (list int)) "fence pending" [ 3 ] (Group.pending_fences g);
  settle g;
  Alcotest.(check (list int)) "fence complete" [] (Group.pending_fences g);
  Alcotest.(check string) "retired" "retired"
    (Group.status_to_string (Group.status g ~name:3));
  Alcotest.(check int) "roster shrank" 3 (Array.length (Group.roster g));
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "member %d dropped the component" name)
        3
        (Node.dimension (Group.node g ~name)))
    [ 0; 1; 2 ];
  (* The victim's data survives its vector component. *)
  Alcotest.(check (option string)) "retired member's update survives"
    (Some "payload")
    (ok (Group.read g ~name:0 ~item:"doomed"));
  let totals = Group.counters_total g in
  Alcotest.(check int) "retirement counted" 3 totals.Counters.retirements_completed;
  Alcotest.(check bool) "components GCed" true
    (totals.Counters.vector_components_gced > 0);
  check_group g;
  Alcotest.(check bool) "converged" true (Group.converged g)

(* Retire-while-partitioned: a required acker that cannot hear about
   the fence keeps completion unreachable — the fence stalls, vectors
   stay intact, and completion arrives only when the partition heals. *)
let test_retirement_stalls_until_partition_heals () =
  let g = Group.create ~n:4 () in
  ok (Group.update g ~name:3 ~item:"d" (set "v"));
  sync g 3 0;
  sync g 0 1;
  (* Member 2 is "partitioned": it never hears a session below. *)
  Group.crash g ~name:3;
  ok (Group.retire g ~name:3);
  for _ = 1 to 4 do
    sync g 0 1;
    ignore (Group.observe g : Group.event list)
  done;
  Alcotest.(check (list int)) "fence stalls on the silent member" [ 3 ]
    (Group.pending_fences g);
  Alcotest.(check int) "no component dropped while stalled" 4
    (Node.dimension (Group.node g ~name:0));
  check_group g;
  (* Heal: one session with the laggard completes the fence. *)
  sync g 1 2;
  sync g 0 2;
  sync g 0 1;
  ignore (Group.observe g : Group.event list);
  Alcotest.(check (list int)) "fence completes after heal" []
    (Group.pending_fences g);
  (* Members apply [Retire_done] on their next catch-up. *)
  ignore (Group.observe g : Group.event list);
  Alcotest.(check int) "component dropped everywhere" 3
    (Node.dimension (Group.node g ~name:0));
  check_group g

let test_retire_refused_for_live_member () =
  let g = Group.create ~n:3 () in
  match Group.retire g ~name:1 with
  | Error msg ->
    Alcotest.(check bool) "message names the state" true
      (Astring.String.is_infix ~affix:"active" msg)
  | Ok () -> Alcotest.fail "retired a live active member"

(* ---------- Error-message surgery (satellite) ---------- *)

let test_replace_node_errors_carry_ids () =
  let cluster = Cluster.create ~n:3 () in
  (match Cluster.replace_node cluster 1 (Node.create ~id:2 ~n:3 ()) with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names slot and node id" true
      (Astring.String.is_infix ~affix:"slot 1" msg
      && Astring.String.is_infix ~affix:"node id 2" msg)
  | () -> Alcotest.fail "id mismatch accepted");
  match Cluster.replace_node cluster 1 (Node.create ~id:1 ~n:4 ()) with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names both dimensions" true
      (Astring.String.is_infix ~affix:"n = 3" msg
      && Astring.String.is_infix ~affix:"dimension = 4" msg)
  | () -> Alcotest.fail "dimension mismatch accepted"

let test_vv_surgery_bounds () =
  let v = Vv.of_array [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "extend appends a zero" [| 1; 2; 3; 0 |]
    (Vv.to_array (Vv.extend v));
  Alcotest.(check (array int)) "remove drops the slot" [| 1; 3 |]
    (Vv.to_array (Vv.remove_component v ~at:1));
  (match Vv.remove_component v ~at:3 with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "bounds named" true
      (Astring.String.is_infix ~affix:"index 3" msg)
  | _ -> Alcotest.fail "out-of-bounds removal accepted");
  match Vv.remove_component (Vv.of_array [| 5 |]) ~at:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removed the last component"

(* ---------- Durable membership records (tag 4) ---------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "edb-member" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let reopen ~dir ~id ~n =
  match Durable.open_or_create ~dir ~id ~n () with
  | Ok (d, _) -> d
  | Error msg -> Alcotest.fail msg

let test_durable_membership_replay () =
  with_temp_dir (fun dir ->
      let d = reopen ~dir ~id:0 ~n:3 in
      Durable.update d "k" (set "v");
      Durable.extend_dimension d ~name:3;
      Durable.update d "k" (set "v2");
      Durable.retire_component d ~slot:1 ~name:1;
      Alcotest.(check int) "post-reshape dimension" 3
        (Node.dimension (Durable.node d));
      Durable.close d;
      (* Recovery replays the tag-4 records on the n=3 checkpoint and
         lands on the post-reshape geometry. *)
      let d = reopen ~dir ~id:0 ~n:3 in
      Alcotest.(check int) "recovered dimension" 3 (Node.dimension (Durable.node d));
      Alcotest.(check (option string)) "recovered value" (Some "v2")
        (Node.read (Durable.node d) "k");
      (match Durable.membership_log d with
      | [ Durable.Extend { name = 3 }; Durable.Retire { slot = 1; name = 1 } ] -> ()
      | _ -> Alcotest.fail "membership log not recovered");
      (match Node.check_invariants (Durable.node d) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* A checkpoint folds the reshapes in: reopening now needs the
         post-reshape geometry and an empty membership log. *)
      Durable.checkpoint d;
      Alcotest.(check (list (of_pp Fmt.nop))) "membership log reset" []
        (Durable.membership_log d);
      Durable.close d;
      let d = reopen ~dir ~id:0 ~n:3 in
      Alcotest.(check int) "checkpointed dimension" 3
        (Node.dimension (Durable.node d));
      Durable.close d)

(* Crash-atomicity around the reshape: before the journal append the
   reshape is lost entirely (the membership layer re-issues it); after
   it, recovery replays the reshape. Never a torn middle. *)
let test_durable_membership_crash_windows () =
  List.iter
    (fun (fault, reshaped_after_recovery) ->
      with_temp_dir (fun dir ->
          Fault.clear ();
          let d = reopen ~dir ~id:0 ~n:3 in
          Durable.update d "k" (set "v");
          let crashed =
            try
              Fault.with_point fault (fun () ->
                  Durable.extend_dimension d ~name:3;
                  false)
            with Fault.Injected _ -> true
          in
          Alcotest.(check bool) (fault ^ " fired") true crashed;
          let d' = reopen ~dir ~id:0 ~n:3 in
          let expected = if reshaped_after_recovery then 4 else 3 in
          Alcotest.(check int)
            (fault ^ ": recovered dimension")
            expected
            (Node.dimension (Durable.node d'));
          Alcotest.(check (option string)) (fault ^ ": data intact") (Some "v")
            (Node.read (Durable.node d') "k");
          (match Node.check_invariants (Durable.node d') with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg);
          Durable.close d'))
    [ ("durable.journal.before", false); ("durable.apply.before", true) ]

(* ---------- Randomized equivalence (the tentpole property) ---------- *)

let expect_pass label = function
  | Ok ({ Explorer.schedules } : Explorer.report) ->
    Alcotest.(check bool) (label ^ " explored") true (schedules > 0)
  | Error msg -> Alcotest.fail (label ^ " failed:\n" ^ msg)

let test_membership_equivalence () =
  expect_pass "membership equivalence"
    (Explorer.run_membership_equivalence ~seed:7 ~runs:40 ())

let test_membership_equivalence_sharded () =
  expect_pass "membership equivalence (4 shards)"
    (Explorer.run_membership_equivalence ~shards:4 ~seed:19 ~runs:25 ())

let suite =
  [
    Alcotest.test_case "join bootstraps and activates" `Quick
      test_join_bootstraps_and_activates;
    Alcotest.test_case "crash during join stalls then finishes" `Quick
      test_crash_during_join_stalls_then_finishes;
    Alcotest.test_case "leave drains then departs" `Quick
      test_leave_drains_then_departs;
    Alcotest.test_case "peer cache forgets a departed peer" `Quick
      test_peer_cache_forgets_departed_peer;
    Alcotest.test_case "retirement GCs the component" `Quick
      test_retirement_gcs_the_component;
    Alcotest.test_case "retirement stalls until the partition heals" `Quick
      test_retirement_stalls_until_partition_heals;
    Alcotest.test_case "retire refused for a live member" `Quick
      test_retire_refused_for_live_member;
    Alcotest.test_case "replace_node errors carry ids" `Quick
      test_replace_node_errors_carry_ids;
    Alcotest.test_case "version-vector surgery bounds" `Quick test_vv_surgery_bounds;
    Alcotest.test_case "durable membership replay" `Quick
      test_durable_membership_replay;
    Alcotest.test_case "durable membership crash windows" `Quick
      test_durable_membership_crash_windows;
    Alcotest.test_case "membership equivalence" `Slow test_membership_equivalence;
    Alcotest.test_case "membership equivalence (sharded)" `Slow
      test_membership_equivalence_sharded;
  ]

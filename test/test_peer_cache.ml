(* The peer-knowledge cache (Edb_core.Peer_cache): steady-state session
   skips must be exact — zero messages on a converged cluster, yet a
   cache-enabled cluster indistinguishable from a plain one on any
   schedule — and crash recovery must invalidate cached knowledge. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Peer_cache = Edb_core.Peer_cache
module Counters = Edb_metrics.Counters
module Operation = Edb_store.Operation
module Snapshot = Edb_persist.Snapshot
module Explorer = Edb_check.Explorer
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

(* Seed a little data and converge deterministically (n ring rounds
   propagate transitively from every node to every other, Theorem 5). *)
let converged_cluster ?(shards = 1) ~cache ~n () =
  let cluster = Cluster.create ~cache ~shards ~n () in
  for rank = 0 to (2 * n) - 1 do
    Cluster.update cluster ~node:(rank mod n)
      ~item:(Printf.sprintf "item%d" rank)
      (set (Printf.sprintf "v%d" rank))
  done;
  for _ = 1 to n do
    Cluster.ring_pull_round cluster
  done;
  Alcotest.(check bool) "setup converged" true (Cluster.converged cluster);
  cluster

(* Acceptance headline: on a converged 16-node cluster every steady
   ring-round session is skipped from the cache — zero messages, zero
   sessions, only [sessions_skipped_cached] moves. *)
let test_skip_on_converged () =
  let n = 16 in
  let cluster = converged_cluster ~cache:true ~n () in
  (* One warm round: sessions run once more and prime currency marks. *)
  Cluster.ring_pull_round cluster;
  Cluster.reset_counters cluster;
  let rounds = 5 in
  for _ = 1 to rounds do
    Cluster.ring_pull_round cluster
  done;
  let c = Cluster.total_counters cluster in
  Alcotest.(check int) "zero messages" 0 c.Counters.messages;
  Alcotest.(check int) "zero bytes" 0 c.Counters.bytes_sent;
  Alcotest.(check int) "zero sessions run" 0 c.Counters.propagation_sessions;
  Alcotest.(check int) "skips are not no-op sessions" 0 c.Counters.noop_sessions;
  Alcotest.(check int) "every session skipped" (rounds * n)
    c.Counters.sessions_skipped_cached;
  (* And the skip reports the same result the session would have. *)
  (match Cluster.pull cluster ~recipient:0 ~source:1 with
  | Node.Already_current -> ()
  | Node.Pulled _ -> Alcotest.fail "skip should report Already_current")

(* Liveness: an update anywhere bumps the cluster epoch and refutes
   every currency mark, so propagation resumes and the new value still
   reaches every replica. *)
let test_update_invalidates_skip () =
  let n = 6 in
  let cluster = converged_cluster ~cache:true ~n () in
  Cluster.ring_pull_round cluster;
  Cluster.reset_counters cluster;
  Cluster.ring_pull_round cluster;
  let steady = Cluster.total_counters cluster in
  Alcotest.(check int) "steady state fully cached" 0 steady.Counters.messages;
  Cluster.update cluster ~node:2 ~item:"fresh" (set "new-value");
  for _ = 1 to n do
    Cluster.ring_pull_round cluster
  done;
  for node = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d sees the update" node)
      (Some "new-value")
      (Cluster.read cluster ~node ~item:"fresh")
  done;
  Alcotest.(check bool) "re-converged" true (Cluster.converged cluster);
  let after = Cluster.total_counters cluster in
  Alcotest.(check bool) "sessions actually ran" true
    (after.Counters.propagation_sessions > 0)

(* Crash recovery: restoring a node from an old checkpoint is a
   rollback, which breaks the monotone-DBVV assumption behind cached
   lower bounds. [Cluster.replace_node] must forget every other node's
   knowledge of the peer (and the restored node starts empty), so no
   stale skip can strand the rolled-back node. *)
let test_crash_restore_invalidates () =
  let n = 3 in
  let cluster = converged_cluster ~cache:true ~n () in
  Cluster.ring_pull_round cluster;
  (* Checkpoint node 1 now, then move the whole cluster past it. *)
  let blob = Snapshot.encode (Cluster.node cluster 1) in
  Cluster.update cluster ~node:0 ~item:"later" (set "after-checkpoint");
  for _ = 1 to n do
    Cluster.ring_pull_round cluster
  done;
  Cluster.ring_pull_round cluster;
  Alcotest.(check (option string)) "node 1 saw the later update"
    (Some "after-checkpoint")
    (Cluster.read cluster ~node:1 ~item:"later");
  (* Crash node 1 and recover it from the stale checkpoint. *)
  let restored =
    match Snapshot.decode blob with
    | Ok node -> node
    | Error msg -> Alcotest.fail ("snapshot decode failed: " ^ msg)
  in
  Cluster.replace_node cluster 1 restored;
  Alcotest.(check bool) "restored node's cache starts empty" true
    (Peer_cache.is_empty (Node.peer_cache (Cluster.node cluster 1)));
  Alcotest.(check bool) "peers forgot the replaced node" true
    (Peer_cache.proven (Node.peer_cache (Cluster.node cluster 0)) ~peer:1 = None
    && Peer_cache.proven (Node.peer_cache (Cluster.node cluster 2)) ~peer:1 = None);
  Alcotest.(check (option string)) "rolled back before the update" None
    (Cluster.read cluster ~node:1 ~item:"later");
  (* No stale skip: ordinary anti-entropy must bring it back. *)
  for _ = 1 to n do
    Cluster.ring_pull_round cluster
  done;
  Alcotest.(check (option string)) "recovered node caught up"
    (Some "after-checkpoint")
    (Cluster.read cluster ~node:1 ~item:"later");
  Alcotest.(check bool) "converged after recovery" true
    (Cluster.converged cluster)

(* Epoch monotonicity across rollback: replacing a node must advance
   the epoch even though the restored node's revision restarts at
   zero — otherwise an old currency mark could resurface. *)
let test_epoch_monotone_across_replace () =
  let cluster = converged_cluster ~cache:true ~n:3 () in
  let before = Cluster.epoch cluster in
  let blob = Snapshot.encode (Cluster.node cluster 1) in
  let restored =
    match Snapshot.decode blob with
    | Ok node -> node
    | Error msg -> Alcotest.fail ("snapshot decode failed: " ^ msg)
  in
  Cluster.replace_node cluster 1 restored;
  Alcotest.(check bool) "epoch strictly advanced" true
    (Cluster.epoch cluster > before)

(* Singleton cluster regression: with n = 1 there is no peer to pull
   from; a random round must be a harmless no-op instead of asking the
   PRNG for an integer in an empty range. *)
let test_singleton_cluster () =
  List.iter
    (fun cache ->
      let cluster = Cluster.create ~cache ~n:1 () in
      Cluster.update cluster ~node:0 ~item:"x" (set "v");
      Cluster.random_pull_round cluster;
      Cluster.ring_pull_round cluster;
      let c = Cluster.total_counters cluster in
      Alcotest.(check int) "no sessions on a singleton" 0
        c.Counters.propagation_sessions;
      Alcotest.(check int) "no messages on a singleton" 0 c.Counters.messages;
      Alcotest.(check bool) "singleton trivially converged" true
        (Cluster.converged cluster);
      Alcotest.(check int) "sync_until_converged is immediate" 0
        (Cluster.sync_until_converged cluster))
    [ false; true ]

(* ---------- Cache-on vs cache-off equivalence ---------- *)

(* Observable state of a cluster: per node, the DBVV plus every item's
   value — plus the per-node conflict count. *)
let observe ~items cluster =
  List.init (Cluster.n cluster) (fun node ->
      let nd = Cluster.node cluster node in
      ( Vv.to_array (Node.dbvv nd),
        List.init items (fun rank ->
            Cluster.read cluster ~node ~item:(Printf.sprintf "i%d" rank)),
        List.length (Node.conflicts nd) ))

(* Property: on any single-writer script (shared generator in
   [Gen.actions]) the cache-enabled cluster traverses exactly the same
   states as the plain one — equal reads, DBVVs and conflict sets —
   and never sends more messages. *)
let prop_cache_equivalent =
  let nodes = 4 and items = 5 in
  QCheck2.Test.make ~count:120 ~name:"cache-on ≡ cache-off (scripted runs)"
    (Gen.actions ~nodes ~items)
    (fun script ->
      let run ~cache =
        let cluster = Cluster.create ~cache ~seed:9 ~n:nodes () in
        List.iter
          (fun (a : Gen.action) ->
            match a with
            | Gen.Update { owner_choice; item_rank } ->
              let owner = item_rank mod nodes in
              ignore owner_choice;
              Cluster.update cluster ~node:owner
                ~item:(Printf.sprintf "i%d" item_rank)
                (set (Printf.sprintf "v%d" owner_choice))
            | Gen.Pull { recipient; source } ->
              if recipient <> source then
                ignore (Cluster.pull cluster ~recipient ~source)
            | Gen.Oob { recipient; source; item_rank } ->
              if recipient <> source then
                ignore
                  (Cluster.fetch_out_of_bound cluster ~recipient ~source
                     (Printf.sprintf "i%d" item_rank)))
          script;
        (* Drive both variants to quiescence the same way. *)
        for _ = 1 to nodes + 1 do
          Cluster.ring_pull_round cluster
        done;
        (observe ~items cluster, (Cluster.total_counters cluster).Counters.messages)
      in
      let plain, plain_msgs = run ~cache:false in
      let cached, cached_msgs = run ~cache:true in
      if plain <> cached then
        QCheck2.Test.fail_report "cache-enabled run diverged from plain run";
      if cached_msgs > plain_msgs then
        QCheck2.Test.fail_reportf "cache sent more messages (%d > %d)" cached_msgs
          plain_msgs;
      true)

(* The heavyweight version: 210 randomized fault schedules (crashes,
   recoveries, partitions, lossy/duplicating/reordering network) through
   the explorer's cache-equivalence harness. *)
let test_explorer_equivalence () =
  match Explorer.run_equivalence ~seed:23 ~runs:210 () with
  | Ok ({ Explorer.schedules } : Explorer.report) ->
    Alcotest.(check bool) "explored enough schedules" true (schedules >= 200)
  | Error msg -> Alcotest.fail ("cache equivalence failed:\n" ^ msg)

(* Sharded steady state: per-shard proven knowledge must make a
   converged sharded cluster exactly as quiet as a flat one. *)
let test_skip_on_converged_sharded () =
  let n = 6 in
  let cluster = converged_cluster ~shards:4 ~cache:true ~n () in
  Cluster.ring_pull_round cluster;
  Cluster.reset_counters cluster;
  Cluster.ring_pull_round cluster;
  let c = Cluster.total_counters cluster in
  Alcotest.(check int) "zero messages" 0 c.Counters.messages;
  Alcotest.(check int) "every session skipped" n c.Counters.sessions_skipped_cached

let suite =
  [
    Alcotest.test_case "skips every session on a converged cluster" `Quick
      test_skip_on_converged;
    Alcotest.test_case "sharded steady state is fully cached" `Quick
      test_skip_on_converged_sharded;
    Alcotest.test_case "an update refutes cached currency (liveness)" `Quick
      test_update_invalidates_skip;
    Alcotest.test_case "crash/restore forgets cached knowledge" `Quick
      test_crash_restore_invalidates;
    Alcotest.test_case "epoch stays monotone across replace_node" `Quick
      test_epoch_monotone_across_replace;
    Alcotest.test_case "singleton cluster rounds are no-ops" `Quick
      test_singleton_cluster;
    QCheck_alcotest.to_alcotest prop_cache_equivalent;
    Alcotest.test_case "explorer: 210 fault schedules, cache ≡ plain" `Quick
      test_explorer_equivalence;
  ]

(* The failpoint registry, and the recovery guarantees it exists to
   verify: a crash injected anywhere inside the journal-then-apply
   accept path recovers to exactly the pre-session or post-session
   state, never a torn mixture; a bit-flipped checkpoint is rejected
   without touching the running group. *)

module Fault = Edb_fault.Fault
module Wal = Edb_persist.Wal
module Durable = Edb_persist.Durable_node
module Server_group = Edb_server.Server_group
module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Operation = Edb_store.Operation

let set v = Operation.Set v

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let with_temp_dir f =
  let dir = Filename.temp_file "edb-fault" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* [Node.export_state] is already canonical: each shard's item lists
   come out in sorted name order, so states compare with (=). *)
let normalized_state = Node.export_state

(* ---------- Registry semantics ---------- *)

let test_disabled_hit_is_noop () =
  Fault.clear ();
  Fault.hit "never.registered";
  Alcotest.(check bool) "registry off" false (Fault.enabled ());
  Alcotest.(check bool) "not active" false (Fault.active "never.registered")

let test_always_raises_and_disarms () =
  Fault.clear ();
  Fault.with_point "p" (fun () ->
      Alcotest.(check bool) "active while armed" true (Fault.active "p");
      Alcotest.check_raises "fires" (Fault.Injected "p") (fun () -> Fault.hit "p"));
  (* Disarmed however the body exits; the registry switches back off. *)
  Fault.hit "p";
  Alcotest.(check bool) "registry off again" false (Fault.enabled ())

let test_on_hit_fires_exactly_once () =
  Fault.clear ();
  Fault.with_point ~trigger:(Fault.On_hit 3) "k" (fun () ->
      Fault.hit "k";
      Fault.hit "k";
      (try
         Fault.hit "k";
         Alcotest.fail "third hit should fire"
       with Fault.Injected _ -> ());
      (* Exactly the third, not from-the-third-on. *)
      Fault.hit "k";
      Alcotest.(check int) "hits counted" 4 (Fault.hits "k");
      Alcotest.(check int) "fired once" 1 (Fault.fired "k"))

let test_from_hit_fires_from_then_on () =
  Fault.clear ();
  Fault.with_point ~trigger:(Fault.From_hit 2) "k" (fun () ->
      Fault.hit "k";
      (try
         Fault.hit "k";
         Alcotest.fail "second hit should fire"
       with Fault.Injected _ -> ());
      (try
         Fault.hit "k";
         Alcotest.fail "third hit should fire"
       with Fault.Injected _ -> ());
      Alcotest.(check int) "fired twice" 2 (Fault.fired "k"))

let test_call_action_runs_without_raising () =
  Fault.clear ();
  let calls = ref 0 in
  Fault.with_point ~trigger:(Fault.On_hit 2) ~action:(Fault.Call (fun () -> incr calls))
    "cb"
    (fun () ->
      Fault.hit "cb";
      Fault.hit "cb";
      Fault.hit "cb");
  Alcotest.(check int) "callback ran once" 1 !calls

let test_probability_is_deterministic () =
  Fault.clear ();
  let pattern () =
    Fault.seed_prng 42;
    let fired = ref [] in
    Fault.with_point ~trigger:(Fault.Probability 0.3)
      ~action:(Fault.Call (fun () -> fired := Fault.hits "p" :: !fired))
      "p"
      (fun () ->
        for _ = 1 to 200 do
          Fault.hit "p"
        done);
    List.rev !fired
  in
  let a = pattern () and b = pattern () in
  Alcotest.(check (list int)) "same seed, same firings" a b;
  let n = List.length a in
  Alcotest.(check bool) "plausible firing count" true (n > 20 && n < 120)

let test_predicate_trigger () =
  Fault.clear ();
  let fired = ref [] in
  Fault.with_point
    ~trigger:(Fault.Predicate (fun k -> k mod 3 = 0))
    ~action:(Fault.Call (fun () -> fired := Fault.hits "p" :: !fired))
    "p"
    (fun () ->
      for _ = 1 to 7 do
        Fault.hit "p"
      done);
  Alcotest.(check (list int)) "every third hit" [ 3; 6 ] (List.rev !fired)

(* ---------- Crash-atomic AcceptPropagation ---------- *)

(* A remote with two items and a multi-update history, so the accept
   loop has several per-item hits to crash between. *)
let make_remote () =
  let remote = Node.create ~id:1 ~n:2 () in
  Node.update remote "a" (set "va");
  Node.update remote "b" (set "vb");
  Node.update remote "a" (set "va2");
  remote

(* The post-session state, computed by an identical fault-free run on a
   plain in-memory node (the durable wrapper adds no state of its
   own). *)
let control_post_state () =
  let remote = make_remote () in
  let ctrl = Node.create ~id:0 ~n:2 () in
  Node.update ctrl "c" (set "vc");
  let request = Node.propagation_request ctrl in
  let reply = Node.handle_propagation_request remote request in
  let (_ : Node.accept_result) = Node.accept_propagation ctrl ~source:1 reply in
  normalized_state ctrl

type expected = Pre | Post

(* Arm one failpoint, pull through the durable node until it "crashes",
   recover from disk, and demand the recovered state is exactly the
   expected side of the session — never a torn mixture. For [Pre]
   outcomes, additionally demand that simply pulling again reaches the
   post state (the session was invisible, not half-applied). *)
let crash_scenario ~fault ~trigger ~expect () =
  with_temp_dir (fun dir ->
      Fault.clear ();
      let remote = make_remote () in
      let d, _ = ok (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
      Durable.update d "c" (set "vc");
      let pre = normalized_state (Durable.node d) in
      let post = control_post_state () in
      let crashed =
        try
          Fault.with_point ~trigger fault (fun () ->
              ignore (Durable.pull_from d ~source:remote);
              false)
        with Fault.Injected _ -> true
      in
      Alcotest.(check bool) (fault ^ " fired") true crashed;
      (* Simulate process death: abandon [d] (open channel and all) and
         recover a fresh instance from what reached disk. *)
      let d', (replay : Wal.replay_result) =
        ok (Durable.open_or_create ~dir ~id:0 ~n:2 ())
      in
      let recovered = normalized_state (Durable.node d') in
      (match expect with
      | Pre ->
        Alcotest.(check bool)
          (fault ^ ": recovered to pre-session state")
          true (recovered = pre);
        Alcotest.(check bool)
          (fault ^ ": not the post state")
          true (recovered <> post);
        (* The session left no trace; re-pulling completes it. *)
        (match Durable.pull_from d' ~source:remote with
        | Node.Pulled _ -> ()
        | Node.Already_current -> Alcotest.fail "expected a fresh propagation");
        Alcotest.(check bool)
          (fault ^ ": re-pull reaches post state")
          true
          (normalized_state (Durable.node d') = post)
      | Post ->
        Alcotest.(check bool)
          (fault ^ ": recovered to post-session state")
          true (recovered = post);
        ignore replay);
      Durable.close d')

let test_crash_before_journal =
  crash_scenario ~fault:"durable.journal.before" ~trigger:Fault.Always ~expect:Pre

(* A torn WAL append: the frame's header and half the payload reach
   disk; recovery must discard the tail and land on the pre state. *)
let test_crash_torn_journal_append () =
  with_temp_dir (fun dir ->
      Fault.clear ();
      let remote = make_remote () in
      let d, _ = ok (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
      Durable.update d "c" (set "vc");
      let pre = normalized_state (Durable.node d) in
      let crashed =
        try
          Fault.with_point "wal.append.partial" (fun () ->
              ignore (Durable.pull_from d ~source:remote);
              false)
        with Fault.Injected _ -> true
      in
      Alcotest.(check bool) "torn append fired" true crashed;
      let d', (replay : Wal.replay_result) =
        ok (Durable.open_or_create ~dir ~id:0 ~n:2 ())
      in
      Alcotest.(check bool) "torn tail detected" true replay.Wal.torn_tail;
      Alcotest.(check bool) "recovered to pre-session state" true
        (normalized_state (Durable.node d') = pre);
      Durable.close d')

let test_crash_after_journal =
  crash_scenario ~fault:"durable.apply.before" ~trigger:Fault.Always ~expect:Post

let test_crash_at_accept_begin =
  crash_scenario ~fault:"accept.begin" ~trigger:Fault.Always ~expect:Post

let test_crash_mid_first_item =
  crash_scenario ~fault:"accept.item" ~trigger:(Fault.On_hit 1) ~expect:Post

let test_crash_mid_second_item =
  crash_scenario ~fault:"accept.item" ~trigger:(Fault.On_hit 2) ~expect:Post

let test_crash_before_tails =
  crash_scenario ~fault:"accept.tail" ~trigger:Fault.Always ~expect:Post

(* Without the durable wrapper there is nothing to recover from: a
   crash mid-accept really does tear the in-memory node (some items
   applied, others not). This is the hazard the WAL commit point
   removes, so pin it down. *)
let test_bare_accept_crash_is_torn () =
  Fault.clear ();
  let remote = make_remote () in
  let bare = Node.create ~id:0 ~n:2 () in
  let request = Node.propagation_request bare in
  let reply = Node.handle_propagation_request remote request in
  (try
     Fault.with_point ~trigger:(Fault.On_hit 2) "accept.item" (fun () ->
         ignore (Node.accept_propagation bare ~source:1 reply))
   with Fault.Injected _ -> ());
  let applied name = Node.read bare name <> None in
  Alcotest.(check bool) "first item applied" true (applied "a" || applied "b");
  Alcotest.(check bool) "second item missing" true
    (not (applied "a" && applied "b"))

(* ---------- Checkpoint corruption (restore_server) ---------- *)

let test_restore_rejects_bit_flip () =
  with_temp_dir (fun dir ->
      let g = Server_group.create ~seed:5 ~n:3 () in
      ok (Server_group.create_database g "alpha");
      ok (Server_group.create_database g "beta");
      ok (Server_group.update g ~db:"alpha" ~node:0 ~item:"x" (set "x1"));
      ok (Server_group.update g ~db:"beta" ~node:2 ~item:"y" (set "y1"));
      ignore (Server_group.sync_all g);
      ok (Server_group.save_server g ~dir ~node:1);
      (* Diverge server 1 after the checkpoint, so a (partial) restore
         would be observable. *)
      ok (Server_group.update g ~db:"alpha" ~node:1 ~item:"x" (set "x2"));
      let alpha_before =
        normalized_state (Cluster.node (ok (Server_group.cluster g "alpha")) 1)
      in
      (* Flip one payload byte of the *second* database's snapshot:
         phase one must reject the whole restore before phase two
         replaces anything — including the intact first database. *)
      let path = Filename.concat dir "db-0001.snap" in
      let ic = open_in_bin path in
      let blob = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
      close_in ic;
      let pos = Bytes.length blob / 2 in
      Bytes.set blob pos (Char.chr (Char.code (Bytes.get blob pos) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc blob;
      close_out oc;
      (match Server_group.restore_server g ~dir ~node:1 with
      | Ok () -> Alcotest.fail "bit-flipped checkpoint accepted"
      | Error msg ->
        Alcotest.(check bool) "names the database" true
          (Astring.String.is_infix ~affix:"beta" msg);
        Alcotest.(check bool) "names the corruption" true
          (Astring.String.is_infix ~affix:"corrupt" msg));
      let alpha_after =
        normalized_state (Cluster.node (ok (Server_group.cluster g "alpha")) 1)
      in
      Alcotest.(check bool) "intact database untouched" true
        (alpha_before = alpha_after))

(* And the same checkpoint restores fine when nothing is flipped. *)
let test_restore_intact_checkpoint () =
  with_temp_dir (fun dir ->
      let g = Server_group.create ~seed:5 ~n:3 () in
      ok (Server_group.create_database g "alpha");
      ok (Server_group.update g ~db:"alpha" ~node:0 ~item:"x" (set "x1"));
      ignore (Server_group.sync_all g);
      ok (Server_group.save_server g ~dir ~node:1);
      ok (Server_group.update g ~db:"alpha" ~node:1 ~item:"x" (set "x2"));
      ok (Server_group.restore_server g ~dir ~node:1);
      Alcotest.(check (option string)) "rolled back to checkpoint" (Some "x1")
        (ok (Server_group.read g ~db:"alpha" ~node:1 ~item:"x")))

let suite =
  [
    Alcotest.test_case "disabled hit is a no-op" `Quick test_disabled_hit_is_noop;
    Alcotest.test_case "always fires and disarms" `Quick
      test_always_raises_and_disarms;
    Alcotest.test_case "on-hit fires exactly once" `Quick
      test_on_hit_fires_exactly_once;
    Alcotest.test_case "from-hit fires from then on" `Quick
      test_from_hit_fires_from_then_on;
    Alcotest.test_case "call action" `Quick test_call_action_runs_without_raising;
    Alcotest.test_case "probability is deterministic" `Quick
      test_probability_is_deterministic;
    Alcotest.test_case "predicate trigger" `Quick test_predicate_trigger;
    Alcotest.test_case "crash before journal -> pre" `Quick test_crash_before_journal;
    Alcotest.test_case "torn journal append -> pre" `Quick
      test_crash_torn_journal_append;
    Alcotest.test_case "crash after journal -> post" `Quick test_crash_after_journal;
    Alcotest.test_case "crash at accept begin -> post" `Quick
      test_crash_at_accept_begin;
    Alcotest.test_case "crash mid first item -> post" `Quick
      test_crash_mid_first_item;
    Alcotest.test_case "crash mid second item -> post" `Quick
      test_crash_mid_second_item;
    Alcotest.test_case "crash before tails -> post" `Quick test_crash_before_tails;
    Alcotest.test_case "bare accept crash is torn" `Quick
      test_bare_accept_crash_is_torn;
    Alcotest.test_case "restore rejects bit flip" `Quick
      test_restore_rejects_bit_flip;
    Alcotest.test_case "restore intact checkpoint" `Quick
      test_restore_intact_checkpoint;
  ]

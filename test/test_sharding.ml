(* Sharded replicas (DESIGN.md §7): the shards=1 configuration must be
   byte-for-byte the pre-sharding protocol (pinned wire and snapshot
   fixtures), sharded sessions must skip converged shards individually,
   the sharded reply must survive the wire codec, a sharded cluster
   must converge to the same database as a flat one, and the durable
   layer must reject shard-count skew. *)

module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Message = Edb_core.Message
module Shard_map = Edb_core.Shard_map
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Codec = Edb_persist.Codec
module Wire = Edb_persist.Wire
module Snapshot = Edb_persist.Snapshot
module Durable = Edb_persist.Durable_node

let set v = Operation.Set v

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let encode_reply reply =
  Codec.Writer.with_scratch (fun w ->
      Wire.encode_propagation_reply w reply;
      Codec.Writer.contents w)

(* ---------- shards=1 is bitwise the pre-sharding protocol ---------- *)

(* The request of an unsharded node carries no per-shard vectors (so its
   bytes are exactly id + DBVV, as before sharding), and the reply is
   the legacy [Propagate] constructor whose encoding is pinned below. *)
let test_flat_request_shape () =
  let a = Node.create ~id:0 ~n:2 () in
  let req = Node.propagation_request a in
  Alcotest.(check int) "no shard vectors" 0 (Array.length req.recipient_shard_dbvvs);
  Alcotest.(check int) "request bytes: id + vv" (8 + 16) (Message.request_bytes req)

(* Pinned fixture: two fresh n=2 nodes, two updates at the source, one
   session. Any byte-level drift in what a shards=1 deployment puts on
   the wire — framing, field order, the reply constructor — fails
   here. *)
let pinned_flat_reply =
  "01000000000000000200000000000000020000000000000001000000000000007801000000000000000100000000000000790200000000000000000000000000000002000000000000000100000000000000780000000000000000020000000000000076310200000000000000010000000000000000000000000000000100000000000000790000000000000000020000000000000076320200000000000000010000000000000000000000000000004a03f70c"

let test_flat_wire_fixture () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "v1");
  Node.update a "y" (set "v2");
  let reply = Node.handle_propagation_request a (Node.propagation_request b) in
  (match reply with
  | Message.Propagate _ -> ()
  | Message.Propagate_sharded _ | Message.You_are_current ->
    Alcotest.fail "shards=1 must produce a legacy Propagate reply");
  Alcotest.(check string) "pinned reply bytes" pinned_flat_reply (hex (encode_reply reply))

(* Pinned fixture for the flat snapshot: version 2, no shard framing —
   the exact blob a pre-sharding build would have written. *)
let pinned_flat_snapshot =
  "0800000000000000454442534e41503102000000000000007f03d7e200000000d200000000000000000000000000000002000000000000000200000000000000010000000000000061010000000000000031020000000000000001000000000000000000000000000000010000000000000062010000000000000032020000000000000001000000000000000000000000000000020000000000000002000000000000000000000000000000020000000000000002000000000000000100000000000000610100000000000000010000000000000062020000000000000000000000000000000000000000000000000000000000000005029bd8c408889b" [@ocamlformat "disable"]

let test_flat_snapshot_fixture () =
  let n = Node.create ~id:0 ~n:2 () in
  Node.update n "a" (set "1");
  Node.update n "b" (set "2");
  Alcotest.(check string) "pinned snapshot" pinned_flat_snapshot (hex (Snapshot.encode n))

(* ---------- per-shard skipping ---------- *)

(* Converge an 8-shard pair, then dirty items confined to a couple of
   shards: the next session must ship deltas for exactly the dirty
   shards and charge [shards_skipped] for every other one. Converged
   shards thus contribute zero bytes — the whole point of per-shard
   DBVVs. *)
let test_per_shard_skipping () =
  let shards = 8 in
  let a = Node.create ~id:0 ~n:2 ~shards () in
  let b = Node.create ~id:1 ~n:2 ~shards () in
  for i = 0 to 63 do
    Node.update a (Printf.sprintf "item-%02d" i) (set "base")
  done;
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Counters.reset (Node.counters a);
  (* Dirty only items living in shards 0 and 1. *)
  let dirty = Hashtbl.create 4 in
  let budget = ref 6 in
  for i = 0 to 63 do
    let name = Printf.sprintf "item-%02d" i in
    let s = Node.shard_of_item a name in
    if s < 2 && !budget > 0 then begin
      decr budget;
      Node.update a name (set "fresh");
      Hashtbl.replace dirty s ()
    end
  done;
  let dirty_shards = Hashtbl.length dirty in
  Alcotest.(check bool) "workload touched 2 shards" true (dirty_shards = 2);
  (match Node.handle_propagation_request a (Node.propagation_request b) with
  | Message.Propagate_sharded deltas ->
    Alcotest.(check (list int))
      "deltas for exactly the dirty shards, ascending"
      [ 0; 1 ]
      (List.map (fun (d : Message.shard_delta) -> d.shard) deltas);
    List.iter
      (fun (d : Message.shard_delta) ->
        Alcotest.(check bool)
          (Printf.sprintf "shard %d ships something" d.shard)
          true
          (d.items <> []))
      deltas
  | Message.Propagate _ -> Alcotest.fail "sharded node must reply Propagate_sharded"
  | Message.You_are_current -> Alcotest.fail "expected propagation");
  Alcotest.(check int) "converged shards skipped" (shards - dirty_shards)
    (Node.counters a).Counters.shards_skipped

(* Full convergence answers through the summary vector alone: the reply
   is You_are_current and no per-shard work (or skip counting) happens. *)
let test_summary_you_are_current () =
  let a = Node.create ~id:0 ~n:2 ~shards:4 () in
  let b = Node.create ~id:1 ~n:2 ~shards:4 () in
  for i = 0 to 15 do
    Node.update a (Printf.sprintf "it%02d" i) (set "v")
  done;
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Counters.reset (Node.counters a);
  (match Node.handle_propagation_request a (Node.propagation_request b) with
  | Message.You_are_current -> ()
  | Message.Propagate _ | Message.Propagate_sharded _ ->
    Alcotest.fail "converged pair must answer You_are_current");
  Alcotest.(check int) "summary short-circuits the shard loop" 0
    (Node.counters a).Counters.shards_skipped

(* ---------- sharded reply wire round-trip ---------- *)

let test_sharded_reply_roundtrip () =
  let a = Node.create ~id:0 ~n:3 ~shards:4 () in
  let b = Node.create ~id:1 ~n:3 ~shards:4 () in
  for i = 0 to 23 do
    Node.update a (Printf.sprintf "item-%03d" i) (set (Printf.sprintf "v%d" i))
  done;
  match Node.handle_propagation_request a (Node.propagation_request b) with
  | Message.Propagate _ | Message.You_are_current -> Alcotest.fail "expected sharded reply"
  | Message.Propagate_sharded _ as reply ->
    let decoded =
      Wire.decode_propagation_reply (Codec.Reader.create (encode_reply reply))
    in
    Alcotest.(check bool) "round-trips structurally" true (decoded = reply)

(* ---------- sharded vs flat equivalence ---------- *)

(* The same single-writer workload on a flat and a 4-shard cluster must
   yield identical reads everywhere after anti-entropy: sharding is a
   state layout, not a semantics change. *)
let test_sharded_matches_flat () =
  let items = 12 and nodes = 3 in
  let name rank = Printf.sprintf "item-%03d" rank in
  let run shards =
    let cluster = Cluster.create ~seed:17 ~shards ~n:nodes () in
    for step = 0 to 39 do
      let rank = step * 7 mod items in
      Cluster.update cluster ~node:(rank mod nodes) ~item:(name rank)
        (set (Printf.sprintf "s%d-%d" step rank));
      if step mod 5 = 4 then
        ignore (Cluster.pull cluster ~recipient:(step mod nodes) ~source:((step + 1) mod nodes))
    done;
    Alcotest.(check bool)
      (Printf.sprintf "shards=%d converges" shards)
      true
      (Cluster.sync_until_converged cluster > 0);
    List.init nodes (fun node ->
        List.init items (fun rank -> Node.read (Cluster.node cluster node) (name rank)))
  in
  Alcotest.(check bool) "flat and sharded reads agree" true (run 1 = run 4)

(* ---------- sharded snapshot (v3) ---------- *)

let test_sharded_snapshot_roundtrip () =
  let original = Node.create ~id:1 ~n:3 ~shards:5 () in
  let peer = Node.create ~id:0 ~n:3 ~shards:5 () in
  for i = 0 to 30 do
    Node.update original (Printf.sprintf "k%02d" i) (set (Printf.sprintf "v%d" i))
  done;
  Node.update peer "hot" (set "h1");
  let (_ : Node.oob_result) =
    Node.fetch_out_of_bound ~recipient:original ~source:peer "hot"
  in
  Node.update original "hot" (set "h2");
  match Snapshot.decode (Snapshot.encode original) with
  | Error msg -> Alcotest.fail msg
  | Ok restored ->
    Alcotest.(check int) "shard count restored" 5 (Node.shards restored);
    Alcotest.(check bool) "state equal" true
      (Node.export_state restored = Node.export_state original);
    (match Node.check_invariants restored with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)

(* A flat snapshot must decode into a 1-shard node (the v2 path — every
   checkpoint written before sharding landed looks like this). *)
let unhex h =
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let test_flat_snapshot_decodes () =
  match Snapshot.decode (unhex pinned_flat_snapshot) with
  | Error msg -> Alcotest.fail msg
  | Ok node ->
    Alcotest.(check int) "one shard" 1 (Node.shards node);
    Alcotest.(check (option string)) "value survives" (Some "1") (Node.read node "a")

(* ---------- durable shard-count skew ---------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "edb-shard" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_durable_rejects_shard_skew () =
  with_temp_dir (fun dir ->
      (match Durable.open_or_create ~shards:2 ~dir ~id:0 ~n:2 () with
      | Error msg -> Alcotest.fail msg
      | Ok (d, _) ->
        Durable.update d "x" (set "v");
        Durable.checkpoint d;
        Durable.close d);
      match Durable.open_or_create ~shards:3 ~dir ~id:0 ~n:2 () with
      | Ok (d, _) ->
        Durable.close d;
        Alcotest.fail "reopening with a different shard count must fail"
      | Error msg ->
        Alcotest.(check bool) "error names the skew" true
          (Astring.String.is_infix ~affix:"shards" msg))

(* Sessions between nodes of different shard counts are a configuration
   error, not a protocol state: refuse loudly. *)
let test_mixed_shard_counts_rejected () =
  let a = Node.create ~id:0 ~n:2 ~shards:2 () in
  let b = Node.create ~id:1 ~n:2 ~shards:4 () in
  Node.update a "x" (set "v");
  match Node.pull ~recipient:b ~source:a () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed shard counts must be rejected"

let suite =
  [
    Alcotest.test_case "flat request shape" `Quick test_flat_request_shape;
    Alcotest.test_case "flat wire fixture (pinned)" `Quick test_flat_wire_fixture;
    Alcotest.test_case "flat snapshot fixture (pinned)" `Quick test_flat_snapshot_fixture;
    Alcotest.test_case "per-shard skipping" `Quick test_per_shard_skipping;
    Alcotest.test_case "summary short-circuit" `Quick test_summary_you_are_current;
    Alcotest.test_case "sharded reply wire round-trip" `Quick test_sharded_reply_roundtrip;
    Alcotest.test_case "sharded matches flat" `Quick test_sharded_matches_flat;
    Alcotest.test_case "sharded snapshot round-trip" `Quick test_sharded_snapshot_roundtrip;
    Alcotest.test_case "flat (v2) snapshot decodes" `Quick test_flat_snapshot_decodes;
    Alcotest.test_case "durable rejects shard skew" `Quick test_durable_rejects_shard_skew;
    Alcotest.test_case "mixed shard counts rejected" `Quick test_mixed_shard_counts_rejected;
  ]

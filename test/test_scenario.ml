(* The scenario harness: golden-run pinning, determinism, parser
   totality under hostile input, data-file sync, and the monotone
   sampler's behaviour across node-replacement resets. *)

module Scenario = Edb_scenario.Scenario
module Orchestrator = Edb_scenario.Orchestrator
module Sampler = Edb_scenario.Sampler
module Counters = Edb_metrics.Counters
module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation

let read_file path = In_channel.with_open_bin path In_channel.input_all

let steady =
  match Scenario.builtin "steady" with
  | Some sc -> sc
  | None -> Alcotest.fail "no steady builtin"

(* ---------- Golden run ---------- *)

(* The committed BENCH_timeseries.json is exactly what
   `edb_cli scenario steady --json` emits: one fixed seed triple, one
   byte-for-byte emission. Any drift — in the engine's event order, the
   driver's counter charges, the workload stream, the float formatting,
   the JSON field order — fails here first, with the tick series as the
   diff surface. *)
let test_golden_run () =
  let r = Orchestrator.run steady in
  let emitted =
    Orchestrator.to_string ~generated_by:"edb_cli scenario steady --json" r
  in
  let committed = read_file "../BENCH_timeseries.json" in
  Alcotest.(check string) "byte-identical to BENCH_timeseries.json" committed
    emitted

let test_determinism_same_seed () =
  let once () = Orchestrator.to_string ~generated_by:"g" (Orchestrator.run steady) in
  Alcotest.(check string) "same seed, same series" (once ()) (once ())

let test_different_seed_differs () =
  let reseeded =
    { steady with Scenario.seeds = { Scenario.driver = 911; engine = 912; workload = 913 } }
  in
  let a = Orchestrator.to_string ~generated_by:"g" (Orchestrator.run steady) in
  let b = Orchestrator.to_string ~generated_by:"g" (Orchestrator.run reseeded) in
  Alcotest.(check bool) "different seeds, different series" true (a <> b)

(* ---------- Data files ---------- *)

(* scenarios/*.json are data, but they are pinned data: each file is
   exactly [Scenario.to_string] of its builtin, and parses back to an
   equal value. *)
let test_scenario_files_in_sync () =
  List.iter
    (fun (sc : Scenario.t) ->
      let path = "../scenarios/" ^ sc.Scenario.name ^ ".json" in
      let blob = read_file path in
      Alcotest.(check string) (path ^ " in sync") (Scenario.to_string sc) blob;
      match Scenario.of_string blob with
      | Ok sc' ->
        Alcotest.(check bool) (path ^ " parses back equal") true
          (Scenario.equal sc sc')
      | Error msg -> Alcotest.fail (path ^ ": " ^ msg))
    Scenario.builtins

let test_builtin_lookup () =
  Alcotest.(check (list string))
    "builtin names"
    [ "steady"; "diurnal"; "churn"; "lossy-mesh"; "converged-idle"; "smoke";
      "push-smoke"; "push-vs-pull"; "membership-churn" ]
    Scenario.builtin_names;
  Alcotest.(check bool) "unknown name" true (Scenario.builtin "nope" = None);
  List.iter
    (fun sc ->
      match Scenario.validate sc with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (sc.Scenario.name ^ " invalid: " ^ msg))
    Scenario.builtins

(* ---------- Parser totality ---------- *)

let parses_without_exception label blob =
  match Scenario.of_string blob with
  | Ok _ | Error _ -> ()
  | exception e ->
    Alcotest.fail
      (Printf.sprintf "%s: parser leaked exception %s" label (Printexc.to_string e))

(* Every prefix that cuts actual content (the last byte is the printer's
   trailing newline — dropping only that leaves valid JSON) is invalid
   JSON or an incomplete scenario: all must come back as [Error], none
   as an exception. *)
let test_truncated_input () =
  let whole = Scenario.to_string steady in
  for k = 0 to String.length whole - 2 do
    let prefix = String.sub whole 0 k in
    (match Scenario.of_string prefix with
    | Ok _ -> Alcotest.failf "prefix of length %d parsed as a scenario" k
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "prefix of length %d leaked %s" k (Printexc.to_string e))
  done

(* Single-bit corruption anywhere in the file: may still parse (a digit
   flipped to another digit), may fail — must never throw. *)
let test_bit_flipped_input () =
  let whole = Scenario.to_string steady in
  List.iter
    (fun bit ->
      String.iteri
        (fun i _ ->
          let b = Bytes.of_string whole in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
          parses_without_exception
            (Printf.sprintf "byte %d flipped by 0x%02x" i bit)
            (Bytes.to_string b))
        whole)
    [ 0x01; 0x20; 0x80 ]

let test_garbage_input () =
  List.iter
    (fun blob ->
      parses_without_exception "garbage" blob;
      match Scenario.of_string blob with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "garbage %S parsed as a scenario" blob)
    [
      ""; " "; "{"; "}"; "null"; "true"; "42"; "\"scenario\""; "[1,2";
      "{\"schema\":1}";
      "{\"schema\":2,\"name\":\"x\"}";
      String.make 4096 '[';
      "{\"schema\":1,\"name\":\"\x00\x01\x02";
      "{\"schema\":1,\"name\":3,\"nodes\":\"eight\"}";
    ];
  (* Structured but wrong: a valid document with one field driven out
     of range must name the failure, not throw. *)
  let broken field value =
    match Scenario.to_json steady with
    | Edb_metrics.Json.Obj fields ->
      Edb_metrics.Json.Obj
        (List.map (fun (k, v) -> if k = field then (k, value) else (k, v)) fields)
    | _ -> Alcotest.fail "scenario did not print as an object"
  in
  List.iter
    (fun (field, value) ->
      match Scenario.of_json (broken field value) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "out-of-range %s accepted" field
      | exception e ->
        Alcotest.failf "out-of-range %s leaked %s" field (Printexc.to_string e))
    Edb_metrics.Json.
      [
        ("nodes", Int 1);
        ("nodes", Float 8.5);
        ("zipf", Float nan);
        ("tick", Float 0.0);
        ("deadline", Float 1.0);
        ("network", Obj [ ("latency", Float (-1.0)); ("loss", Float 0.0);
                          ("duplication", Float 0.0) ]);
        ("transport", String "pigeon");
        ("arrival", Obj [ ("phases", List [ Obj [] ]) ]);
        ("faults", List [ Obj [ ("kind", String "meteor"); ("at", Float 1.0) ] ]);
      ]

(* ---------- QCheck: round-trip and totality ---------- *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"scenario print/parse round-trip" ~count:300
    ~print:Scenario.to_string Gen.scenario (fun sc ->
      match Scenario.of_string (Scenario.to_string sc) with
      | Ok sc' -> Scenario.equal sc sc'
      | Error msg -> QCheck2.Test.fail_reportf "rejected own output: %s" msg)

let prop_parser_total =
  QCheck2.Test.make ~name:"parser total on random bytes" ~count:500
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 128))
    (fun blob ->
      match Scenario.of_string blob with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ---------- Monotone sampling across node replacement ---------- *)

(* Unit-level: a backward step in the raw cumulative counters (a node
   swapped for a restored checkpoint whose counters start at zero) must
   fold into the preserved base, keeping every reported total
   monotone. *)
let test_sampler_absorbs_reset () =
  let sampler = Sampler.create () in
  let c = Counters.create () in
  c.Counters.messages <- 10;
  c.Counters.bytes_sent <- 700;
  let at n sample = List.assoc n sample in
  let s1 = Sampler.sample sampler c in
  Alcotest.(check int) "first sample passes through" 10 (at "messages" s1);
  (* The raw total drops — a replaced node took its counters with it. *)
  c.Counters.messages <- 4;
  c.Counters.bytes_sent <- 700;
  let s2 = Sampler.sample sampler c in
  Alcotest.(check int) "reset folded into base" 10 (at "messages" s2);
  Alcotest.(check int) "untouched field unchanged" 700 (at "bytes_sent" s2);
  c.Counters.messages <- 9;
  let s3 = Sampler.sample sampler c in
  Alcotest.(check int) "growth resumes on top of base" 15 (at "messages" s3)

(* Integration-level: drive a real cluster, replace a node with a fresh
   one (the persistence layer's restore path), keep driving, and pin
   that sampled totals never step backwards even though the cluster's
   raw totals did. *)
let test_post_restore_sampling_monotone () =
  let n = 3 in
  let cluster = Cluster.create ~seed:5 ~n () in
  let sampler = Sampler.create () in
  let drive () =
    for rank = 0 to 5 do
      Cluster.update cluster ~node:(rank mod n)
        ~item:(Edb_workload.Workload.item_name rank) (Operation.Set "v")
    done;
    ignore (Cluster.random_pull_round cluster)
  in
  drive ();
  let before = Sampler.sample sampler (Cluster.total_counters cluster) in
  (* Restore node 1 from "a checkpoint": a fresh node, zero counters. *)
  Cluster.replace_node cluster 1 (Node.create ~id:1 ~n ());
  let after_restore = Sampler.sample sampler (Cluster.total_counters cluster) in
  drive ();
  let after_drive = Sampler.sample sampler (Cluster.total_counters cluster) in
  List.iter2
    (fun (name, b) (name', a) ->
      Alcotest.(check string) "field order stable" name name';
      if a < b then
        Alcotest.failf "%s stepped back across restore (%d -> %d)" name b a)
    before after_restore;
  List.iter2
    (fun (name, b) (name', a) ->
      Alcotest.(check string) "field order stable" name name';
      if a < b then Alcotest.failf "%s stepped back after restart (%d -> %d)" name b a)
    after_restore after_drive;
  (* The run did real work after the restore, and the series shows it. *)
  Alcotest.(check bool) "post-restore work visible" true
    (List.assoc "messages" after_drive > List.assoc "messages" after_restore)

(* ---------- Orchestrator sanity on a non-steady builtin ---------- *)

let test_churn_run_consistent () =
  let sc =
    match Scenario.builtin "churn" with
    | Some sc -> sc
    | None -> Alcotest.fail "no churn builtin"
  in
  let r = Orchestrator.run sc in
  Alcotest.(check bool) "converged" true (r.Orchestrator.converged_at <> None);
  Alcotest.(check int) "every update became visible" r.Orchestrator.issued
    r.Orchestrator.visible;
  (* The crash schedule showed up in the series: some tick saw fewer
     than [nodes] live members. *)
  Alcotest.(check bool) "a tick observed a dead node" true
    (List.exists
       (fun (t : Orchestrator.tick) -> t.Orchestrator.alive < sc.Scenario.nodes)
       r.Orchestrator.ticks)

(* The membership runner: the churn block routes the scenario onto the
   synchronous Group path. Every tick must carry a membership sample,
   visibility stays monotone across epoch changes, and the retirement's
   component drop is visible in the mean-vector-length series. *)
let test_membership_churn_run () =
  let sc =
    match Scenario.builtin "membership-churn" with
    | Some sc -> sc
    | None -> Alcotest.fail "no membership-churn builtin"
  in
  let r = Orchestrator.run sc in
  Alcotest.(check bool) "converged" true (r.Orchestrator.converged_at <> None);
  Alcotest.(check int) "every surviving update became visible"
    r.Orchestrator.issued r.Orchestrator.visible;
  List.iter
    (fun (t : Orchestrator.tick) ->
      match t.Orchestrator.membership with
      | Some _ -> ()
      | None -> Alcotest.failf "tick %d has no membership sample" t.Orchestrator.index)
    r.Orchestrator.ticks;
  let series =
    List.filter_map (fun (t : Orchestrator.tick) -> t.Orchestrator.membership)
      r.Orchestrator.ticks
  in
  let peak =
    List.fold_left
      (fun m (s : Orchestrator.membership_sample) -> max m s.mean_components)
      0.0 series
  in
  let last = List.nth series (List.length series - 1) in
  Alcotest.(check bool) "join grew the vectors past the initial dimension" true
    (peak > float_of_int sc.Scenario.nodes);
  Alcotest.(check bool) "retirement dropped the mean vector length" true
    (last.Orchestrator.mean_components < peak);
  let rec monotone = function
    | (a : Orchestrator.tick) :: (b : Orchestrator.tick) :: rest ->
      if b.Orchestrator.visible < a.Orchestrator.visible then
        Alcotest.failf "visible dipped at tick %d" b.Orchestrator.index;
      monotone (b :: rest)
    | _ -> ()
  in
  monotone r.Orchestrator.ticks;
  (* A classic run keeps the field empty — the JSON key is [null]. *)
  let classic = Orchestrator.run steady in
  List.iter
    (fun (t : Orchestrator.tick) ->
      if t.Orchestrator.membership <> None then
        Alcotest.failf "classic tick %d grew a membership sample"
          t.Orchestrator.index)
    classic.Orchestrator.ticks

let test_run_rejects_invalid () =
  let broken = { steady with Scenario.tick = 0.0 } in
  match Orchestrator.run broken with
  | _ -> Alcotest.fail "orchestrator ran an invalid scenario"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "golden run reproduces BENCH_timeseries.json" `Quick
      test_golden_run;
    Alcotest.test_case "same seed, same series" `Quick test_determinism_same_seed;
    Alcotest.test_case "different seed, different series" `Quick
      test_different_seed_differs;
    Alcotest.test_case "scenarios/*.json in sync with builtins" `Quick
      test_scenario_files_in_sync;
    Alcotest.test_case "builtin lookup and validity" `Quick test_builtin_lookup;
    Alcotest.test_case "truncated input never throws" `Quick test_truncated_input;
    Alcotest.test_case "bit-flipped input never throws" `Slow test_bit_flipped_input;
    Alcotest.test_case "garbage and out-of-range input" `Quick test_garbage_input;
    Alcotest.test_case "sampler absorbs counter resets" `Quick
      test_sampler_absorbs_reset;
    Alcotest.test_case "post-restore sampling monotone" `Quick
      test_post_restore_sampling_monotone;
    Alcotest.test_case "churn run consistent" `Quick test_churn_run_consistent;
    Alcotest.test_case "membership churn run" `Quick test_membership_churn_run;
    Alcotest.test_case "run rejects invalid scenario" `Quick test_run_rejects_invalid;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_parser_total;
  ]

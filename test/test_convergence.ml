(* Randomized whole-protocol property tests: Theorem 5 and the §2.1
   correctness criteria under arbitrary workloads and schedules. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector
module Prng = Edb_util.Prng

(* Scripted runs over a single-writer cluster; the action type and its
   generator are shared with the rest of the suite via [Gen]. *)

let gen_actions = Gen.actions

let item_name rank = Printf.sprintf "it%02d" rank

let run_script ~nodes ~items actions =
  let cluster = Cluster.create ~seed:17 ~n:nodes () in
  let version = Array.make items 0 in
  List.iter
    (fun action ->
      match action with
      | Gen.Update { owner_choice; item_rank } ->
        (* Single-writer discipline: the item's owner performs every
           update, touching the auxiliary copy if one exists. *)
        let owner = (item_rank + (owner_choice * 0)) mod nodes in
        version.(item_rank) <- version.(item_rank) + 1;
        let value = Printf.sprintf "%d:%d" item_rank version.(item_rank) in
        Cluster.update cluster ~node:owner ~item:(item_name item_rank)
          (Operation.Set value)
      | Gen.Pull { recipient; source } ->
        if recipient <> source then
          ignore (Cluster.pull cluster ~recipient ~source)
      | Gen.Oob { recipient; source; item_rank } ->
        if recipient <> source then
          ignore
            (Cluster.fetch_out_of_bound cluster ~recipient ~source (item_name item_rank)))
    actions;
  (cluster, version)

(* Invariants hold at the end of any script (they are also exercised
   mid-run by the protocol's own assertions). *)
let prop_invariants_always_hold =
  QCheck2.Test.make ~name:"node invariants hold after any schedule" ~count:120
    (gen_actions ~nodes:4 ~items:6) (fun actions ->
      let cluster, _ = run_script ~nodes:4 ~items:6 actions in
      Cluster.check_invariants cluster = Ok ())

(* Single-writer workloads can never produce conflicts...
   with one exception the paper accepts: an owner whose own deferred
   (out-of-bound) updates race its regular copy would self-conflict
   only if two writers existed, which single-writer excludes. *)
let prop_no_false_conflicts =
  QCheck2.Test.make ~name:"single-writer workloads yield no conflicts" ~count:120
    (gen_actions ~nodes:4 ~items:6) (fun actions ->
      let cluster, _ = run_script ~nodes:4 ~items:6 actions in
      (Cluster.total_counters cluster).conflicts_detected = 0)

(* Theorem 5: once updates stop, enough random transitive propagation
   converges every replica to the newest state. *)
let prop_quiescent_convergence =
  QCheck2.Test.make ~name:"theorem 5: eventual convergence" ~count:80
    (gen_actions ~nodes:4 ~items:6) (fun actions ->
      let cluster, version = run_script ~nodes:4 ~items:6 actions in
      let rounds = Cluster.sync_until_converged ~max_rounds:500 cluster in
      let values_correct =
        List.for_all
          (fun rank ->
            let expected =
              if version.(rank) = 0 then None
              else Some (Printf.sprintf "%d:%d" rank version.(rank))
            in
            List.for_all
              (fun node ->
                match (expected, Cluster.read cluster ~node ~item:(item_name rank)) with
                | None, (None | Some "") -> true
                | Some v, Some v' -> String.equal v v'
                | None, Some _ | Some _, None -> false)
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3; 4; 5 ]
      in
      rounds <= 500 && values_correct && Cluster.check_invariants cluster = Ok ())

(* Criterion 2: update propagation alone (no user updates) never changes
   the set of distinct values in the system — it only spreads newer
   ones. We check a weaker, decidable consequence: after convergence,
   every item's final value is one that some node actually wrote. *)
let prop_no_invented_values =
  QCheck2.Test.make ~name:"propagation never invents values" ~count:80
    (gen_actions ~nodes:3 ~items:4) (fun actions ->
      let cluster, version = run_script ~nodes:3 ~items:4 actions in
      ignore (Cluster.sync_until_converged ~max_rounds:500 cluster);
      List.for_all
        (fun rank ->
          match Cluster.read cluster ~node:0 ~item:(item_name rank) with
          | None | Some "" -> version.(rank) = 0
          | Some value -> (
            (* Written values are "rank:k" with 1 <= k <= version. *)
            match String.index_opt value ':' with
            | None -> false
            | Some i ->
              let r = int_of_string (String.sub value 0 i) in
              let k =
                int_of_string (String.sub value (i + 1) (String.length value - i - 1))
              in
              r = rank && k >= 1 && k <= version.(rank)))
        [ 0; 1; 2; 3 ])

(* With two writers racing on one item and no resolution policy, the
   conflict is always detected once replicas meet (criterion 1). *)
let prop_conflicts_always_detected =
  QCheck2.Test.make ~name:"criterion 1: racing writers always detected" ~count:100
    QCheck2.Gen.(pair (int_bound 2) (int_bound 1))
    (fun (wa, wb) ->
      let cluster = Cluster.create ~seed:23 ~n:3 () in
      (* wb in [0,1] keeps the two writers distinct. *)
      let writer_a = wa and writer_b = (wa + 1 + wb) mod 3 in
      Cluster.update cluster ~node:writer_a ~item:"x" (Operation.Set "A");
      Cluster.update cluster ~node:writer_b ~item:"x" (Operation.Set "B");
      for _ = 1 to 6 do
        Cluster.random_pull_round cluster
      done;
      (Cluster.total_counters cluster).conflicts_detected > 0)

(* Lemma behind the DBVV maintenance rules: a conflict-free pull leaves
   the recipient's DBVV at the component-wise max of the two DBVVs —
   the recipient has absorbed exactly the source's knowledge. *)
let prop_pull_merges_dbvv =
  QCheck2.Test.make ~name:"conflict-free pull yields DBVV join" ~count:120
    (gen_actions ~nodes:4 ~items:6) (fun actions ->
      let cluster, _ = run_script ~nodes:4 ~items:6 actions in
      let ok = ref true in
      for recipient = 0 to 3 do
        for source = 0 to 3 do
          if recipient <> source then begin
            let before = Cluster.node cluster recipient |> Node.dbvv in
            let source_dbvv = Cluster.node cluster source |> Node.dbvv in
            ignore (Cluster.pull cluster ~recipient ~source);
            let after = Cluster.node cluster recipient |> Node.dbvv in
            let expected = Vv.copy before in
            Vv.merge_into expected ~from:source_dbvv;
            if not (Vv.equal after expected) then ok := false
          end
        done
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_invariants_always_hold;
    QCheck_alcotest.to_alcotest prop_pull_merges_dbvv;
    QCheck_alcotest.to_alcotest prop_no_false_conflicts;
    QCheck_alcotest.to_alcotest prop_quiescent_convergence;
    QCheck_alcotest.to_alcotest prop_no_invented_values;
    QCheck_alcotest.to_alcotest prop_conflicts_always_detected;
  ]

(* Unit tests for the protocol node: update bookkeeping (§5.3),
   SendPropagation (Fig. 2), AcceptPropagation (Fig. 3), and the DBVV
   maintenance rules (§4.1). *)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Conflict = Edb_core.Conflict
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector

let set v = Operation.Set v

let expect_ok node =
  match Node.check_invariants node with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let check_vv msg expected actual =
  Alcotest.(check (array int)) msg expected (Vv.to_array actual)

let make_pair () = (Node.create ~id:0 ~n:2 (), Node.create ~id:1 ~n:2 ())

let test_update_bookkeeping () =
  let a = Node.create ~id:0 ~n:3 () in
  Node.update a "x" (set "v1");
  check_vv "dbvv" [| 1; 0; 0 |] (Node.dbvv a);
  (match Node.item_vv a "x" with
  | Some ivv -> check_vv "item ivv" [| 1; 0; 0 |] ivv
  | None -> Alcotest.fail "item should exist");
  Alcotest.(check (option string)) "value" (Some "v1") (Node.read a "x");
  let component = Log_vector.component (Node.log_vector a) 0 in
  Alcotest.(check int) "one log record" 1 (Log_component.length component);
  expect_ok a

let test_update_log_dedup () =
  let a = Node.create ~id:0 ~n:2 () in
  Node.update a "x" (set "v1");
  Node.update a "y" (set "w1");
  Node.update a "x" (set "v2");
  let component = Log_vector.component (Node.log_vector a) 0 in
  Alcotest.(check int) "two records for two items" 2 (Log_component.length component);
  (match Log_component.find_record component "x" with
  | Some r -> Alcotest.(check int) "x record has latest seq" 3 r.Edb_log.Log_record.seq
  | None -> Alcotest.fail "expected x record");
  check_vv "dbvv counts all updates" [| 3; 0 |] (Node.dbvv a);
  expect_ok a

let test_identical_replicas_noop () =
  let a, b = make_pair () in
  let reply = Node.handle_propagation_request a (Node.propagation_request b) in
  Alcotest.(check bool) "you-are-current" true (reply = Message.You_are_current);
  Alcotest.(check int) "counted as noop" 1 (Node.counters a).noop_sessions

let test_basic_propagation () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  (match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled { copied; conflicts; resolved } ->
    Alcotest.(check (list string)) "copied x" [ "x" ] copied;
    Alcotest.(check int) "no conflicts" 0 conflicts;
    Alcotest.(check int) "no resolutions" 0 resolved
  | Node.Already_current -> Alcotest.fail "expected propagation");
  Alcotest.(check (option string)) "value arrived" (Some "v1") (Node.read b "x");
  check_vv "dbvv caught up" [| 1; 0 |] (Node.dbvv b);
  (match Node.item_vv b "x" with
  | Some ivv -> check_vv "ivv adopted" [| 1; 0 |] ivv
  | None -> Alcotest.fail "item should exist");
  (* The records travelled too: b can now serve them onward. *)
  let component = Log_vector.component (Node.log_vector b) 0 in
  Alcotest.(check int) "record forwarded" 1 (Log_component.length component);
  expect_ok a;
  expect_ok b

let test_pull_twice_second_is_noop () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  (match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled _ -> ()
  | Node.Already_current -> Alcotest.fail "first pull should copy");
  match Node.pull ~recipient:b ~source:a () with
  | Node.Already_current -> ()
  | Node.Pulled _ -> Alcotest.fail "second pull should be a no-op"

let test_propagation_ships_only_dirty_items () =
  let a, b = make_pair () in
  (* Converge on a 50-item database first. *)
  for i = 0 to 49 do
    Node.update a (Printf.sprintf "item-%02d" i) (set "base")
  done;
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  (* One fresh update: the next session must ship exactly one item. *)
  Node.update a "item-07" (set "fresh");
  (match Node.handle_propagation_request a (Node.propagation_request b) with
  | Message.Propagate { items; tails } ->
    Alcotest.(check int) "one item in S" 1 (List.length items);
    let total_records = Array.fold_left (fun acc l -> acc + List.length l) 0 tails in
    Alcotest.(check int) "one record in D" 1 total_records;
    (match items with
    | [ shipped ] -> Alcotest.(check string) "right item" "item-07" shipped.Message.name
    | _ -> Alcotest.fail "expected singleton")
  | Message.Propagate_sharded _ -> Alcotest.fail "sharded reply from a 1-shard node"
  | Message.You_are_current -> Alcotest.fail "expected propagation");
  expect_ok a

let test_is_selected_flags_reset () =
  let a, b = make_pair () in
  Node.update a "x" (set "v1");
  Node.update a "y" (set "v2");
  (match Node.handle_propagation_request a (Node.propagation_request b) with
  | Message.Propagate _ -> ()
  | Message.Propagate_sharded _ -> Alcotest.fail "sharded reply from a 1-shard node"
  | Message.You_are_current -> Alcotest.fail "expected propagation");
  (* check_invariants includes the stray-flag check. *)
  expect_ok a

let test_transitive_propagation () =
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  let c = Node.create ~id:2 ~n:3 () in
  Node.update a "x" (set "v1");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  (* c hears about a's update via b only. *)
  let (_ : Node.pull_result) = Node.pull ~recipient:c ~source:b () in
  Alcotest.(check (option string)) "c got the value" (Some "v1") (Node.read c "x");
  check_vv "c's dbvv" [| 1; 0; 0 |] (Node.dbvv c);
  expect_ok c

let test_indirectly_identical_detected_in_constant_time () =
  (* The Lotus weakness the paper fixes (§8.1): b and c both caught up
     via a; a session between them must answer you-are-current from the
     DBVVs alone. *)
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  let c = Node.create ~id:2 ~n:3 () in
  for i = 0 to 19 do
    Node.update a (Printf.sprintf "i%02d" i) (set "v")
  done;
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  let (_ : Node.pull_result) = Node.pull ~recipient:c ~source:a () in
  let before = Edb_metrics.Counters.copy (Node.counters c) in
  (match Node.pull ~recipient:b ~source:c () with
  | Node.Already_current -> ()
  | Node.Pulled _ -> Alcotest.fail "replicas are identical");
  let cost =
    Edb_metrics.Counters.diff ~after:(Node.counters c) ~before
  in
  Alcotest.(check int) "single vv comparison" 1 cost.vv_comparisons;
  Alcotest.(check int) "no item examined" 0 cost.items_examined;
  Alcotest.(check int) "no record examined" 0 cost.log_records_examined

let test_dbvv_rule_3 () =
  (* After adopting an item, the recipient's DBVV grows by exactly the
     IVV surplus of the incoming copy. *)
  let a = Node.create ~id:0 ~n:3 () in
  let b = Node.create ~id:1 ~n:3 () in
  Node.update a "x" (set "v1");
  Node.update a "x" (set "v2");
  Node.update a "y" (set "w");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  check_vv "b's dbvv equals a's" (Vv.to_array (Node.dbvv a)) (Node.dbvv b);
  expect_ok b

let test_conflict_detected () =
  let a, b = make_pair () in
  Node.update a "x" (set "from-a");
  Node.update b "x" (set "from-b");
  (match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled { copied; conflicts; _ } ->
    Alcotest.(check int) "one conflict" 1 conflicts;
    Alcotest.(check (list string)) "nothing adopted" [] copied
  | Node.Already_current -> Alcotest.fail "expected a session");
  (* Criterion 2: propagation must not overwrite either version. *)
  Alcotest.(check (option string)) "b keeps its version" (Some "from-b") (Node.read b "x");
  Alcotest.(check (option string)) "a keeps its version" (Some "from-a") (Node.read a "x");
  match Node.conflicts b with
  | [ conflict ] ->
    Alcotest.(check string) "conflicting item" "x" conflict.Conflict.item;
    (match conflict.Conflict.culprits with
    | Some (k, l) ->
      Alcotest.(check bool) "culprits are 0 and 1" true ((k, l) = (0, 1) || (k, l) = (1, 0))
    | None -> Alcotest.fail "culprits should be derivable")
  | conflicts ->
    Alcotest.fail (Printf.sprintf "expected one conflict, got %d" (List.length conflicts))

let test_conflict_detected_on_both_sides () =
  let a, b = make_pair () in
  Node.update a "x" (set "from-a");
  Node.update b "x" (set "from-b");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  let (_ : Node.pull_result) = Node.pull ~recipient:a ~source:b () in
  Alcotest.(check int) "a saw it too" 1 (List.length (Node.conflicts a))

let test_conflict_spares_other_items () =
  let a, b = make_pair () in
  Node.update a "x" (set "from-a");
  Node.update b "x" (set "from-b");
  Node.update a "y" (set "clean");
  (match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled { copied; conflicts; _ } ->
    Alcotest.(check int) "one conflict" 1 conflicts;
    Alcotest.(check (list string)) "clean item still adopted" [ "y" ] copied
  | Node.Already_current -> Alcotest.fail "expected a session");
  Alcotest.(check (option string)) "y arrived" (Some "clean") (Node.read b "y");
  expect_ok b

let test_resolution_policy () =
  let resolver ~(local : Message.shipped_item) ~(remote : Message.shipped_item) =
    (* Deterministic merge: the lexicographically larger value wins. *)
    let value s = Option.value ~default:"" (Message.whole_value s) in
    if String.compare (value local) (value remote) >= 0 then value local
    else value remote
  in
  let a = Node.create ~policy:(Resolve resolver) ~id:0 ~n:2 () in
  let b = Node.create ~policy:(Resolve resolver) ~id:1 ~n:2 () in
  Node.update a "x" (set "aaa");
  Node.update b "x" (set "zzz");
  (match Node.pull ~recipient:b ~source:a () with
  | Node.Pulled { conflicts; resolved; _ } ->
    Alcotest.(check int) "no reported conflict" 0 conflicts;
    Alcotest.(check int) "one resolution" 1 resolved
  | Node.Already_current -> Alcotest.fail "expected a session");
  Alcotest.(check (option string)) "winner value" (Some "zzz") (Node.read b "x");
  (* The resolution is a fresh update that dominates both ancestors, so
     it propagates back and the pair converges. *)
  let (_ : Node.pull_result) = Node.pull ~recipient:a ~source:b () in
  Alcotest.(check (option string)) "a converged to winner" (Some "zzz") (Node.read a "x");
  Alcotest.(check bool) "dbvvs equal" true (Vv.equal (Node.dbvv a) (Node.dbvv b));
  expect_ok a;
  expect_ok b

let test_conflict_handler_invoked () =
  let seen = ref [] in
  let handler conflict = seen := conflict :: !seen in
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~conflict_handler:handler ~id:1 ~n:2 () in
  Node.update a "x" (set "va");
  Node.update b "x" (set "vb");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Alcotest.(check int) "handler called once" 1 (List.length !seen)

let test_sync_pair_converges () =
  let a, b = make_pair () in
  Node.update a "x" (set "va");
  Node.update b "y" (set "vb");
  Node.sync_pair a b;
  Alcotest.(check (option string)) "a has y" (Some "vb") (Node.read a "y");
  Alcotest.(check (option string)) "b has x" (Some "va") (Node.read b "x");
  (* One more exchange settles the reverse direction completely. *)
  Node.sync_pair a b;
  Alcotest.(check bool) "dbvvs equal" true (Vv.equal (Node.dbvv a) (Node.dbvv b));
  expect_ok a;
  expect_ok b

let test_bytes_charged () =
  let a, b = make_pair () in
  Node.update a "x" (set "0123456789");
  let (_ : Node.pull_result) = Node.pull ~recipient:b ~source:a () in
  Alcotest.(check bool) "source sent bytes" true ((Node.counters a).bytes_sent > 0);
  Alcotest.(check bool) "recipient sent request bytes" true
    ((Node.counters b).bytes_sent > 0);
  Alcotest.(check int) "one message each" 1 (Node.counters a).messages

let test_create_validation () =
  Alcotest.check_raises "bad id" (Invalid_argument "Node.create: id out of range")
    (fun () -> ignore (Node.create ~id:5 ~n:2 ()));
  Alcotest.check_raises "bad n" (Invalid_argument "Node.create: n must be positive")
    (fun () -> ignore (Node.create ~id:0 ~n:0 ()))

let suite =
  [
    Alcotest.test_case "update bookkeeping" `Quick test_update_bookkeeping;
    Alcotest.test_case "update log dedup" `Quick test_update_log_dedup;
    Alcotest.test_case "identical replicas answered O(1)" `Quick
      test_identical_replicas_noop;
    Alcotest.test_case "basic propagation" `Quick test_basic_propagation;
    Alcotest.test_case "second pull is a no-op" `Quick test_pull_twice_second_is_noop;
    Alcotest.test_case "ships only dirty items" `Quick
      test_propagation_ships_only_dirty_items;
    Alcotest.test_case "IsSelected flags reset" `Quick test_is_selected_flags_reset;
    Alcotest.test_case "transitive propagation" `Quick test_transitive_propagation;
    Alcotest.test_case "indirectly identical detected O(1)" `Quick
      test_indirectly_identical_detected_in_constant_time;
    Alcotest.test_case "DBVV rule 3" `Quick test_dbvv_rule_3;
    Alcotest.test_case "conflict detected with culprits" `Quick test_conflict_detected;
    Alcotest.test_case "conflict detected on both sides" `Quick
      test_conflict_detected_on_both_sides;
    Alcotest.test_case "conflict spares other items" `Quick test_conflict_spares_other_items;
    Alcotest.test_case "resolution policy" `Quick test_resolution_policy;
    Alcotest.test_case "conflict handler invoked" `Quick test_conflict_handler_invoked;
    Alcotest.test_case "sync_pair converges" `Quick test_sync_pair_converges;
    Alcotest.test_case "bytes charged" `Quick test_bytes_charged;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]

(* Tests for operations, items, and the per-node store. *)

module Operation = Edb_store.Operation
module Item = Edb_store.Item
module Store = Edb_store.Store
module Vv = Edb_vv.Version_vector

(* ---------- Operations ---------- *)

let test_set () =
  Alcotest.(check string) "set replaces" "new" (Operation.apply "old" (Operation.Set "new"))

let test_splice_inside () =
  Alcotest.(check string) "overwrite middle" "abXYef"
    (Operation.apply "abcdef" (Operation.Splice { offset = 2; data = "XY" }))

let test_splice_extends () =
  Alcotest.(check string) "extends value" "abcXY"
    (Operation.apply "abc" (Operation.Splice { offset = 3; data = "XY" }))

let test_splice_pads_gap () =
  Alcotest.(check string) "zero-pads gap" "ab\000\000XY"
    (Operation.apply "ab" (Operation.Splice { offset = 4; data = "XY" }))

let test_splice_on_empty () =
  Alcotest.(check string) "splice at zero" "hi"
    (Operation.apply "" (Operation.Splice { offset = 0; data = "hi" }))

let test_splice_negative_offset () =
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Operation.apply: negative offset") (fun () ->
      ignore (Operation.apply "x" (Operation.Splice { offset = -1; data = "y" })))

let test_operation_determinism () =
  let ops =
    [
      Operation.Set "base";
      Operation.Splice { offset = 2; data = "zz" };
      Operation.Set "other";
      Operation.Splice { offset = 0; data = "Q" };
    ]
  in
  let run () = List.fold_left Operation.apply "" ops in
  Alcotest.(check string) "same result twice" (run ()) (run ())

let test_operation_equal () =
  Alcotest.(check bool) "set equal" true
    (Operation.equal (Operation.Set "a") (Operation.Set "a"));
  Alcotest.(check bool) "set differs" false
    (Operation.equal (Operation.Set "a") (Operation.Set "b"));
  Alcotest.(check bool) "kinds differ" false
    (Operation.equal (Operation.Set "a") (Operation.Splice { offset = 0; data = "a" }))

let test_size_bytes () =
  Alcotest.(check int) "set size" 5 (Operation.size_bytes (Operation.Set "hello"));
  Alcotest.(check int) "splice size" 10
    (Operation.size_bytes (Operation.Splice { offset = 3; data = "ab" }))

(* ---------- Items ---------- *)

let test_item_create () =
  let item = Item.create ~name:"x" ~n:3 in
  Alcotest.(check string) "empty value" "" item.Item.value;
  Alcotest.(check int) "zero ivv" 0 (Vv.sum item.Item.ivv);
  Alcotest.(check bool) "not selected" false item.Item.is_selected

let test_item_apply () =
  let item = Item.create ~name:"x" ~n:2 in
  Item.apply item (Operation.Set "v1");
  Alcotest.(check string) "applied" "v1" item.Item.value;
  Alcotest.(check int) "ivv untouched" 0 (Vv.sum item.Item.ivv)

let test_item_snapshot_isolation () =
  let item = Item.create ~name:"x" ~n:2 in
  Item.apply item (Operation.Set "v1");
  Vv.incr item.Item.ivv 0;
  let value, ivv = Item.snapshot item in
  Item.apply item (Operation.Set "v2");
  Vv.incr item.Item.ivv 0;
  Alcotest.(check string) "snapshot value frozen" "v1" value;
  Alcotest.(check int) "snapshot ivv frozen" 1 (Vv.get ivv 0)

(* ---------- Store ---------- *)

let test_store_find_or_create () =
  let store = Store.create ~n:3 in
  let a = Store.find_or_create store "x" in
  let b = Store.find_or_create store "x" in
  Alcotest.(check bool) "same item" true (a == b);
  Alcotest.(check int) "size" 1 (Store.size store)

let test_store_find_opt () =
  let store = Store.create ~n:2 in
  Alcotest.(check bool) "absent" true (Store.find_opt store "x" = None);
  ignore (Store.find_or_create store "x");
  Alcotest.(check bool) "present" true (Store.find_opt store "x" <> None);
  Alcotest.(check bool) "mem" true (Store.mem store "x")

let test_store_iteration () =
  let store = Store.create ~n:2 in
  (* Inserted out of order on purpose: [names]/[iter]/[fold] promise
     ascending name order, no caller-side sort needed. *)
  List.iter (fun name -> ignore (Store.find_or_create store name)) [ "b"; "c"; "a" ];
  Alcotest.(check (list string)) "names sorted" [ "a"; "b"; "c" ] (Store.names store);
  let folded = Store.fold (fun acc (i : Item.t) -> i.name :: acc) [] store in
  Alcotest.(check (list string)) "fold sorted" [ "c"; "b"; "a" ] folded

let test_store_total_bytes () =
  let store = Store.create ~n:2 in
  Item.apply (Store.find_or_create store "a") (Operation.Set "xx");
  Item.apply (Store.find_or_create store "b") (Operation.Set "yyy");
  Alcotest.(check int) "total bytes" 5 (Store.total_value_bytes store)

let test_store_rejects_bad_dimension () =
  Alcotest.check_raises "n=0" (Invalid_argument "Store.create: dimension must be positive")
    (fun () -> ignore (Store.create ~n:0))

(* Property: splice result length is max of original length and
   offset + data length. *)
let prop_splice_length =
  QCheck2.Gen.(
    let gen = triple string_small small_nat string_small in
    QCheck2.Test.make ~name:"splice length law" ~count:300 gen (fun (value, offset, data) ->
        let result = Operation.apply value (Operation.Splice { offset; data }) in
        String.length result = max (String.length value) (offset + String.length data)))

(* Property: Set is right-absorbing — any prefix of operations followed
   by Set v yields v. *)
let prop_set_absorbs =
  QCheck2.Gen.(
    let op =
      oneof
        [
          map (fun s -> Operation.Set s) string_small;
          map2 (fun off data -> Operation.Splice { offset = off; data }) small_nat string_small;
        ]
    in
    QCheck2.Test.make ~name:"set absorbs history" ~count:300 (pair (list op) string_small)
      (fun (ops, final) ->
        let value = List.fold_left Operation.apply "" ops in
        Operation.apply value (Operation.Set final) = final))

let suite =
  [
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "splice inside" `Quick test_splice_inside;
    Alcotest.test_case "splice extends" `Quick test_splice_extends;
    Alcotest.test_case "splice pads gap" `Quick test_splice_pads_gap;
    Alcotest.test_case "splice on empty" `Quick test_splice_on_empty;
    Alcotest.test_case "splice negative offset" `Quick test_splice_negative_offset;
    Alcotest.test_case "operation determinism" `Quick test_operation_determinism;
    Alcotest.test_case "operation equality" `Quick test_operation_equal;
    Alcotest.test_case "operation sizes" `Quick test_size_bytes;
    Alcotest.test_case "item create" `Quick test_item_create;
    Alcotest.test_case "item apply" `Quick test_item_apply;
    Alcotest.test_case "item snapshot isolation" `Quick test_item_snapshot_isolation;
    Alcotest.test_case "store find_or_create" `Quick test_store_find_or_create;
    Alcotest.test_case "store find_opt/mem" `Quick test_store_find_opt;
    Alcotest.test_case "store iteration" `Quick test_store_iteration;
    Alcotest.test_case "store total bytes" `Quick test_store_total_bytes;
    Alcotest.test_case "store rejects bad dimension" `Quick
      test_store_rejects_bad_dimension;
    QCheck_alcotest.to_alcotest prop_splice_length;
    QCheck_alcotest.to_alcotest prop_set_absorbs;
  ]

(* Entry point aggregating every suite. *)

let () =
  Alcotest.run "edb"
    [
      ("dll", Test_dll.suite);
      ("prng", Test_prng.suite);
      ("zipf", Test_zipf.suite);
      ("version-vector", Test_vv.suite);
      ("store", Test_store.suite);
      ("shard-map", Test_shard_map.suite);
      ("log", Test_log.suite);
      ("node", Test_node.suite);
      ("message", Test_message.suite);
      ("out-of-bound", Test_oob.suite);
      ("cluster", Test_cluster.suite);
      ("peer-cache", Test_peer_cache.suite);
      ("convergence", Test_convergence.suite);
      ("baselines", Test_baselines.suite);
      ("two-phase-gossip", Test_two_phase.suite);
      ("sim", Test_sim.suite);
      ("transport", Test_transport.suite);
      ("transport-seam", Test_transport_seam.suite);
      ("workload", Test_workload.suite);
      ("metrics", Test_metrics.suite);
      ("experiments", Test_experiments.suite);
      ("scenario", Test_scenario.suite);
      ("persist", Test_persist.suite);
      ("wire-v2", Test_wire_v2.suite);
      ("tokens", Test_tokens.suite);
      ("sessions", Test_sessions.suite);
      ("op-log", Test_oplog.suite);
      ("server-group", Test_server.suite);
      ("invariants", Test_invariants.suite);
      ("sharding", Test_sharding.suite);
      ("push", Test_push.suite);
      ("explorer", Test_explorer.suite);
      ("wal", Test_wal.suite);
      ("fault", Test_fault.suite);
      ("integration", Test_integration.suite);
      ("membership", Test_membership.suite);
    ]

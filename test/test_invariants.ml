(* The lib/check invariant checker, exercised across every protocol
   driver, both propagation modes, and crash-recovery through the WAL. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Driver = Edb_baselines.Driver
module Demers = Edb_baselines.Demers
module Lotus = Edb_baselines.Lotus
module Oracle_push = Edb_baselines.Oracle_push
module Wuu = Edb_baselines.Wuu_bernstein
module Two_phase = Edb_baselines.Two_phase_gossip
module Ficus = Edb_baselines.Ficus
module Engine = Edb_sim.Engine
module Network = Edb_sim.Network
module Invariant = Edb_check.Invariant
module Durable = Edb_persist.Durable_node

let set v = Operation.Set v

let item_name rank = Printf.sprintf "it%02d" rank

let universe k = List.init k item_name

let expect_ok label = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (label ^ ": " ^ msg)

(* One subject under test: a driver, plus the underlying cluster when
   the protocol is the paper's (only then do the lib/check structural
   invariants apply). *)
type subject = { label : string; driver : Driver.t; cluster : Edb_core.Cluster.t option }

let subjects () =
  let u = universe 4 in
  let dbvv mode label =
    let cluster, driver = Edb_baselines.Epidemic_driver.create ~seed:5 ~mode ~n:3 () in
    { label; driver; cluster = Some cluster }
  in
  [
    dbvv Node.Whole_item "dbvv";
    dbvv (Node.Op_log { depth = 8 }) "dbvv-oplog";
    { label = "demers"; driver = Demers.driver (Demers.create ~n:3 ~universe:u); cluster = None };
    { label = "lotus"; driver = Lotus.driver (Lotus.create ~n:3 ~universe:u); cluster = None };
    { label = "oracle"; driver = Oracle_push.driver (Oracle_push.create ~n:3); cluster = None };
    { label = "wuu"; driver = Wuu.driver (Wuu.create ~n:3); cluster = None };
    { label = "2pg"; driver = Two_phase.driver (Two_phase.create ~n:3); cluster = None };
    { label = "ficus"; driver = Ficus.driver (Ficus.create ~n:3 ~universe:u); cluster = None };
  ]

(* A fixed single-writer schedule with a mid-run crash window, followed
   by full-mesh anti-entropy rounds (direct sessions, so even the
   non-forwarding Oracle baseline converges). *)
let run_fixed_schedule { label; driver; cluster } =
  let monitor = Invariant.monitor ~n:3 in
  let observe where =
    match cluster with
    | None -> ()
    | Some cluster ->
      for i = 0 to 2 do
        expect_ok
          (Printf.sprintf "%s %s node %d" label where i)
          (Invariant.observe monitor (Cluster.node cluster i))
      done
  in
  let wrapped =
    {
      driver with
      Driver.update =
        (fun ~node ~item ~op ->
          driver.Driver.update ~node ~item ~op;
          observe "after update");
      session =
        (fun ~src ~dst ->
          driver.Driver.session ~src ~dst;
          observe "after session");
    }
  in
  let engine = Engine.create ~seed:3 ~network:(Network.create ()) ~driver:wrapped () in
  (* Single writer per item: owner = rank mod 3. *)
  List.iteri
    (fun i ev -> Engine.schedule engine ~at:(float_of_int (i + 1)) ev)
    [
      Engine.User_update { node = 0; item = item_name 0; op = set "a1" };
      Engine.User_update { node = 1; item = item_name 1; op = set "b1" };
      Engine.Session { src = 0; dst = 1 };
      Engine.Crash 2;
      Engine.User_update { node = 0; item = item_name 3; op = set "a2" };
      Engine.Session { src = 1; dst = 0 };
      Engine.Recover 2;
      Engine.User_update { node = 2; item = item_name 2; op = set "c1" };
      Engine.User_update { node = 1; item = item_name 1; op = set "b2" };
    ];
  for round = 0 to 2 do
    let at = 20.0 +. (2.0 *. float_of_int round) in
    for src = 0 to 2 do
      for dst = 0 to 2 do
        if src <> dst then Engine.schedule engine ~at (Engine.Session { src; dst })
      done
    done
  done;
  Alcotest.(check bool) (label ^ " quiescent") true (Engine.run_until_quiescent engine);
  observe "at quiescence";
  Alcotest.(check bool) (label ^ " converged") true (driver.Driver.converged ());
  (* The values every driver must agree on after this schedule. *)
  List.iter
    (fun (rank, expected) ->
      for node = 0 to 2 do
        Alcotest.(check (option string))
          (Printf.sprintf "%s node %d %s" label node (item_name rank))
          (Some expected)
          (driver.Driver.read ~node ~item:(item_name rank))
      done)
    [ (0, "a1"); (1, "b2"); (2, "c1"); (3, "a2") ]

let test_all_drivers () = List.iter run_fixed_schedule (subjects ())

(* The invariant checker on randomized single-writer scripts (both
   propagation modes), sharing the suite's workload generator. *)
let prop_invariants_randomized ?(shards = 1) mode name =
  QCheck2.Test.make ~name ~count:60 (Gen.actions ~nodes:4 ~items:6) (fun actions ->
      let cluster = Cluster.create ~seed:29 ~mode ~shards ~n:4 () in
      let monitor = Invariant.monitor ~n:4 in
      let observe () =
        for i = 0 to 3 do
          match Invariant.observe monitor (Cluster.node cluster i) with
          | Ok () -> ()
          | Error msg -> QCheck2.Test.fail_report msg
        done
      in
      List.iter
        (fun action ->
          (match action with
          | Gen.Update { owner_choice = _; item_rank } ->
            let owner = item_rank mod 4 in
            Cluster.update cluster ~node:owner ~item:(item_name item_rank)
              (set (Printf.sprintf "%d" item_rank))
          | Gen.Pull { recipient; source } ->
            if recipient <> source then ignore (Cluster.pull cluster ~recipient ~source)
          | Gen.Oob { recipient; source; item_rank } ->
            if recipient <> source then
              ignore
                (Cluster.fetch_out_of_bound cluster ~recipient ~source
                   (item_name item_rank)));
          observe ())
        actions;
      ignore (Cluster.sync_until_converged ~max_rounds:500 cluster);
      observe ();
      true)

(* Crash-recovery: a node rebuilt from its write-ahead journal must
   satisfy every structural invariant and reproduce the durable state
   exactly. *)
let with_temp_dir f =
  let dir = Filename.temp_file "edb-check" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let test_wal_recovery_invariants () =
  with_temp_dir (fun dir ->
      let a, _ = ok (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
      let peer = Node.create ~id:1 ~n:2 () in
      Durable.update a "x" (set "x1");
      Durable.update a "y" (set "y1");
      Node.update peer "z" (set "z1");
      ignore (Durable.pull_from a ~source:peer);
      Durable.update a "x" (set "x2");
      let before = Node.export_state (Durable.node a) in
      (* Crash: drop the in-memory node, reopen from the journal. *)
      Durable.close a;
      let b, _ = ok (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
      expect_ok "recovered node invariants" (Invariant.check_node (Durable.node b));
      let after = Node.export_state (Durable.node b) in
      Alcotest.(check bool) "state reproduced" true (before = after);
      Durable.close b)

(* Deliberately corrupted state must be rejected — the checker is not
   vacuous. *)
let test_checker_rejects_corruption () =
  let cluster = Cluster.create ~seed:7 ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "v1");
  let node = Cluster.node cluster 0 in
  expect_ok "clean state accepted" (Invariant.check_node node);
  let item = Edb_store.Store.find_or_create (Node.store node) "x" in
  Edb_vv.Version_vector.incr item.Edb_store.Item.ivv 1;
  (match Invariant.check_node node with
  | Ok () -> Alcotest.fail "corrupted IVV went undetected"
  | Error _ -> ())

(* DBVV monotonicity: the monitor flags a node whose DBVV goes
   backwards (here: a fresh node observed under the same id). *)
let test_monitor_flags_regression () =
  let monitor = Invariant.monitor ~n:2 in
  let node = Node.create ~id:0 ~n:2 () in
  Node.update node "x" (set "v");
  expect_ok "first observation" (Invariant.observe monitor node);
  let fresh = Node.create ~id:0 ~n:2 () in
  match Invariant.observe monitor fresh with
  | Ok () -> Alcotest.fail "DBVV regression went undetected"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "fixed schedule across all drivers" `Quick test_all_drivers;
    QCheck_alcotest.to_alcotest
      (prop_invariants_randomized Node.Whole_item "invariants hold (whole-item mode)");
    QCheck_alcotest.to_alcotest
      (prop_invariants_randomized
         (Node.Op_log { depth = 6 })
         "invariants hold (op-log mode)");
    QCheck_alcotest.to_alcotest
      (prop_invariants_randomized ~shards:4 Node.Whole_item
         "invariants hold (4 shards)");
    QCheck_alcotest.to_alcotest
      (prop_invariants_randomized ~shards:7
         (Node.Op_log { depth = 6 })
         "invariants hold (7 shards, op-log mode)");
    Alcotest.test_case "wal recovery preserves invariants" `Quick
      test_wal_recovery_invariants;
    Alcotest.test_case "checker rejects corrupted state" `Quick
      test_checker_rejects_corruption;
    Alcotest.test_case "monitor flags DBVV regression" `Quick
      test_monitor_flags_regression;
  ]

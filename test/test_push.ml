(* The best-effort realtime push channel (DESIGN.md §10): bounded-queue
   semantics against a list model, channel fan-out/flush/detach
   behaviour, apply-if-fresh guards, and push idempotence — duplicated,
   reordered and stale pushes must never move a receiver that
   anti-entropy already served. Also hosts the windowed-percentile
   ordering property (p50 <= p90 <= p99 <= max) and the scenario
   parser's unknown-key rejection (the `pussh` typo must fail loudly). *)

module Node = Edb_core.Node
module Cluster = Edb_core.Cluster
module Message = Edb_core.Message
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Histogram = Edb_metrics.Histogram
module Json = Edb_metrics.Json
module Scenario = Edb_scenario.Scenario
module Bounded_queue = Edb_push.Bounded_queue
module Channel = Edb_push.Channel

let set v = Operation.Set v

(* ---------- Bounded queue vs. a list model ---------- *)

(* A push-only script: after [n] pushes into a capacity-[c] queue the
   drain must be exactly the window the policy promises — the last [c]
   elements for drop-oldest, the first [c] for drop-newest — in FIFO
   order, with every intermediate length within bound and the drop
   counter exactly [max 0 (n - c)]. *)
let model_keep policy capacity xs =
  let n = List.length xs in
  match policy with
  | Bounded_queue.Drop_oldest -> List.filteri (fun i _ -> i >= n - capacity) xs
  | Bounded_queue.Drop_newest -> List.filteri (fun i _ -> i < capacity) xs

let prop_queue_window policy =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "%s: drain is the modeled window, drops exact"
         (Bounded_queue.policy_name policy))
    ~count:200
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 64) (int_bound 999)))
    (fun (capacity, xs) ->
      let q = Bounded_queue.create ~capacity ~policy in
      let overflows =
        List.fold_left
          (fun acc x ->
            let before = Bounded_queue.length q in
            let r = Bounded_queue.push q x in
            if Bounded_queue.length q > capacity then
              QCheck2.Test.fail_report "length exceeded capacity";
            (match r with
            | `Stored ->
              if Bounded_queue.length q <> before + 1 then
                QCheck2.Test.fail_report "`Stored did not grow the queue by one"
            | `Overflow ->
              if Bounded_queue.length q <> capacity then
                QCheck2.Test.fail_report "`Overflow left the queue under capacity");
            acc + (match r with `Overflow -> 1 | `Stored -> 0))
          0 xs
      in
      let expected = max 0 (List.length xs - capacity) in
      overflows = expected
      && Bounded_queue.dropped q = expected
      && Bounded_queue.drain q = model_keep policy capacity xs
      && Bounded_queue.is_empty q)

(* Interleaved pushes and drains against a reference list model: the
   drop counter is cumulative across drains and every drain empties the
   queue. *)
type qstep = Qpush of int | Qdrain

let prop_queue_interleaved policy =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "%s: interleaved push/drain matches the model"
         (Bounded_queue.policy_name policy))
    ~count:200
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 80)
           (frequency
              [ (6, map (fun x -> Qpush x) (int_bound 999)); (1, return Qdrain) ])))
    (fun (capacity, steps) ->
      let q = Bounded_queue.create ~capacity ~policy in
      let model = ref [] and drops = ref 0 in
      List.for_all
        (function
          | Qpush x ->
            (match Bounded_queue.push q x with
            | `Stored -> model := !model @ [ x ]
            | `Overflow ->
              incr drops;
              (match policy with
              | Bounded_queue.Drop_oldest -> model := List.tl !model @ [ x ]
              | Bounded_queue.Drop_newest -> ()));
            Bounded_queue.length q = List.length !model
            && Bounded_queue.dropped q = !drops
          | Qdrain ->
            let drained = Bounded_queue.drain q in
            let expected = !model in
            model := [];
            drained = expected && Bounded_queue.is_empty q
            && Bounded_queue.dropped q = !drops)
        steps)

let test_queue_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Bounded_queue.create: capacity must be >= 1")
    (fun () ->
      ignore
        (Bounded_queue.create ~capacity:0 ~policy:Bounded_queue.Drop_oldest
          : int Bounded_queue.t))

(* ---------- Channel fan-out, flush gating, detach ---------- *)

let test_channel_fanout_flush () =
  let n = 4 in
  let cluster = Cluster.create ~seed:5 ~n () in
  let origin = Cluster.node cluster 0 in
  let ch =
    Channel.create
      ~config:
        { Channel.capacity = 8; policy = Bounded_queue.Drop_oldest;
          flush_period = 0.25 }
      origin
  in
  Cluster.update cluster ~node:0 ~item:"a" (set "1");
  Cluster.update cluster ~node:0 ~item:"b" (set "2");
  (* Every update fans out to every peer queue. *)
  for peer = 1 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "peer %d pending" peer)
      2
      (Channel.pending ch peer)
  done;
  (* Flush drains only ready peers, in FIFO order, leaving the rest. *)
  (match Channel.flush ch ~ready:(fun p -> p = 2) with
  | [ (2, us) ] ->
    Alcotest.(check (list string))
      "peer 2 batch in FIFO order" [ "a"; "b" ]
      (List.map (fun (u : Message.push_update) -> u.Message.item) us)
  | _ -> Alcotest.fail "expected exactly peer 2's batch");
  Alcotest.(check int) "peer 2 drained" 0 (Channel.pending ch 2);
  Alcotest.(check int) "peer 1 untouched" 2 (Channel.pending ch 1);
  (* A full flush skips the now-empty queue and covers the rest in
     ascending peer order. *)
  (match Channel.flush ch ~ready:(fun _ -> true) with
  | [ (1, _); (3, _) ] -> ()
  | batches ->
    Alcotest.failf "expected peers 1 and 3, got %d batches" (List.length batches));
  (* Detach stops accrual; queued state (here: nothing) is untouched. *)
  Channel.detach ch;
  Cluster.update cluster ~node:0 ~item:"c" (set "3");
  for peer = 1 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "peer %d after detach" peer)
      0
      (Channel.pending ch peer)
  done

(* Overflow is charged to the node's counter: one tick per dropped
   element per peer queue. *)
let test_channel_overflow_counter () =
  let n = 3 in
  let cluster = Cluster.create ~seed:6 ~n () in
  let origin = Cluster.node cluster 0 in
  let ch =
    Channel.create
      ~config:
        { Channel.capacity = 2; policy = Bounded_queue.Drop_oldest;
          flush_period = 0.25 }
      origin
  in
  for k = 1 to 5 do
    Cluster.update cluster ~node:0 ~item:"x" (set (string_of_int k))
  done;
  (* 5 updates into capacity-2 queues: 3 drops per peer, 2 peers. *)
  Alcotest.(check int) "push_dropped_overflow" 6
    (Node.counters origin).Counters.push_dropped_overflow;
  (* Drop-oldest keeps the freshest window. *)
  (match Channel.flush ch ~ready:(fun _ -> true) with
  | [ (1, us1); (2, us2) ] ->
    List.iter
      (fun us ->
        Alcotest.(check (list string))
          "freshest two survive" [ "4"; "5" ]
          (List.map (fun (u : Message.push_update) -> u.Message.value) us))
      [ us1; us2 ]
  | _ -> Alcotest.fail "expected batches for peers 1 and 2")

(* ---------- apply_push guards ---------- *)

let test_apply_push_guards () =
  let cluster = Cluster.create ~seed:9 ~n:3 () in
  let node1 = Cluster.node cluster 1 in
  let u =
    { Message.item = "x"; seq = 1; ivv = Edb_vv.Version_vector.create ~n:3;
      value = "v" }
  in
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Node.apply_push: source out of range") (fun () ->
      ignore (Node.apply_push node1 ~source:7 u));
  Alcotest.check_raises "push from self"
    (Invalid_argument "Node.apply_push: push from self") (fun () ->
      ignore (Node.apply_push node1 ~source:1 u))

(* ---------- Push idempotence under arbitrary prior state ---------- *)

(* The scripted workload idiom from test_transport: drive the cluster
   into an arbitrary reachable state — conflicts included — before the
   push under test arrives. The probed item lives outside the script's
   namespace so the origin's update is guaranteed to take the regular
   (hook-firing) path. *)
type prep = Upd of { node : int; item : int; op : Operation.t } | Pull of int * int

let nodes = 3

let prep_gen =
  QCheck2.Gen.(
    let upd =
      map3
        (fun node item op -> Upd { node = node mod nodes; item; op })
        (int_bound 1000)
        (int_bound 2) Gen.operation
    in
    let pull =
      map2 (fun a b -> Pull (a mod nodes, b mod nodes)) (int_bound 1000)
        (int_bound 1000)
    in
    list_size (int_range 0 40) (frequency [ (3, upd); (2, pull) ]))

let item_name rank = Printf.sprintf "it%d" rank

let build_cluster script =
  let cluster = Cluster.create ~seed:7 ~n:nodes () in
  List.iter
    (function
      | Upd { node; item; op } ->
        Cluster.update cluster ~node ~item:(item_name item) op
      | Pull (recipient, source) ->
        if recipient <> source then
          ignore (Cluster.pull cluster ~recipient ~source))
    script;
  cluster

let normalized_state = Node.export_state

(* Capture the origin's push-stream updates directly off the hook. *)
let capture node =
  let buf = ref [] in
  Node.set_update_hook node (Some (fun u -> buf := u :: !buf));
  fun () -> List.rev !buf

(* Delivering the same push twice: whatever the first delivery did, the
   second must come back [`Stale] and leave the receiver bitwise
   unchanged. *)
let prop_duplicate_push_idempotent =
  QCheck2.Test.make ~name:"duplicate push: second delivery is a stale no-op"
    ~count:100
    QCheck2.Gen.(triple prep_gen (int_bound 1000) (int_bound 1000))
    (fun (script, a, b) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      let captured = capture source in
      Cluster.update cluster ~node:src ~item:"push-probe" (set "fresh");
      match captured () with
      | [ u ] ->
        let (_ : [ `Applied | `Stale ]) =
          Node.apply_push recipient ~source:src u
        in
        let once = normalized_state recipient in
        Node.apply_push recipient ~source:src u = `Stale
        && normalized_state recipient = once
      | us -> QCheck2.Test.fail_reportf "hook fired %d times" (List.length us))

(* Like [build_cluster] but single-writer (owner = item rank mod n), so
   no conflicts arise: an unresolved conflict freezes the recipient's
   DBVV component for that origin, and this property needs the sync
   pull to actually catch the recipient up. *)
let build_single_writer_cluster script =
  let cluster = Cluster.create ~seed:7 ~n:nodes () in
  List.iter
    (function
      | Upd { node = _; item; op } ->
        Cluster.update cluster ~node:(item mod nodes) ~item:(item_name item) op
      | Pull (recipient, source) ->
        if recipient <> source then
          ignore (Cluster.pull cluster ~recipient ~source))
    script;
  cluster

(* Reordered pushes: with the pair fully synced, push the second of two
   consecutive updates first — it must be rejected as stale (a sequence
   gap) without touching state; played in order both apply. *)
let prop_reordered_push =
  QCheck2.Test.make
    ~name:"reordered push: gap rejected, in-order replay applies" ~count:100
    ~print:(fun (script, a, b) ->
      Printf.sprintf "script len %d a=%d b=%d [%s]" (List.length script) a b
        (String.concat ";"
           (List.map
              (function
                | Upd { node; item; _ } -> Printf.sprintf "U%d.%d" node item
                | Pull (r, s) -> Printf.sprintf "P%d<%d" r s)
              script)))
    QCheck2.Gen.(triple prep_gen (int_bound 1000) (int_bound 1000))
    (fun (script, a, b) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_single_writer_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      (* Sync so the next push from [src] is exactly what [dst] expects. *)
      ignore (Cluster.pull cluster ~recipient:dst ~source:src);
      let captured = capture source in
      Cluster.update cluster ~node:src ~item:"push-probe" (set "one");
      Cluster.update cluster ~node:src ~item:"push-probe" (set "two");
      match captured () with
      | [ u1; u2 ] ->
        let before = normalized_state recipient in
        let gap = Node.apply_push recipient ~source:src u2 in
        let unchanged = normalized_state recipient = before in
        let first = Node.apply_push recipient ~source:src u1 in
        let second = Node.apply_push recipient ~source:src u2 in
        let read = Node.read recipient "push-probe" in
        if
          not
            (gap = `Stale && unchanged && first = `Applied && second = `Applied
           && read = Some "two")
        then
          QCheck2.Test.fail_reportf
            "gap=%s unchanged=%b first=%s second=%s read=%s"
            (match gap with `Stale -> "stale" | `Applied -> "applied")
            unchanged
            (match first with `Stale -> "stale" | `Applied -> "applied")
            (match second with `Stale -> "stale" | `Applied -> "applied")
            (match read with Some v -> v | None -> "<none>")
        else true
      | us -> QCheck2.Test.fail_reportf "hook fired %d times" (List.length us))

(* The backstop race: anti-entropy delivers the update first, then the
   push for the same write straggles in — it must be counted stale and
   change nothing. *)
let prop_push_after_anti_entropy_stale =
  QCheck2.Test.make ~name:"push losing the race to anti-entropy is a no-op"
    ~count:100
    QCheck2.Gen.(triple prep_gen (int_bound 1000) (int_bound 1000))
    (fun (script, a, b) ->
      let src = a mod nodes and dst = b mod nodes in
      QCheck2.assume (src <> dst);
      let cluster = build_cluster script in
      let source = Cluster.node cluster src
      and recipient = Cluster.node cluster dst in
      let captured = capture source in
      Cluster.update cluster ~node:src ~item:"push-probe" (set "raced");
      match captured () with
      | [ u ] ->
        ignore (Cluster.pull cluster ~recipient:dst ~source:src);
        let stale_before = (Node.counters recipient).Counters.push_stale in
        let served = normalized_state recipient in
        Node.apply_push recipient ~source:src u = `Stale
        && normalized_state recipient = served
        && (Node.counters recipient).Counters.push_stale = stale_before + 1
      | us -> QCheck2.Test.fail_reportf "hook fired %d times" (List.length us))

(* A fresh push applies and counts; the receiver then reads the pushed
   value without any anti-entropy session having run. *)
let test_fresh_push_applies () =
  let cluster = Cluster.create ~seed:21 ~n:nodes () in
  let source = Cluster.node cluster 0 and recipient = Cluster.node cluster 1 in
  let captured = capture source in
  Cluster.update cluster ~node:0 ~item:"hot" (set "now");
  match captured () with
  | [ u ] ->
    Alcotest.(check bool) "applied" true
      (Node.apply_push recipient ~source:0 u = `Applied);
    Alcotest.(check int) "push_applied counted" 1
      (Node.counters recipient).Counters.push_applied;
    Alcotest.(check (option string)) "value visible" (Some "now")
      (Node.read recipient "hot")
  | us -> Alcotest.failf "hook fired %d times" (List.length us)

(* ---------- Windowed percentile ordering ---------- *)

(* The staleness report now carries p99 between p90 and max; on any
   non-empty sample set nearest-rank percentiles must be monotone. *)
let prop_percentile_order =
  QCheck2.Test.make ~name:"percentiles ordered: p50 <= p90 <= p99 <= max"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let p50 = Histogram.percentile h 50.0
      and p90 = Histogram.percentile h 90.0
      and p99 = Histogram.percentile h 99.0
      and max_ = Histogram.max_value h in
      p50 <= p90 && p90 <= p99 && p99 <= max_)

(* ---------- Scenario parser: unknown keys fail loudly ---------- *)

let test_scenario_rejects_unknown_key () =
  let base =
    match Scenario.builtin "push-smoke" with
    | Some sc -> sc
    | None -> Alcotest.fail "no push-smoke builtin"
  in
  let fields =
    match Scenario.to_json base with
    | Json.Obj fields -> fields
    | _ -> Alcotest.fail "scenario did not print as an object"
  in
  (* The motivating typo: `push` misspelled `pussh` silently disabling
     the channel would invalidate every push experiment. *)
  let renamed =
    Json.Obj
      (List.map (fun (k, v) -> ((if k = "push" then "pussh" else k), v)) fields)
  in
  (match Scenario.of_json renamed with
  | Ok _ -> Alcotest.fail "pussh typo accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the typo" true
      (Astring.String.is_infix ~affix:"pussh" msg));
  (* Any alien trailing key must fail the same way. *)
  (match Scenario.of_json (Json.Obj (fields @ [ ("frobnicate", Json.Int 1) ])) with
  | Ok _ -> Alcotest.fail "alien key accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the key" true
      (Astring.String.is_infix ~affix:"frobnicate" msg));
  (* And the untouched document still parses, so the rejections above
     are about the keys, not the fixture. *)
  match Scenario.of_json (Json.Obj fields) with
  | Ok sc -> Alcotest.(check bool) "fixture intact" true (Scenario.equal base sc)
  | Error msg -> Alcotest.fail ("fixture rejected: " ^ msg)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    qcheck (prop_queue_window Bounded_queue.Drop_oldest);
    qcheck (prop_queue_window Bounded_queue.Drop_newest);
    qcheck (prop_queue_interleaved Bounded_queue.Drop_oldest);
    qcheck (prop_queue_interleaved Bounded_queue.Drop_newest);
    Alcotest.test_case "queue rejects capacity 0" `Quick
      test_queue_rejects_zero_capacity;
    Alcotest.test_case "channel fan-out, flush gating, detach" `Quick
      test_channel_fanout_flush;
    Alcotest.test_case "overflow charges the node counter" `Quick
      test_channel_overflow_counter;
    Alcotest.test_case "apply_push argument guards" `Quick test_apply_push_guards;
    qcheck prop_duplicate_push_idempotent;
    qcheck prop_reordered_push;
    qcheck prop_push_after_anti_entropy_stale;
    Alcotest.test_case "fresh push applies without anti-entropy" `Quick
      test_fresh_push_applies;
    qcheck prop_percentile_order;
    Alcotest.test_case "scenario rejects unknown top-level keys" `Quick
      test_scenario_rejects_unknown_key;
  ]

(* Tests for the multi-database server group (paper §2: "a separate
   instance of the protocol runs for each database"). *)

module Group = Edb_server.Server_group
module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation

let set v = Operation.Set v

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let test_create_and_list () =
  let group = Group.create ~n:3 () in
  Alcotest.(check (list string)) "empty" [] (Group.databases group);
  ok (Group.create_database group "crm");
  ok (Group.create_database group "archive");
  Alcotest.(check (list string)) "sorted names" [ "archive"; "crm" ]
    (Group.databases group)

let test_duplicate_create_rejected () =
  let group = Group.create ~n:2 () in
  ok (Group.create_database group "db");
  match Group.create_database group "db" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate name must be rejected"

let test_drop () =
  let group = Group.create ~n:2 () in
  ok (Group.create_database group "db");
  ok (Group.drop_database group "db");
  Alcotest.(check (list string)) "gone" [] (Group.databases group);
  match Group.drop_database group "db" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dropping twice must fail"

let test_databases_are_isolated () =
  let group = Group.create ~n:3 () in
  ok (Group.create_database group "a");
  ok (Group.create_database group "b");
  ok (Group.update group ~db:"a" ~node:0 ~item:"x" (set "in-a"));
  (* The same item name in the other database is untouched. *)
  Alcotest.(check (option string)) "b unaffected" None
    (ok (Group.read group ~db:"b" ~node:0 ~item:"x"));
  (* Anti-entropy in b moves nothing and knows nothing of a. *)
  ok (Group.anti_entropy_round group ~db:"b");
  Alcotest.(check (option string)) "still nothing in b" None
    (ok (Group.read group ~db:"b" ~node:1 ~item:"x"));
  (* a converges independently. *)
  let (_ : int) = ok (Group.sync_database group ~db:"a") in
  Alcotest.(check (option string)) "a propagated" (Some "in-a")
    (ok (Group.read group ~db:"a" ~node:2 ~item:"x"))

let test_independent_schedules () =
  (* The motivating §2 scenario: a hot database syncs often, the
     archive rarely — without the hot traffic paying anything for the
     archive's existence. *)
  let group = Group.create ~n:2 () in
  ok (Group.create_database group "hot");
  ok (Group.create_database group "archive");
  ok (Group.update group ~db:"hot" ~node:0 ~item:"h" (set "1"));
  ok (Group.update group ~db:"archive" ~node:0 ~item:"a" (set "1"));
  let hot = ok (Group.cluster group "hot") in
  ignore (Cluster.pull hot ~recipient:1 ~source:0);
  Alcotest.(check bool) "hot converged alone" true (Cluster.converged hot);
  Alcotest.(check bool) "group not converged (archive lags)" false
    (Group.converged group);
  let results = Group.sync_all group in
  Alcotest.(check int) "both databases synced" 2 (List.length results);
  Alcotest.(check bool) "group converged" true (Group.converged group)

let test_unknown_database_errors () =
  let group = Group.create ~n:2 () in
  (match Group.update group ~db:"nope" ~node:0 ~item:"x" (set "v") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown db must fail");
  match Group.read group ~db:"nope" ~node:0 ~item:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown db must fail"

let with_temp_dir f =
  let dir = Filename.temp_file "edb-group" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_checkpoint_and_restore () =
  with_temp_dir (fun dir ->
      let group = Group.create ~n:2 () in
      ok (Group.create_database group "crm");
      ok (Group.create_database group "wiki");
      ok (Group.update group ~db:"crm" ~node:0 ~item:"cust" (set "alice"));
      ok (Group.update group ~db:"wiki" ~node:0 ~item:"page" (set "v1"));
      ignore (Group.sync_all group);
      (* Checkpoint server 1 with everything converged. *)
      ok (Group.save_server group ~dir ~node:1);
      (* More updates happen after the checkpoint. *)
      ok (Group.update group ~db:"wiki" ~node:0 ~item:"page" (set "v2"));
      ignore (Group.sync_all group);
      (* Server 1 "crashes" and recovers from the checkpoint: it falls
         back to the checkpointed state... *)
      ok (Group.restore_server group ~dir ~node:1);
      Alcotest.(check (option string)) "restored at checkpoint" (Some "v1")
        (ok (Group.read group ~db:"wiki" ~node:1 ~item:"page"));
      Alcotest.(check (option string)) "crm intact" (Some "alice")
        (ok (Group.read group ~db:"crm" ~node:1 ~item:"cust"));
      (* ...and ordinary anti-entropy brings it current again. *)
      ignore (Group.sync_all group);
      Alcotest.(check (option string)) "caught up after rejoin" (Some "v2")
        (ok (Group.read group ~db:"wiki" ~node:1 ~item:"page"));
      Alcotest.(check bool) "converged" true (Group.converged group))

let test_restore_wrong_node_rejected () =
  with_temp_dir (fun dir ->
      let group = Group.create ~n:2 () in
      ok (Group.create_database group "db");
      ok (Group.save_server group ~dir ~node:0);
      match Group.restore_server group ~dir ~node:1 with
      | Error msg ->
        Alcotest.(check bool) "explains the mismatch" true
          (Astring.String.is_infix ~affix:"server 0" msg)
      | Ok () -> Alcotest.fail "must reject a checkpoint for another server")

let test_restore_missing_database_rejected () =
  with_temp_dir (fun dir ->
      let group = Group.create ~n:2 () in
      ok (Group.create_database group "db");
      ok (Group.save_server group ~dir ~node:0);
      ok (Group.drop_database group "db");
      match Group.restore_server group ~dir ~node:0 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "must reject when the database is gone")

(* Parallel [sync_all] must be bitwise-identical to the sequential run:
   databases are share-nothing protocol instances with their own
   deterministic PRNGs, so fanning them over domains may only change
   wall-clock, never rounds or states. *)
let test_sync_all_parallel_deterministic () =
  let build () =
    let group = Group.create ~n:4 () in
    for d = 0 to 5 do
      let db = Printf.sprintf "db%d" d in
      ok (Group.create_database group db);
      for i = 0 to 9 do
        ok
          (Group.update group ~db
             ~node:(i mod 4)
             ~item:(Printf.sprintf "k%d" i)
             (set (Printf.sprintf "%d:%d" d i)))
      done
    done;
    group
  in
  let observe group =
    List.map
      (fun db ->
        let cluster = ok (Group.cluster group db) in
        ( db,
          List.init (Cluster.n cluster) (fun node ->
              List.init 10 (fun i ->
                  Cluster.read cluster ~node ~item:(Printf.sprintf "k%d" i))) ))
      (Group.databases group)
  in
  let seq_group = build () and par_group = build () in
  let seq_rounds = Group.sync_all ~domains:1 seq_group in
  let par_rounds = Group.sync_all ~domains:4 par_group in
  Alcotest.(check (list (pair string int)))
    "rounds per database identical" seq_rounds par_rounds;
  Alcotest.(check bool) "parallel run converged" true (Group.converged par_group);
  if observe seq_group <> observe par_group then
    Alcotest.fail "parallel sync_all diverged from sequential";
  (* Same for the single-round variant. *)
  ok (Group.update seq_group ~db:"db0" ~node:0 ~item:"late" (set "tail"));
  ok (Group.update par_group ~db:"db0" ~node:0 ~item:"late" (set "tail"));
  Group.anti_entropy_all ~domains:1 seq_group;
  Group.anti_entropy_all ~domains:4 par_group;
  if observe seq_group <> observe par_group then
    Alcotest.fail "parallel anti_entropy_all diverged from sequential"

let test_counters_aggregate_across_databases () =
  let group = Group.create ~n:2 () in
  ok (Group.create_database group "a");
  ok (Group.create_database group "b");
  ok (Group.update group ~db:"a" ~node:0 ~item:"x" (set "1"));
  ok (Group.update group ~db:"b" ~node:1 ~item:"y" (set "2"));
  let total = Group.total_counters group in
  Alcotest.(check int) "both updates counted" 2 total.updates_applied

let suite =
  [
    Alcotest.test_case "create and list" `Quick test_create_and_list;
    Alcotest.test_case "duplicate create rejected" `Quick test_duplicate_create_rejected;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "databases are isolated" `Quick test_databases_are_isolated;
    Alcotest.test_case "independent schedules" `Quick test_independent_schedules;
    Alcotest.test_case "unknown database errors" `Quick test_unknown_database_errors;
    Alcotest.test_case "checkpoint and restore" `Quick test_checkpoint_and_restore;
    Alcotest.test_case "restore wrong node rejected" `Quick
      test_restore_wrong_node_rejected;
    Alcotest.test_case "restore missing database rejected" `Quick
      test_restore_missing_database_rejected;
    Alcotest.test_case "counters aggregate" `Quick test_counters_aggregate_across_databases;
    Alcotest.test_case "parallel sync_all is deterministic" `Quick
      test_sync_all_parallel_deterministic;
  ]

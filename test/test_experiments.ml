(* Smoke + shape tests for the experiment suite (quick mode): every
   table renders, and the headline claims hold at small scale. *)

module Experiments = Edb_experiments.Experiments
module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Counters = Edb_metrics.Counters
module Operation = Edb_store.Operation
module Workload = Edb_workload.Workload

let test_all_tables_render () =
  let tables = Experiments.all ~quick:true () in
  Alcotest.(check int) "twenty experiments" 20 (List.length tables);
  List.iter
    (fun (id, table) ->
      let rendered = Edb_metrics.Table.render table in
      Alcotest.(check bool) (id ^ " renders") true (String.length rendered > 0))
    tables

(* E1's claim at small scale: quadrupling N leaves the dbvv cost
   unchanged while the per-item baselines' cost grows with N. *)
let measure_session_work ~n_items ~m =
  let cluster = Cluster.create ~n:2 () in
  for rank = 0 to n_items - 1 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "s")
  done;
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  for rank = 0 to m - 1 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "d")
  done;
  Cluster.reset_counters cluster;
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  Counters.total_work (Cluster.total_counters cluster)

let test_dbvv_cost_independent_of_n () =
  let small = measure_session_work ~n_items:200 ~m:16 in
  let large = measure_session_work ~n_items:3_200 ~m:16 in
  Alcotest.(check int) "same work at 16x the database" small large

let test_dbvv_cost_linear_in_m () =
  let m16 = measure_session_work ~n_items:800 ~m:16 in
  let m64 = measure_session_work ~n_items:800 ~m:64 in
  (* Within 10% of perfect 4x scaling. *)
  let ratio = float_of_int m64 /. float_of_int m16 in
  Alcotest.(check bool)
    (Printf.sprintf "4x items ~ 4x work (ratio %.2f)" ratio)
    true
    (ratio > 3.6 && ratio < 4.4)

let test_e7_rounds_grow_slowly () =
  (* Epidemic spread: going from 4 to 64 nodes should multiply rounds by
     far less than 16x. *)
  let rounds n =
    let cluster = Cluster.create ~seed:1 ~n () in
    Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "v");
    Cluster.sync_until_converged cluster
  in
  let r4 = rounds 4 and r64 = rounds 64 in
  Alcotest.(check bool)
    (Printf.sprintf "sub-linear growth (%d -> %d)" r4 r64)
    true
    (r64 < r4 * 8)

let test_e3_claim_identical_replicas_o1 () =
  (* b and c became identical via a; the session between them must cost
     exactly one comparison. *)
  let cluster = Cluster.create ~n:3 () in
  for rank = 0 to 299 do
    Cluster.update cluster ~node:0 ~item:(Workload.item_name rank) (Operation.Set "v")
  done;
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  ignore (Cluster.pull cluster ~recipient:2 ~source:0);
  Cluster.reset_counters cluster;
  ignore (Cluster.pull cluster ~recipient:2 ~source:1);
  Alcotest.(check int) "one comparison total" 1
    (Counters.total_work (Cluster.total_counters cluster))

let test_e4_claim_constant_overhead_per_item () =
  let overhead_per_item m =
    let cluster = Cluster.create ~n:2 () in
    for rank = 0 to 499 do
      Cluster.update cluster ~node:0 ~item:(Workload.item_name rank)
        (Operation.Set (Workload.payload ~item:(Workload.item_name rank) ~seq:1 ~size:64))
    done;
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    for rank = 0 to m - 1 do
      Cluster.update cluster ~node:0 ~item:(Workload.item_name rank)
        (Operation.Set (Workload.payload ~item:(Workload.item_name rank) ~seq:2 ~size:64))
    done;
    Cluster.reset_counters cluster;
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    let bytes = (Node.counters (Cluster.node cluster 0)).Counters.bytes_sent in
    (* Drop the constant 8-byte reply header and the value payloads:
       what is left is the per-item control information. *)
    (bytes - 8 - (m * 64)) / m
  in
  Alcotest.(check int) "same overhead at 8 and 128 items" (overhead_per_item 8)
    (overhead_per_item 128)

let test_e10_claim_independent_of_update_count () =
  let work updates =
    let cluster = Cluster.create ~n:2 () in
    for i = 0 to updates - 1 do
      Cluster.update cluster ~node:0 ~item:(Workload.item_name (i mod 8))
        (Operation.Set (string_of_int i))
    done;
    Cluster.reset_counters cluster;
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    Counters.total_work (Cluster.total_counters cluster)
  in
  Alcotest.(check int) "8 updates vs 512 updates, same session work" (work 8) (work 512)

(* ---------- Orchestrator-ported experiments ---------- *)

(* E12, E13 and E17 now run through Edb_scenario.Orchestrator; the
   bespoke loops they replaced are kept as *_legacy exports precisely
   so these tests can pin the two paths equivalent — same tables cell
   for cell, and for E13 the same cluster counter totals field for
   field. The port is only allowed to be a refactor. *)

module Table = Edb_metrics.Table

let check_tables_equal what a b =
  Alcotest.(check string) (what ^ " title") (Table.title b) (Table.title a);
  Alcotest.(check (list string)) (what ^ " columns") (Table.columns b) (Table.columns a);
  Alcotest.(check (list (list string))) (what ^ " rows") (Table.rows b) (Table.rows a)

let test_e12_matches_legacy () =
  check_tables_equal "E12"
    (Experiments.e12_timeliness_vs_period ~quick:true ())
    (Experiments.e12_legacy ~quick:true ())

let test_e13_matches_legacy () =
  let table, totals = Experiments.e13_with_totals ~quick:true ~legacy:false () in
  let table', totals' = Experiments.e13_with_totals ~quick:true ~legacy:true () in
  check_tables_equal "E13" table table';
  Alcotest.(check int) "one counter bundle per n" (List.length totals')
    (List.length totals);
  List.iteri
    (fun i (ported, legacy) ->
      List.iter
        (fun (name, get) ->
          Alcotest.(check int)
            (Printf.sprintf "E13 run %d: %s" i name)
            (get legacy) (get ported))
        Counters.fields)
    (List.combine totals totals')

let test_e17_matches_legacy () =
  check_tables_equal "E17"
    (Experiments.e17_message_loss ~quick:true ())
    (Experiments.e17_legacy ~quick:true ())

let suite =
  [
    Alcotest.test_case "all tables render (quick)" `Slow test_all_tables_render;
    Alcotest.test_case "E12 orchestrator matches legacy" `Quick
      test_e12_matches_legacy;
    Alcotest.test_case "E13 orchestrator matches legacy" `Quick
      test_e13_matches_legacy;
    Alcotest.test_case "E17 orchestrator matches legacy" `Quick
      test_e17_matches_legacy;
    Alcotest.test_case "E3 claim: identical replicas O(1)" `Quick
      test_e3_claim_identical_replicas_o1;
    Alcotest.test_case "E4 claim: constant overhead per item" `Quick
      test_e4_claim_constant_overhead_per_item;
    Alcotest.test_case "E10 claim: work independent of update count" `Quick
      test_e10_claim_independent_of_update_count;
    Alcotest.test_case "E1 claim: cost independent of N" `Quick
      test_dbvv_cost_independent_of_n;
    Alcotest.test_case "E2 claim: cost linear in m" `Quick test_dbvv_cost_linear_in_m;
    Alcotest.test_case "E7 claim: sub-linear rounds" `Quick test_e7_rounds_grow_slowly;
  ]

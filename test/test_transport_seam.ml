(* The transport seam (DESIGN.md §12): the shared retry/backoff
   arithmetic, counter charges and frame dispatch that the simulation
   engine, the blocking session client and the socket daemon all run;
   the session client over the in-memory transport against the
   in-process framed pull; and the real thing — multi-process daemons
   over Unix-domain and TCP sockets, including kill -9 crash recovery
   from the WAL. *)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Frame = Edb_persist.Frame
module Transport = Edb_transport.Transport
module Sim_transport = Edb_transport.Sim_transport
module Socket_transport = Edb_transport.Socket_transport
module Harness = Edb_transport.Harness
module Invariant = Edb_check.Invariant
module Session_client = Edb_transport.Session_client
module Session = Session_client.Make (Edb_transport.Sim_transport)

let set v = Operation.Set v

let check_node node = Invariant.check_node node

(* ---------- the shared retry arithmetic ---------- *)

(* The backoff ladder of the default policy, pinned: the engine's
   event-queue retries, the session client and the daemon's select loop
   must all compute these exact floats from these exact inputs. *)
let test_flow_arithmetic () =
  let p = Transport.default_retry_policy in
  (match Transport.Flow.on_timeout p ~attempt:0 with
  | Transport.Flow.Retry { attempt = 1; backoff } ->
    Alcotest.(check (float 0.0)) "first backoff" 0.5 backoff
  | _ -> Alcotest.fail "attempt 0 should retry");
  (match Transport.Flow.on_timeout p ~attempt:1 with
  | Transport.Flow.Retry { attempt = 2; backoff } ->
    Alcotest.(check (float 0.0)) "second backoff" 1.0 backoff
  | _ -> Alcotest.fail "attempt 1 should retry");
  (match Transport.Flow.on_timeout p ~attempt:2 with
  | Transport.Flow.Retry { attempt = 3; backoff } ->
    Alcotest.(check (float 0.0)) "third backoff" 2.0 backoff
  | _ -> Alcotest.fail "attempt 2 should retry");
  (match Transport.Flow.on_timeout p ~attempt:3 with
  | Transport.Flow.Abandon -> ()
  | _ -> Alcotest.fail "attempt 3 exhausts the budget");
  (* The cap engages exactly where the uncapped ladder would pass it. *)
  (match Transport.Flow.on_timeout { p with max_retries = 10 } ~attempt:6 with
  | Transport.Flow.Retry { backoff; _ } ->
    Alcotest.(check (float 0.0)) "capped backoff" p.Transport.backoff_max backoff
  | _ -> Alcotest.fail "attempt 6 should retry under a larger budget");
  (* Jitter stretches multiplicatively by the caller's uniform draw. *)
  Alcotest.(check (float 0.0)) "u = 0 leaves the backoff" 2.0
    (Transport.Flow.jittered p 2.0 ~u:0.0);
  Alcotest.(check (float 0.0)) "u = 1 stretches by 1 + jitter" 3.0
    (Transport.Flow.jittered p 2.0 ~u:1.0)

(* ---------- record tagging and frame dispatch ---------- *)

let test_record_tagging () =
  (match Transport.Record.classify (Transport.Record.frame "abc") with
  | Ok (Transport.Record.Frame "abc") -> ()
  | _ -> Alcotest.fail "frame record");
  (match Transport.Record.classify (Transport.Record.control "xyz") with
  | Ok (Transport.Record.Control "xyz") -> ()
  | _ -> Alcotest.fail "control record");
  (match Transport.Record.classify "Qgarbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag must not classify");
  match Transport.Record.classify "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty record must not classify"

let negotiated_pair () =
  let a = Node.create ~id:0 ~n:2 () in
  let b = Node.create ~id:1 ~n:2 () in
  Node.update a "x" (set "v1");
  Frame.sync_pair b a;
  Frame.sync_pair a b;
  (a, b)

let test_frame_kind () =
  let a, b = negotiated_pair () in
  let request = Frame.encode_request b ~dst:0 in
  let reply = Frame.respond a ~src:1 request in
  let nak = Frame.encode_nak a ~dst:1 ~req_id:3 in
  Node.update a "x" (set "v2");
  let push =
    Frame.encode_push a ~dst:1
      [
        {
          Message.item = "x";
          seq = 2;
          ivv = Edb_vv.Version_vector.of_array [| 2; 0 |];
          value = "v2";
        };
      ]
  in
  Alcotest.(check bool) "request" true (Transport.frame_kind request = Some `Request);
  Alcotest.(check bool) "reply" true (Transport.frame_kind reply = Some `Reply);
  Alcotest.(check bool) "nak" true (Transport.frame_kind nak = Some `Nak);
  Alcotest.(check bool) "push" true (Transport.frame_kind push = Some `Push);
  Alcotest.(check bool) "short garbage" true (Transport.frame_kind "ab" = None)

(* The passive side: requests are answered, pushes applied, everything
   else — late replies, naks, garbage — dropped silently. *)
let test_serve_frame () =
  let a, b = negotiated_pair () in
  let request = Frame.encode_request b ~dst:0 in
  (match Transport.serve_frame a ~src:1 request with
  | Some reply -> (
    match Frame.decode_reply b ~src:0 reply with
    | Frame.Reply _ -> ()
    | Frame.Nak _ -> Alcotest.fail "request over live state must not nak")
  | None -> Alcotest.fail "request must be answered");
  let reply = Frame.respond a ~src:1 (Frame.encode_request b ~dst:0) in
  Alcotest.(check bool) "a stray reply drops" true
    (Transport.serve_frame a ~src:1 reply = None);
  Alcotest.(check bool) "garbage drops" true
    (Transport.serve_frame a ~src:1 "\x02\x02\x01not a frame" = None);
  (* A push reaches the injected application hook. *)
  Node.update a "x" (set "v2");
  let push =
    Frame.encode_push a ~dst:1
      [
        {
          Message.item = "x";
          seq = 2;
          ivv = Edb_vv.Version_vector.of_array [| 2; 0 |];
          value = "v2";
        };
      ]
  in
  let seen = ref [] in
  Alcotest.(check bool) "push produces no reply" true
    (Transport.serve_frame
       ~apply_push:(fun ~source u -> seen := (source, u.Message.item) :: !seen)
       b ~src:0 push
    = None);
  Alcotest.(check bool) "push applied through the hook" true (!seen = [ (0, "x") ])

(* ---------- the session client over the in-memory transport ---------- *)

let fresh_pair () =
  let source = Node.create ~id:0 ~n:2 () in
  let recipient = Node.create ~id:1 ~n:2 () in
  Node.update source "alpha" (set "a1");
  Node.update source "beta" (set (String.make 48 'b'));
  Node.update source "alpha" (set "a2");
  (source, recipient)

let sim_endpoint source recipient =
  let net = Sim_transport.create_net () in
  Sim_transport.serve_node net source;
  (net, Sim_transport.endpoint net ~id:(Node.id recipient))

(* One session through the full seam — endpoint, record tagging, frame
   dispatch — must leave both nodes exactly where the in-process framed
   pull leaves a control pair, and charge the same message and wire-byte
   counters; only the connection counters differ (the in-process pull
   opens none). *)
let test_sim_session_matches_frame_pull () =
  let source, recipient = fresh_pair () in
  let _net, ep = sim_endpoint source recipient in
  (match Session.pull ep ~node:recipient ~peer:0 () with
  | Session_client.Synced `Propagated -> ()
  | _ -> Alcotest.fail "first pull must propagate");
  let control_source, control_recipient = fresh_pair () in
  let (_ : Node.pull_result) =
    Frame.pull ~recipient:control_recipient ~source:control_source ()
  in
  Alcotest.(check bool) "recipient state identical" true
    (Node.export_state recipient = Node.export_state control_recipient);
  Alcotest.(check bool) "source state identical" true
    (Node.export_state source = Node.export_state control_source);
  let c = Node.counters recipient and cc = Node.counters control_recipient in
  Alcotest.(check int) "wire bytes charged identically" cc.Counters.wire_bytes_sent
    c.Counters.wire_bytes_sent;
  Alcotest.(check int) "messages charged identically" cc.Counters.messages
    c.Counters.messages;
  Alcotest.(check int) "bytes charged identically" cc.Counters.bytes_sent
    c.Counters.bytes_sent;
  let sc = Node.counters source and scc = Node.counters control_source in
  Alcotest.(check int) "source wire bytes identical" scc.Counters.wire_bytes_sent
    sc.Counters.wire_bytes_sent;
  Alcotest.(check int) "one connection opened" 1 c.Counters.connections_opened;
  Alcotest.(check int) "no connection retries" 0 c.Counters.connection_retries;
  Alcotest.(check int) "in-process pull opens none" 0 cc.Counters.connections_opened;
  (* A second session is answered you-are-current. *)
  match Session.pull ep ~node:recipient ~peer:0 () with
  | Session_client.Synced `Current -> ()
  | _ -> Alcotest.fail "second pull must be current"

(* Total record loss: the full backoff ladder runs, every attempt
   charges a dial and a timeout, and the session is abandoned with the
   connection counters telling the story. *)
let test_sim_total_loss_abandons () =
  let source, recipient = fresh_pair () in
  let net, ep = sim_endpoint source recipient in
  Sim_transport.set_drop net (fun () -> true);
  (match Session.pull ep ~node:recipient ~peer:0 () with
  | Session_client.Abandoned _ -> ()
  | Session_client.Synced _ -> Alcotest.fail "total loss cannot sync");
  let p = Transport.default_retry_policy in
  let attempts = p.Transport.max_retries + 1 in
  let c = Node.counters recipient in
  Alcotest.(check int) "a timeout per attempt" attempts c.Counters.timeouts;
  Alcotest.(check int) "a retry per re-send" p.Transport.max_retries
    c.Counters.retries;
  Alcotest.(check int) "abandoned once" 1 c.Counters.sessions_abandoned;
  Alcotest.(check int) "a dial per attempt" attempts c.Counters.connections_opened;
  Alcotest.(check int) "re-dials are connection retries" p.Transport.max_retries
    c.Counters.connection_retries;
  Alcotest.(check bool) "recipient saw nothing" true
    (Node.read recipient "alpha" = None)

(* Losing only the first record: one retry completes the session, and
   the re-dial shows up in [connection_retries]. *)
let test_sim_first_loss_recovers () =
  let source, recipient = fresh_pair () in
  let net, ep = sim_endpoint source recipient in
  let records = ref 0 in
  (* The drop predicate is consulted once per sent record and once per
     produced reply: losing exactly the first draw loses the first
     request on the wire. *)
  Sim_transport.set_drop net (fun () ->
      incr records;
      !records = 1);
  (match Session.pull ep ~node:recipient ~peer:0 () with
  | Session_client.Synced `Propagated -> ()
  | _ -> Alcotest.fail "retry must complete the session");
  let c = Node.counters recipient in
  Alcotest.(check int) "one timeout" 1 c.Counters.timeouts;
  Alcotest.(check int) "one retry" 1 c.Counters.retries;
  Alcotest.(check int) "nothing abandoned" 0 c.Counters.sessions_abandoned;
  Alcotest.(check int) "two dials" 2 c.Counters.connections_opened;
  Alcotest.(check int) "one was a re-dial" 1 c.Counters.connection_retries;
  Alcotest.(check bool) "data arrived" true (Node.read recipient "alpha" = Some "a2")

(* A crashed peer: the dial itself fails, charged like any other
   attempt. *)
let test_sim_dead_peer_abandons () =
  let source, recipient = fresh_pair () in
  let net, ep = sim_endpoint source recipient in
  Sim_transport.unregister net ~id:0;
  (match Session.pull ep ~node:recipient ~peer:0 () with
  | Session_client.Abandoned _ -> ()
  | Session_client.Synced _ -> Alcotest.fail "a dead peer cannot sync");
  let p = Transport.default_retry_policy in
  let c = Node.counters recipient in
  Alcotest.(check int) "a dial per attempt" (p.Transport.max_retries + 1)
    c.Counters.connections_opened

(* ---------- the socket transport, in one process ---------- *)

let temp_dir =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "edb-seam-%d" (Unix.getpid ()))
     in
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
     dir)

(* One full session over a real Unix-domain socket: handshake, record
   framing across the stream, frame dispatch, reply — and the states
   land exactly where the in-memory seam lands them. *)
let test_socket_unix_session () =
  let source, recipient = fresh_pair () in
  let path = Filename.concat (Lazy.force temp_dir) "seam.sock" in
  let listen = Socket_transport.Unix_path path in
  let server =
    match Socket_transport.create ~listen ~id:0 ~peers:[] () with
    | Ok t -> t
    | Error e -> Alcotest.fail ("server create: " ^ e)
  in
  let client =
    match Socket_transport.create ~id:1 ~peers:[ (0, listen) ] () with
    | Ok t -> t
    | Error e -> Alcotest.fail ("client create: " ^ e)
  in
  Fun.protect
    ~finally:(fun () ->
      Socket_transport.close server;
      Socket_transport.close client)
    (fun () ->
      let conn =
        match Socket_transport.connect client ~peer:0 with
        | Ok c -> c
        | Error e -> Alcotest.fail ("connect: " ^ e)
      in
      let request = Frame.encode_request recipient ~dst:0 in
      (match Socket_transport.send conn (Transport.Record.frame request) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("send: " ^ e));
      let server_conn =
        match Socket_transport.accept ~timeout:5.0 server with
        | Ok c -> c
        | Error e -> Alcotest.fail ("accept: " ^ e)
      in
      (* The handshake identified the dialing node. *)
      Alcotest.(check int) "handshake peer id" 1
        (Socket_transport.peer server_conn);
      (match Socket_transport.recv ~timeout:5.0 server_conn with
      | Error e -> Alcotest.fail ("server recv: " ^ e)
      | Ok record -> (
        match Transport.Record.classify record with
        | Ok (Transport.Record.Frame frame) -> (
          Alcotest.(check string) "frame bytes survive the stream" request frame;
          match Transport.serve_frame source ~src:1 frame with
          | Some reply -> (
            match
              Socket_transport.send server_conn (Transport.Record.frame reply)
            with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("reply send: " ^ e))
          | None -> Alcotest.fail "request must be answered")
        | _ -> Alcotest.fail "expected a frame record"));
      (match Socket_transport.recv ~timeout:5.0 conn with
      | Error e -> Alcotest.fail ("client recv: " ^ e)
      | Ok record -> (
        match Transport.Record.classify record with
        | Ok (Transport.Record.Frame frame) -> (
          match Frame.decode_reply recipient ~src:0 frame with
          | Frame.Reply (reply, _) ->
            let (_ : Node.accept_result) =
              Node.accept_propagation recipient ~source:0 reply
            in
            ()
          | Frame.Nak _ -> Alcotest.fail "live state must not nak")
        | _ -> Alcotest.fail "expected a frame record"));
      Socket_transport.close_conn conn;
      Socket_transport.close_conn server_conn;
      Alcotest.(check bool) "replicated over the socket" true
        (Node.read recipient "alpha" = Some "a2"
        && Node.read recipient "beta" <> None);
      match check_node recipient with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("invariants: " ^ e))

(* ---------- multi-process daemons ---------- *)

let cluster_dir name =
  let dir = Filename.concat (Lazy.force temp_dir) name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let require = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let await h =
  match Harness.await_converged ~deadline:20.0 ~invariant:check_node h with
  | Ok (_ : float) -> ()
  | Error e -> Alcotest.fail ("convergence: " ^ e)

(* Two daemons over Unix-domain sockets: single-writer updates on each
   side replicate both ways through the anti-entropy timers, and the
   connection counters show real dials happened. *)
let test_daemon_pair_converges () =
  let h = Harness.start ~seed:21 ~dir:(cluster_dir "pair") ~n:2 () in
  Fun.protect
    ~finally:(fun () -> Harness.shutdown h)
    (fun () ->
      require (Harness.update h ~node:0 ~item:"a.0" (set "from zero"));
      require (Harness.update h ~node:1 ~item:"b.1" (set "from one"));
      await h;
      Alcotest.(check bool) "node 1 sees node 0's write" true
        (require (Harness.read h ~node:1 ~item:"a.0") = Some "from zero");
      Alcotest.(check bool) "node 0 sees node 1's write" true
        (require (Harness.read h ~node:0 ~item:"b.1") = Some "from one");
      let c0 = require (Harness.counters_of h ~node:0) in
      Alcotest.(check bool) "real connections were opened" true
        (List.assoc "connections_opened" c0 > 0);
      Alcotest.(check bool) "wire bytes were charged" true
        (List.assoc "wire_bytes_sent" c0 > 0))

(* kill -9 mid-run: nothing is flushed, the WAL on disk is all there
   is. The restarted daemon must recover its own pre-kill writes from
   the journal and catch up on what it missed through anti-entropy. *)
let test_daemon_crash_recovery () =
  let h = Harness.start ~seed:33 ~dir:(cluster_dir "crash") ~n:2 () in
  Fun.protect
    ~finally:(fun () -> Harness.shutdown h)
    (fun () ->
      require (Harness.update h ~node:0 ~item:"a.0" (set "pre-kill zero"));
      require (Harness.update h ~node:1 ~item:"b.1" (set "pre-kill one"));
      await h;
      Harness.kill h ~node:1;
      Alcotest.(check bool) "daemon 1 is gone" false (Harness.running h ~node:1);
      (* The survivor keeps writing while node 1 is down. *)
      require (Harness.update h ~node:0 ~item:"c.0" (set "while down"));
      require (Harness.update h ~node:0 ~item:"a.0" (set "overwritten"));
      Harness.restart h ~node:1;
      await h;
      (* Node 1 recovered its own write from the WAL... *)
      Alcotest.(check bool) "own write recovered" true
        (require (Harness.read h ~node:1 ~item:"b.1") = Some "pre-kill one");
      (* ...and caught up on everything it missed. *)
      Alcotest.(check bool) "missed write caught up" true
        (require (Harness.read h ~node:1 ~item:"c.0") = Some "while down");
      Alcotest.(check bool) "overwrite caught up" true
        (require (Harness.read h ~node:1 ~item:"a.0") = Some "overwritten");
      Alcotest.(check bool) "survivor unscathed" true
        (require (Harness.read h ~node:0 ~item:"b.1") = Some "pre-kill one"))

(* The same harness over TCP (kernel-chosen ports). *)
let test_daemon_tcp_smoke () =
  let h = Harness.start ~kind:`Tcp ~seed:44 ~dir:(cluster_dir "tcp") ~n:2 () in
  Fun.protect
    ~finally:(fun () -> Harness.shutdown h)
    (fun () ->
      require (Harness.update h ~node:0 ~item:"a.0" (set "over tcp"));
      await h;
      Alcotest.(check bool) "replicated over tcp" true
        (require (Harness.read h ~node:1 ~item:"a.0") = Some "over tcp"))

(* ---------- WAL group commit: the sync is the commit point ---------- *)

(* Under group commit, appends buffer in the WAL channel and only
   {!Durable_node.sync} makes them durable. What a crash would find on
   disk at any instant is the file as the OS has it — snapshot it by
   copying, and replay the copy. The synced prefix must be exactly the
   records synced so far, never a partial batch, and recovery from that
   prefix must be a valid pre/post-session state. *)
let test_group_commit_sync_prefix () =
  let module Durable = Edb_persist.Durable_node in
  let module Wal = Edb_persist.Wal in
  let dir = cluster_dir "gcwal" in
  let crash_dir = cluster_dir "gcwal-crash" in
  let wal = Filename.concat dir "node.wal" in
  let copy_wal () =
    let ic = open_in_bin wal in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin (Filename.concat crash_dir "node.wal") in
    output_string oc data;
    close_out oc
  in
  let replay_count () =
    copy_wal ();
    match
      Wal.replay ~path:(Filename.concat crash_dir "node.wal") ~f:(fun _ -> ())
    with
    | Ok r ->
      Alcotest.(check bool) "no torn tail in a group-commit batch" false
        r.Wal.torn_tail;
      r.Wal.records
    | Error e -> Alcotest.fail ("replay: " ^ e)
  in
  let d, _ = require (Durable.open_or_create ~dir ~id:0 ~n:2 ()) in
  Durable.set_group_commit d true;
  Durable.update d "a" (set "1");
  Durable.update d "b" (set "2");
  Alcotest.(check int) "two records pending" 2 (Durable.unsynced_records d);
  Alcotest.(check int) "nothing durable before the sync" 0 (replay_count ());
  Durable.sync d;
  Alcotest.(check int) "sync drains the batch" 0 (Durable.unsynced_records d);
  Alcotest.(check int) "the whole batch is durable" 2 (replay_count ());
  (* The next batch stays invisible until its own sync: what's on disk
     is always an exact prefix at a batch boundary. *)
  Durable.update d "c" (set "3");
  Alcotest.(check int) "on disk: still the synced prefix" 2 (replay_count ());
  (* Recovery from the crash image is the exact pre-session state for
     the unsynced update, post-session for the synced ones. *)
  let r, replayed =
    require (Durable.open_or_create ~dir:crash_dir ~id:0 ~n:2 ())
  in
  Alcotest.(check int) "recovery replays the prefix" 2 replayed.Wal.records;
  Alcotest.(check bool) "synced updates recovered" true
    (Node.read (Durable.node r) "a" = Some "1"
    && Node.read (Durable.node r) "b" = Some "2");
  Alcotest.(check bool) "unsynced update rolled back whole" true
    (Node.read (Durable.node r) "c" = None);
  Durable.close r;
  (* Turning group commit off syncs the pending batch. *)
  Durable.set_group_commit d false;
  Alcotest.(check int) "disabling group commit syncs" 3 (replay_count ());
  Durable.close d

(* ---------- N-daemon soak: concurrency, control load, kill -9 ---------- *)

(* Five daemons with the concurrent event loop (max_sessions = 4,
   fast anti-entropy ticks): overlapping initiator sessions, a stream
   of control writes racing them, and a mid-batch kill -9 — with group
   commit on, the Ack discipline means any acknowledged write must
   survive the crash (no reply precedes the durability of its commit
   record), and the cluster must converge checker-clean around the
   outage. *)
let test_daemon_soak_concurrent () =
  let n = 5 in
  let h =
    Harness.start ~ae_period:0.01 ~max_sessions:4 ~seed:55
      ~dir:(cluster_dir "soak") ~n ()
  in
  Fun.protect
    ~finally:(fun () -> Harness.shutdown h)
    (fun () ->
      let write round node =
        require
          (Harness.update h ~node
             ~item:(Printf.sprintf "r%d.n%d" round node)
             (set (Printf.sprintf "round %d from %d" round node)))
      in
      (* Two full rounds of interleaved writes while anti-entropy
         sessions overlap underneath — no convergence barrier between
         writes, so sessions, pushes and control traffic race. *)
      for round = 0 to 1 do
        for node = 0 to n - 1 do
          write round node
        done
      done;
      (* Mid-batch crash: node 2 acknowledges one more write and is
         immediately SIGKILLed — nothing further is flushed. The Ack
         came after the group-commit sync, so the write must be in the
         WAL. *)
      write 2 2;
      Harness.kill h ~node:2;
      Alcotest.(check bool) "node 2 is down" false (Harness.running h ~node:2);
      (* Survivors keep the load up while node 2 is dead. *)
      for node = 0 to n - 1 do
        if node <> 2 then write 3 node
      done;
      Harness.restart h ~node:2;
      (* The recovered daemon serves immediately and keeps accepting
         writes. *)
      write 4 2;
      for node = 0 to n - 1 do
        if node <> 2 then write 4 node
      done;
      (match Harness.await_converged ~deadline:30.0 ~invariant:check_node h with
      | Ok (_ : float) -> ()
      | Error e -> Alcotest.fail ("soak convergence: " ^ e));
      (* The acknowledged pre-kill write survived kill -9 on the
         crashed node itself... *)
      Alcotest.(check bool) "acked write survived the crash" true
        (require (Harness.read h ~node:2 ~item:"r2.n2")
        = Some "round 2 from 2");
      (* ...and every write of every round is visible everywhere. *)
      for node = 0 to n - 1 do
        for round = 0 to 1 do
          for origin = 0 to n - 1 do
            let item = Printf.sprintf "r%d.n%d" round origin in
            Alcotest.(check bool)
              (Printf.sprintf "%s visible on node %d" item node)
              true
              (require (Harness.read h ~node ~item)
              = Some (Printf.sprintf "round %d from %d" round origin))
          done
        done
      done;
      let sessions_of node =
        let c = require (Harness.counters_of h ~node) in
        List.assoc "propagation_sessions" c + List.assoc "noop_sessions" c
      in
      let total = ref 0 in
      for node = 0 to n - 1 do
        total := !total + sessions_of node
      done;
      Alcotest.(check bool) "anti-entropy actually ran concurrently" true
        (!total > n))

let suite =
  [
    Alcotest.test_case "flow: backoff ladder arithmetic" `Quick
      test_flow_arithmetic;
    Alcotest.test_case "record tagging" `Quick test_record_tagging;
    Alcotest.test_case "frame kind peek" `Quick test_frame_kind;
    Alcotest.test_case "serve_frame dispatch" `Quick test_serve_frame;
    Alcotest.test_case "sim session = in-process framed pull" `Quick
      test_sim_session_matches_frame_pull;
    Alcotest.test_case "sim: total loss abandons, fully charged" `Quick
      test_sim_total_loss_abandons;
    Alcotest.test_case "sim: first loss recovers via retry" `Quick
      test_sim_first_loss_recovers;
    Alcotest.test_case "sim: dead peer abandons" `Quick
      test_sim_dead_peer_abandons;
    Alcotest.test_case "socket: one session over a unix socket" `Quick
      test_socket_unix_session;
    Alcotest.test_case "daemons: 2-process unix cluster converges" `Quick
      test_daemon_pair_converges;
    Alcotest.test_case "daemons: kill -9 recovery from the WAL" `Quick
      test_daemon_crash_recovery;
    Alcotest.test_case "daemons: tcp smoke" `Quick test_daemon_tcp_smoke;
    Alcotest.test_case "wal: group commit syncs an exact prefix" `Quick
      test_group_commit_sync_prefix;
    Alcotest.test_case "daemons: 5-process soak with kill -9 under load" `Quick
      test_daemon_soak_concurrent;
  ]

module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type event = { origin : int; seq : int; item : string; op : Operation.t }

type node = {
  matrix : int array array;  (** [matrix.(k).(l)]: belief about k's knowledge of l. *)
  mutable log : event list;  (** Newest first. *)
  values : (string, string * (int * int)) Hashtbl.t;
      (** item -> (value, (seq, origin)) of the winning event. *)
}

type t = { n : int; nodes : node array; counters : Counters.t array }

let create ~n =
  let make _ =
    { matrix = Array.make_matrix n n 0; log = []; values = Hashtbl.create 64 }
  in
  { n; nodes = Array.init n make; counters = Array.init n (fun _ -> Counters.create ()) }

(* Last-writer-wins over the (seq, origin) total order keeps values
   deterministic regardless of delivery order. *)
let apply_event node e =
  let newer =
    match Hashtbl.find_opt node.values e.item with
    | None -> true
    | Some (_, (seq, origin)) -> (e.seq, e.origin) > (seq, origin)
  in
  if newer then
    let base = "" in
    Hashtbl.replace node.values e.item (Operation.apply base e.op, (e.seq, e.origin))

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let nd = t.nodes.(node) in
  nd.matrix.(node).(node) <- nd.matrix.(node).(node) + 1;
  let e = { origin = node; seq = nd.matrix.(node).(node); item; op } in
  nd.log <- e :: nd.log;
  apply_event nd e

let has_record node ~holder e = node.matrix.(holder).(e.origin) >= e.seq

let garbage_collect t node =
  let known_by_all e =
    let all = ref true in
    for k = 0 to t.n - 1 do
      if node.matrix.(k).(e.origin) < e.seq then all := false
    done;
    !all
  in
  node.log <- List.filter (fun e -> not (known_by_all e)) node.log

let session t ~src ~dst =
  let source = t.nodes.(src) and target = t.nodes.(dst) in
  let csrc = t.counters.(src) and cdst = t.counters.(dst) in
  (* Select the events src cannot prove dst already has. This walks the
     whole retained log — the linear-in-updates overhead of footnote 4. *)
  let selected =
    List.filter
      (fun e ->
        csrc.log_records_examined <- csrc.log_records_examined + 1;
        not (has_record source ~holder:dst e))
      source.log
  in
  csrc.messages <- csrc.messages + 1;
  let event_bytes =
    List.fold_left (fun acc e -> acc + 16 + Operation.size_bytes e.op) 0 selected
  in
  csrc.bytes_sent <- csrc.bytes_sent + event_bytes + (8 * t.n * t.n);
  if selected = [] then csrc.noop_sessions <- csrc.noop_sessions + 1
  else csrc.propagation_sessions <- csrc.propagation_sessions + 1;
  (* The receiver applies events it misses (oldest first). *)
  let incoming = List.rev selected in
  List.iter
    (fun e ->
      cdst.log_records_examined <- cdst.log_records_examined + 1;
      if not (has_record target ~holder:dst e) then begin
        target.log <- e :: target.log;
        apply_event target e;
        cdst.items_copied <- cdst.items_copied + 1
      end)
    incoming;
  (* Merge knowledge: dst learns everything src knew, including what src
     believes about third parties. *)
  for l = 0 to t.n - 1 do
    target.matrix.(dst).(l) <- max target.matrix.(dst).(l) source.matrix.(src).(l)
  done;
  for k = 0 to t.n - 1 do
    for l = 0 to t.n - 1 do
      target.matrix.(k).(l) <- max target.matrix.(k).(l) source.matrix.(k).(l)
    done
  done;
  garbage_collect t target

let read t ~node ~item =
  Option.map fst (Hashtbl.find_opt t.nodes.(node).values item)

let log_length t ~node = List.length t.nodes.(node).log

let converged t =
  (* Everyone's own version vector (row [id]) equals everyone else's:
     all updates have reached all nodes. *)
  let reference = t.nodes.(0).matrix.(0) in
  let rec all_equal id =
    if id >= t.n then true
    else if t.nodes.(id).matrix.(id) = reference then all_equal (id + 1)
    else false
  in
  all_equal 1

let driver t =
  {
    Driver.name = "wuu-bernstein";
    n = t.n;
    update = (fun ~node ~item ~op -> update t ~node ~item op);
    session = (fun ~src ~dst -> session t ~src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

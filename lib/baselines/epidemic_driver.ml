module Cluster = Edb_core.Cluster
module Node = Edb_core.Node

let create ?seed ?policy ?mode ?cache ~n () =
  let cluster = Cluster.create ?seed ?policy ?mode ?cache ~n () in
  let driver =
    {
      Driver.name = "dbvv";
      n;
      update = (fun ~node ~item ~op -> Cluster.update cluster ~node ~item op);
      session =
        (fun ~src ~dst ->
          let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:dst ~source:src in
          ());
      read = (fun ~node ~item -> Cluster.read cluster ~node ~item);
      counters = (fun ~node -> Node.counters (Cluster.node cluster node));
      total_counters = (fun () -> Cluster.total_counters cluster);
      reset_counters = (fun () -> Cluster.reset_counters cluster);
      converged = (fun () -> Cluster.converged cluster);
    }
  in
  (cluster, driver)

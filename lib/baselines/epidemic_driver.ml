module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters

(* Wire forms for message-granular transport. *)
type Driver.message +=
  | Request of Message.propagation_request
  | Reply of Message.propagation_reply

let create ?seed ?policy ?mode ?cache ?shards ~n () =
  let cluster = Cluster.create ?seed ?policy ?mode ?cache ?shards ~n () in
  let charge node bytes =
    let c = Node.counters (Cluster.node cluster node) in
    c.Counters.messages <- c.Counters.messages + 1;
    c.Counters.bytes_sent <- c.Counters.bytes_sent + bytes
  in
  let granular =
    {
      Driver.make_request =
        (fun ~dst ->
          (* Unlike the in-process fast path (which borrows the live
             DBVV and shard vectors for a synchronous round-trip), a
             transported request must own its vectors: delivery can
             happen after further local updates, and the request must
             describe the state it was issued from. *)
          let req = Node.propagation_request_owned (Cluster.node cluster dst) in
          charge dst (Message.request_bytes req);
          Request req);
      make_reply =
        (fun ~src msg ->
          match msg with
          | Request req ->
            let reply =
              Node.handle_propagation_request (Cluster.node cluster src) req
            in
            charge src (Message.reply_bytes reply);
            Reply reply
          | _ -> invalid_arg "Epidemic_driver.make_reply: not a propagation request");
      accept_reply =
        (fun ~dst ~src msg ->
          match msg with
          | Reply Message.You_are_current -> ()
          | Reply ((Message.Propagate _ | Message.Propagate_sharded _) as reply) ->
            (* AcceptPropagation's per-item dominance checks make
               duplicate and stale deliveries no-ops, which is what
               lets the transport redeliver freely. *)
            let (_ : Node.accept_result) =
              Node.accept_propagation (Cluster.node cluster dst) ~source:src reply
            in
            ()
          | _ -> invalid_arg "Epidemic_driver.accept_reply: not a propagation reply");
    }
  in
  let driver =
    {
      Driver.name = "dbvv";
      n;
      update = (fun ~node ~item ~op -> Cluster.update cluster ~node ~item op);
      session =
        (fun ~src ~dst ->
          let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:dst ~source:src in
          ());
      read = (fun ~node ~item -> Cluster.read cluster ~node ~item);
      counters = (fun ~node -> Node.counters (Cluster.node cluster node));
      total_counters = (fun () -> Cluster.total_counters cluster);
      reset_counters = (fun () -> Cluster.reset_counters cluster);
      converged = (fun () -> Cluster.converged cluster);
      granular = Some granular;
    }
  in
  (cluster, driver)

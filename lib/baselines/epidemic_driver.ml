module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Message = Edb_core.Message
module Frame = Edb_persist.Frame
module Channel = Edb_push.Channel
module Transport = Edb_transport.Transport

(* Transported messages are real encoded frames ({!Edb_persist.Frame}):
   the engine moves opaque bytes, both endpoints run the actual
   encode/negotiate/decode path (v1 pessimistic start, v2 once
   advertised, DBVV deltas with Nak fallback), and [wire_bytes_sent]
   counts the frames' true lengths. The in-process fast path
   ([session], via {!Cluster.pull}) stays unframed and charges only the
   modeled [bytes_sent]. *)
type Driver.message += Frame_msg of string

(* The frame header is [version; advertised; kind] at payload offsets
   0-2, ahead of the 4-byte checksum trailer; kind 2 is a Nak. Locally
   produced frames are well-formed, so a raw peek suffices. *)
let is_nak = function
  | Frame_msg data -> String.length data >= 7 && Char.code data.[2] = 2
  | _ -> false

(* The push hot path, behind [Driver.push_stream]. Flushing drains a
   node's per-peer queues into real kind-3 frames — but only toward
   peers that have provably negotiated wire v2 ([Frame.push_ready]);
   queues for v1 or still-unknown peers fill and shed per the drop
   policy, exactly the no-guarantee contract. Delivery decodes the
   frame and applies each update iff causally fresh ([Node.apply_push]);
   stale, duplicate and reordered frames are no-ops, so the transport
   may fault them freely. *)
let push_stream cluster channels =
  {
    Driver.flush =
      (fun ~src ->
        let node = Cluster.node cluster src in
        let batches =
          Channel.flush channels.(src) ~ready:(fun peer ->
              Frame.push_ready node ~dst:peer)
        in
        List.map
          (fun (dst, updates) ->
            let frame = Frame.encode_push node ~dst updates in
            (* The shared charge, so the socket daemon's flush accounts
               identically (Edb_transport.Transport.Charge). *)
            Transport.Charge.push node ~updates frame;
            (dst, Frame_msg frame))
          batches);
    deliver =
      (fun ~dst ~src msg ->
        match msg with
        | Frame_msg frame ->
          let node = Cluster.node cluster dst in
          let updates = Frame.decode_push node ~src frame in
          List.iter
            (fun u ->
              let (_ : [ `Applied | `Stale ]) = Node.apply_push node ~source:src u in
              ())
            updates
        | _ -> invalid_arg "Epidemic_driver.deliver: not a push frame");
  }

let create ?seed ?policy ?mode ?cache ?shards ?push ~n () =
  let cluster = Cluster.create ?seed ?policy ?mode ?cache ?shards ~n () in
  let push_stream =
    match push with
    | None -> None
    | Some config ->
      let channels =
        Array.init n (fun i -> Channel.create ~config (Cluster.node cluster i))
      in
      Some (push_stream cluster channels)
  in
  let granular =
    {
      Driver.make_request =
        (fun ~dst ~src ->
          (* The frame owns its bytes, so unlike the old in-memory
             transport no vector copying is needed: encoding serializes
             the live DBVV immediately, and delivery-time mutations of
             the node cannot reach the encoded request. Each retry
             re-encodes (fresh request id, current vectors). *)
          let node = Cluster.node cluster dst in
          let frame = Frame.encode_request node ~dst:src in
          Transport.Charge.request node frame;
          Frame_msg frame);
      make_reply =
        (fun ~src ~dst msg ->
          match msg with
          | Frame_msg frame ->
            (* [respond] answers an undecodable request (lost delta
               baseline after a crash or slot eviction) with a Nak and
               charges the source's counters either way. *)
            Frame_msg (Frame.respond (Cluster.node cluster src) ~src:dst frame)
          | _ -> invalid_arg "Epidemic_driver.make_reply: not a request frame");
      accept_reply =
        (fun ~dst ~src msg ->
          match msg with
          | Frame_msg frame -> (
            match Frame.decode_reply (Cluster.node cluster dst) ~src frame with
            | Frame.Nak _ ->
              (* The decode already dropped the delta baseline; the next
                 attempt or session ships an absolute vector. The nak'd
                 session itself propagates nothing — anti-entropy
                 repeats, so this costs a round, not convergence. *)
              ()
            | Frame.Reply (Message.You_are_current, _) -> ()
            | Frame.Reply
                (((Message.Propagate _ | Message.Propagate_sharded _) as reply), _)
              ->
              (* AcceptPropagation's per-item dominance checks make
                 duplicate and stale deliveries no-ops, which is what
                 lets the transport redeliver freely. *)
              let (_ : Node.accept_result) =
                Node.accept_propagation (Cluster.node cluster dst) ~source:src
                  reply
              in
              ())
          | _ -> invalid_arg "Epidemic_driver.accept_reply: not a reply frame");
    }
  in
  let driver =
    {
      Driver.name = "dbvv";
      n;
      update = (fun ~node ~item ~op -> Cluster.update cluster ~node ~item op);
      session =
        (fun ~src ~dst ->
          let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:dst ~source:src in
          ());
      read = (fun ~node ~item -> Cluster.read cluster ~node ~item);
      counters = (fun ~node -> Node.counters (Cluster.node cluster node));
      total_counters = (fun () -> Cluster.total_counters cluster);
      reset_counters = (fun () -> Cluster.reset_counters cluster);
      converged = (fun () -> Cluster.converged cluster);
      granular = Some granular;
      push = push_stream;
    }
  in
  (cluster, driver)

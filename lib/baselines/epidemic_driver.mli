(** The paper's protocol behind the common {!Driver} facade, so the
    experiment harness can sweep it against the baselines with one code
    path. *)

val is_nak : Driver.message -> bool
(** Whether a transported message is a Nak frame — a source's answer to
    a request it could not decode (lost delta baseline). A Nak applies
    nothing at the recipient; the lockstep oracle ({!Edb_check}) must
    skip its snapshot delivery for such replies. [false] for messages
    of other drivers. *)

val create :
  ?seed:int ->
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?cache:bool ->
  ?shards:int ->
  n:int ->
  unit ->
  Edb_core.Cluster.t * Driver.t
(** [create ~n ()] is a fresh {!Edb_core.Cluster.t} and its driver.
    The driver's [session ~src ~dst] makes [dst] pull from [src].
    [cache] enables the peer-knowledge cache and [shards] (default 1)
    the per-node shard count (see {!Edb_core.Cluster.create}). *)

(** The paper's protocol behind the common {!Driver} facade, so the
    experiment harness can sweep it against the baselines with one code
    path. *)

val is_nak : Driver.message -> bool
(** Whether a transported message is a Nak frame — a source's answer to
    a request it could not decode (lost delta baseline). A Nak applies
    nothing at the recipient; the lockstep oracle ({!Edb_check}) must
    skip its snapshot delivery for such replies. [false] for messages
    of other drivers. *)

val create :
  ?seed:int ->
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?cache:bool ->
  ?shards:int ->
  ?push:Edb_push.Channel.config ->
  n:int ->
  unit ->
  Edb_core.Cluster.t * Driver.t
(** [create ~n ()] is a fresh {!Edb_core.Cluster.t} and its driver.
    The driver's [session ~src ~dst] makes [dst] pull from [src].
    [cache] enables the peer-knowledge cache and [shards] (default 1)
    the per-node shard count (see {!Edb_core.Cluster.create}).

    [push] attaches a best-effort {!Edb_push.Channel} to every node and
    exposes it as the driver's [push] stream: flushed batches travel as
    real kind-3 frames to peers that negotiated wire v2, and received
    frames are applied if causally fresh. With [push] absent the driver
    is byte-for-byte the classic pull-only protocol. *)

module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type update_record = { item : string; op : Operation.t }

type node = {
  values : (string, string) Hashtbl.t;
  mutable outbound : update_record list;  (** Newest first. *)
  mutable outbound_len : int;
  shipped_to : int array;  (** Per-peer count of records already shipped. *)
  mutable alive : bool;
}

type t = { n : int; nodes : node array; counters : Counters.t array }

let create ~n =
  let make _ =
    {
      values = Hashtbl.create 64;
      outbound = [];
      outbound_len = 0;
      shipped_to = Array.make n 0;
      alive = true;
    }
  in
  { n; nodes = Array.init n make; counters = Array.init n (fun _ -> Counters.create ()) }

let apply node record =
  let current = Option.value ~default:"" (Hashtbl.find_opt node.values record.item) in
  Hashtbl.replace node.values record.item (Operation.apply current record.op)

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let nd = t.nodes.(node) in
  let record = { item; op } in
  apply nd record;
  nd.outbound <- record :: nd.outbound;
  nd.outbound_len <- nd.outbound_len + 1;
  nd.shipped_to.(node) <- nd.outbound_len

let push_to t ~origin ~dst =
  let src_node = t.nodes.(origin) and dst_node = t.nodes.(dst) in
  if src_node.alive && dst_node.alive && origin <> dst then begin
    let c = t.counters.(origin) in
    let missing = src_node.outbound_len - src_node.shipped_to.(dst) in
    c.messages <- c.messages + 1;
    c.bytes_sent <- c.bytes_sent + 8;
    if missing = 0 then c.noop_sessions <- c.noop_sessions + 1
    else begin
      c.propagation_sessions <- c.propagation_sessions + 1;
      (* [outbound] is newest-first; the records [dst] misses are the
         first [missing] ones, applied oldest-first. *)
      let rec take k records acc =
        if k = 0 then acc
        else
          match records with
          | [] -> acc
          | r :: rest -> take (k - 1) rest (r :: acc)
      in
      let to_ship = take missing src_node.outbound [] in
      List.iter
        (fun record ->
          apply dst_node record;
          c.items_copied <- c.items_copied + 1;
          c.bytes_sent <- c.bytes_sent + 16 + Operation.size_bytes record.op)
        to_ship;
      src_node.shipped_to.(dst) <- src_node.outbound_len
    end
  end

let push_all t ~origin =
  for dst = 0 to t.n - 1 do
    if dst <> origin then push_to t ~origin ~dst
  done

let crash t ~node = t.nodes.(node).alive <- false

let recover t ~node = t.nodes.(node).alive <- true

let is_stale t ~node =
  let any = ref false in
  Array.iteri
    (fun origin nd ->
      if origin <> node && nd.shipped_to.(node) < nd.outbound_len then any := true)
    t.nodes;
  !any

let read t ~node ~item = Hashtbl.find_opt t.nodes.(node).values item

let converged t =
  let all = ref true in
  for node = 0 to t.n - 1 do
    if is_stale t ~node then all := false
  done;
  !all

let driver t =
  {
    Driver.name = "oracle";
    n = t.n;
    update = (fun ~node ~item ~op -> update t ~node ~item op);
    session = (fun ~src ~dst -> push_to t ~origin:src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

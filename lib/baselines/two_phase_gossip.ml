module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type event = { origin : int; seq : int; item : string; op : Operation.t }

type node = {
  own : int array;  (** Events known, per origin. *)
  belief : int array array;
      (** [belief.(k)] — what this node believes node [k] knows, learnt
          only from direct gossip and acknowledgements (never relayed,
          unlike Wuu–Bernstein's matrix). [belief.(self)] mirrors
          [own]. *)
  mutable log : event list;  (** Newest first. *)
  values : (string, string * (int * int)) Hashtbl.t;
}

type t = { n : int; nodes : node array; counters : Counters.t array }

let create ~n =
  let make id =
    let node =
      {
        own = Array.make n 0;
        belief = Array.make_matrix n n 0;
        log = [];
        values = Hashtbl.create 64;
      }
    in
    ignore id;
    node
  in
  { n; nodes = Array.init n make; counters = Array.init n (fun _ -> Counters.create ()) }

let apply_event node e =
  let newer =
    match Hashtbl.find_opt node.values e.item with
    | None -> true
    | Some (_, stamp) -> (e.seq, e.origin) > stamp
  in
  if newer then Hashtbl.replace node.values e.item (Operation.apply "" e.op, (e.seq, e.origin))

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let nd = t.nodes.(node) in
  nd.own.(node) <- nd.own.(node) + 1;
  nd.belief.(node).(node) <- nd.own.(node);
  let e = { origin = node; seq = nd.own.(node); item; op } in
  nd.log <- e :: nd.log;
  apply_event nd e

let merge_into target source =
  Array.iteri (fun i v -> if v > target.(i) then target.(i) <- v) source

(* Phase two: discard records everyone is believed to have. *)
let garbage_collect t ~node =
  let nd = t.nodes.(node) in
  let known_by_all e =
    let all = ref true in
    for k = 0 to t.n - 1 do
      let vector = if k = node then nd.own else nd.belief.(k) in
      if vector.(e.origin) < e.seq then all := false
    done;
    !all
  in
  nd.log <- List.filter (fun e -> not (known_by_all e)) nd.log

let session t ~src ~dst =
  let source = t.nodes.(src) and target = t.nodes.(dst) in
  let csrc = t.counters.(src) and cdst = t.counters.(dst) in
  (* Select events the receiver is believed to miss: a full log scan,
     the linear-in-updates overhead shared with Wuu-Bernstein. *)
  let selected =
    List.filter
      (fun e ->
        csrc.log_records_examined <- csrc.log_records_examined + 1;
        source.belief.(dst).(e.origin) < e.seq)
      source.log
  in
  csrc.messages <- csrc.messages + 1;
  let event_bytes =
    List.fold_left (fun acc e -> acc + 16 + Operation.size_bytes e.op) 0 selected
  in
  (* Two vectors on the wire instead of the n x n matrix. *)
  csrc.bytes_sent <- csrc.bytes_sent + event_bytes + (2 * 8 * t.n);
  if selected = [] then csrc.noop_sessions <- csrc.noop_sessions + 1
  else csrc.propagation_sessions <- csrc.propagation_sessions + 1;
  List.iter
    (fun e ->
      cdst.log_records_examined <- cdst.log_records_examined + 1;
      if target.own.(e.origin) < e.seq then begin
        target.log <- e :: target.log;
        apply_event target e;
        cdst.items_copied <- cdst.items_copied + 1
      end)
    (List.rev selected);
  (* The receiver now knows everything the sender knew. *)
  merge_into target.own source.own;
  merge_into target.belief.(dst) target.own;
  merge_into target.belief.(src) source.own;
  (* Acknowledgement (the reverse phase): one vector back. *)
  cdst.messages <- cdst.messages + 1;
  cdst.bytes_sent <- cdst.bytes_sent + (8 * t.n);
  merge_into source.belief.(dst) target.own;
  garbage_collect t ~node:src;
  garbage_collect t ~node:dst

let read t ~node ~item = Option.map fst (Hashtbl.find_opt t.nodes.(node).values item)

let log_length t ~node = List.length t.nodes.(node).log

let converged t =
  let reference = t.nodes.(0).own in
  Array.for_all (fun node -> node.own = reference) t.nodes

let driver t =
  {
    Driver.name = "two-phase-gossip";
    n = t.n;
    update = (fun ~node ~item ~op -> update t ~node ~item op);
    session = (fun ~src ~dst -> session t ~src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type t = {
  n : int;
  universe : string array;
  stores : Store.t array;
  counters : Counters.t array;
  mutable conflicts : int;
}

let create ~n ~universe =
  let stores = Array.init n (fun _ -> Store.create ~n) in
  (* Materialize the whole universe on every replica: per-item
     anti-entropy pays for every item, updated or not. *)
  Array.iter
    (fun store -> List.iter (fun name -> ignore (Store.find_or_create store name)) universe)
    stores;
  {
    n;
    universe = Array.of_list universe;
    stores;
    counters = Array.init n (fun _ -> Counters.create ());
    conflicts = 0;
  }

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let it = Store.find_or_create t.stores.(node) item in
  Item.apply it op;
  Vv.incr it.ivv node

let session t ~src ~dst =
  let source = t.stores.(src) and target = t.stores.(dst) in
  let csrc = t.counters.(src) and cdst = t.counters.(dst) in
  (* The source ships (name, IVV) control state for every item; the
     recipient compares each pair. This is the per-item version
     information exchange of classic anti-entropy. *)
  csrc.messages <- csrc.messages + 1;
  csrc.bytes_sent <- csrc.bytes_sent + (Array.length t.universe * (8 + (8 * t.n)));
  let copied = ref false in
  Array.iter
    (fun name ->
      let sx = Store.find_or_create source name in
      let dx = Store.find_or_create target name in
      csrc.items_examined <- csrc.items_examined + 1;
      cdst.vv_comparisons <- cdst.vv_comparisons + 1;
      match Vv.compare_vv sx.Item.ivv dx.Item.ivv with
      | Vv.Dominates ->
        dx.value <- sx.value;
        dx.ivv <- Vv.copy sx.ivv;
        cdst.items_copied <- cdst.items_copied + 1;
        csrc.bytes_sent <- csrc.bytes_sent + String.length sx.value;
        copied := true
      | Vv.Concurrent ->
        t.conflicts <- t.conflicts + 1;
        cdst.conflicts_detected <- cdst.conflicts_detected + 1
      | Vv.Equal | Vv.Dominated -> ())
    t.universe;
  if !copied then csrc.propagation_sessions <- csrc.propagation_sessions + 1
  else csrc.noop_sessions <- csrc.noop_sessions + 1

let read t ~node ~item =
  Option.map (fun (i : Item.t) -> i.value) (Store.find_opt t.stores.(node) item)

let conflicts_detected t = t.conflicts

let converged t =
  let reference = t.stores.(0) in
  Array.for_all
    (fun store ->
      Array.for_all
        (fun name ->
          let a = Store.find_or_create reference name in
          let b = Store.find_or_create store name in
          String.equal a.Item.value b.Item.value && Vv.equal a.ivv b.ivv)
        t.universe)
    t.stores

let driver t =
  {
    Driver.name = "demers";
    n = t.n;
    update = (fun ~node ~item ~op -> update t ~node ~item op);
    session = (fun ~src ~dst -> session t ~src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

(** A uniform facade over replication protocols.

    The experiment harness compares the paper's protocol against the
    §8 baselines by driving each through this record: perform user
    updates, run one propagation session between two nodes, read
    values, and collect cost counters. Each implementation also exposes
    a richer module-specific API for the experiments that need protocol
    particulars (e.g. Oracle push-cursor control for the failure
    experiment). *)

type message = ..
(** Opaque protocol messages for message-granular transport; each
    driver extends this with its own wire forms. *)

type granular = {
  make_request : dst:int -> src:int -> message;
      (** Build (and charge for) the propagation request [dst] sends
          toward [src]. Must not alias live mutable state: the
          transport may hold the request arbitrarily long before
          delivery. The addressee matters to drivers that encode
          per-peer state into the message (wire-codec version
          negotiation, delta baselines — see [Edb_persist.Frame]). *)
  make_reply : src:int -> dst:int -> message -> message;
      (** Answer at [src] a request received from [dst]; charges the
          reply's cost. *)
  accept_reply : dst:int -> src:int -> message -> unit;
      (** Apply a reply at [dst]. Must be idempotent: the transport may
          deliver a reply twice, or deliver a stale reply from a
          superseded attempt. *)
}
(** Message-granular session execution: request / reply / accept as
    three observable points the network can fault independently. *)

type push_stream = {
  flush : src:int -> (int * message) list;
      (** Drain [src]'s per-peer push queues toward every currently
          ready peer, returning [(dst, msg)] pairs in ascending peer
          order and charging the sender's counters. Peers that are not
          ready (no capable wire version negotiated yet) keep queueing
          and shed per their drop policy. *)
  deliver : dst:int -> src:int -> message -> unit;
      (** Apply one push message at [dst]. Must be safe under
          duplicate, reordered and stale deliveries — the receiver
          applies only causally fresh updates and drops the rest. *)
}
(** Best-effort realtime push stream (DESIGN.md §10): a one-way hot
    path with no ordering or delivery guarantee; anti-entropy remains
    the sole correctness mechanism. *)

type t = {
  name : string;  (** Short label used in table headers. *)
  n : int;  (** Cluster size. *)
  update : node:int -> item:string -> op:Edb_store.Operation.t -> unit;
      (** Perform a user update at a node. *)
  session : src:int -> dst:int -> unit;
      (** One update-propagation session carrying [src]'s knowledge to
          [dst] (a pull by [dst] or a push by [src], whichever the
          protocol does natively). *)
  read : node:int -> item:string -> string option;
      (** The user-visible value at a node. *)
  counters : node:int -> Edb_metrics.Counters.t;
  total_counters : unit -> Edb_metrics.Counters.t;
  reset_counters : unit -> unit;
  converged : unit -> bool;
      (** Whether all replicas are identical under the protocol's own
          notion of state. *)
  granular : granular option;
      (** Message-granular session support; [None] falls back to the
          atomic [session] call (all §8 baselines). *)
  push : push_stream option;
      (** Best-effort realtime push; [None] for every protocol without
          one (all §8 baselines, and the paper's protocol unless the
          channel is enabled). *)
}

val total_of_nodes : Edb_metrics.Counters.t array -> Edb_metrics.Counters.t
(** Helper for implementations: the field-wise sum of per-node
    counters. *)

val reset_nodes : Edb_metrics.Counters.t array -> unit

module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type node = {
  store : Store.t;
  mutable pending_notifications : string list;
  mutable alive : bool;
}

type t = {
  n : int;
  universe : string array;
  nodes : node array;
  counters : Counters.t array;
  mutable conflicts : int;
}

let create ~n ~universe =
  let make _ =
    let store = Store.create ~n in
    List.iter (fun name -> ignore (Store.find_or_create store name)) universe;
    { store; pending_notifications = []; alive = true }
  in
  {
    n;
    universe = Array.of_list universe;
    nodes = Array.init n make;
    counters = Array.init n (fun _ -> Counters.create ());
    conflicts = 0;
  }

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let nd = t.nodes.(node) in
  let it = Store.find_or_create nd.store item in
  Item.apply it op;
  Vv.incr it.ivv node;
  if not (List.mem item nd.pending_notifications) then
    nd.pending_notifications <- item :: nd.pending_notifications

(* One peer pulls one named item from the updater: compare IVVs, adopt
   if the updater's copy dominates. *)
let pull_item t ~src ~dst name =
  let sx = Store.find_or_create t.nodes.(src).store name in
  let dx = Store.find_or_create t.nodes.(dst).store name in
  let csrc = t.counters.(src) and cdst = t.counters.(dst) in
  cdst.vv_comparisons <- cdst.vv_comparisons + 1;
  match Vv.compare_vv sx.Item.ivv dx.Item.ivv with
  | Vv.Dominates ->
    dx.value <- sx.value;
    dx.ivv <- Vv.copy sx.ivv;
    cdst.items_copied <- cdst.items_copied + 1;
    csrc.bytes_sent <- csrc.bytes_sent + String.length sx.value + (8 * t.n)
  | Vv.Concurrent ->
    t.conflicts <- t.conflicts + 1;
    cdst.conflicts_detected <- cdst.conflicts_detected + 1
  | Vv.Equal | Vv.Dominated -> ()

let notify t ~origin =
  let nd = t.nodes.(origin) in
  let names = nd.pending_notifications in
  nd.pending_notifications <- [];
  if nd.alive && names <> [] then begin
    let c = t.counters.(origin) in
    for dst = 0 to t.n - 1 do
      if dst <> origin then begin
        c.messages <- c.messages + 1;
        c.bytes_sent <- c.bytes_sent + (8 * List.length names);
        (* A crashed peer simply misses the notification; it is never
           re-sent. *)
        if t.nodes.(dst).alive then
          List.iter (fun name -> pull_item t ~src:origin ~dst name) names
      end
    done
  end

let reconcile t ~src ~dst =
  if t.nodes.(src).alive && t.nodes.(dst).alive then begin
    let csrc = t.counters.(src) in
    csrc.messages <- csrc.messages + 1;
    csrc.bytes_sent <- csrc.bytes_sent + (Array.length t.universe * (8 + (8 * t.n)));
    Array.iter
      (fun name ->
        csrc.items_examined <- csrc.items_examined + 1;
        pull_item t ~src ~dst name)
      t.universe
  end

let crash t ~node = t.nodes.(node).alive <- false

let recover t ~node = t.nodes.(node).alive <- true

let read t ~node ~item =
  Option.map (fun (i : Item.t) -> i.value) (Store.find_opt t.nodes.(node).store item)

let conflicts_detected t = t.conflicts

let converged t =
  let reference = t.nodes.(0).store in
  Array.for_all
    (fun node ->
      Array.for_all
        (fun name ->
          let a = Store.find_or_create reference name in
          let b = Store.find_or_create node.store name in
          String.equal a.Item.value b.Item.value && Vv.equal a.ivv b.ivv)
        t.universe)
    t.nodes

let driver t =
  {
    Driver.name = "ficus";
    n = t.n;
    update =
      (fun ~node ~item ~op ->
        update t ~node ~item op;
        notify t ~origin:node);
    session = (fun ~src ~dst -> reconcile t ~src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

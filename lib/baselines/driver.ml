module Counters = Edb_metrics.Counters

(* Protocol messages are opaque to the transport: each driver extends
   this type with its own wire forms (the epidemic driver adds
   propagation requests and replies). The simulation engine only moves
   the values around; extensibility keeps [edb_baselines] free of any
   per-protocol message dependency. *)
type message = ..

(* Message-granular session execution: a session becomes three
   observable points — build the request at the recipient, answer it at
   the source, apply the reply back at the recipient — so a network can
   lose, delay, duplicate or reorder each message independently and a
   crash can land between them. Implementations must make
   [accept_reply] idempotent (the transport may deliver a reply twice)
   and [make_request] self-contained (the request may be consumed
   arbitrarily later, so it must not alias live mutable state). *)
type granular = {
  make_request : dst:int -> src:int -> message;
      (** Build (and charge for) the propagation request [dst] sends
          toward [src]. The addressee matters to drivers that encode
          per-peer state into the message (wire-codec version
          negotiation, delta baselines — see [Edb_persist.Frame]). *)
  make_reply : src:int -> dst:int -> message -> message;
      (** Answer at [src] a request received from [dst]; charges the
          reply's cost. *)
  accept_reply : dst:int -> src:int -> message -> unit;
      (** Apply a reply at [dst]. Must be safe under duplicate and
          stale (superseded-attempt) deliveries. *)
}

(* Best-effort push stream: a one-way hot path riding the same opaque
   messages. [flush] drains a node's per-peer queues into wire messages
   (charging the sender); [deliver] applies one at the receiver, which
   must tolerate duplicate, reordered and stale deliveries — the stream
   promises nothing, anti-entropy repairs whatever it drops. *)
type push_stream = {
  flush : src:int -> (int * message) list;
      (** Drain [src]'s queues toward every currently-ready peer,
          returning [(dst, msg)] pairs in ascending peer order. Peers
          that are not ready (e.g. have not negotiated a capable wire
          version) keep queueing and shed per their drop policy. *)
  deliver : dst:int -> src:int -> message -> unit;
      (** Apply a push message at [dst]. Must be a no-op for anything
          not causally fresh. *)
}

type t = {
  name : string;
  n : int;
  update : node:int -> item:string -> op:Edb_store.Operation.t -> unit;
  session : src:int -> dst:int -> unit;
  read : node:int -> item:string -> string option;
  counters : node:int -> Counters.t;
  total_counters : unit -> Counters.t;
  reset_counters : unit -> unit;
  converged : unit -> bool;
  granular : granular option;
      (** Message-granular session support; [None] falls back to the
          atomic [session] call (all §8 baselines). *)
  push : push_stream option;
      (** Best-effort realtime push; [None] for every protocol without
          one (all §8 baselines, and the paper's protocol unless the
          channel is enabled). *)
}

let total_of_nodes counters =
  let acc = Counters.create () in
  Array.iter (fun c -> Counters.add_into acc c) counters;
  acc

let reset_nodes counters = Array.iter Counters.reset counters

module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

type item = { mutable value : string; mutable seq : int; mutable modified_at : int }

type node = {
  items : (string, item) Hashtbl.t;
  mutable clock : int;  (** Local logical time, advanced on every change. *)
  mutable last_modified : int;
      (** Time of the latest change anywhere in the replica — the only
          thing that lets Lotus answer "nothing to do" in O(1). *)
  last_prop_to : int array;  (** Per-peer time of the last propagation. *)
}

type t = {
  n : int;
  universe : string array;
  nodes : node array;
  counters : Counters.t array;
}

let create ~n ~universe =
  let make_node _ =
    let items = Hashtbl.create 64 in
    List.iter
      (fun name -> Hashtbl.add items name { value = ""; seq = 0; modified_at = 0 })
      universe;
    { items; clock = 0; last_modified = 0; last_prop_to = Array.make n 0 }
  in
  {
    n;
    universe = Array.of_list universe;
    nodes = Array.init n make_node;
    counters = Array.init n (fun _ -> Counters.create ());
  }

let touch node item =
  node.clock <- node.clock + 1;
  item.modified_at <- node.clock;
  node.last_modified <- node.clock

let find node name =
  match Hashtbl.find_opt node.items name with
  | Some item -> item
  | None ->
    let item = { value = ""; seq = 0; modified_at = 0 } in
    Hashtbl.add node.items name item;
    item

let update t ~node ~item op =
  let c = t.counters.(node) in
  c.updates_applied <- c.updates_applied + 1;
  let nd = t.nodes.(node) in
  let it = find nd item in
  it.value <- Operation.apply it.value op;
  it.seq <- it.seq + 1;
  touch nd it

let session t ~src ~dst =
  let source = t.nodes.(src) and target = t.nodes.(dst) in
  let csrc = t.counters.(src) and cdst = t.counters.(dst) in
  if source.last_modified <= source.last_prop_to.(dst) then begin
    (* Constant-time only in the lucky case: nothing at all changed at
       the source since the last propagation to this peer. *)
    csrc.noop_sessions <- csrc.noop_sessions + 1;
    csrc.messages <- csrc.messages + 1;
    csrc.bytes_sent <- csrc.bytes_sent + 8
  end
  else begin
    (* Step 1: scan the modification time of every item (O(N)) to build
       the modified-since list. *)
    let since = source.last_prop_to.(dst) in
    let modified = ref [] in
    Array.iter
      (fun name ->
        csrc.items_examined <- csrc.items_examined + 1;
        let it = find source name in
        if it.modified_at > since then modified := (name, it) :: !modified)
      t.universe;
    csrc.messages <- csrc.messages + 1;
    csrc.bytes_sent <- csrc.bytes_sent + 8 + (16 * List.length !modified);
    (* Step 2: the recipient compares every listed sequence number and
       copies the items whose source seqno is greater. Note the flaw:
       with concurrent updates the higher seqno silently wins. *)
    let copied = ref false in
    List.iter
      (fun (name, (sx : item)) ->
        cdst.vv_comparisons <- cdst.vv_comparisons + 1;
        let dx = find target name in
        if sx.seq > dx.seq then begin
          dx.value <- sx.value;
          dx.seq <- sx.seq;
          touch target dx;
          cdst.items_copied <- cdst.items_copied + 1;
          csrc.bytes_sent <- csrc.bytes_sent + String.length sx.value;
          copied := true
        end)
      !modified;
    if !copied then csrc.propagation_sessions <- csrc.propagation_sessions + 1
    else csrc.noop_sessions <- csrc.noop_sessions + 1;
    source.last_prop_to.(dst) <- source.clock
  end

let read t ~node ~item =
  Option.map (fun it -> it.value) (Hashtbl.find_opt t.nodes.(node).items item)

let sequence_number t ~node ~item =
  match Hashtbl.find_opt t.nodes.(node).items item with
  | Some it -> it.seq
  | None -> 0

let converged t =
  let reference = t.nodes.(0) in
  Array.for_all
    (fun node ->
      Array.for_all
        (fun name ->
          let a = find reference name and b = find node name in
          String.equal a.value b.value && a.seq = b.seq)
        t.universe)
    t.nodes

let driver t =
  {
    Driver.name = "lotus";
    n = t.n;
    update = (fun ~node ~item ~op -> update t ~node ~item op);
    session = (fun ~src ~dst -> session t ~src ~dst);
    read = (fun ~node ~item -> read t ~node ~item);
    counters = (fun ~node -> t.counters.(node));
    total_counters = (fun () -> Driver.total_of_nodes t.counters);
    reset_counters = (fun () -> Driver.reset_nodes t.counters);
    converged = (fun () -> converged t);
    granular = None;
    push = None;
  }

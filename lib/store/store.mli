(** The per-node collection of data item replicas.

    A database replica is "a collection of data items" (paper §2) kept
    whole on each server. The store provides O(1) access by item name;
    items are created on first reference with a zero IVV, which models
    the paper's fixed universe of data items where a never-updated item
    is indistinguishable from an absent one. *)

type t

val create : n:int -> t
(** [create ~n] is an empty store whose items carry IVVs of dimension
    [n] (the replication factor). *)

val dimension : t -> int
(** [dimension t] is the IVV dimension [n] passed at creation. *)

val find_opt : t -> string -> Item.t option
(** [find_opt t name] is the item replica named [name], if present. *)

val find_or_create : t -> string -> Item.t
(** [find_or_create t name] returns the existing item or creates a
    fresh zero-IVV one. *)

val mem : t -> string -> bool

val size : t -> int
(** [size t] is the number of materialized items. *)

val iter : (Item.t -> unit) -> t -> unit
(** [iter f t] visits every item in ascending name order, so anything
    derived from a store traversal (snapshots, shipped tails, copied
    lists) is deterministic by construction. *)

val fold : ('acc -> Item.t -> 'acc) -> 'acc -> t -> 'acc
(** Folds in ascending name order; see {!iter}. *)

val names : t -> string list
(** [names t] is the materialized item names, in ascending order. *)

val total_value_bytes : t -> int
(** [total_value_bytes t] is the sum of value sizes, for the cost
    model. *)

type t = {
  items : (string, Item.t) Hashtbl.t;
  n : int;
  mutable sorted : Item.t array;
      (* Items in ascending name order, rebuilt lazily. Items are
         add-only (there is no delete), so a single dirty bit set on
         insertion keeps the cache coherent. *)
  mutable dirty : bool;
}

let create ~n =
  if n <= 0 then invalid_arg "Store.create: dimension must be positive";
  { items = Hashtbl.create 64; n; sorted = [||]; dirty = false }

let dimension t = t.n

let find_opt t name = Hashtbl.find_opt t.items name

let find_or_create t name =
  match Hashtbl.find_opt t.items name with
  | Some item -> item
  | None ->
    let item = Item.create ~name ~n:t.n in
    Hashtbl.add t.items name item;
    t.dirty <- true;
    item

let mem t name = Hashtbl.mem t.items name

let size t = Hashtbl.length t.items

let sorted_items t =
  if t.dirty then begin
    let acc = ref [] in
    Hashtbl.iter (fun _ item -> acc := item :: !acc) t.items;
    let arr = Array.of_list !acc in
    Array.sort (fun a b -> String.compare a.Item.name b.Item.name) arr;
    t.sorted <- arr;
    t.dirty <- false
  end;
  t.sorted

let iter f t = Array.iter f (sorted_items t)

let fold f init t = Array.fold_left f init (sorted_items t)

let names t = Array.to_list (Array.map (fun item -> item.Item.name) (sorted_items t))

let total_value_bytes t = fold (fun acc item -> acc + Item.value_size item) 0 t

type t = Set of string | Splice of { offset : int; data : string }

let apply value op =
  match op with
  | Set v -> v
  | Splice { offset; data } ->
    if offset < 0 then invalid_arg "Operation.apply: negative offset";
    let value_len = String.length value in
    let data_len = String.length data in
    let result_len = max value_len (offset + data_len) in
    (* One allocation, no up-front zero-fill: every byte of the result
       is written by the two blits except a gap between the end of the
       old value and a beyond-the-end offset, which is zero-filled
       explicitly. [unsafe_to_string] is sound because [buf] never
       escapes. *)
    let buf = Bytes.create result_len in
    Bytes.blit_string value 0 buf 0 value_len;
    if offset > value_len then Bytes.fill buf value_len (offset - value_len) '\000';
    Bytes.blit_string data 0 buf offset data_len;
    Bytes.unsafe_to_string buf

let size_bytes = function
  | Set v -> String.length v
  | Splice { data; _ } -> 8 + String.length data

let equal a b =
  match (a, b) with
  | Set x, Set y -> String.equal x y
  | Splice { offset = o1; data = d1 }, Splice { offset = o2; data = d2 } ->
    o1 = o2 && String.equal d1 d2
  | Set _, Splice _ | Splice _, Set _ -> false

let pp fmt = function
  | Set v -> Format.fprintf fmt "set(%S)" v
  | Splice { offset; data } -> Format.fprintf fmt "splice(@%d,%S)" offset data

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Conflict = Edb_core.Conflict
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector
module Driver = Edb_baselines.Driver
module Epidemic_driver = Edb_baselines.Epidemic_driver
module Engine = Edb_sim.Engine
module Network = Edb_sim.Network
module Gen = QCheck2.Gen

(* Message-granular lockstep support: the oracle's frozen source state
   rides along with the real reply message (see [run_schedule]). *)
type Driver.message += With_snapshot of Driver.message * Oracle.snapshot

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

type topology = Clique | Ring | Star

type fault =
  | Crash of int
  | Recover of int
  | Partition of int * int
  | Heal of int * int

type step =
  | Update of { node : int; item : int; op : Operation.t }
  | Sync of { src : int; dst : int }
  | Fault of fault

type schedule = {
  nodes : int;
  items : int;
  topology : topology;
  loss : float;
  duplication : float;
  reorder : float;
  seed : int;
  steps : step list;
  corrupt_at : int option;
  granular : bool;
      (** Run under message-granular transport: loss / duplication /
          reordering apply to each request and reply independently,
          faults land between messages, and the timeout/retry layer is
          active. *)
  shards : int;
      (** Shard count of every node; 1 is the classic unsharded
          protocol. *)
}

let item_name rank = Printf.sprintf "it%02d" rank

let topology_name = function Clique -> "clique" | Ring -> "ring" | Star -> "star"

let topology_of_string = function
  | "clique" -> Some Clique
  | "ring" -> Some Ring
  | "star" -> Some Star
  | _ -> None

let pp_step ppf = function
  | Update { node; item; op } ->
    Format.fprintf ppf "update n%d %s %a" node (item_name item) Operation.pp op
  | Sync { src; dst } -> Format.fprintf ppf "sync %d->%d" src dst
  | Fault (Crash n) -> Format.fprintf ppf "crash %d" n
  | Fault (Recover n) -> Format.fprintf ppf "recover %d" n
  | Fault (Partition (a, b)) -> Format.fprintf ppf "partition %d|%d" a b
  | Fault (Heal (a, b)) -> Format.fprintf ppf "heal %d|%d" a b

let print_schedule s =
  Format.asprintf
    "@[<v>{ nodes=%d items=%d topology=%s loss=%.2f dup=%.2f reorder=%.2f \
     engine-seed=%d%s%s%s; %d steps }%a@]"
    s.nodes s.items (topology_name s.topology) s.loss s.duplication s.reorder s.seed
    (if s.granular then " granular" else "")
    (if s.shards > 1 then Printf.sprintf " shards=%d" s.shards else "")
    (match s.corrupt_at with
    | None -> ""
    | Some k -> Printf.sprintf " corrupt-at=%d" k)
    (List.length s.steps)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,  ")
       (fun ppf st -> Format.fprintf ppf "%a" pp_step st))
    s.steps

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_operation =
  Gen.frequency
    [
      (4, Gen.map (fun k -> Operation.Set (Printf.sprintf "v%d" k)) (Gen.int_bound 99));
      ( 1,
        Gen.map2
          (fun offset k -> Operation.Splice { offset; data = Printf.sprintf "s%d" k })
          (Gen.int_bound 8) (Gen.int_bound 9) );
    ]

(* A session pair respecting the communication topology. *)
let gen_pair ~nodes ~topology =
  match topology with
  | Clique ->
    Gen.map2
      (fun a d ->
        let src = a mod nodes in
        ((src + 1 + (d mod (nodes - 1))) mod nodes, src))
      (Gen.int_bound 1000) (Gen.int_bound 1000)
  | Ring ->
    Gen.map2
      (fun d forward ->
        let dst = d mod nodes in
        let src = if forward then (dst + 1) mod nodes else (dst + nodes - 1) mod nodes in
        (src, dst))
      (Gen.int_bound 1000) Gen.bool
  | Star ->
    Gen.map2
      (fun o outward ->
        let other = 1 + (o mod (nodes - 1)) in
        if outward then (0, other) else (other, 0))
      (Gen.int_bound 1000) Gen.bool

let gen_fault ~nodes =
  let node = Gen.map (fun k -> k mod nodes) (Gen.int_bound 1000) in
  let pair =
    Gen.map2
      (fun a d ->
        let x = a mod nodes in
        (x, (x + 1 + (d mod (nodes - 1))) mod nodes))
      (Gen.int_bound 1000) (Gen.int_bound 1000)
  in
  Gen.frequency
    [
      (2, Gen.map (fun n -> Crash n) node);
      (2, Gen.map (fun n -> Recover n) node);
      (1, Gen.map (fun (a, b) -> Partition (a, b)) pair);
      (1, Gen.map (fun (a, b) -> Heal (a, b)) pair);
    ]

let gen_step ~nodes ~items ~topology =
  Gen.frequency
    [
      ( 5,
        Gen.map3
          (fun node item op -> Update { node = node mod nodes; item; op })
          (Gen.int_bound 1000)
          (Gen.int_bound (items - 1))
          gen_operation );
      (5, Gen.map (fun (src, dst) -> Sync { src; dst }) (gen_pair ~nodes ~topology));
      (2, Gen.map (fun f -> Fault f) (gen_fault ~nodes));
    ]

let gen_topology = Gen.oneofl [ Clique; Ring; Star ]

let gen ?topology ?(mutate = false) ?(granular = false) ?(shards = 1) () =
  let open Gen in
  let* topology =
    match topology with Some tp -> pure tp | None -> gen_topology
  in
  let* nodes = int_range 3 5 in
  let* items = int_range 2 6 in
  let* steps = list_size (int_bound 60) (gen_step ~nodes ~items ~topology) in
  let* loss = oneofl [ 0.0; 0.0; 0.1; 0.3 ] in
  let* duplication = oneofl [ 0.0; 0.2 ] in
  let* reorder = oneofl [ 0.0; 0.3 ] in
  let* seed = int_bound 9999 in
  let* corrupt_at =
    if mutate then map (fun k -> Some k) (int_bound (List.length steps)) else pure None
  in
  pure
    { nodes; items; topology; loss; duplication; reorder; seed; steps; corrupt_at;
      granular; shards }

(* ------------------------------------------------------------------ *)
(* Running one schedule                                                *)
(* ------------------------------------------------------------------ *)

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Check_failed msg)) fmt

(* Intentional state corruption for the mutation smoke test: bump one
   component of an item IVV behind the protocol's back, which breaks
   the DBVV/IVV sum invariant (and the oracle equivalence). *)
let corrupt cluster =
  let node = Cluster.node cluster 0 in
  let name =
    match
      Node.fold_items
        (fun acc (it : Item.t) ->
          match acc with
          | Some best when String.compare best it.name <= 0 -> acc
          | _ -> Some it.name)
        None node
    with
    | Some name -> name
    | None -> item_name 0
  in
  let store = (Node.replica node (Node.shard_of_item node name)).Edb_core.Replica.store in
  let item = Store.find_or_create store name in
  Vv.incr item.Item.ivv 0

let conflict_items_of node =
  List.sort_uniq String.compare
    (List.map (fun (c : Conflict.t) -> c.item) (Node.conflicts node))

let run_schedule ?(mode = Node.Whole_item) (s : schedule) =
  let cluster, driver =
    Edb_baselines.Epidemic_driver.create ~seed:s.seed ~mode ~shards:s.shards
      ~n:s.nodes ()
  in
  let oracle = Oracle.create ~n:s.nodes in
  let monitor = Invariant.monitor ~n:s.nodes in
  (* Invariants + oracle equivalence + conflict-exactness (protocol
     conflicts must be a subset of the oracle's) at node [i]. *)
  (* The seq <= DBVV log bound only holds while no node anywhere has
     declared a conflict (see Node.check_invariants). *)
  let system_conflict_free () =
    let rec loop i =
      i >= s.nodes || (Node.conflicts (Cluster.node cluster i) = [] && loop (i + 1))
    in
    loop 0
  in
  let oracle_conflict_free () =
    let rec loop i = i >= s.nodes || (Oracle.conflict_items oracle ~node:i = [] && loop (i + 1)) in
    loop 0
  in
  let clean () = system_conflict_free () && oracle_conflict_free () in
  (* [clean_before] is whether the system (both sides) was conflict-free
     before the event just executed. While it is, real and oracle run in
     exact lockstep, so we demand state equality and — this is the
     paper's conflict-exactness claim — identical conflict sets, which
     pins down the first conflict precisely. After the first conflict,
     dropped log records deflate DBVVs, sessions legitimately lag the
     oracle, and user updates can apply to diverged bases, so only the
     lag-tolerant checks remain sound. *)
  let ensure ?(clean_before = false) label i =
    let nd = Cluster.node cluster i in
    (match Invariant.observe ~log_bound:(system_conflict_free ()) monitor nd with
    | Ok () -> ()
    | Error msg -> failf "%s: invariant violated at node %d: %s" label i msg);
    let conflicted = conflict_items_of nd in
    (match
       Oracle.matches_node ~exact:clean_before oracle ~node:i ~real:nd
         ~real_conflicted:(fun item -> List.mem item conflicted)
     with
    | Ok () -> ()
    | Error msg -> failf "%s: oracle divergence: %s" label msg);
    if clean_before then begin
      let reference = Oracle.conflict_items oracle ~node:i in
      if conflicted <> reference then
        failf "%s: node %d conflict set {%s} differs from the oracle's {%s}" label i
          (String.concat "," conflicted)
          (String.concat "," reference)
    end
  in
  (* Message-granular lockstep: the oracle's source snapshot rides the
     reply message, frozen at reply-build time and delivered at accept
     time — mirroring exactly what the real reply carries across the
     same gap. Duplicate or stale deliveries then hit both sides with
     the same (idempotent) payload. *)
  let wrapped_granular =
    match driver.Driver.granular with
    | None -> None
    | Some g ->
      Some
        {
          Driver.make_request = g.Driver.make_request;
          make_reply =
            (fun ~src ~dst msg ->
              With_snapshot
                (g.Driver.make_reply ~src ~dst msg, Oracle.capture oracle ~src));
          accept_reply =
            (fun ~dst ~src msg ->
              match msg with
              | With_snapshot (reply, snap) ->
                let clean_before = clean () in
                g.Driver.accept_reply ~dst ~src reply;
                (* A Nak applies nothing at the real node — delivering
                   the captured source snapshot to the oracle would
                   desynchronise the lockstep, so skip it (and the
                   equality check that assumes a delivery happened). *)
                if not (Epidemic_driver.is_nak reply) then begin
                  Oracle.deliver oracle ~dst snap;
                  ensure ~clean_before "after accept" dst
                end
              | _ -> assert false);
        }
  in
  let wrapped =
    {
      driver with
      Driver.update =
        (fun ~node ~item ~op ->
          let clean_before = clean () in
          driver.Driver.update ~node ~item ~op;
          Oracle.update oracle ~node ~item ~op;
          ensure ~clean_before "after update" node);
      session =
        (fun ~src ~dst ->
          let clean_before = clean () in
          driver.Driver.session ~src ~dst;
          Oracle.session oracle ~src ~dst;
          ensure ~clean_before "after session" dst);
      granular = wrapped_granular;
    }
  in
  let network =
    Network.create ~loss_probability:s.loss ~duplicate_probability:s.duplication
      ~reorder_probability:s.reorder ()
  in
  let transport =
    if s.granular then Engine.Message_grain Engine.default_retry_policy
    else Engine.Session_grain
  in
  let engine = Engine.create ~seed:s.seed ~network ~transport ~driver:wrapped () in
  try
    List.iteri
      (fun i step ->
        let at = float_of_int (i + 1) in
        (* Granular runs start sessions at integer times, so their
           request lands near [start + 1] and their reply near
           [start + 2]; putting faults on the half-beat drops crashes
           and partitions *between* a session's messages — the
           mid-session schedules this transport exists to survive. *)
        let fault_at = if s.granular then at +. 0.5 else at in
        match step with
        | Update { node; item; op } ->
          Engine.schedule engine ~at
            (Engine.User_update { node; item = item_name item; op })
        | Sync { src; dst } -> Engine.schedule engine ~at (Engine.Session { src; dst })
        | Fault (Crash n) -> Engine.schedule engine ~at:fault_at (Engine.Crash n)
        | Fault (Recover n) -> Engine.schedule engine ~at:fault_at (Engine.Recover n)
        | Fault (Partition (a, b)) ->
          Engine.schedule engine ~at:fault_at
            (Engine.Custom (fun _ -> Network.partition network a b))
        | Fault (Heal (a, b)) ->
          Engine.schedule engine ~at:fault_at
            (Engine.Custom (fun _ -> Network.heal network a b)))
      s.steps;
    (match s.corrupt_at with
    | None -> ()
    | Some k ->
      Engine.schedule engine ~at:(float_of_int k +. 0.5)
        (Engine.Custom (fun _ -> corrupt cluster)));
    (* Drive to quiescence: restore a fully reliable, connected, alive
       cluster, then enough ring rounds (both directions) for Theorem
       5's transitive propagation to complete. *)
    let horizon = float_of_int (List.length s.steps + 1) in
    Engine.schedule engine ~at:horizon
      (Engine.Custom
         (fun _ ->
           Network.heal_all network;
           Network.set_loss_probability network 0.0;
           Network.set_duplicate_probability network 0.0;
           Network.set_reorder_probability network 0.0));
    for i = 0 to s.nodes - 1 do
      Engine.schedule engine ~at:horizon (Engine.Recover i)
    done;
    if s.granular then
      (* A granular ring session started at T accepts its reply at
         T + 2 (reliable network, base latency 1.0 per hop). Space the
         forward and backward passes 2.5 apart and rounds 5.0 apart so
         every accept strictly precedes the next session that reads the
         state — otherwise FIFO tie-breaking would let round k+1's
         requests (scheduled at setup, hence earlier in insertion
         order) run before round k's accepts and halve the effective
         propagation rate. *)
      for round = 0 to s.nodes + 1 do
        let at = horizon +. 1.0 +. (5.0 *. float_of_int round) in
        for dst = 0 to s.nodes - 1 do
          Engine.schedule engine ~at (Engine.Session { src = (dst + 1) mod s.nodes; dst });
          Engine.schedule engine ~at:(at +. 2.5)
            (Engine.Session { src = (dst + s.nodes - 1) mod s.nodes; dst })
        done
      done
    else
      for round = 0 to s.nodes + 1 do
        let at = horizon +. 1.0 +. (2.0 *. float_of_int round) in
        for dst = 0 to s.nodes - 1 do
          Engine.schedule engine ~at (Engine.Session { src = (dst + 1) mod s.nodes; dst });
          Engine.schedule engine ~at:(at +. 1.0)
            (Engine.Session { src = (dst + s.nodes - 1) mod s.nodes; dst })
        done
      done;
    if not (Engine.run_until_quiescent engine) then
      failf "event budget exhausted before quiescence";
    (* Quiescence checks: invariants and oracle equivalence everywhere.
       If the whole run stayed conflict-free on both sides, lockstep
       never broke, so we demand exact equality and full convergence.
       Otherwise only the lag-tolerant bounds apply: post-conflict, a
       node can miss an item through a deflated DBVV, update it on a
       stale base, and create concurrency that is genuine in the real
       execution but invisible to the oracle (and vice versa the oracle
       can flag pairs whose real counterparts ended up ordered), so
       neither conflict-set inclusion survives the first conflict. What
       does survive — and [ensure] enforced it on the lockstep prefix —
       is that the FIRST conflict is detected identically by both, so at
       quiescence the two sides must agree on whether any conflict
       happened at all. *)
    let final_clean = clean () in
    for i = 0 to s.nodes - 1 do
      ensure ~clean_before:final_clean "at quiescence" i
    done;
    let union_of items_of =
      List.sort_uniq String.compare
        (List.concat (List.init s.nodes (fun i -> items_of i)))
    in
    let real_union = union_of (fun i -> conflict_items_of (Cluster.node cluster i)) in
    let oracle_union = union_of (fun i -> Oracle.conflict_items oracle ~node:i) in
    if (real_union = []) <> (oracle_union = []) then
      failf "at quiescence: conflicted items {%s} but the oracle flagged {%s}"
        (String.concat "," real_union)
        (String.concat "," oracle_union);
    if real_union = [] && not (driver.Driver.converged ()) then
      failf "no conflicts were declared, yet the replicas did not converge";
    Ok ()
  with Check_failed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Cache equivalence: cached and uncached runs must be identical       *)
(* ------------------------------------------------------------------ *)

(* Execute a schedule on a plain cluster (no oracle, no mid-run checks)
   and return the cluster at quiescence. The engine, network and
   quiescence drive match [run_schedule] exactly, so a cached and an
   uncached execution see identical event streams: a cached skip
   consumes no engine or network randomness (loss/duplication/reorder
   are drawn when the Session event fires, before the pull runs). *)
let execute ?(mode = Node.Whole_item) ~cache (s : schedule) =
  let cluster, driver =
    Edb_baselines.Epidemic_driver.create ~seed:s.seed ~mode ~cache ~shards:s.shards
      ~n:s.nodes ()
  in
  let network =
    Network.create ~loss_probability:s.loss ~duplicate_probability:s.duplication
      ~reorder_probability:s.reorder ()
  in
  let engine = Engine.create ~seed:s.seed ~network ~driver () in
  List.iteri
    (fun i step ->
      let at = float_of_int (i + 1) in
      match step with
      | Update { node; item; op } ->
        Engine.schedule engine ~at
          (Engine.User_update { node; item = item_name item; op })
      | Sync { src; dst } -> Engine.schedule engine ~at (Engine.Session { src; dst })
      | Fault (Crash n) -> Engine.schedule engine ~at (Engine.Crash n)
      | Fault (Recover n) -> Engine.schedule engine ~at (Engine.Recover n)
      | Fault (Partition (a, b)) ->
        Engine.schedule engine ~at (Engine.Custom (fun _ -> Network.partition network a b))
      | Fault (Heal (a, b)) ->
        Engine.schedule engine ~at (Engine.Custom (fun _ -> Network.heal network a b)))
    s.steps;
  let horizon = float_of_int (List.length s.steps + 1) in
  Engine.schedule engine ~at:horizon
    (Engine.Custom
       (fun _ ->
         Network.heal_all network;
         Network.set_loss_probability network 0.0;
         Network.set_duplicate_probability network 0.0;
         Network.set_reorder_probability network 0.0));
  for i = 0 to s.nodes - 1 do
    Engine.schedule engine ~at:horizon (Engine.Recover i)
  done;
  for round = 0 to s.nodes + 1 do
    let at = horizon +. 1.0 +. (2.0 *. float_of_int round) in
    for dst = 0 to s.nodes - 1 do
      Engine.schedule engine ~at (Engine.Session { src = (dst + 1) mod s.nodes; dst });
      Engine.schedule engine ~at:(at +. 1.0)
        (Engine.Session { src = (dst + s.nodes - 1) mod s.nodes; dst })
    done
  done;
  let quiescent = Engine.run_until_quiescent engine in
  (cluster, quiescent)

(* Node.export_state is canonical — per-shard item and aux lists come
   out in ascending name order (Store iteration is sorted) — so states
   compare structurally with no normalization pass. *)
let run_cache_equivalence ?mode (s : schedule) =
  let cached, cached_quiescent = execute ?mode ~cache:true s in
  let plain, plain_quiescent = execute ?mode ~cache:false s in
  try
    if cached_quiescent <> plain_quiescent then
      failf "quiescence differs: cached=%b uncached=%b" cached_quiescent
        plain_quiescent;
    for i = 0 to s.nodes - 1 do
      let c = Cluster.node cached i and p = Cluster.node plain i in
      if Node.export_state c <> Node.export_state p then
        failf "node %d state differs between cached and uncached runs" i;
      let cc = conflict_items_of c and pc = conflict_items_of p in
      if cc <> pc then
        failf "node %d conflict set differs: cached {%s} vs uncached {%s}" i
          (String.concat "," cc) (String.concat "," pc)
    done;
    (* The cache must never have made things slower message-wise. *)
    let messages cluster = (Cluster.total_counters cluster).Edb_metrics.Counters.messages in
    if messages cached > messages plain then
      failf "cached run sent more messages (%d) than uncached (%d)"
        (messages cached) (messages plain);
    Ok ()
  with Check_failed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Push equivalence: push-on and push-off runs must converge equal     *)
(* ------------------------------------------------------------------ *)

(* The push channel is best-effort and anti-entropy is the sole
   correctness mechanism (DESIGN.md §10), so the same schedule run with
   the channel on must reach the {e bit-identical} converged state as
   the pull-only run — across loss, duplication, reordering, crashes
   and partitions. Updates are forced single-writer (owner = item rank
   mod nodes): with concurrent writers the two arms can legitimately
   materialize a conflict's preserved versions in different orders, and
   the claim under test is about replication, not conflict policy. *)
let single_writer_steps (s : schedule) =
  List.map
    (function
      | Update u -> Update { u with node = u.item mod s.nodes }
      | other -> other)
    s.steps

(* Execute one arm under message-granular transport. Mirrors [execute]
   but with the timeout/retry layer active (pushes only exist as wire-v2
   frames), faults on the half-beat as in granular [run_schedule], and
   the push flush cadence running through the quiescence drive so late
   pushes race the final anti-entropy rounds — they must all be judged
   stale. The engine draws push network randomness from a dedicated PRNG
   stream, so the push-off arm sees exactly the draw sequence of a
   pull-only run. *)
let execute_push ?(mode = Node.Whole_item) ~push (s : schedule) =
  let push_config = if push then Some Edb_push.Channel.default_config else None in
  let cluster, driver =
    Edb_baselines.Epidemic_driver.create ~seed:s.seed ~mode ?push:push_config
      ~shards:s.shards ~n:s.nodes ()
  in
  let network =
    Network.create ~loss_probability:s.loss ~duplicate_probability:s.duplication
      ~reorder_probability:s.reorder ()
  in
  let engine =
    Engine.create ~seed:s.seed ~network
      ~transport:(Engine.Message_grain Engine.default_retry_policy) ~driver ()
  in
  let steps = single_writer_steps s in
  List.iteri
    (fun i step ->
      let at = float_of_int (i + 1) in
      let fault_at = at +. 0.5 in
      match step with
      | Update { node; item; op } ->
        Engine.schedule engine ~at
          (Engine.User_update { node; item = item_name item; op })
      | Sync { src; dst } -> Engine.schedule engine ~at (Engine.Session { src; dst })
      | Fault (Crash n) -> Engine.schedule engine ~at:fault_at (Engine.Crash n)
      | Fault (Recover n) -> Engine.schedule engine ~at:fault_at (Engine.Recover n)
      | Fault (Partition (a, b)) ->
        Engine.schedule engine ~at:fault_at
          (Engine.Custom (fun _ -> Network.partition network a b))
      | Fault (Heal (a, b)) ->
        Engine.schedule engine ~at:fault_at
          (Engine.Custom (fun _ -> Network.heal network a b)))
    steps;
  let horizon = float_of_int (List.length steps + 1) in
  Engine.schedule engine ~at:horizon
    (Engine.Custom
       (fun _ ->
         Network.heal_all network;
         Network.set_loss_probability network 0.0;
         Network.set_duplicate_probability network 0.0;
         Network.set_reorder_probability network 0.0));
  for i = 0 to s.nodes - 1 do
    Engine.schedule engine ~at:horizon (Engine.Recover i)
  done;
  (* Same spacing argument as granular [run_schedule]: accepts land at
     session start + 2, so keep passes 2.5 and rounds 5.0 apart. *)
  let drive_end = horizon +. 1.0 +. (5.0 *. float_of_int (s.nodes + 2)) +. 2.5 in
  if push then
    Engine.schedule engine ~at:0.5
      (Engine.Push_flush { period = 0.5; until = drive_end });
  for round = 0 to s.nodes + 1 do
    let at = horizon +. 1.0 +. (5.0 *. float_of_int round) in
    for dst = 0 to s.nodes - 1 do
      Engine.schedule engine ~at (Engine.Session { src = (dst + 1) mod s.nodes; dst });
      Engine.schedule engine ~at:(at +. 2.5)
        (Engine.Session { src = (dst + s.nodes - 1) mod s.nodes; dst })
    done
  done;
  let quiescent = Engine.run_until_quiescent engine in
  (cluster, driver, quiescent)

let run_push_equivalence_schedule ?mode (s : schedule) =
  let pushed, pushed_driver, pushed_quiescent = execute_push ?mode ~push:true s in
  let plain, _, plain_quiescent = execute_push ?mode ~push:false s in
  try
    if pushed_quiescent <> plain_quiescent then
      failf "quiescence differs: push-on=%b push-off=%b" pushed_quiescent
        plain_quiescent;
    for i = 0 to s.nodes - 1 do
      let a = Cluster.node pushed i and b = Cluster.node plain i in
      if Node.export_state a <> Node.export_state b then
        failf "node %d state differs between push-on and push-off runs" i;
      let ac = conflict_items_of a and bc = conflict_items_of b in
      if ac <> bc then
        failf "node %d conflict set differs: push-on {%s} vs push-off {%s}" i
          (String.concat "," ac) (String.concat "," bc)
    done;
    (* Single-writer updates cannot conflict, so the drive must have
       fully converged the push arm — stale pushes included. *)
    if not (pushed_driver.Driver.converged ()) then
      failf "push-on run did not converge at quiescence";
    Ok ()
  with Check_failed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* The explorer: many schedules, integrated shrinking                  *)
(* ------------------------------------------------------------------ *)

type report = { schedules : int }

let run ?mode ?topology ?(mutate = false) ?(granular = false) ?shards ~seed ~runs () =
  let last_error = ref "" in
  let prop s =
    match run_schedule ?mode s with
    | Ok () -> true
    | Error msg ->
      last_error := msg;
      false
  in
  let test =
    QCheck2.Test.make ~count:runs
      ~name:
        (if granular then "chaos explorer (message-granular)"
         else "fault-schedule explorer")
      ~print:print_schedule
      (gen ?topology ~mutate ~granular ?shards ())
      prop
  in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| seed |]) test with
  | () -> Ok { schedules = runs }
  | exception QCheck2.Test.Test_fail (_, counterexamples) ->
    Error
      (Printf.sprintf "%s\nshrunk counterexample:\n%s\nreplay with: --seed %d --runs %d"
         !last_error
         (String.concat "\n---\n" counterexamples)
         seed runs)
  | exception QCheck2.Test.Test_error (_, instance, exn, _) ->
    Error
      (Printf.sprintf "schedule raised %s\non instance:\n%s\nreplay with: --seed %d --runs %d"
         (Printexc.to_string exn) instance seed runs)

let run_push_equivalence ?mode ?topology ?shards ~seed ~runs () =
  let last_error = ref "" in
  let prop s =
    match run_push_equivalence_schedule ?mode s with
    | Ok () -> true
    | Error msg ->
      last_error := msg;
      false
  in
  let test =
    QCheck2.Test.make ~count:runs ~name:"push-channel equivalence"
      ~print:print_schedule
      (gen ?topology ~granular:true ?shards ())
      prop
  in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| seed |]) test with
  | () -> Ok { schedules = runs }
  | exception QCheck2.Test.Test_fail (_, counterexamples) ->
    Error
      (Printf.sprintf "%s\nshrunk counterexample:\n%s\nreplay with seed %d"
         !last_error
         (String.concat "\n---\n" counterexamples)
         seed)
  | exception QCheck2.Test.Test_error (_, instance, exn, _) ->
    Error
      (Printf.sprintf "schedule raised %s\non instance:\n%s\nreplay with seed %d"
         (Printexc.to_string exn) instance seed)

let run_equivalence ?mode ?topology ?shards ~seed ~runs () =
  let last_error = ref "" in
  let prop s =
    match run_cache_equivalence ?mode s with
    | Ok () -> true
    | Error msg ->
      last_error := msg;
      false
  in
  let test =
    QCheck2.Test.make ~count:runs ~name:"peer-cache equivalence"
      ~print:print_schedule
      (gen ?topology ?shards ())
      prop
  in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| seed |]) test with
  | () -> Ok { schedules = runs }
  | exception QCheck2.Test.Test_fail (_, counterexamples) ->
    Error
      (Printf.sprintf "%s\nshrunk counterexample:\n%s\nreplay with seed %d"
         !last_error
         (String.concat "\n---\n" counterexamples)
         seed)
  | exception QCheck2.Test.Test_error (_, instance, exn, _) ->
    Error
      (Printf.sprintf "schedule raised %s\non instance:\n%s\nreplay with seed %d"
         (Printexc.to_string exn) instance seed)

let run_membership_equivalence ?shards ~seed ~runs () =
  Result.map
    (fun (r : Membership_check.report) -> { schedules = r.schedules })
    (Membership_check.run ?shards ~seed ~runs ())

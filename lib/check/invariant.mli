(** Mechanical verification of the paper's structural invariants.

    The protocol's correctness argument (paper §4, Theorem 5) rests on
    state invariants the implementation maintains but — outside this
    module — never re-derives. Given any {!Edb_core.Node.t},
    {!check_node} asserts:

    - {b DBVV/IVV knowledge consistency} (§4.1):
      [V_i[l] = Σ_x v_i(x)[l]] — the database version vector counts
      exactly the origin-[l] updates reflected by the regular item
      replicas;
    - {b log boundedness} (§4.2, Fig. 1): each log component keeps at
      most one record per (origin, item), in strictly increasing
      sequence order, with the per-item pointer map consistent with the
      doubly-linked list, and (in conflict-free states) no record newer
      than the DBVV admits;
    - every retained log record references a materialized item;
    - {b auxiliary coherence} (§4.3–4.4): auxiliary log records belong
      to live auxiliary copies, per-item record IVVs strictly increase,
      and the auxiliary copy dominates all of its deferred-update
      records;
    - clean [IsSelected] flags outside a propagation computation (§6);
    - {b sharding coherence} (DESIGN.md §7): the summary DBVV equals
      the component-wise sum of the shard DBVVs, and every materialized
      item, auxiliary copy and log record lives in the shard its name
      hashes to.

    Per-replica invariants are checked for every shard of a sharded
    node; error messages carry a [shard k:] prefix.

    A {!monitor} additionally tracks each node {e across} sessions and
    asserts DBVV monotonicity: a node's database version vector never
    goes backwards, whatever the interleaving of updates, sessions,
    crashes and recoveries. *)

val check_node : ?log_bound:bool -> Edb_core.Node.t -> (unit, string) result
(** All node-local structural invariants; [Error msg] pinpoints the
    first violation. [log_bound] is forwarded to
    {!Edb_core.Node.check_invariants}: pass [false] once {e any} node of
    the system has declared a conflict, because a report-only conflict
    breaks the per-origin prefix property (and with it the seq <= DBVV
    bound) at {e other}, still conflict-free nodes. *)

type monitor
(** Per-cluster temporal state: the last observed DBVV of each node. *)

val monitor : n:int -> monitor
(** [monitor ~n] observes a cluster of [n] nodes; no DBVV is recorded
    until the first {!observe} of each node. *)

val observe :
  ?log_bound:bool -> monitor -> Edb_core.Node.t -> (unit, string) result
(** [observe m node] runs {!check_node} and verifies the node's DBVV
    dominates (component-wise) its previously observed value, then
    records the new value. *)

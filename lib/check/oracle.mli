(** A naive reference replica, run in lockstep with the real protocol.

    The oracle implements update propagation the way the paper's §8
    baselines do (Wuu–Bernstein-style full compare): every replica
    keeps a plain per-item [(value, IVV)] map, and a session from [src]
    to [dst] compares {e every} item of the source against the
    recipient — O(N) per session, no DBVV, no logs, no auxiliary
    structures. Newer copies are adopted whole; concurrent copies are
    flagged as conflicted and left untouched, exactly the paper's
    report-only conflict behaviour.

    Because this O(N) protocol is trivially correct, running it in
    lockstep with the real O(m) protocol — mirroring every user update
    and every executed session — and demanding equal states turns the
    paper's central claim (§6: same outcome, less work) into a testable
    equivalence: after every session and at quiescence the two must
    agree on all values, all IVVs, and the conflict set. *)

type t

val create : n:int -> t

val n : t -> int

val update : t -> node:int -> item:string -> op:Edb_store.Operation.t -> unit
(** Mirror of a user update at [node]. *)

val session : t -> src:int -> dst:int -> unit
(** Mirror of one propagation session carrying [src]'s knowledge to
    [dst]: full per-item compare, newer copies adopted, concurrent
    copies flagged at [dst]. Items are visited in sorted name order so
    runs are deterministic. Equivalent to
    [deliver t ~dst (capture t ~src)]. *)

type snapshot
(** A deep, immutable copy of one replica's items. *)

val capture : t -> src:int -> snapshot
(** Freeze [src]'s state. Under message-granular transport the real
    protocol builds its reply from the source's state at reply time and
    applies it at a later accept; mirroring a session as
    [capture]-at-reply / {!deliver}-at-accept keeps the oracle in exact
    lockstep across the gap. *)

val deliver : t -> dst:int -> snapshot -> unit
(** Apply a frozen source state at [dst] (newer copies adopted,
    concurrent copies flagged). Idempotent: delivering the same
    snapshot twice is a no-op the second time. *)

val read : t -> node:int -> item:string -> string option

val ivv : t -> node:int -> item:string -> int array option

val conflicted : t -> node:int -> item:string -> bool
(** Whether [node] has ever observed a concurrent copy of [item]. *)

val conflict_items : t -> node:int -> string list
(** All items ever flagged conflicted at [node], sorted. *)

val matches_node :
  ?exact:bool ->
  t ->
  node:int ->
  real:Edb_core.Node.t ->
  real_conflicted:(string -> bool) ->
  (unit, string) result
(** [matches_node t ~node ~real ~real_conflicted] checks state
    equivalence between oracle replica [node] and the real protocol
    node: equal values and IVVs for every item neither side has flagged
    as conflicted ([real_conflicted] supplies the protocol side's
    flags), and no protocol-side item with updates the oracle never
    saw. Conflicted items are exempt because after a report-only
    conflict the paper's protocol deliberately stops reconciling them
    (§5.1).

    [exact] (default true) demands equality after every session — valid
    only while the {e whole system} is conflict-free. Once any node has
    declared a conflict, dropped log records deflate DBVVs, and Fig. 2's
    component gate can legitimately suppress shipping an {e unrelated}
    item that another path delivers later; pass [~exact:false] then,
    which still demands the protocol never gets {e ahead} of the oracle
    (componentwise IVV bound, equal values at equal IVVs, no invented
    state) but tolerates lag. *)

module Group = Edb_membership.Group
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Item = Edb_store.Item
module Vv = Edb_vv.Version_vector
module Gen = QCheck2.Gen

(* Randomized exploration of membership schedules: interleavings of
   user updates and anti-entropy sessions with joins, graceful leaves,
   retirements, crashes, recoveries and partitions, run against
   {!Edb_membership.Group} with a stable-name oracle in lockstep.

   The oracle never garbage-collects: every replica keeps one IVV
   component per stable name that will ever exist (initial members plus
   one per [MJoin] in the schedule), so a real vector — whose slots
   shift as joins extend and retirements drop components — must at
   every full-epoch checkpoint equal the oracle's vector {e projected
   through the roster}: real [ivv.(j)] against oracle
   [ivv.(roster.(j))]. That projection is exactly the correctness claim
   of retirement GC: dropping a retired component loses nothing,
   because the fence proved the dropped components identical
   everywhere. A surviving retired component would surface as a
   dimension mismatch; a corrupted one as a projected-IVV mismatch.

   Single-writer discipline makes the runs conflict-free by
   construction: each item rank is owned by one stable name for the
   whole schedule (owner = rank mod the schedule's name capacity), and
   an update executes only while its owner is active — so ownership
   survives joins, leaves and retirements without ever creating
   concurrent writes. Moves whose preconditions do not hold are skipped
   deterministically, mirroring the membership layer's own refusals. *)

type move =
  | MUpdate of { item : int; op : Operation.t }
      (** Owner derived from [item]: rank mod name capacity. Skipped
          unless the owner exists and is a live active member. *)
  | MSync of { a : int; b : int }  (** Indices resolved mod names created so far. *)
  | MCrash of int
  | MRecover of int
  | MPartition of int * int
  | MHeal of int * int
  | MJoin of { donor : int }
  | MLeave of int
  | MRetire of int
  | MObserve  (** One controller pass ({!Group.observe}). *)

type schedule = { nodes : int; items : int; shards : int; moves : move list }

let item_name rank = Printf.sprintf "it%02d" rank

let pp_move ppf = function
  | MUpdate { item; op } ->
    Format.fprintf ppf "update %s %a" (item_name item) Operation.pp op
  | MSync { a; b } -> Format.fprintf ppf "sync %d %d" a b
  | MCrash k -> Format.fprintf ppf "crash %d" k
  | MRecover k -> Format.fprintf ppf "recover %d" k
  | MPartition (a, b) -> Format.fprintf ppf "partition %d %d" a b
  | MHeal (a, b) -> Format.fprintf ppf "heal %d %d" a b
  | MJoin { donor } -> Format.fprintf ppf "join (donor %d)" donor
  | MLeave k -> Format.fprintf ppf "leave %d" k
  | MRetire k -> Format.fprintf ppf "retire %d" k
  | MObserve -> Format.fprintf ppf "observe"

let print_schedule (s : schedule) =
  Format.asprintf "@[<v>nodes=%d items=%d shards=%d@,%a@]" s.nodes s.items s.shards
    (Format.pp_print_list pp_move)
    s.moves

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_operation =
  Gen.frequency
    [
      (4, Gen.map (fun k -> Operation.Set (Printf.sprintf "v%d" k)) (Gen.int_bound 99));
      ( 1,
        Gen.map2
          (fun offset k -> Operation.Splice { offset; data = Printf.sprintf "s%d" k })
          (Gen.int_bound 8) (Gen.int_bound 9) );
    ]

let gen_move ~items =
  let idx = Gen.int_bound 1000 in
  Gen.frequency
    [
      ( 6,
        Gen.map2
          (fun item op -> MUpdate { item; op })
          (Gen.int_bound (items - 1))
          gen_operation );
      (6, Gen.map2 (fun a b -> MSync { a; b }) idx idx);
      (2, Gen.map (fun k -> MCrash k) idx);
      (2, Gen.map (fun k -> MRecover k) idx);
      (1, Gen.map2 (fun a b -> MPartition (a, b)) idx idx);
      (1, Gen.map2 (fun a b -> MHeal (a, b)) idx idx);
      (1, Gen.map (fun donor -> MJoin { donor }) idx);
      (1, Gen.map (fun k -> MLeave k) idx);
      (2, Gen.map (fun k -> MRetire k) idx);
      (2, Gen.pure MObserve);
    ]

let gen ?(shards = 1) () =
  let open Gen in
  let* nodes = int_range 3 5 in
  let* items = int_range 2 6 in
  let* moves = list_size (int_bound 50) (gen_move ~items) in
  pure { nodes; items; shards; moves }

(* ------------------------------------------------------------------ *)
(* The stable-name oracle                                              *)
(* ------------------------------------------------------------------ *)

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Check_failed msg)) fmt

type ocopy = { mutable value : string; mutable ivv : int array }

type oreplica = (string, ocopy) Hashtbl.t

type state = {
  g : Group.t;
  nodes0 : int;  (* initial member count *)
  cap : int;  (* name capacity: nodes0 + number of MJoin moves *)
  oracle : (int, oreplica) Hashtbl.t;  (* replica per stable name *)
  mutable partitions : (int * int) list;  (* name pairs, smaller first *)
}

let ofind st (rep : oreplica) item =
  match Hashtbl.find_opt rep item with
  | Some c -> c
  | None ->
    let c = { value = ""; ivv = Array.make st.cap 0 } in
    Hashtbl.add rep item c;
    c

let dominates_or_equal a b =
  let ok = ref true in
  Array.iteri (fun i av -> if av < b.(i) then ok := false) a;
  !ok

let oupdate st ~owner ~item op =
  let c = ofind st (Hashtbl.find st.oracle owner) item in
  c.value <- Operation.apply c.value op;
  c.ivv.(owner) <- c.ivv.(owner) + 1

(* One direction of a session: [dst] adopts every item where [src] is
   strictly newer. Concurrency is impossible under the single-writer
   discipline; seeing it means the harness itself is broken. *)
let odeliver st ~src ~dst =
  let s = Hashtbl.find st.oracle src and d = Hashtbl.find st.oracle dst in
  Hashtbl.iter
    (fun item (c : ocopy) ->
      let mine = ofind st d item in
      if dominates_or_equal c.ivv mine.ivv then begin
        if c.ivv <> mine.ivv then begin
          mine.value <- c.value;
          mine.ivv <- Array.copy c.ivv
        end
      end
      else if not (dominates_or_equal mine.ivv c.ivv) then
        failf "oracle: concurrent IVVs for %s between %d and %d" item src dst)
    s

let osession st ~a ~b =
  odeliver st ~src:b ~dst:a;
  odeliver st ~src:a ~dst:b

let ojoin st ~donor ~name =
  let d = Hashtbl.find st.oracle donor in
  let rep = Hashtbl.create (Hashtbl.length d) in
  Hashtbl.iter
    (fun item (c : ocopy) ->
      Hashtbl.add rep item { value = c.value; ivv = Array.copy c.ivv })
    d;
  Hashtbl.replace st.oracle name rep

(* ------------------------------------------------------------------ *)
(* Equivalence at a full-epoch checkpoint                              *)
(* ------------------------------------------------------------------ *)

(* Compare a member against its oracle replica through the roster
   projection. Only meaningful at full epoch, where the member's slot
   space equals the controller roster. *)
let ensure_matches st name =
  let g = st.g in
  if Group.member_epoch g ~name = Group.epoch g then begin
    let roster = Group.roster g in
    let dim = Array.length roster in
    let node = Group.node g ~name in
    if Node.dimension node <> dim then
      failf "member %d: dimension %d but the roster has %d sites" name
        (Node.dimension node) dim;
    let rep = Hashtbl.find st.oracle name in
    let project ivv = Array.map (fun stable -> ivv.(stable)) roster in
    Node.iter_items
      (fun (it : Item.t) ->
        let oval, oivv =
          match Hashtbl.find_opt rep it.name with
          | Some c -> (c.value, project c.ivv)
          | None -> ("", Array.make dim 0)
        in
        if not (String.equal it.value oval) then
          failf "member %d item %s: value %S, oracle has %S" name it.name it.value oval;
        if Vv.to_array it.ivv <> oivv then
          failf "member %d item %s: IVV %s, oracle projects %s" name it.name
            (Vv.to_string it.ivv)
            (Vv.to_string (Vv.of_array oivv)))
      node;
    Hashtbl.iter
      (fun iname (c : ocopy) ->
        match Node.find_item node iname with
        | Some _ -> ()
        | None ->
          if not (String.equal c.value "" && Array.for_all (( = ) 0) (project c.ivv))
          then
            failf "member %d: oracle holds %s=%S but the node has no such item" name
              iname c.value)
      rep
  end

(* ------------------------------------------------------------------ *)
(* Executing one schedule                                              *)
(* ------------------------------------------------------------------ *)

(* Names created so far: initial members plus executed joins. *)
let names_so_far st =
  st.nodes0
  + List.length
      (List.filter (function Group.Join _ -> true | _ -> false) (Group.events st.g))

let resolve st k = k mod names_so_far st

let is_participant st name =
  Group.alive st.g ~name
  &&
  match Group.status st.g ~name with
  | Group.Joining | Group.Active | Group.Draining -> true
  | Group.Departed | Group.Retiring | Group.Retired -> false

let participants st =
  Array.to_list (Group.roster st.g) |> List.filter (is_participant st)

let active_count st =
  List.length
    (List.filter
       (fun name -> Group.status st.g ~name = Group.Active)
       (Array.to_list (Group.roster st.g)))

let partitioned st a b =
  let key = (min a b, max a b) in
  List.mem key st.partitions

let expect_ok what = function
  | Ok v -> v
  | Error msg -> failf "%s unexpectedly refused: %s" what msg

let sync_mirror st a b =
  expect_ok (Printf.sprintf "sync %d %d" a b) (Group.sync st.g ~a ~b);
  osession st ~a ~b;
  ensure_matches st a;
  ensure_matches st b

let exec st = function
  | MUpdate { item; op } ->
    let owner = item mod st.cap in
    if
      owner < names_so_far st
      && Group.status st.g ~name:owner = Group.Active
      && Group.alive st.g ~name:owner
    then begin
      expect_ok
        (Printf.sprintf "update by %d" owner)
        (Group.update st.g ~name:owner ~item:(item_name item) op);
      oupdate st ~owner ~item:(item_name item) op;
      ensure_matches st owner
    end
  | MSync { a; b } ->
    let a = resolve st a and b = resolve st b in
    if a <> b && is_participant st a && is_participant st b && not (partitioned st a b)
    then sync_mirror st a b
  | MCrash k ->
    let name = resolve st k in
    if Group.alive st.g ~name then Group.crash st.g ~name
  | MRecover k ->
    let name = resolve st k in
    if not (Group.alive st.g ~name) then
      (* Refused for retirement victims and departed members — the
         refusal is the deterministic skip. *)
      ignore (Group.recover st.g ~name : (unit, string) result)
  | MPartition (a, b) ->
    let a = resolve st a and b = resolve st b in
    if a <> b && not (partitioned st a b) then
      st.partitions <- (min a b, max a b) :: st.partitions
  | MHeal (a, b) ->
    let a = resolve st a and b = resolve st b in
    st.partitions <- List.filter (( <> ) (min a b, max a b)) st.partitions
  | MJoin { donor } ->
    let donor = resolve st donor in
    if Group.alive st.g ~name:donor && Group.status st.g ~name:donor = Group.Active
    then begin
      let name = expect_ok "join" (Group.join st.g ~donor) in
      if name >= st.cap then
        failf "join produced name %d beyond the oracle capacity %d" name st.cap;
      ojoin st ~donor ~name;
      ensure_matches st name
    end
  | MLeave k ->
    let name = resolve st k in
    if
      Group.status st.g ~name = Group.Active
      && Group.alive st.g ~name
      && active_count st >= 3
    then expect_ok (Printf.sprintf "leave %d" name) (Group.leave st.g ~name)
  | MRetire k ->
    let name = resolve st k in
    let retirable =
      match Group.status st.g ~name with
      | Group.Departed -> true
      | (Group.Joining | Group.Active | Group.Draining) -> not (Group.alive st.g ~name)
      | Group.Retiring | Group.Retired -> false
    in
    (* Keep the roster at >= 3 sites so the post-retirement dimension
       stays a valid vector (>= 2 components). *)
    if retirable && Array.length (Group.roster st.g) >= 3 then
      expect_ok (Printf.sprintf "retire %d" name) (Group.retire st.g ~name)
  | MObserve -> ignore (Group.observe st.g : Group.event list)

(* Drive the group to quiescence: heal everything, recover everyone
   recoverable, then alternate full anti-entropy rings with controller
   passes until no join, drain or retirement fence is outstanding and
   every participant converged. A schedule that cannot quiesce within
   the round budget is itself a failure — fences must stall only while
   a required member is crashed or partitioned, and the drive removes
   every such obstacle. *)
let drive st =
  st.partitions <- [];
  Array.iter
    (fun name ->
      if not (Group.alive st.g ~name) then
        ignore (Group.recover st.g ~name : (unit, string) result))
    (Group.roster st.g);
  let settled () =
    Group.pending_fences st.g = []
    && Array.for_all
         (fun name ->
           match Group.status st.g ~name with
           | Group.Active | Group.Departed | Group.Retired -> true
           | Group.Joining | Group.Draining | Group.Retiring -> false)
         (Group.roster st.g)
    && Group.converged st.g
  in
  let round () =
    (match participants st with
    | [] | [ _ ] -> ()
    | ps ->
      let arr = Array.of_list ps in
      let k = Array.length arr in
      for i = 0 to k - 1 do
        let a = arr.(i) and b = arr.((i + 1) mod k) in
        if is_participant st a && is_participant st b then sync_mirror st a b
      done);
    ignore (Group.observe st.g : Group.event list)
  in
  let rounds = ref 0 in
  while (not (settled ())) && !rounds < 60 do
    incr rounds;
    round ()
  done;
  if not (settled ()) then
    failf
      "did not quiesce after %d drive rounds (pending fences: [%s]; statuses: %s)"
      !rounds
      (String.concat ", " (List.map string_of_int (Group.pending_fences st.g)))
      (String.concat ", "
         (List.map
            (fun name ->
              Printf.sprintf "%d:%s" name
                (Group.status_to_string (Group.status st.g ~name)))
            (Array.to_list (Group.roster st.g))))

let run_schedule (s : schedule) =
  try
    let joins =
      List.length (List.filter (function MJoin _ -> true | _ -> false) s.moves)
    in
    let st =
      {
        g = Group.create ~shards:s.shards ~n:s.nodes ();
        nodes0 = s.nodes;
        cap = s.nodes + joins;
        oracle = Hashtbl.create 16;
        partitions = [];
      }
    in
    for name = 0 to s.nodes - 1 do
      Hashtbl.replace st.oracle name (Hashtbl.create 8)
    done;
    List.iter (exec st) s.moves;
    drive st;
    (match Group.check st.g with
    | Ok () -> ()
    | Error msg -> failf "invariant violation: %s" msg);
    if Group.conflict_count st.g <> 0 then
      failf "membership schedule produced %d conflicts under single-writer updates"
        (Group.conflict_count st.g);
    (* No retired name may survive anywhere: not in the roster, and —
       via the dimension check inside ensure_matches — not as a vector
       component of any participant. *)
    Array.iter
      (fun name ->
        if Group.status st.g ~name = Group.Retired then
          failf "retired member %d still occupies a roster slot" name)
      (Group.roster st.g);
    List.iter (ensure_matches st) (participants st);
    Ok ()
  with Check_failed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* QCheck2 entry point                                                 *)
(* ------------------------------------------------------------------ *)

type report = { schedules : int }

let run ?(shards = 1) ~seed ~runs () =
  let last_error = ref "" in
  let prop s =
    match run_schedule s with
    | Ok () -> true
    | Error msg ->
      last_error := msg;
      false
  in
  let test =
    QCheck2.Test.make ~count:runs ~name:"membership equivalence" ~print:print_schedule
      (gen ~shards ()) prop
  in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| seed |]) test with
  | () -> Ok { schedules = runs }
  | exception QCheck2.Test.Test_fail (_, counterexamples) ->
    Error
      (Printf.sprintf "%s\nshrunk counterexample:\n%s\nreplay with seed %d"
         !last_error
         (String.concat "\n---\n" counterexamples)
         seed)
  | exception QCheck2.Test.Test_error (_, instance, exn, _) ->
    Error
      (Printf.sprintf "schedule raised %s\non instance:\n%s\nreplay with seed %d"
         (Printexc.to_string exn) instance seed)

module Node = Edb_core.Node
module Replica = Edb_core.Replica
module Shard_map = Edb_core.Shard_map
module Store = Edb_store.Store
module Item = Edb_store.Item
module Vv = Edb_vv.Version_vector
module Aux_log = Edb_log.Aux_log
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let fold_shards node f =
  let rec go s =
    if s >= Node.shards node then Ok ()
    else
      let* () = f s (Node.replica node s) in
      go (s + 1)
  in
  go 0

(* Every retained regular log record must reference a materialized
   item: records enter the log either on a local update (which
   materializes the item) or from a propagation tail whose shipped item
   was materialized by AcceptPropagation. Per shard, since each shard
   keeps its own store and log vector. *)
let check_log_items node =
  fold_shards node (fun shard (rep : Replica.t) ->
      let rec check_component k =
        if k >= Node.dimension node then Ok ()
        else
          let stale =
            List.find_opt
              (fun (r : Edb_log.Log_record.t) -> not (Store.mem rep.store r.item))
              (Log_component.to_list (Log_vector.component rep.logs k))
          in
          match stale with
          | Some r ->
            errf "shard %d log component %d references unmaterialized item %S (seq %d)"
              shard k r.item r.Edb_log.Log_record.seq
          | None -> check_component (k + 1)
      in
      check_component 0)

(* Auxiliary coherence (§4.3–4.4): every auxiliary log record belongs
   to an item that still has an auxiliary copy; per item, the recorded
   pre-update IVVs strictly increase in the dominance order (each
   deferred update was applied on top of the previous one); and the
   auxiliary copy's current IVV strictly dominates every recorded
   pre-update IVV (the copy reflects all deferred updates and possibly
   adopted out-of-bound state on top). *)
let check_aux node =
  fold_shards node (fun shard (rep : Replica.t) ->
      let aux =
        Hashtbl.fold
          (fun name (it : Item.t) acc -> (name, it.ivv) :: acc)
          rep.aux_items []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let log = rep.aux_log in
      let homeless =
        List.find_opt
          (fun (r : Aux_log.record) -> not (List.mem_assoc r.item aux))
          (Aux_log.to_list log)
      in
      match homeless with
      | Some r ->
        errf "shard %d aux log holds a record for %S but no auxiliary copy exists"
          shard r.item
      | None ->
        let check_item (item, copy_ivv) =
          let records = Aux_log.records_for log item in
          let rec ordered = function
            | (a : Aux_log.record) :: (b : Aux_log.record) :: rest ->
              if Vv.strictly_dominates b.ivv a.ivv then ordered (b :: rest)
              else
                errf
                  "shard %d aux log records for %S are not strictly increasing: %s before %s"
                  shard item (Vv.to_string a.ivv) (Vv.to_string b.ivv)
            | [ _ ] | [] -> Ok ()
          in
          let* () = ordered records in
          match
            List.find_opt
              (fun (r : Aux_log.record) -> not (Vv.strictly_dominates copy_ivv r.ivv))
              records
          with
          | Some r ->
            errf "shard %d aux copy of %S (ivv %s) does not dominate its log record %s"
              shard item (Vv.to_string copy_ivv) (Vv.to_string r.ivv)
          | None -> Ok ()
        in
        let rec check_all = function
          | [] -> Ok ()
          | entry :: rest ->
            let* () = check_item entry in
            check_all rest
        in
        check_all aux)

(* Sharding invariant 1: the summary DBVV is exactly the component-wise
   sum of the shard DBVVs — the basis for the O(n) you-are-current test
   on sharded nodes (DESIGN.md §7). *)
let check_summary node =
  let n = Node.dimension node in
  let summary = Vv.to_array (Node.dbvv node) in
  let total = Array.make n 0 in
  Array.iter
    (fun vv ->
      Array.iteri (fun l v -> total.(l) <- total.(l) + v) (Vv.to_array vv))
    (Node.shard_dbvvs node);
  if total <> summary then
    errf "summary DBVV %s is not the sum of shard DBVVs %s"
      (Vv.to_string (Vv.of_array summary))
      (Vv.to_string (Vv.of_array total))
  else Ok ()

(* Sharding invariant 2: every materialized item (regular or auxiliary)
   and every log record lives in the shard its name hashes to — the
   item→shard map is the routing function, so a misplaced item would be
   invisible to reads and to per-shard delta construction. *)
let check_shard_assignment node =
  let shards = Node.shards node in
  let misplaced what shard name =
    let home = Shard_map.shard_of ~shards name in
    if home <> shard then
      Some (Printf.sprintf "%s %S sits in shard %d but hashes to shard %d" what name shard home)
    else None
  in
  fold_shards node (fun shard (rep : Replica.t) ->
      let bad = ref None in
      let note = function Some _ as m -> if !bad = None then bad := m | None -> () in
      Store.iter
        (fun (it : Item.t) -> note (misplaced "item" shard it.name))
        rep.store;
      Hashtbl.iter
        (fun name (_ : Item.t) -> note (misplaced "aux item" shard name))
        rep.aux_items;
      for k = 0 to Node.dimension node - 1 do
        List.iter
          (fun (r : Edb_log.Log_record.t) ->
            note (misplaced "log record for" shard r.item))
          (Log_component.to_list (Log_vector.component rep.logs k))
      done;
      match !bad with Some msg -> Error msg | None -> Ok ())

let check_node ?log_bound node =
  (* Node.check_invariants covers DBVV/IVV knowledge consistency
     (V_i[l] = Σ_x v_i(x)[l], §4.1), log ordering/deduplication with
     pointer-map integrity (§4.2, Fig. 1), the seq <= DBVV bound in
     conflict-free states, and clean IsSelected flags (§6), all per
     shard. *)
  let checked =
    let* () = Node.check_invariants ?log_bound node in
    let* () = check_log_items node in
    let* () = check_aux node in
    let* () = check_summary node in
    check_shard_assignment node
  in
  (* Every failure names the node it came from; the per-check messages
     name the shard. A counterexample from a many-node schedule is
     unactionable without both. *)
  Result.map_error
    (fun msg -> Printf.sprintf "node %d: %s" (Node.id node) msg)
    checked

(* ------------------------------------------------------------------ *)
(* Cross-session monitoring                                            *)
(* ------------------------------------------------------------------ *)

type monitor = { n : int; last_dbvv : int array option array }

let monitor ~n = { n; last_dbvv = Array.make n None }

let observe ?log_bound m node =
  let id = Node.id node in
  if id < 0 || id >= m.n then errf "monitor: node id %d out of range" id
  else
    let* () = check_node ?log_bound node in
    let current = Vv.to_array (Node.dbvv node) in
    let* () =
      match m.last_dbvv.(id) with
      | None -> Ok ()
      | Some previous ->
        let rec check l =
          if l >= Array.length previous then Ok ()
          else if current.(l) < previous.(l) then
            errf "node %d DBVV[%d] went backwards: %d -> %d" id l previous.(l)
              current.(l)
          else check (l + 1)
        in
        check 0
    in
    m.last_dbvv.(id) <- Some current;
    Ok ()

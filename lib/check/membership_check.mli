(** Randomized exploration of dynamic-membership schedules.

    Generates interleavings of user updates and anti-entropy sessions
    with joins, graceful leaves, retirements, crashes, recoveries and
    partitions, runs each against {!Edb_membership.Group} with a
    stable-name oracle in lockstep, and demands at every full-epoch
    checkpoint and at quiescence:

    - every member's store and IVVs equal the oracle's {e projected
      through the roster} (real [ivv.(j)] against oracle
      [ivv.(roster.(j))]) — the oracle never garbage-collects, so this
      projection is exactly the claim that retirement GC loses nothing;
    - no vector retains a retired component (dimension equals roster
      size, no retired name occupies a roster slot);
    - structural invariants ({!Edb_membership.Group.check}) hold and the
      run is conflict-free (updates are single-writer by construction:
      one stable owner per item for the whole schedule);
    - the group quiesces — stalled fences must be explained by a
      crashed or partitioned required member, and the drive phase
      removes every such obstacle before demanding completion.

    Failing schedules are shrunk by QCheck2 and reported with the
    replay seed, deterministically. *)

type move =
  | MUpdate of { item : int; op : Edb_store.Operation.t }
      (** Owner derived from [item]: rank mod the schedule's name
          capacity. Executed only while the owner is a live active
          member, so runs stay single-writer across membership churn. *)
  | MSync of { a : int; b : int }
      (** Indices resolved mod the names created so far. *)
  | MCrash of int
  | MRecover of int
  | MPartition of int * int
  | MHeal of int * int
  | MJoin of { donor : int }
  | MLeave of int
  | MRetire of int
  | MObserve  (** One controller pass ({!Edb_membership.Group.observe}). *)

type schedule = { nodes : int; items : int; shards : int; moves : move list }

val print_schedule : schedule -> string

val gen : ?shards:int -> unit -> schedule QCheck2.Gen.t

val run_schedule : schedule -> (unit, string) result
(** Execute one schedule to quiescence under all checks. [Error msg]
    pinpoints the first violated check. *)

type report = { schedules : int }

val run : ?shards:int -> seed:int -> runs:int -> unit -> (report, string) result
(** [run ~seed ~runs ()] explores [runs] generated membership schedules
    from [seed]. On failure the error carries the first failed check,
    the shrunk counterexample schedule, and the seed to replay it. *)

module Node = Edb_core.Node
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

type copy = { mutable value : string; mutable ivv : int array }

type replica = {
  items : (string, copy) Hashtbl.t;
  conflicted : (string, unit) Hashtbl.t;
}

type t = { n : int; replicas : replica array }

let create ~n =
  if n <= 0 then invalid_arg "Oracle.create: n must be positive";
  {
    n;
    replicas =
      Array.init n (fun _ ->
          { items = Hashtbl.create 8; conflicted = Hashtbl.create 4 });
  }

let n t = t.n

let find_or_create t replica name =
  match Hashtbl.find_opt replica.items name with
  | Some c -> c
  | None ->
    let c = { value = ""; ivv = Array.make t.n 0 } in
    Hashtbl.add replica.items name c;
    c

let update t ~node ~item ~op =
  let copy = find_or_create t t.replicas.(node) item in
  copy.value <- Operation.apply copy.value op;
  copy.ivv.(node) <- copy.ivv.(node) + 1

(* Component-wise classification, the naive per-item protocol's only
   tool (§3). *)
type order = Equal | Left_newer | Right_newer | Concurrent

let compare_ivv a b =
  let left = ref false and right = ref false in
  Array.iteri
    (fun l av -> if av > b.(l) then left := true else if av < b.(l) then right := true)
    a;
  match (!left, !right) with
  | false, false -> Equal
  | true, false -> Left_newer
  | false, true -> Right_newer
  | true, true -> Concurrent

let sorted_names items =
  Hashtbl.fold (fun name _ acc -> name :: acc) items [] |> List.sort String.compare

(* A deep, immutable copy of a replica's items, in sorted name order.
   Splitting [session] into capture-at-source and deliver-at-recipient
   lets the oracle run in lockstep with message-granular transport:
   the real protocol computes its reply from the source's state at
   reply-build time and applies it at the (possibly much later) accept,
   so the oracle must compare against the same frozen state, not the
   source's live one. *)
type snapshot = (string * string * int array) list

let capture t ~src =
  let source = t.replicas.(src) in
  List.map
    (fun name ->
      let c = Hashtbl.find source.items name in
      (name, c.value, Array.copy c.ivv))
    (sorted_names source.items)

let deliver t ~dst snapshot =
  let recipient = t.replicas.(dst) in
  List.iter
    (fun (name, value, ivv) ->
      let ours = find_or_create t recipient name in
      match compare_ivv ivv ours.ivv with
      | Left_newer ->
        ours.value <- value;
        ours.ivv <- Array.copy ivv
      | Equal | Right_newer -> ()
      | Concurrent -> Hashtbl.replace recipient.conflicted name ())
    snapshot

let session t ~src ~dst = deliver t ~dst (capture t ~src)

let read t ~node ~item =
  Option.map (fun c -> c.value) (Hashtbl.find_opt t.replicas.(node).items item)

let ivv t ~node ~item =
  Option.map (fun c -> Array.copy c.ivv) (Hashtbl.find_opt t.replicas.(node).items item)

let conflicted t ~node ~item = Hashtbl.mem t.replicas.(node).conflicted item

let conflict_items t ~node = sorted_names t.replicas.(node).conflicted

(* ------------------------------------------------------------------ *)
(* Equivalence with the real protocol                                  *)
(* ------------------------------------------------------------------ *)

let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let zero ivv = Array.for_all (( = ) 0) ivv

let matches_node ?(exact = true) t ~node:id ~real ~real_conflicted =
  let replica = t.replicas.(id) in
  let skip name = Hashtbl.mem replica.conflicted name || real_conflicted name in
  let check_oracle_item name =
    if skip name then Ok ()
    else
      let copy = Hashtbl.find replica.items name in
      let real_ivv =
        match Node.item_vv real name with
        | Some vv -> Vv.to_array vv
        | None -> Array.make t.n 0
      in
      if exact && real_ivv <> copy.ivv then
        errf "node %d item %S: oracle ivv %s but protocol has %s" id name
          (Vv.to_string (Vv.of_array copy.ivv))
          (Vv.to_string (Vv.of_array real_ivv))
      else if
        (* Even lagging, the protocol may never know more than the
           oracle: each component at most the oracle's. *)
        Array.exists (fun l -> real_ivv.(l) > copy.ivv.(l)) (Array.init t.n Fun.id)
      then
        errf "node %d item %S: protocol ivv %s ahead of the oracle's %s" id name
          (Vv.to_string (Vv.of_array real_ivv))
          (Vv.to_string (Vv.of_array copy.ivv))
      else if real_ivv = copy.ivv then
        let real_value = Option.value ~default:"" (Node.read_regular real name) in
        if not (String.equal real_value copy.value) then
          errf "node %d item %S: oracle value %S but protocol has %S" id name
            copy.value real_value
        else Ok ()
      else Ok ()
  in
  let rec check_all = function
    | [] -> Ok ()
    | name :: rest -> (
      match check_oracle_item name with Error _ as e -> e | Ok () -> check_all rest)
  in
  match check_all (sorted_names replica.items) with
  | Error _ as e -> e
  | Ok () -> (
    (* Every protocol-side replica with updates must exist in the
       oracle — the protocol may not invent state. *)
    let invented =
      Node.fold_items
        (fun acc (item : Item.t) ->
          match acc with
          | Some _ -> acc
          | None ->
            if
              (not (Hashtbl.mem replica.items item.name))
              && (not (zero (Vv.to_array item.ivv)))
              && not (skip item.name)
            then Some item.name
            else None)
        None real
    in
    match invented with
    | Some name -> errf "node %d holds item %S the oracle never saw" id name
    | None -> Ok ())

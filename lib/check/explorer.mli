(** Randomized fault-schedule exploration.

    Generates whole simulation schedules — user updates, propagation
    sessions constrained to a topology, crashes, recoveries, partitions
    and heals, over a lossy/duplicating/reordering {!Edb_sim.Network} —
    runs each against the real protocol with the naive {!Oracle} in
    lockstep, and checks after every executed update and session, and
    again at quiescence:

    - all structural invariants ({!Invariant.observe}, including DBVV
      monotonicity across the whole run);
    - state equivalence with the oracle ({!Oracle.matches_node});
    - conflict exactness on the lockstep prefix: while the system is
      conflict-free the two implementations run in exact lockstep, so
      per-node conflict sets must match — which pins down the {e first}
      conflict precisely, the paper's claim that DBVV-based detection
      is exact, unlike Lotus Notes' heuristic (§3, §7). After the first
      conflict the protocols legitimately diverge (dropped log records
      deflate DBVVs, a lagging node can update an item on a stale base
      and create concurrency the oracle never sees), so only
      lag-tolerant state bounds and agreement on {e whether} any
      conflict occurred are checked from then on;
    - convergence whenever the run produced no conflicts.

    Failing schedules are shrunk by QCheck2's integrated shrinking and
    reported together with the replay seed. Everything is deterministic:
    the same [seed] explores the same schedules and shrinks to the same
    counterexample. *)

type topology = Clique | Ring | Star

type fault =
  | Crash of int
  | Recover of int
  | Partition of int * int
  | Heal of int * int

type step =
  | Update of { node : int; item : int; op : Edb_store.Operation.t }
  | Sync of { src : int; dst : int }
      (** [dst] pulls from [src]; generated pairs respect the
          topology. *)
  | Fault of fault

type schedule = {
  nodes : int;
  items : int;  (** Size of the item-name universe. *)
  topology : topology;
  loss : float;
  duplication : float;
  reorder : float;
  seed : int;  (** Engine/network seed — part of the generated value. *)
  steps : step list;
  corrupt_at : int option;
      (** Mutation smoke test: when [Some k], node 0's state is
          corrupted behind the protocol's back just after step [k], and
          the explorer is expected to catch it. *)
  granular : bool;
      (** Execute sessions over the message-granular transport
          ({!Edb_sim.Engine.Message_grain}): loss, duplication and
          reordering are drawn per request/reply message, crash and
          partition faults land on the half-beat {e between} a
          session's messages, and the timeout/retry/backoff layer is
          active. The lockstep oracle follows by freezing the source
          state at reply-build time and applying it at accept time. *)
  shards : int;
      (** Shard count of every node in the run (default 1, the classic
          unsharded protocol). Sharded runs exercise the per-shard
          request/reply path and the summary-DBVV dominance test; the
          oracle is shard-oblivious, so equivalence holding at
          [shards > 1] is evidence the sharded protocol computes the
          same database. *)
}

val topology_name : topology -> string

val topology_of_string : string -> topology option

val print_schedule : schedule -> string

val gen :
  ?topology:topology ->
  ?mutate:bool ->
  ?granular:bool ->
  ?shards:int ->
  unit ->
  schedule QCheck2.Gen.t
(** Schedule generator. [topology] pins the topology (default: drawn
    from all three); [mutate] (default false) makes every schedule carry
    a [corrupt_at]; [granular] (default false) makes every schedule run
    over the message-granular transport; [shards] (default 1) pins every
    node's shard count. *)

val run_schedule :
  ?mode:Edb_core.Node.propagation_mode -> schedule -> (unit, string) result
(** Execute one schedule to quiescence under all checks. [Error msg]
    pinpoints the first violated check. *)

type report = { schedules : int }

val run :
  ?mode:Edb_core.Node.propagation_mode ->
  ?topology:topology ->
  ?mutate:bool ->
  ?granular:bool ->
  ?shards:int ->
  seed:int ->
  runs:int ->
  unit ->
  (report, string) result
(** [run ~seed ~runs ()] explores [runs] generated schedules from the
    given [seed]. On failure the error carries the first failed check,
    the shrunk counterexample schedule, and the seed to replay it.
    [granular] selects message-granular schedules, executed under
    {!Edb_sim.Engine.Message_grain} with
    {!Edb_sim.Engine.default_retry_policy}. *)

val run_cache_equivalence :
  ?mode:Edb_core.Node.propagation_mode -> schedule -> (unit, string) result
(** Execute one schedule twice — once on a cache-enabled cluster
    ({!Edb_core.Cluster.create}[ ~cache:true]), once cache-disabled —
    under identical engine/network randomness, and demand the runs are
    indistinguishable: equal quiescence, equal per-node durable state
    ({!Edb_core.Node.export_state}, canonically ordered), equal
    per-node conflict sets, and no message regression. This is the
    exactness claim behind cached session skips: a skip gated on the
    cluster epoch is provably the session Fig. 2 would have answered
    "you are current". *)

val run_equivalence :
  ?mode:Edb_core.Node.propagation_mode ->
  ?topology:topology ->
  ?shards:int ->
  seed:int ->
  runs:int ->
  unit ->
  (report, string) result
(** {!run_cache_equivalence} over [runs] generated schedules, with
    QCheck2 shrinking on failure. *)

val run_push_equivalence_schedule :
  ?mode:Edb_core.Node.propagation_mode -> schedule -> (unit, string) result
(** Execute one schedule twice under message-granular transport — once
    with the best-effort push channel on
    ({!Edb_push.Channel.default_config}), once pull-only — under
    identical engine/network randomness (push traffic draws from a
    dedicated PRNG stream), and demand the converged states are
    bit-identical: equal quiescence, equal per-node
    {!Edb_core.Node.export_state}, equal conflict sets, and full
    convergence of the push arm. Updates are rewritten single-writer
    (owner = item rank mod nodes) before execution, so the comparison
    isolates the replication claim from conflict-resolution ordering.
    This is DESIGN.md §10's safety argument, machine-checked across the
    full fault matrix: the push channel can only ever fast-forward a
    node along states anti-entropy would have produced anyway. *)

val run_push_equivalence :
  ?mode:Edb_core.Node.propagation_mode ->
  ?topology:topology ->
  ?shards:int ->
  seed:int ->
  runs:int ->
  unit ->
  (report, string) result
(** {!run_push_equivalence_schedule} over [runs] generated schedules,
    with QCheck2 shrinking on failure. *)

val run_membership_equivalence :
  ?shards:int -> seed:int -> runs:int -> unit -> (report, string) result
(** {!Membership_check.run}: randomized membership schedules — joins,
    graceful leaves, retirements, crashes and partitions interleaved
    with updates and anti-entropy — against the stable-name oracle,
    with QCheck2 shrinking on failure. Checks that every run converges
    oracle-identical and that no vector retains a retired component. *)

module Node = Edb_core.Node
module Peer_cache = Edb_core.Peer_cache
module Snapshot = Edb_persist.Snapshot
module Vv = Edb_vv.Version_vector
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters

(* Dynamic membership over the fixed-dimension epidemic protocol.

   The closed-world assumption the paper bakes into every vector is
   lifted by one device: a controller-ordered log of membership events.
   Every member applies a prefix of the same log; the prefix length is
   the member's membership epoch, and the vector dimension, the
   id-to-site mapping ("roster") and the retirement fences a member
   carries are all pure functions of its applied prefix. Two members
   whose epochs agree therefore agree on dimensions and slots, so the
   unmodified fixed-dimension protocol runs between them; a session
   between members at different epochs first replays the missing events
   on the laggard (metadata only — the data session stays the paper's).

   Joins and retirements reshape vectors:

   - [Join]: every member appends a zero component for the new site
     ([Node.extend_dimension]); the joiner itself is bootstrapped from a
     snapshot-v3 transfer of its donor and serves no reads until its
     summary DBVV dominates the donor's transfer watermark.
   - [Retire_done]: every member drops the victim's component
     ([Node.retire_component]). This is only appended once the victim's
     retirement fence completes: the fence target is the per-shard
     pointwise maximum of the victim's DBVV component over live members
     (propagated epidemically, merged max-wise), and completion requires
     every required member to have acknowledged the final target —
     proof that all live replicas hold identical victim components, so
     the uniform drop preserves every vector comparison (DESIGN.md §11).
     Crashes and partitions stall the fence: a required member that
     cannot ack simply keeps completion unreachable. *)

type status = Joining | Active | Draining | Departed | Retiring | Retired

let status_to_string = function
  | Joining -> "joining"
  | Active -> "active"
  | Draining -> "draining"
  | Departed -> "departed"
  | Retiring -> "retiring"
  | Retired -> "retired"

type event =
  | Join of { name : int; donor : int }
  | Activate of { name : int }
  | Drain of { name : int }
  | Depart of { name : int }
  | Retire_start of { name : int }
  | Retire_done of { name : int }

let event_to_string = function
  | Join { name; donor } -> Printf.sprintf "join %d (donor %d)" name donor
  | Activate { name } -> Printf.sprintf "activate %d" name
  | Drain { name } -> Printf.sprintf "drain %d" name
  | Depart { name } -> Printf.sprintf "depart %d" name
  | Retire_start { name } -> Printf.sprintf "retire-start %d" name
  | Retire_done { name } -> Printf.sprintf "retire-done %d" name

(* Per-victim fence state as one member knows it. [target.(s)] is the
   highest victim component any live member's shard-[s] DBVV is known
   to hold; [acks] maps member name to the target it acknowledged
   (valid only while equal to the current target — a target that grows
   invalidates every earlier ack). *)
type fence = { victim : int; mutable target : int array; acks : (int, int array) Hashtbl.t }

type member = {
  name : int;
  mutable node : Node.t;
  mutable epoch : int;  (* number of controller events applied *)
  mutable alive : bool;
  (* The member's local roster: stable names in slot order, derived
     from its applied prefix. [node]'s id is this member's index. *)
  mutable roster : int array;
  fences : (int, fence) Hashtbl.t;
  (* [Some w] while joining: the donor's summary DBVV at transfer.
     Cleared by the member's own [Activate]. *)
  mutable watermark : int array option;
}

type t = {
  mutable events : event list;  (* oldest first *)
  mutable n_events : int;
  members : (int, member) Hashtbl.t;  (* by stable name, incl. departed/retired *)
  mutable next_name : int;
  mutable roster : int array;  (* controller full-prefix roster *)
  statuses : (int, status) Hashtbl.t;  (* controller full-prefix view *)
  shards : int;
  policy : Node.resolution_policy option;
  mode : Node.propagation_mode option;
}

let slot_of roster name =
  let rec go i =
    if i >= Array.length roster then None
    else if roster.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let slot_exn roster name =
  match slot_of roster name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Group: name %d not in roster" name)

let remove_slot roster s =
  Array.init
    (Array.length roster - 1)
    (fun i -> if i < s then roster.(i) else roster.(i + 1))

(* ------------------------------------------------------------------ *)
(* Fence judgement                                                     *)
(* ------------------------------------------------------------------ *)

(* Fold the member's own per-shard victim components into the fence
   target, then (re-)acknowledge iff the member's DBVV meets the merged
   target on every shard. Called whenever the member's knowledge could
   have changed: fence creation, after every data session, and on
   recovery (the durable path re-judges from recovered DBVVs instead of
   trusting any persisted ack — same discipline as AcceptPropagation's
   replay). A target that grows invalidates every recorded ack. *)
let rejudge_fence (m : member) (f : fence) =
  match slot_of m.roster f.victim with
  | None -> ()
  | Some slot ->
    let shards = Node.shards m.node in
    let grew = ref false in
    for s = 0 to shards - 1 do
      let mine = Vv.get (Node.shard_dbvv_view m.node s) slot in
      if mine > f.target.(s) then begin
        f.target.(s) <- mine;
        grew := true
      end
    done;
    if !grew then
      Hashtbl.filter_map_inplace
        (fun _ acked -> if acked = f.target then Some acked else None)
        f.acks;
    let met = ref true in
    for s = 0 to shards - 1 do
      if Vv.get (Node.shard_dbvv_view m.node s) slot < f.target.(s) then met := false
    done;
    if !met then Hashtbl.replace f.acks m.name (Array.copy f.target)
    else Hashtbl.remove f.acks m.name

let rejudge_all_fences (m : member) = Hashtbl.iter (fun _ f -> rejudge_fence m f) m.fences

(* ------------------------------------------------------------------ *)
(* Event application                                                   *)
(* ------------------------------------------------------------------ *)

(* Replay one controller event on one member. Pure function of the
   event and the member's current derived state, so any two members
   that applied the same prefix agree on roster, slots and dimension. *)
let apply_event (m : member) = function
  | Join { name; donor = _ } ->
    if name <> m.name then m.node <- Node.extend_dimension m.node;
    (* A pending join watermark undergoes the same surgery as every
       other vector, or later dominance tests would be ill-dimensioned. *)
    (match m.watermark with
    | Some w -> m.watermark <- Some (Array.append w [| 0 |])
    | None -> ());
    m.roster <- Array.append m.roster [| name |]
  | Activate { name } -> if name = m.name then m.watermark <- None
  | Drain _ -> ()
  | Depart { name } ->
    (* Forget everything cached about the departed peer: its slot will
       never answer a session again, and proven lower bounds must not
       outlive the peer they were proven against. *)
    (match slot_of m.roster name with
    | Some slot when name <> m.name ->
      Peer_cache.forget_peer (Node.peer_cache m.node) ~peer:slot
    | _ -> ())
  | Retire_start { name } ->
    if name <> m.name && not (Hashtbl.mem m.fences name) then begin
      let shards = Node.shards m.node in
      let f = { victim = name; target = Array.make shards 0; acks = Hashtbl.create 4 } in
      Hashtbl.add m.fences name f;
      rejudge_fence m f
    end
  | Retire_done { name } ->
    Hashtbl.remove m.fences name;
    let slot = slot_exn m.roster name in
    if name <> m.name then begin
      m.node <- Node.retire_component m.node ~slot;
      (Node.counters m.node).Counters.retirements_completed <-
        (Node.counters m.node).Counters.retirements_completed + 1;
      (match m.watermark with
      | Some w ->
        m.watermark <-
          Some
            (Array.init
               (Array.length w - 1)
               (fun i -> if i < slot then w.(i) else w.(i + 1)))
      | None -> ())
    end;
    m.roster <- remove_slot m.roster slot

let catch_up t (m : member) =
  if m.epoch < t.n_events then begin
    let rec drop k = function
      | rest when k = 0 -> rest
      | _ :: rest -> drop (k - 1) rest
      | [] -> []
    in
    let missing = drop m.epoch t.events in
    List.iter
      (fun e ->
        apply_event m e;
        m.epoch <- m.epoch + 1)
      missing
  end

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let append t e =
  t.events <- t.events @ [ e ];
  t.n_events <- t.n_events + 1;
  (match e with
  | Join { name; _ } ->
    t.roster <- Array.append t.roster [| name |];
    Hashtbl.replace t.statuses name Joining
  | Activate { name } -> Hashtbl.replace t.statuses name Active
  | Drain { name } -> Hashtbl.replace t.statuses name Draining
  | Depart { name } -> Hashtbl.replace t.statuses name Departed
  | Retire_start { name } -> Hashtbl.replace t.statuses name Retiring
  | Retire_done { name } ->
    t.roster <- remove_slot t.roster (slot_exn t.roster name);
    Hashtbl.replace t.statuses name Retired);
  e

let status t ~name =
  match Hashtbl.find_opt t.statuses name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Group.status: unknown member %d" name)

let member t name =
  match Hashtbl.find_opt t.members name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Group: unknown member %d" name)

(* A participant takes part in sessions, fences and convergence: it has
   not departed or been retired, and is not crashed. Draining and
   joining members still participate — they must, to finish. *)
let is_participant t (m : member) =
  m.alive
  && match status t ~name:m.name with
     | Joining | Active | Draining -> true
     | Departed | Retiring | Retired -> false

let participant_names t =
  Array.to_list t.roster
  |> List.filter (fun name -> is_participant t (member t name))

let sorted_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.members [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?policy ?mode ?(shards = 1) ~n () =
  if n < 2 then invalid_arg "Group.create: need at least two members";
  let t =
    {
      events = [];
      n_events = 0;
      members = Hashtbl.create 16;
      next_name = n;
      roster = Array.init n Fun.id;
      statuses = Hashtbl.create 16;
      shards;
      policy;
      mode;
    }
  in
  for name = 0 to n - 1 do
    let node = Node.create ?policy ?mode ~shards ~id:name ~n () in
    Hashtbl.replace t.statuses name Active;
    Hashtbl.replace t.members name
      {
        name;
        node;
        epoch = 0;
        alive = true;
        roster = Array.init n Fun.id;
        fences = Hashtbl.create 4;
        watermark = None;
      }
  done;
  t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let epoch t = t.n_events

let shards t = t.shards

let events t = t.events

let roster t = Array.copy t.roster

let member_epoch t ~name = (member t name).epoch

let node t ~name = (member t name).node

let alive t ~name = (member t name).alive

let watermark t ~name = Option.map Array.copy (member t name).watermark

let live_count t = List.length (participant_names t)

let mean_vector_components t =
  match participant_names t with
  | [] -> 0.0
  | names ->
    let total =
      List.fold_left
        (fun acc name -> acc + Node.dimension (member t name).node)
        0 names
    in
    float_of_int total /. float_of_int (List.length names)

let counters_total t =
  let acc = Counters.create () in
  Hashtbl.iter (fun _ m -> Counters.add_into acc (Node.counters m.node)) t.members;
  acc

let conflict_count t =
  Hashtbl.fold (fun _ m acc -> acc + List.length (Node.conflicts m.node)) t.members 0

(* ------------------------------------------------------------------ *)
(* Crash / recover                                                     *)
(* ------------------------------------------------------------------ *)

let crash t ~name =
  let m = member t name in
  m.alive <- false

let recover t ~name =
  let m = member t name in
  match status t ~name with
  | Retiring | Retired ->
    Error (Printf.sprintf "member %d is being retired and can never be recovered" name)
  | Departed -> Error (Printf.sprintf "member %d departed" name)
  | Joining | Active | Draining ->
    m.alive <- true;
    (* Recovery re-judges every fence from the recovered DBVVs rather
       than trusting anything recorded before the crash — the same
       discipline the durable journal applies to propagation replay. *)
    rejudge_all_fences m;
    Ok ()

(* ------------------------------------------------------------------ *)
(* User operations                                                     *)
(* ------------------------------------------------------------------ *)

let update t ~name ~item op =
  let m = member t name in
  match status t ~name with
  | Active when m.alive ->
    Node.update m.node item op;
    Ok ()
  | Active -> Error (Printf.sprintf "member %d is crashed" name)
  | s ->
    Error
      (Printf.sprintf "member %d does not accept user updates (%s)" name
         (status_to_string s))

let read t ~name ~item =
  let m = member t name in
  match status t ~name with
  | Joining ->
    Error (Printf.sprintf "member %d is still joining and serves no reads" name)
  | (Active | Draining) when m.alive -> Ok (Node.read m.node item)
  | (Active | Draining) -> Error (Printf.sprintf "member %d is crashed" name)
  | s -> Error (Printf.sprintf "member %d serves no reads (%s)" name (status_to_string s))

(* ------------------------------------------------------------------ *)
(* Join / leave / retire requests                                      *)
(* ------------------------------------------------------------------ *)

let join t ~donor =
  match Hashtbl.find_opt t.members donor with
  | None -> Error (Printf.sprintf "unknown donor %d" donor)
  | Some d ->
    if not (d.alive && status t ~name:donor = Active) then
      Error (Printf.sprintf "donor %d is not a live active member" donor)
    else begin
      let name = t.next_name in
      t.next_name <- name + 1;
      (* The donor first replays any controller events it is missing —
         metadata only — then extends itself for the newcomer, so the
         snapshot it donates is already in the post-join geometry. *)
      catch_up t d;
      let (_ : event) = append t (Join { name; donor }) in
      catch_up t d;
      (* Snapshot-v3 transfer: the wire-format blob round-trips through
         the real codec, then the joiner takes the vacated last slot. *)
      let blob = Snapshot.encode d.node in
      match Snapshot.decode ?policy:t.policy ?mode:t.mode blob with
      | Error msg -> Error (Printf.sprintf "snapshot transfer failed: %s" msg)
      | Ok decoded ->
        let state = Node.export_state decoded in
        let slot = Array.length d.roster - 1 in
        let node = Node.import_state ?policy:t.policy ?mode:t.mode { state with Node.State.id = slot } in
        let joiner =
          {
            name;
            node;
            epoch = t.n_events;
            alive = true;
            roster = Array.copy d.roster;
            fences = Hashtbl.create 4;
            watermark = Some (Vv.to_array (Node.dbvv_view d.node));
          }
        in
        (* The joiner inherits the donor's fence knowledge: it is a
           required acker for any fence already standing, and its
           transferred DBVV dominates everything the donor had acked. *)
        Hashtbl.iter
          (fun victim (f : fence) ->
            let g =
              { victim; target = Array.copy f.target; acks = Hashtbl.copy f.acks }
            in
            Hashtbl.replace joiner.fences victim g;
            rejudge_fence joiner g)
          d.fences;
        Hashtbl.replace t.members name joiner;
        Ok name
    end

let leave t ~name =
  match Hashtbl.find_opt t.members name with
  | None -> Error (Printf.sprintf "unknown member %d" name)
  | Some m ->
    if status t ~name <> Active then
      Error
        (Printf.sprintf "member %d cannot drain from state %s" name
           (status_to_string (status t ~name)))
    else if not m.alive then Error (Printf.sprintf "member %d is crashed" name)
    else begin
      let (_ : event) = append t (Drain { name }) in
      Ok ()
    end

let retire t ~name =
  match Hashtbl.find_opt t.members name with
  | None -> Error (Printf.sprintf "unknown member %d" name)
  | Some m -> (
    match status t ~name with
    | Departed ->
      let (_ : event) = append t (Retire_start { name }) in
      Ok ()
    | Joining | Active | Draining when not m.alive ->
      (* A dead member that will never come back: retirement is the
         only way to reclaim its vector component. From this point on
         recovery is refused. *)
      let (_ : event) = append t (Retire_start { name }) in
      Ok ()
    | s ->
      Error
        (Printf.sprintf
           "member %d is %s — only departed or permanently crashed members can \
            be retired"
           name (status_to_string s)))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* Record what a completed session proved about the other end, exactly
   as [Cluster.pull] does for the fixed-membership cluster. Entries are
   keyed by slot; leave and retirement drop them again (apply_event /
   the cold post-reshape cache). *)
let note_session_knowledge ~owner ~peer_slot peer_node =
  let cache = Node.peer_cache owner in
  Peer_cache.note_proven cache ~peer:peer_slot (Node.dbvv_view peer_node);
  let shards = Node.shards peer_node in
  if shards > 1 then
    for s = 0 to shards - 1 do
      Peer_cache.note_proven_shard cache ~peer:peer_slot ~shard:s
        (Node.shard_dbvv_view peer_node s)
    done

let merge_fences (a : member) (b : member) =
  Hashtbl.iter
    (fun victim (fa : fence) ->
      match Hashtbl.find_opt b.fences victim with
      | None -> ()
      | Some fb ->
        let shards = Array.length fa.target in
        let merged =
          Array.init shards (fun s -> max fa.target.(s) fb.target.(s))
        in
        let union = Hashtbl.create 8 in
        let collect (f : fence) =
          Hashtbl.iter
            (fun who acked -> if acked = merged then Hashtbl.replace union who acked)
            f.acks
        in
        collect fa;
        collect fb;
        fa.target <- Array.copy merged;
        fb.target <- Array.copy merged;
        Hashtbl.reset fa.acks;
        Hashtbl.reset fb.acks;
        Hashtbl.iter
          (fun who acked ->
            Hashtbl.replace fa.acks who (Array.copy acked);
            Hashtbl.replace fb.acks who (Array.copy acked))
          union)
    a.fences

let sync t ~a ~b =
  if a = b then Error "a member cannot sync with itself"
  else
    let ma = member t a and mb = member t b in
    if not (is_participant t ma) then
      Error (Printf.sprintf "member %d cannot take part in a session" a)
    else if not (is_participant t mb) then
      Error (Printf.sprintf "member %d cannot take part in a session" b)
    else begin
      (* Membership reconcile first: both ends replay any controller
         events they are missing, so dimensions and slots agree and the
         unmodified fixed-dimension session below is well-formed. *)
      catch_up t ma;
      catch_up t mb;
      Node.sync_pair ma.node mb.node;
      note_session_knowledge ~owner:ma.node ~peer_slot:(Node.id mb.node) mb.node;
      note_session_knowledge ~owner:mb.node ~peer_slot:(Node.id ma.node) ma.node;
      (* Fence gossip rides on the session: targets merge max-wise,
         acks survive only against the merged target, and both ends
         re-judge from their post-session DBVVs. *)
      merge_fences ma mb;
      rejudge_all_fences ma;
      rejudge_all_fences mb;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Controller observation                                              *)
(* ------------------------------------------------------------------ *)

(* Names whose acks a fence needs: everyone in the controller roster
   except the victim itself, departed members, and the victims of other
   standing retirements (dead by precondition — they will never ack,
   and their own components are reclaimed by their own fences). *)
let required_ackers t ~victim =
  Array.to_list t.roster
  |> List.filter (fun name ->
         name <> victim
         &&
         match status t ~name with
         | Departed | Retiring | Retired -> false
         | Joining | Active | Draining -> true)

let fence_complete t (f : fence) =
  List.for_all
    (fun name ->
      match Hashtbl.find_opt f.acks name with
      | Some acked -> acked = f.target
      | None -> false)
    (required_ackers t ~victim:f.victim)

(* One controller pass: replay missing events on every live member,
   then append whatever events the observed states now justify —
   activations (joiner caught up to its watermark), departures (drained
   member fully subsumed by a live peer), and retirement completions
   (some member's local fence view shows every required ack against the
   final target). Deterministic: members are scanned in ascending name
   order and each condition is a pure function of observed state. *)
let observe t =
  let appended = ref [] in
  let emit e = appended := append t e :: !appended in
  List.iter
    (fun name ->
      let m = member t name in
      if is_participant t m then catch_up t m)
    (sorted_names t);
  (* Activations. *)
  List.iter
    (fun name ->
      let m = member t name in
      if is_participant t m && status t ~name = Joining then
        match m.watermark with
        | None -> ()
        | Some w ->
          if Vv.dominates_or_equal (Node.dbvv_view m.node) (Vv.of_array w) then begin
            emit (Activate { name });
            catch_up t m;
            (Node.counters m.node).Counters.joins_completed <-
              (Node.counters m.node).Counters.joins_completed + 1
          end)
    (sorted_names t);
  (* Departures. *)
  List.iter
    (fun name ->
      let m = member t name in
      if is_participant t m && status t ~name = Draining && m.epoch = t.n_events
      then begin
        let dominated_by_peer =
          List.exists
            (fun peer ->
              peer <> name
              &&
              let p = member t peer in
              p.epoch = m.epoch
              && Vv.dominates_or_equal (Node.dbvv_view p.node)
                   (Node.dbvv_view m.node))
            (participant_names t)
        in
        if dominated_by_peer && Node.aux_count m.node = 0 then emit (Depart { name })
      end)
    (sorted_names t);
  (* Retirement completions, judged from each live member's local fence
     view (sound: an ack only exists against the final target if the
     acker's DBVV met it — see DESIGN.md §11). *)
  List.iter
    (fun name ->
      let m = member t name in
      if is_participant t m then
        Hashtbl.iter
          (fun victim (f : fence) ->
            if status t ~name:victim = Retiring && fence_complete t f then
              emit (Retire_done { name = victim }))
          m.fences)
    (sorted_names t);
  List.rev !appended

(* ------------------------------------------------------------------ *)
(* Convergence and checking                                            *)
(* ------------------------------------------------------------------ *)

let pending_fences t =
  Hashtbl.fold
    (fun name _ acc -> if status t ~name = Retiring then name :: acc else acc)
    t.statuses []
  |> List.sort compare

let item_matches_missing (it : Edb_store.Item.t) =
  String.equal it.value "" && Vv.sum it.ivv = 0

let converged t =
  match participant_names t with
  | [] -> true
  | ref_name :: rest ->
    let reference = (member t ref_name).node in
    List.for_all (fun n -> (member t n).epoch = t.n_events) (ref_name :: rest)
    && List.for_all (fun n -> Node.aux_count (member t n).node = 0) (ref_name :: rest)
    && List.for_all
         (fun n ->
           Vv.equal (Node.dbvv_view (member t n).node) (Node.dbvv_view reference))
         rest
    && begin
      let names = Hashtbl.create 64 in
      List.iter
        (fun n ->
          Node.iter_items
            (fun item -> Hashtbl.replace names item.Edb_store.Item.name ())
            (member t n).node)
        (ref_name :: rest);
      Hashtbl.fold
        (fun item_name () acc ->
          acc
          &&
          let ref_item = Node.find_item reference item_name in
          List.for_all
            (fun n ->
              let it = Node.find_item (member t n).node item_name in
              match (ref_item, it) with
              | None, None -> true
              | Some x, Some y ->
                String.equal x.Edb_store.Item.value y.Edb_store.Item.value
                && Vv.equal x.ivv y.ivv
              | Some x, None -> item_matches_missing x
              | None, Some y -> item_matches_missing y)
            rest)
        names true
    end

let check t =
  let ( let* ) = Result.bind in
  let check_member name =
    let m = member t name in
    let* () =
      if m.epoch <> t.n_events then Ok ()  (* lagging members checked at their own epoch *)
      else if Node.dimension m.node <> Array.length t.roster then
        Error
          (Printf.sprintf
             "member %d: dimension %d but the roster has %d sites — a retired \
              component survived or a join was missed"
             name (Node.dimension m.node) (Array.length t.roster))
      else if m.roster <> t.roster then
        Error (Printf.sprintf "member %d: roster disagrees with controller" name)
      else Ok ()
    in
    let* () =
      match slot_of m.roster m.name with
      | Some slot when Node.id m.node = slot -> Ok ()
      | Some slot ->
        Error
          (Printf.sprintf "member %d: node id %d but roster slot %d" name
             (Node.id m.node) slot)
      | None -> Error (Printf.sprintf "member %d: not in its own roster" name)
    in
    let* () =
      if Node.dimension m.node <> Array.length m.roster then
        Error
          (Printf.sprintf "member %d: dimension %d but local roster has %d sites"
             name (Node.dimension m.node) (Array.length m.roster))
      else Ok ()
    in
    Node.check_invariants m.node
    |> Result.map_error (fun msg -> Printf.sprintf "member %d: %s" name msg)
  in
  let rec go = function
    | [] -> Ok ()
    | name :: rest ->
      let* () = check_member name in
      go rest
  in
  go (participant_names t)

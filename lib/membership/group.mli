(** Dynamic membership: join, graceful leave, and dead-node retirement
    with version-vector garbage collection.

    The paper's protocol assumes a fixed replica set; every DBVV, IVV
    and log vector has one component per site, forever. This module
    lifts that closed-world assumption with a controller-ordered log of
    membership events. Every member applies a prefix of the same log;
    the prefix length is its {e membership epoch}, and its vector
    dimension, id-to-site mapping (the {e roster}) and retirement-fence
    knowledge are all pure functions of the applied prefix. Members at
    equal epochs agree on dimensions and slots, so the unmodified
    fixed-dimension protocol runs between them; a session between
    members at different epochs first replays the missing events on the
    laggard (metadata only), then runs the paper's session unchanged.

    Three membership operations:

    - {b join} — a fresh site bootstraps from a snapshot-v3 transfer of
      a live donor, then catches up by ordinary anti-entropy. It serves
      no reads until its summary DBVV dominates the donor's transfer
      watermark, at which point it activates ([joins_completed]).
    - {b graceful leave} — a drain: the member refuses further user
      updates, keeps running anti-entropy, and departs once some live
      peer's DBVV dominates its own and its auxiliary set is empty.
    - {b retirement} — a dead origin's vector component is garbage
      collected once a {e retirement fence} proves every live replica
      holds the identical value in that component. The fence target
      (per-shard maximum of the victim's component over live members)
      and acknowledgements propagate epidemically on sessions; crashes
      and partitions stall the fence rather than corrupt vectors. Once
      complete, every member drops the component uniformly
      ([Node.retire_component]), which preserves all comparisons.
      See DESIGN.md §11 for the state machine and the safety argument. *)

type status =
  | Joining  (** Bootstrapped, catching up; serves no reads. *)
  | Active  (** Full member. *)
  | Draining  (** Graceful leave under way: refuses user updates. *)
  | Departed  (** Left; excluded from sessions and fence ack sets. *)
  | Retiring  (** Retirement fence standing; never recoverable. *)
  | Retired  (** Component garbage-collected cluster-wide. *)

val status_to_string : status -> string

type event =
  | Join of { name : int; donor : int }
  | Activate of { name : int }
  | Drain of { name : int }
  | Depart of { name : int }
  | Retire_start of { name : int }
  | Retire_done of { name : int }

val event_to_string : event -> string

type t

val create :
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?shards:int ->
  n:int ->
  unit ->
  t
(** [create ~n ()] is a group of [n] active members with stable names
    [0 .. n-1] (also their initial slots). Names are never reused;
    joiners get fresh names. *)

(** {1 Introspection} *)

val epoch : t -> int
(** Number of controller events appended so far. *)

val shards : t -> int

val events : t -> event list
(** The controller log, oldest first. *)

val roster : t -> int array
(** Stable names in slot order, after applying the full log. A member
    at full epoch has exactly one vector component per roster entry. *)

val status : t -> name:int -> status

val member_epoch : t -> name:int -> int

val node : t -> name:int -> Edb_core.Node.t

val alive : t -> name:int -> bool

val watermark : t -> name:int -> int array option
(** The join watermark a still-joining member must dominate, reshaped
    alongside every membership change; [None] once activated. *)

val live_count : t -> int
(** Participants: alive members that are neither departed nor being
    retired. *)

val mean_vector_components : t -> float
(** Mean vector dimension over participants — the per-tick vector
    hygiene statistic the churn scenario samples. *)

val counters_total : t -> Edb_metrics.Counters.t

val conflict_count : t -> int

val pending_fences : t -> int list
(** Victims whose retirement fence has not completed, ascending. *)

(** {1 Fault injection} *)

val crash : t -> name:int -> unit

val recover : t -> name:int -> (unit, string) result
(** Refused for retirement victims — once [Retire_start] is issued the
    victim is dead forever (the fence's soundness depends on it).
    Recovery re-judges every standing fence from the recovered DBVVs
    instead of trusting pre-crash acknowledgements. *)

(** {1 User operations} *)

val update :
  t -> name:int -> item:string -> Edb_store.Operation.t -> (unit, string) result
(** Refused unless the member is active and alive (draining members no
    longer accept user updates; joining members not yet). *)

val read : t -> name:int -> item:string -> (string option, string) result
(** Refused while joining (the catch-up window serves no reads). *)

(** {1 Membership operations} *)

val join : t -> donor:int -> (int, string) result
(** [join t ~donor] bootstraps a fresh member from a snapshot-v3
    transfer of [donor] (which must be live and active) and returns its
    stable name. The newcomer enters the roster immediately — every
    member extends its vectors on reconcile — but stays [Joining] until
    {!observe} sees its summary DBVV dominate the transfer watermark. *)

val leave : t -> name:int -> (unit, string) result
(** Begin a graceful drain. The member refuses user updates from now
    on; {!observe} appends its departure once a live peer dominates it
    and its auxiliary set is empty. *)

val retire : t -> name:int -> (unit, string) result
(** Start the retirement fence for a departed or permanently crashed
    member. Completion — and the cluster-wide component drop — happens
    via {!observe} once every required member acknowledged the final
    fence target. *)

(** {1 Sessions and the controller} *)

val sync : t -> a:int -> b:int -> (unit, string) result
(** One bidirectional anti-entropy session: membership reconcile first
    (the laggard replays missing events, so dimensions agree), then the
    paper's session in both directions, then fence gossip (targets
    merge max-wise, stale acks die, both ends re-judge). Refused if
    either end is not a participant. *)

val observe : t -> event list
(** One controller pass: catch every live member up on the log, then
    append whatever the observed states justify — activations,
    departures, retirement completions. Returns the events appended.
    Deterministic (ascending name order). *)

(** {1 Convergence and checking} *)

val converged : t -> bool
(** All participants at full epoch with equal DBVVs, no auxiliary
    copies, and identical stores. *)

val check : t -> (unit, string) result
(** Structural invariants over every participant: node invariants
    ({!Edb_core.Node.check_invariants}), and — at full epoch — vector
    dimension equal to the roster size (no retired component survives,
    no join was missed), roster agreement with the controller, and node
    id equal to the member's roster slot. *)

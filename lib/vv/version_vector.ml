type t = int array

type comparison = Equal | Dominates | Dominated | Concurrent

let create ~n =
  if n <= 0 then invalid_arg "Version_vector.create: dimension must be positive";
  Array.make n 0

let of_array a =
  Array.iter (fun v -> if v < 0 then invalid_arg "Version_vector.of_array: negative component") a;
  Array.copy a

let to_array t = Array.copy t

let copy t = Array.copy t

let dimension t = Array.length t

let get t j = t.(j)

let set t j v =
  if v < 0 then invalid_arg "Version_vector.set: negative component";
  t.(j) <- v

let incr t j = t.(j) <- t.(j) + 1

let check_dimensions a b =
  if Array.length a <> Array.length b then
    invalid_arg "Version_vector: dimension mismatch"

let merge_into t ~from =
  check_dimensions t from;
  for j = 0 to Array.length t - 1 do
    if from.(j) > t.(j) then t.(j) <- from.(j)
  done

let add_diff_into t ~newer ~older =
  check_dimensions t newer;
  check_dimensions t older;
  for l = 0 to Array.length t - 1 do
    let d = newer.(l) - older.(l) in
    if d < 0 then
      invalid_arg "Version_vector.add_diff_into: newer does not dominate older";
    t.(l) <- t.(l) + d
  done

(* Top-level worker (not a local closure — this path must not allocate;
   it runs on every adoption and every no-op session). Early exit: once
   components have been seen in both directions the verdict is
   Concurrent no matter what the remaining components say. *)
let rec compare_scan a b n j some_less some_greater =
  if j >= n then
    match (some_less, some_greater) with
    | false, false -> Equal
    | false, true -> Dominates
    | true, false -> Dominated
    | true, true -> Concurrent
  else
    let av = Array.unsafe_get a j and bv = Array.unsafe_get b j in
    if av < bv then
      if some_greater then Concurrent else compare_scan a b n (j + 1) true some_greater
    else if av > bv then
      if some_less then Concurrent else compare_scan a b n (j + 1) some_less true
    else compare_scan a b n (j + 1) some_less some_greater

let compare_vv a b =
  check_dimensions a b;
  compare_scan a b (Array.length a) 0 false false

let equal a b = compare_vv a b = Equal

let dominates_or_equal a b =
  match compare_vv a b with Equal | Dominates -> true | Dominated | Concurrent -> false

let strictly_dominates a b = compare_vv a b = Dominates

let concurrent a b = compare_vv a b = Concurrent

let sum t = Array.fold_left ( + ) 0 t

let extend t =
  let n = Array.length t in
  let r = Array.make (n + 1) 0 in
  Array.blit t 0 r 0 n;
  r

let remove_component t ~at =
  let n = Array.length t in
  if n <= 1 then invalid_arg "Version_vector.remove_component: dimension would be zero";
  if at < 0 || at >= n then
    invalid_arg
      (Printf.sprintf "Version_vector.remove_component: index %d out of bounds [0,%d)"
         at n);
  let r = Array.make (n - 1) 0 in
  Array.blit t 0 r 0 at;
  Array.blit t (at + 1) r at (n - 1 - at);
  r

(* Early exit: stop scanning as soon as a witness is known in each
   direction — later components cannot change the answer. Top-level for
   the same no-closure reason as [compare_scan]; witnesses are encoded
   as negative ints until found so the scan itself allocates nothing. *)
let rec conflict_scan a b n j less greater =
  if less >= 0 && greater >= 0 then Some (less, greater)
  else if j >= n then None
  else
    let av = Array.unsafe_get a j and bv = Array.unsafe_get b j in
    if av < bv && less < 0 then conflict_scan a b n (j + 1) j greater
    else if av > bv && greater < 0 then conflict_scan a b n (j + 1) less j
    else conflict_scan a b n (j + 1) less greater

let conflicting_components a b =
  check_dimensions a b;
  conflict_scan a b (Array.length a) 0 (-1) (-1)

let pp fmt t =
  Format.fprintf fmt "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t

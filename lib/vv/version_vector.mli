(** Version vectors (paper §3).

    A version vector over [n] replication sites records, in component
    [j], how many updates originated at site [j] are reflected in the
    vector's owner. The same structure serves both roles in the paper:

    - {b IVV} — item version vector, one per data item replica, whose
      component [j] counts site [j]'s updates {e to that item};
    - {b DBVV} — database version vector, one per database replica,
      whose component [j] counts site [j]'s updates {e to any item}
      (paper §4.1).

    Comparison induces the usual partial order (Theorem 3 corollaries):
    equal, dominated, dominating, or concurrent ("inconsistent version
    vectors", corollary 4). *)

type t
(** A mutable version vector of fixed dimension. *)

type comparison =
  | Equal  (** Component-wise identical: the replicas are identical. *)
  | Dominates  (** Strictly newer: left has seen everything right has, and more. *)
  | Dominated  (** Strictly older: the mirror case. *)
  | Concurrent
      (** Inconsistent: each side reflects updates the other misses
          (paper corollary 4). *)

val create : n:int -> t
(** [create ~n] is the all-zero vector of dimension [n] (initial state,
    paper §3 rule 1). *)

val of_array : int array -> t
(** [of_array a] copies [a] into a fresh vector. Components must be
    non-negative. *)

val to_array : t -> int array
(** [to_array t] is a fresh array snapshot of [t]. *)

val copy : t -> t
(** [copy t] is an independent copy. *)

val dimension : t -> int
(** [dimension t] is the number of components. *)

val get : t -> int -> int
(** [get t j] is component [j]. *)

val set : t -> int -> int -> unit
(** [set t j v] writes component [j]. [v] must be non-negative. *)

val incr : t -> int -> unit
(** [incr t j] adds one to component [j] — the "own entry" bump a site
    performs on local update (paper §3 rule 2, §4.1 rule 2). *)

val merge_into : t -> from:t -> unit
(** [merge_into t ~from] sets [t] to the component-wise maximum of [t]
    and [from] (paper §3 rule 3). Dimensions must agree. *)

val add_diff_into : t -> newer:t -> older:t -> unit
(** [add_diff_into t ~newer ~older] adds [newer(l) - older(l)] to each
    component [l] of [t]. This is DBVV maintenance rule 3 (paper §4.1):
    when a data item is copied, the database vector grows by the extra
    updates the incoming item copy has seen. Requires [newer] to
    dominate or equal [older] component-wise. *)

val compare_vv : t -> t -> comparison
(** [compare_vv a b] classifies the pair in one pass over components. *)

val equal : t -> t -> bool
(** [equal a b] is component-wise equality. *)

val dominates_or_equal : t -> t -> bool
(** [dominates_or_equal a b] is [compare_vv a b = Equal || = Dominates];
    the test used by [SendPropagation] to answer "you-are-current". *)

val strictly_dominates : t -> t -> bool
(** [strictly_dominates a b] is [compare_vv a b = Dominates]. *)

val concurrent : t -> t -> bool
(** [concurrent a b] is [compare_vv a b = Concurrent]. *)

val sum : t -> int
(** [sum t] is the total number of updates reflected, across origins. *)

val extend : t -> t
(** [extend t] is a fresh [(dimension t + 1)]-dimensional copy of [t]
    with a zero appended — the vector surgery performed when a new site
    joins the replica set. Appending a zero preserves every existing
    comparison: the new origin has, by definition, issued no updates
    anyone has seen. *)

val remove_component : t -> at:int -> t
(** [remove_component t ~at] is a fresh [(dimension t - 1)]-dimensional
    copy of [t] with component [at] dropped — the surgery performed when
    a retired origin's slot is garbage-collected. Only safe when every
    vector in the system carries the identical value in component [at]
    (the retirement fence's guarantee); then the uniform drop preserves
    all comparisons. Raises [Invalid_argument] on out-of-range [at] or
    when the result would be zero-dimensional. *)

val conflicting_components : t -> t -> (int * int) option
(** [conflicting_components a b] is [Some (k, l)] with [a.(k) < b.(k)]
    and [a.(l) > b.(l)] when the vectors conflict — pinpointing the
    sites holding inconsistent replicas (paper §5.1 footnote) — and
    [None] otherwise. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints e.g. [<2,0,5>]. *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)

(* A lazily-spawned, process-wide pool of worker domains for per-shard
   fan-out.

   [Domain.spawn] costs on the order of a millisecond — far more than a
   typical per-shard delta build — so spawning per propagation session
   (the obvious implementation of [Node.pull ~domains]) makes the
   parallel path slower than the sequential one at every realistic
   shard count. The pool spawns workers once, on first use, and hands
   them jobs over a mutex-protected queue; a job is an array of tasks
   consumed by atomic work stealing, with the submitting domain
   participating, so submission costs a lock round-trip and a
   broadcast, not a spawn.

   Multiple domains may submit concurrently (e.g. [Server_group]'s
   per-database fan-out, whose clusters each request intra-pair
   parallelism); jobs queue up and workers drain them in order. Tasks
   must not themselves call [run] — nested jobs would deadlock a worker
   waiting on its own pool. Protocol tasks never do: the per-shard
   bodies they run are leaf computations. *)

type job = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* Next task index to steal. *)
  mutable pending : int;  (* Tasks not yet finished; under [m]. *)
  m : Mutex.t;
  finished : Condition.t;
  mutable failure : exn option;
      (* First task exception, re-raised at the submitter; under [m].
         Failpoint crash injection (Edb_fault) raises inside accept
         tasks, so this path is exercised by the chaos tests. *)
}

let queue : job Queue.t = Queue.create ()

let qm = Mutex.create ()

let qc = Condition.create ()

let spawned = ref 0

let stopping = ref false

(* Run tasks from [job] until it is drained, counting completions. *)
let work_on job =
  let len = Array.length job.tasks in
  let rec steal () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < len then begin
      let outcome = try Ok (job.tasks.(i) ()) with e -> Error e in
      Mutex.lock job.m;
      (match outcome with
      | Ok () -> ()
      | Error e -> if job.failure = None then job.failure <- Some e);
      job.pending <- job.pending - 1;
      if job.pending = 0 then Condition.broadcast job.finished;
      Mutex.unlock job.m;
      steal ()
    end
  in
  steal ()

let worker () =
  let rec loop () =
    Mutex.lock qm;
    let rec take () =
      if !stopping then None
      else
        match Queue.peek_opt queue with
        | None ->
          Condition.wait qc qm;
          take ()
        | Some job ->
          if Atomic.get job.next >= Array.length job.tasks then begin
            (* Drained (though possibly still running elsewhere):
               completion is tracked by [pending], not queue presence. *)
            ignore (Queue.pop queue);
            take ()
          end
          else Some job
    in
    let job = take () in
    Mutex.unlock qm;
    match job with
    | None -> ()
    | Some job ->
      work_on job;
      loop ()
  in
  loop ()

let shutdown () =
  Mutex.lock qm;
  stopping := true;
  Condition.broadcast qc;
  Mutex.unlock qm

let ensure_workers want =
  if want > !spawned then begin
    Mutex.lock qm;
    let missing = want - !spawned in
    if missing > 0 then begin
      if !spawned = 0 then at_exit shutdown;
      for _ = 1 to missing do
        ignore (Domain.spawn worker : unit Domain.t)
      done;
      spawned := !spawned + missing
    end;
    Mutex.unlock qm
  end

let run ~domains tasks =
  let len = Array.length tasks in
  (* Clamp to the hardware: on a single-core host every extra domain
     only adds scheduling overhead, so a [~domains:4] request degrades
     to the plain sequential loop instead of a slower "parallel" one. *)
  let domains = min domains (Domain.recommended_domain_count ()) in
  if len = 0 then ()
  else if domains <= 1 || len = 1 then Array.iter (fun task -> task ()) tasks
  else begin
    ensure_workers (min (domains - 1) (max 1 (Domain.recommended_domain_count () - 1)));
    let job =
      {
        tasks;
        next = Atomic.make 0;
        pending = len;
        m = Mutex.create ();
        finished = Condition.create ();
        failure = None;
      }
    in
    Mutex.lock qm;
    Queue.push job queue;
    Condition.broadcast qc;
    Mutex.unlock qm;
    (* The submitter steals too: with an idle pool it simply runs every
       task itself, so the parallel path is never slower than
       sequential by more than the queueing constant. *)
    work_on job;
    Mutex.lock job.m;
    while job.pending > 0 do
      Condition.wait job.finished job.m
    done;
    Mutex.unlock job.m;
    match job.failure with Some e -> raise e | None -> ()
  end

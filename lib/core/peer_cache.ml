module Vv = Edb_vv.Version_vector

(* Per-peer wire-codec negotiation and DBVV-delta baselines (wire
   format v2, see Edb_persist.Frame and DESIGN.md §8). All of it is
   volatile by construction — it lives inside the cache entry, so
   [forget_peer] / [reset] (crash recovery, node replacement) drop it
   and the next session falls back to version 1 and absolute vectors,
   the same safety discipline as the proven lower bounds (§5a). *)
module Wire_state = struct
  type baseline = { id : int; vv : Vv.t }

  type t = {
    mutable peer_version : int;
        (* Highest codec version the peer has advertised in a decoded
           frame; 1 (the version every node speaks) until proven
           higher. *)
    mutable next_id : int;
        (* Requester side: the next request id to assign. Starts at 1
           so 0 can mean "no id" on the wire. *)
    mutable last_sent : baseline option;
        (* Requester side: id and DBVV of the newest request sent to
           this peer — the only candidate for acknowledgement. *)
    mutable acked : baseline option;
        (* Requester side: the newest request this peer provably
           decoded (its reply echoed the id), hence a DBVV the peer
           still holds — the delta baseline for the next request. *)
    mutable committed : baseline option;
        (* Source side: a recipient baseline proven stable — some later
           request referenced it, so the recipient held its ack when
           that request was built. *)
    mutable candidate : baseline option;
        (* Source side: the newest request decoded from this peer; it
           becomes [committed] when a later request references it. *)
  }

  let create () =
    {
      peer_version = 1;
      next_id = 1;
      last_sent = None;
      acked = None;
      committed = None;
      candidate = None;
    }
end

type entry = {
  proven : Vv.t;
      (* Highest DBVV this node has proven the peer to hold — the
         summary DBVV when the peer is sharded. Grows by merge only, so
         with monotone peer DBVVs it stays a sound lower bound until
         the peer is rolled back, at which point the owner must call
         [forget_peer]. *)
  proven_shards : Vv.t array;
      (* Per-shard lower bounds, same merge discipline. Length is the
         owner's shard count; all-zero entries mean nothing was ever
         proven about that shard. *)
  mutable current : bool;
  mutable epoch : int;
      (* Cluster epoch at which [current] was established. *)
  wire : Wire_state.t;
}

type t = {
  n : int;
  shards : int;
  entries : entry option array;
  mutable own_wire_version : int;
      (* Highest wire-codec version this node's transports may speak —
         Edb_persist.Frame.max_version unless pinned down (tests, mixed
         fleets). Volatile like the rest of the cache. *)
}

(* Keep in sync with Edb_persist.Frame.max_version (asserted equal in
   the test suite; Peer_cache cannot see the persist layer). *)
let default_own_wire_version = 2

let create ?(shards = 1) ~n () =
  if n <= 0 then invalid_arg "Peer_cache.create: n must be positive";
  if shards < 1 then invalid_arg "Peer_cache.create: shards must be >= 1";
  {
    n;
    shards;
    entries = Array.make n None;
    own_wire_version = default_own_wire_version;
  }

let dimension t = t.n

let shards t = t.shards

let entry t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | Some e -> e
  | None ->
    let e =
      {
        proven = Vv.create ~n:t.n;
        proven_shards = Array.init t.shards (fun _ -> Vv.create ~n:t.n);
        current = false;
        epoch = min_int;
        wire = Wire_state.create ();
      }
    in
    t.entries.(peer) <- Some e;
    e

let note_proven t ~peer vv =
  let e = entry t ~peer in
  Vv.merge_into e.proven ~from:vv

let note_proven_shard t ~peer ~shard vv =
  let e = entry t ~peer in
  if shard < 0 || shard >= t.shards then
    invalid_arg "Peer_cache.note_proven_shard: shard out of range";
  Vv.merge_into e.proven_shards.(shard) ~from:vv

let proven t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  Option.map (fun e -> Vv.copy e.proven) t.entries.(peer)

let proven_shard t ~peer ~shard =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  if shard < 0 || shard >= t.shards then
    invalid_arg "Peer_cache.proven_shard: shard out of range";
  Option.map (fun e -> Vv.copy e.proven_shards.(shard)) t.entries.(peer)

let mark_current t ~peer ~epoch =
  let e = entry t ~peer in
  e.current <- true;
  e.epoch <- epoch

let invalidate_current t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with None -> () | Some e -> e.current <- false

let is_current t ~peer ~epoch =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | None -> false
  | Some e -> e.current && e.epoch = epoch

let wire_state t ~peer = (entry t ~peer).wire

let own_wire_version t = t.own_wire_version

let set_own_wire_version t v =
  if v < 1 then invalid_arg "Peer_cache.set_own_wire_version: below 1";
  t.own_wire_version <- v

let forget_peer t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  t.entries.(peer) <- None

let reset t = Array.fill t.entries 0 t.n None

let is_empty t = Array.for_all (fun e -> e = None) t.entries

module Vv = Edb_vv.Version_vector

type entry = {
  proven : Vv.t;
      (* Highest DBVV this node has proven the peer to hold — the
         summary DBVV when the peer is sharded. Grows by merge only, so
         with monotone peer DBVVs it stays a sound lower bound until
         the peer is rolled back, at which point the owner must call
         [forget_peer]. *)
  proven_shards : Vv.t array;
      (* Per-shard lower bounds, same merge discipline. Length is the
         owner's shard count; all-zero entries mean nothing was ever
         proven about that shard. *)
  mutable current : bool;
  mutable epoch : int;
      (* Cluster epoch at which [current] was established. *)
}

type t = { n : int; shards : int; entries : entry option array }

let create ?(shards = 1) ~n () =
  if n <= 0 then invalid_arg "Peer_cache.create: n must be positive";
  if shards < 1 then invalid_arg "Peer_cache.create: shards must be >= 1";
  { n; shards; entries = Array.make n None }

let dimension t = t.n

let shards t = t.shards

let entry t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | Some e -> e
  | None ->
    let e =
      {
        proven = Vv.create ~n:t.n;
        proven_shards = Array.init t.shards (fun _ -> Vv.create ~n:t.n);
        current = false;
        epoch = min_int;
      }
    in
    t.entries.(peer) <- Some e;
    e

let note_proven t ~peer vv =
  let e = entry t ~peer in
  Vv.merge_into e.proven ~from:vv

let note_proven_shard t ~peer ~shard vv =
  let e = entry t ~peer in
  if shard < 0 || shard >= t.shards then
    invalid_arg "Peer_cache.note_proven_shard: shard out of range";
  Vv.merge_into e.proven_shards.(shard) ~from:vv

let proven t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  Option.map (fun e -> Vv.copy e.proven) t.entries.(peer)

let proven_shard t ~peer ~shard =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  if shard < 0 || shard >= t.shards then
    invalid_arg "Peer_cache.proven_shard: shard out of range";
  Option.map (fun e -> Vv.copy e.proven_shards.(shard)) t.entries.(peer)

let mark_current t ~peer ~epoch =
  let e = entry t ~peer in
  e.current <- true;
  e.epoch <- epoch

let invalidate_current t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with None -> () | Some e -> e.current <- false

let is_current t ~peer ~epoch =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | None -> false
  | Some e -> e.current && e.epoch = epoch

let forget_peer t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  t.entries.(peer) <- None

let reset t = Array.fill t.entries 0 t.n None

let is_empty t = Array.for_all (fun e -> e = None) t.entries

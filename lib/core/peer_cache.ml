module Vv = Edb_vv.Version_vector

type entry = {
  proven : Vv.t;
      (* Highest DBVV this node has proven the peer to hold. Grows by
         merge only, so with monotone peer DBVVs it stays a sound lower
         bound until the peer is rolled back, at which point the owner
         must call [forget_peer]. *)
  mutable current : bool;
  mutable epoch : int;
      (* Cluster epoch at which [current] was established. *)
}

type t = { n : int; entries : entry option array }

let create ~n =
  if n <= 0 then invalid_arg "Peer_cache.create: n must be positive";
  { n; entries = Array.make n None }

let dimension t = t.n

let entry t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | Some e -> e
  | None ->
    let e = { proven = Vv.create ~n:t.n; current = false; epoch = min_int } in
    t.entries.(peer) <- Some e;
    e

let note_proven t ~peer vv =
  let e = entry t ~peer in
  Vv.merge_into e.proven ~from:vv

let proven t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  Option.map (fun e -> Vv.copy e.proven) t.entries.(peer)

let mark_current t ~peer ~epoch =
  let e = entry t ~peer in
  e.current <- true;
  e.epoch <- epoch

let invalidate_current t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with None -> () | Some e -> e.current <- false

let is_current t ~peer ~epoch =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  match t.entries.(peer) with
  | None -> false
  | Some e -> e.current && e.epoch = epoch

let forget_peer t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Peer_cache: peer out of range";
  t.entries.(peer) <- None

let reset t = Array.fill t.entries 0 t.n None

let is_empty t = Array.for_all (fun e -> e = None) t.entries

module Vv = Edb_vv.Version_vector
module Prng = Edb_util.Prng
module Counters = Edb_metrics.Counters
module Store = Edb_store.Store
module Item = Edb_store.Item

type t = {
  nodes : Node.t array;
  prng : Prng.t;
  cache : bool;
  (* Strictly increasing bias folded into the epoch so that replacing a
     node (whose revision counter restarts, possibly below its old
     value) can never make the epoch revisit an earlier value and
     revalidate stale cache entries. *)
  mutable epoch_bias : int;
}

let create ?(seed = 42) ?policy ?mode ?(cache = false) ?shards ~n () =
  let make id = Node.create ?policy ?mode ?shards ~id ~n () in
  { nodes = Array.init n make; prng = Prng.create ~seed; cache; epoch_bias = 0 }

let shards t = Node.shards t.nodes.(0)

let n t = Array.length t.nodes

let node t i = t.nodes.(i)

let nodes t = t.nodes

let cache_enabled t = t.cache

(* The cluster epoch: bias + Σ node revisions. Every state mutation
   anywhere bumps some node's revision, so equal epochs at two points in
   time prove no node state changed in between — the exactness gate for
   cached skips. O(n) per read, amortized against the session it can
   elide. *)
let epoch t =
  (* Plain loop: this runs on every cache-gated pull and must not
     allocate (Array.iter's closure would capture the accumulator). *)
  let sum = ref t.epoch_bias in
  for i = 0 to Array.length t.nodes - 1 do
    sum := !sum + Node.revision t.nodes.(i)
  done;
  !sum

let replace_node t i node =
  if Node.id node <> i then
    invalid_arg
      (Printf.sprintf "Cluster.replace_node: id mismatch (slot %d, node id %d)" i
         (Node.id node));
  if Node.dimension node <> Array.length t.nodes then
    invalid_arg
      (Printf.sprintf
         "Cluster.replace_node: dimension mismatch (cluster n = %d, node dimension \
          = %d)"
         (Array.length t.nodes) (Node.dimension node));
  (* The replacement may be a rollback: advance the epoch past every
     value the old node could have contributed, and drop what other
     nodes believed they had proven about this peer — both proven lower
     bounds (monotonicity no longer links them to the new state) and
     currency flags. The new node's own cache is empty by construction. *)
  t.epoch_bias <- t.epoch_bias + Node.revision t.nodes.(i) + 1;
  Array.iteri
    (fun j peer_node ->
      if j <> i then Peer_cache.forget_peer (Node.peer_cache peer_node) ~peer:i)
    t.nodes;
  t.nodes.(i) <- node

let update t ~node ~item op = Node.update t.nodes.(node) item op

let read t ~node ~item = Node.read t.nodes.(node) item

(* Record everything one completed session proves about the other end:
   the summary lower bound and, for sharded nodes, the per-shard lower
   bounds (the request carried every shard vector and the reply either
   shipped or skipped each shard). *)
let note_session_knowledge ~owner ~peer peer_node =
  let cache = Node.peer_cache owner in
  Peer_cache.note_proven cache ~peer (Node.dbvv_view peer_node);
  let shards = Node.shards peer_node in
  if shards > 1 then
    for s = 0 to shards - 1 do
      Peer_cache.note_proven_shard cache ~peer ~shard:s
        (Node.shard_dbvv_view peer_node s)
    done

let pull ?(domains = 1) t ~recipient ~source =
  if not t.cache then
    Node.pull ~domains ~recipient:t.nodes.(recipient) ~source:t.nodes.(source) ()
  else begin
    let r = t.nodes.(recipient) and s = t.nodes.(source) in
    let ep = epoch t in
    if Peer_cache.is_current (Node.peer_cache r) ~peer:source ~epoch:ep then begin
      (* A past session proved r's DBVV dominates s's, and the epoch
         gate proves no state changed since: running the session would
         reproduce Fig. 2's "you are current" from the same two vectors.
         Skip it — zero messages, no counters the real session's no-op
         path would have charged. (For sharded nodes the summary
         comparison is the you-are-current answer — DESIGN.md §7 — so
         the same gate applies unchanged.) *)
      (Node.counters r).Counters.sessions_skipped_cached <-
        (Node.counters r).Counters.sessions_skipped_cached + 1;
      Node.Already_current
    end
    else begin
      let result = Node.pull ~domains ~recipient:r ~source:s () in
      (* Both ends of a completed session learn the other's DBVV: the
         request carried r's, and the reply brought r up to date on
         everything s had (or proved there was nothing to bring). In
         this in-process layer we read both live vectors directly. *)
      note_session_knowledge ~owner:r ~peer:source s;
      note_session_knowledge ~owner:s ~peer:recipient r;
      let ep' = epoch t in
      if Vv.dominates_or_equal (Node.dbvv_view r) (Node.dbvv_view s) then
        Peer_cache.mark_current (Node.peer_cache r) ~peer:source ~epoch:ep';
      if Vv.dominates_or_equal (Node.dbvv_view s) (Node.dbvv_view r) then
        Peer_cache.mark_current (Node.peer_cache s) ~peer:recipient ~epoch:ep';
      result
    end
  end

let fetch_out_of_bound t ~recipient ~source item =
  Node.fetch_out_of_bound ~recipient:t.nodes.(recipient) ~source:t.nodes.(source) item

let random_peer t ~self =
  let size = n t in
  if size <= 1 then
    invalid_arg "Cluster.random_peer: a singleton cluster has no peers";
  let peer = Prng.int t.prng (size - 1) in
  if peer >= self then peer + 1 else peer

let random_pull_round ?(domains = 1) t =
  (* A singleton cluster has nobody to pull from: the round is a no-op
     (and must not draw from an empty PRNG range). *)
  if n t > 1 then
    for i = 0 to n t - 1 do
      let source = random_peer t ~self:i in
      let (_ : Node.pull_result) = pull ~domains t ~recipient:i ~source in
      ()
    done

let ring_pull_round ?(domains = 1) t =
  let size = n t in
  if size > 1 then
    for i = 0 to size - 1 do
      let source = (i + size - 1) mod size in
      let (_ : Node.pull_result) = pull ~domains t ~recipient:i ~source in
      ()
    done

(* A missing regular copy is equivalent to an empty one: value "" and an
   all-zero IVV (exactly what [Store.find_or_create] would make). *)
let item_matches_missing (it : Item.t) =
  String.equal it.value "" && Vv.sum it.ivv = 0

let shard_dbvvs_equal a b =
  let shards = Node.shards a in
  let rec loop s =
    s >= shards
    || (Vv.equal (Node.shard_dbvv_view a s) (Node.shard_dbvv_view b s) && loop (s + 1))
  in
  loop 0

let converged t =
  let reference = t.nodes.(0) in
  let ref_dbvv = Node.dbvv_view reference in
  (* O(1) per node instead of a per-item has_aux scan. *)
  Array.for_all (fun node -> Node.aux_count node = 0) t.nodes
  && Array.for_all
       (fun node ->
         node == reference
         || (Vv.equal (Node.dbvv_view node) ref_dbvv
            && shard_dbvvs_equal node reference))
       t.nodes
  && begin
    (* Single pass: the shared name table is built once, then every
       name is checked across all nodes by reading item fields in place
       (no IVV copies, no repeated name-set rebuilds). *)
    let names = Hashtbl.create 64 in
    Array.iter
      (fun node ->
        Node.iter_items (fun item -> Hashtbl.replace names item.Item.name ()) node)
      t.nodes;
    let node_count = Array.length t.nodes in
    let name_matches name =
      let ref_item = Node.find_item reference name in
      let rec check i =
        i >= node_count
        ||
        let it = Node.find_item t.nodes.(i) name in
        (match (ref_item, it) with
        | None, None -> true
        | Some a, Some b -> String.equal a.Item.value b.Item.value && Vv.equal a.ivv b.ivv
        | Some a, None -> item_matches_missing a
        | None, Some b -> item_matches_missing b)
        && check (i + 1)
      in
      check 1
    in
    Hashtbl.fold (fun name () acc -> acc && name_matches name) names true
  end

let sync_until_converged ?(max_rounds = 10_000) ?(domains = 1) t =
  let rec loop rounds =
    if converged t then rounds
    else if rounds >= max_rounds then
      failwith
        (Printf.sprintf "Cluster.sync_until_converged: not converged after %d rounds"
           max_rounds)
    else begin
      random_pull_round ~domains t;
      loop (rounds + 1)
    end
  in
  loop 0

let total_counters t =
  let acc = Counters.create () in
  Array.iter (fun node -> Counters.add_into acc (Node.counters node)) t.nodes;
  acc

let reset_counters t = Array.iter (fun node -> Counters.reset (Node.counters node)) t.nodes

let check_invariants t =
  (* A report-only conflict anywhere breaks the per-origin prefix
     property system-wide, so the seq <= DBVV log bound only applies
     while every node is conflict-free (see Node.check_invariants). *)
  let log_bound = Array.for_all (fun node -> Node.conflicts node = []) t.nodes in
  let rec loop i =
    if i >= n t then Ok ()
    else
      match Node.check_invariants ~log_bound t.nodes.(i) with
      | Ok () -> loop (i + 1)
      | Error msg -> Error (Printf.sprintf "node %d: %s" i msg)
  in
  loop 0

module Vv = Edb_vv.Version_vector
module Prng = Edb_util.Prng
module Counters = Edb_metrics.Counters

type t = { nodes : Node.t array; prng : Prng.t }

let create ?(seed = 42) ?policy ?mode ~n () =
  let make id = Node.create ?policy ?mode ~id ~n () in
  { nodes = Array.init n make; prng = Prng.create ~seed }

let n t = Array.length t.nodes

let node t i = t.nodes.(i)

let nodes t = t.nodes

let replace_node t i node =
  if Node.id node <> i then invalid_arg "Cluster.replace_node: id mismatch";
  if Node.dimension node <> Array.length t.nodes then
    invalid_arg "Cluster.replace_node: dimension mismatch";
  t.nodes.(i) <- node

let update t ~node ~item op = Node.update t.nodes.(node) item op

let read t ~node ~item = Node.read t.nodes.(node) item

let pull t ~recipient ~source =
  Node.pull ~recipient:t.nodes.(recipient) ~source:t.nodes.(source)

let fetch_out_of_bound t ~recipient ~source item =
  Node.fetch_out_of_bound ~recipient:t.nodes.(recipient) ~source:t.nodes.(source) item

let random_peer t ~self =
  let peer = Prng.int t.prng (n t - 1) in
  if peer >= self then peer + 1 else peer

let random_pull_round t =
  for i = 0 to n t - 1 do
    let source = random_peer t ~self:i in
    let (_ : Node.pull_result) = pull t ~recipient:i ~source in
    ()
  done

let ring_pull_round t =
  let size = n t in
  for i = 0 to size - 1 do
    let source = (i + size - 1) mod size in
    let (_ : Node.pull_result) = pull t ~recipient:i ~source in
    ()
  done

let all_item_names t =
  let names = Hashtbl.create 64 in
  Array.iter
    (fun node ->
      Edb_store.Store.iter
        (fun item -> Hashtbl.replace names item.Edb_store.Item.name ())
        (Node.store node))
    t.nodes;
  Hashtbl.fold (fun name () acc -> name :: acc) names []

let converged t =
  let reference = t.nodes.(0) in
  let dbvv_equal =
    Array.for_all (fun node -> Vv.equal (Node.dbvv node) (Node.dbvv reference)) t.nodes
  in
  let no_aux =
    Array.for_all
      (fun node ->
        not
          (List.exists (fun name -> Node.has_aux node name) (all_item_names t)))
      t.nodes
  in
  let zero = Vv.create ~n:(n t) in
  let item_state node name =
    match (Node.read_regular node name, Node.item_vv node name) with
    | Some value, Some ivv -> (value, ivv)
    | None, _ | _, None -> ("", zero)
  in
  let items_equal =
    List.for_all
      (fun name ->
        let ref_value, ref_ivv = item_state reference name in
        Array.for_all
          (fun node ->
            let value, ivv = item_state node name in
            String.equal value ref_value && Vv.equal ivv ref_ivv)
          t.nodes)
      (all_item_names t)
  in
  dbvv_equal && no_aux && items_equal

let sync_until_converged ?(max_rounds = 10_000) t =
  let rec loop rounds =
    if converged t then rounds
    else if rounds >= max_rounds then
      failwith
        (Printf.sprintf "Cluster.sync_until_converged: not converged after %d rounds"
           max_rounds)
    else begin
      random_pull_round t;
      loop (rounds + 1)
    end
  in
  loop 0

let total_counters t =
  let acc = Counters.create () in
  Array.iter (fun node -> Counters.add_into acc (Node.counters node)) t.nodes;
  acc

let reset_counters t = Array.iter (fun node -> Counters.reset (Node.counters node)) t.nodes

let check_invariants t =
  (* A report-only conflict anywhere breaks the per-origin prefix
     property system-wide, so the seq <= DBVV log bound only applies
     while every node is conflict-free (see Node.check_invariants). *)
  let log_bound = Array.for_all (fun node -> Node.conflicts node = []) t.nodes in
  let rec loop i =
    if i >= n t then Ok ()
    else
      match Node.check_invariants ~log_bound t.nodes.(i) with
      | Ok () -> loop (i + 1)
      | Error msg -> Error (Printf.sprintf "node %d: %s" i msg)
  in
  loop 0

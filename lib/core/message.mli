(** Wire messages of the update-propagation protocol (paper §5), with the
    explicit byte-size model used by the cost counters.

    Size model: node and item identifiers are 8 bytes, version-vector
    components 8 bytes each, regular log records
    {!Edb_log.Log_record.wire_size} bytes, and item values their string
    length. The absolute constants are arbitrary; every protocol
    (ours and the baselines) is charged under the same model, so
    comparisons are meaningful. *)

type delta_op = {
  origin : int;
  seq : int;  (** The origin's global update sequence number. *)
  op : Edb_store.Operation.t;
}
(** One update record, for op-log propagation (paper §2's second
    transport). *)

type payload =
  | Whole of string  (** The full item value (paper's presentation default). *)
  | Delta of delta_op list
      (** Exactly the operations the recipient misses, in the source's
          application order. Only sent when the source can prove the
          set complete from its bounded history (see
          [Node.propagation_mode]). *)

type shipped_item = {
  name : string;
  payload : payload;
  ivv : Edb_vv.Version_vector.t;
      (** The source's IVV for the item, sent along with every item in
          [S] (paper §5.1 step 1). *)
}

val whole_value : shipped_item -> string option
(** [whole_value s] is the value when the payload is [Whole]. *)

type propagation_request = {
  recipient : int;  (** The node asking to be brought up to date. *)
  recipient_dbvv : Edb_vv.Version_vector.t;
      (** Its DBVV [V_i] — the summary DBVV when the recipient is
          sharded (component-wise sum of its per-shard DBVVs). *)
  recipient_shard_dbvvs : Edb_vv.Version_vector.t array;
      (** Per-shard DBVVs, indexed by shard. [[||]] when the recipient
          runs unsharded ([shards = 1]), keeping the request
          byte-for-byte identical to the pre-sharding protocol. *)
}

type propagation_reply =
  | You_are_current
      (** [V_i] dominates or equals [V_j]: nothing to propagate
          (paper Fig. 2, first test). *)
  | Propagate of {
      tails : Edb_log.Log_record.t list array;
          (** The tail vector [D]: component [k] holds the records of
              updates originated at [k] that the recipient misses,
              oldest first. *)
      items : shipped_item list;
          (** The set [S] of (regular copies of) items referenced by
              records in [D], each with its IVV. *)
    }
  | Propagate_sharded of shard_delta list
      (** Sharded sessions ([shards > 1]) ship one delta per
          non-converged shard, in ascending shard order; shards whose
          per-shard DBVV the recipient already dominates are skipped
          individually (counter [shards_skipped]) and contribute zero
          bytes. *)

and shard_delta = {
  shard : int;  (** The shard this delta belongs to. *)
  tails : Edb_log.Log_record.t list array;
      (** The shard's tail vector [D]; sequence numbers are per-shard
          (each shard numbers its own DBVV components). *)
  items : shipped_item list;
}

type oob_request = { item : string }
(** Out-of-bound request for a single item (paper §5.2). *)

type oob_reply = { item : string; value : string; ivv : Edb_vv.Version_vector.t }
(** The source's freshest copy — auxiliary if it has one, else regular —
    with the corresponding IVV. No log records ever travel out of bound
    (paper §5.2). *)

type push_update = {
  item : string;
  seq : int;
      (** The origin's global update sequence number for this write —
          the DBVV component the origin assigned when it accepted the
          update locally. The origin itself is not carried: a push
          frame's sender {e is} the origin (nodes only stream their own
          writes). *)
  ivv : Edb_vv.Version_vector.t;
      (** The origin's IVV for the item immediately after the write. *)
  value : string;  (** The full item value after the write. *)
}
(** One update on the best-effort realtime push stream. Pushes are
    always whole-value: the stream gives no ordering or delivery
    guarantee, so a delta could not assume its predecessor arrived. *)

val vv_bytes : Edb_vv.Version_vector.t -> int

val request_bytes : propagation_request -> int

val reply_bytes : propagation_reply -> int

val oob_request_bytes : oob_request -> int

val oob_reply_bytes : oob_reply -> int

val push_update_bytes : push_update -> int

val push_bytes : push_update list -> int
(** [push_bytes us] is the modeled size of one push frame carrying
    [us]: an id-sized header plus each update's item id, sequence
    number, IVV and value. *)

(** A process-wide pool of worker domains for per-shard fan-out.

    [Domain.spawn] costs around a millisecond, dwarfing a typical
    per-shard delta build; the pool spawns workers once (lazily, on the
    first parallel {!run}) and reuses them, so requesting parallelism
    costs a lock round-trip instead of a spawn. Workers are shut down
    via [at_exit]. *)

val run : domains:int -> (unit -> unit) array -> unit
(** [run ~domains tasks] executes every task, using up to [domains]
    domains including the calling one, clamped to
    [Domain.recommended_domain_count] — on a single-core host the
    tasks simply run sequentially, whatever [domains] says, so callers
    can request parallelism unconditionally. Tasks are handed out by atomic
    work stealing and must touch disjoint mutable state; completion
    order is unspecified, so any cross-task merge is the caller's job,
    after [run] returns. With [domains <= 1] or a single task, tasks
    run sequentially in the calling domain with no synchronization.

    If a task raises, the first exception is re-raised at the caller
    after all tasks finish. Tasks must not call {!run} themselves (a
    worker waiting on its own pool would deadlock).

    Thread-safe: concurrent calls from several domains interleave their
    jobs over the shared workers. *)

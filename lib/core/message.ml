module Vv = Edb_vv.Version_vector

type delta_op = { origin : int; seq : int; op : Edb_store.Operation.t }

type payload = Whole of string | Delta of delta_op list

type shipped_item = { name : string; payload : payload; ivv : Vv.t }

let whole_value s = match s.payload with Whole v -> Some v | Delta _ -> None

type propagation_request = {
  recipient : int;
  recipient_dbvv : Vv.t;
  recipient_shard_dbvvs : Vv.t array;
      (* [||] when the recipient runs unsharded: the request is then
         byte-for-byte the pre-sharding request. *)
}

type shard_delta = {
  shard : int;
  tails : Edb_log.Log_record.t list array;
  items : shipped_item list;
}

type propagation_reply =
  | You_are_current
  | Propagate of {
      tails : Edb_log.Log_record.t list array;
      items : shipped_item list;
    }
  | Propagate_sharded of shard_delta list

type oob_request = { item : string }

type oob_reply = { item : string; value : string; ivv : Vv.t }

type push_update = { item : string; seq : int; ivv : Vv.t; value : string }

let id_bytes = 8

let vv_bytes vv = 8 * Vv.dimension vv

let request_bytes r =
  Array.fold_left
    (fun acc vv -> acc + vv_bytes vv)
    (id_bytes + vv_bytes r.recipient_dbvv)
    r.recipient_shard_dbvvs

let payload_bytes = function
  | Whole value -> String.length value
  | Delta ops ->
    List.fold_left
      (fun acc { op; _ } -> acc + 16 + Edb_store.Operation.size_bytes op)
      0 ops

let shipped_item_bytes (s : shipped_item) =
  id_bytes + payload_bytes s.payload + vv_bytes s.ivv

let tails_bytes tails =
  Array.fold_left
    (fun acc tail -> acc + (Edb_log.Log_record.wire_size * List.length tail))
    0 tails

let items_bytes items =
  List.fold_left (fun acc s -> acc + shipped_item_bytes s) 0 items

let shard_delta_bytes (d : shard_delta) =
  (* The shard index travels as one more id-sized field. *)
  id_bytes + tails_bytes d.tails + items_bytes d.items

let reply_bytes = function
  | You_are_current -> id_bytes
  | Propagate { tails; items } -> id_bytes + tails_bytes tails + items_bytes items
  | Propagate_sharded deltas ->
    List.fold_left (fun acc d -> acc + shard_delta_bytes d) id_bytes deltas

let oob_request_bytes (_ : oob_request) = 2 * id_bytes

let oob_reply_bytes (r : oob_reply) = id_bytes + String.length r.value + vv_bytes r.ivv

let push_update_bytes (u : push_update) =
  id_bytes + 8 + String.length u.value + vv_bytes u.ivv

let push_bytes updates =
  List.fold_left (fun acc u -> acc + push_update_bytes u) id_bytes updates

(** Cached knowledge about what each peer already holds.

    The paper makes a no-op anti-entropy session O(1): the recipient
    ships its DBVV and the source answers "you are current" after one
    vector comparison (Fig. 2). This cache makes the steady state
    cheaper still — {e zero} messages — by remembering what a past
    session proved about a peer and skipping sessions whose outcome is
    already known.

    Each node keeps, per peer:

    - [proven]: the highest DBVV the node has proven that peer to hold
      (learned from the peer's requests and completed sessions, merged
      monotonically). Because a live peer's DBVV only grows — the DBVV
      monotonicity invariant verified in [lib/check] — this is a sound
      lower bound on the peer's knowledge for as long as the peer has
      not been rolled back; crash recovery from a checkpoint must
      therefore call {!forget_peer} / {!reset} (see DESIGN.md).

    - [current] + [epoch]: an exactness gate used for skipping. A
      session [recipient <- source] may be skipped iff a previous
      session proved [recipient]'s DBVV dominates [source]'s {e and}
      no node state anywhere has changed since — tracked by the
      cluster-wide epoch ({!Cluster}'s sum of node revisions). Under
      that gate a skipped session is {e provably identical} to running
      it: Fig. 2 would answer "you are current" from the same two
      unchanged DBVVs and touch nothing.

    The cache is volatile: it is not part of {!Node.State.t}, a
    restored node starts empty, and {!Cluster.replace_node} forgets
    every other node's entry about the replaced peer. *)

type t

val create : ?shards:int -> n:int -> unit -> t
(** [create ~n] is an empty cache over peers [0 .. n-1]. [shards]
    (default 1) is the owner's shard count; it sizes the per-shard
    proven vectors. *)

val dimension : t -> int

val shards : t -> int

val note_proven : t -> peer:int -> Edb_vv.Version_vector.t -> unit
(** [note_proven t ~peer vv] records proof that [peer] holds at least
    [vv], merging component-wise into the existing lower bound. *)

val proven : t -> peer:int -> Edb_vv.Version_vector.t option
(** The current lower bound on [peer]'s DBVV — the summary DBVV when
    the peer is sharded — (a snapshot copy), if any session ever
    proved one. *)

val note_proven_shard : t -> peer:int -> shard:int -> Edb_vv.Version_vector.t -> unit
(** [note_proven_shard t ~peer ~shard vv] records proof that [peer]'s
    per-shard DBVV for [shard] is at least [vv], merged component-wise
    like {!note_proven}. *)

val proven_shard : t -> peer:int -> shard:int -> Edb_vv.Version_vector.t option
(** The per-shard lower bound for [shard] (a snapshot copy; all-zero
    until a session proves something about that shard). *)

val mark_current : t -> peer:int -> epoch:int -> unit
(** Record that, as of cluster [epoch], a session with [peer] would be
    answered "you are current". *)

val invalidate_current : t -> peer:int -> unit

val is_current : t -> peer:int -> epoch:int -> bool
(** Whether {!mark_current} was recorded at exactly this [epoch]. Any
    intervening state change anywhere bumps the epoch and refutes
    this. *)

val forget_peer : t -> peer:int -> unit
(** Drop everything known about [peer] — required when [peer] may have
    been rolled back (crash recovery from a checkpoint), which breaks
    the monotonicity assumption behind [proven]. *)

val reset : t -> unit

val is_empty : t -> bool

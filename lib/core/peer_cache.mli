(** Cached knowledge about what each peer already holds.

    The paper makes a no-op anti-entropy session O(1): the recipient
    ships its DBVV and the source answers "you are current" after one
    vector comparison (Fig. 2). This cache makes the steady state
    cheaper still — {e zero} messages — by remembering what a past
    session proved about a peer and skipping sessions whose outcome is
    already known.

    Each node keeps, per peer:

    - [proven]: the highest DBVV the node has proven that peer to hold
      (learned from the peer's requests and completed sessions, merged
      monotonically). Because a live peer's DBVV only grows — the DBVV
      monotonicity invariant verified in [lib/check] — this is a sound
      lower bound on the peer's knowledge for as long as the peer has
      not been rolled back; crash recovery from a checkpoint must
      therefore call {!forget_peer} / {!reset} (see DESIGN.md).

    - [current] + [epoch]: an exactness gate used for skipping. A
      session [recipient <- source] may be skipped iff a previous
      session proved [recipient]'s DBVV dominates [source]'s {e and}
      no node state anywhere has changed since — tracked by the
      cluster-wide epoch ({!Cluster}'s sum of node revisions). Under
      that gate a skipped session is {e provably identical} to running
      it: Fig. 2 would answer "you are current" from the same two
      unchanged DBVVs and touch nothing.

    The cache is volatile: it is not part of {!Node.State.t}, a
    restored node starts empty, and {!Cluster.replace_node} forgets
    every other node's entry about the replaced peer. *)

type t

(** Per-peer wire-codec state for the framed transports
    ([Edb_persist.Frame], DESIGN.md §8): the negotiated codec version
    and the request-DBVV delta baselines. Stored inside the cache entry
    so {!forget_peer} / {!reset} wipe it together with the proven lower
    bounds — after any rollback the next session falls back to codec
    version 1 and absolute vectors, mirroring the §5a safety story. *)
module Wire_state : sig
  type baseline = { id : int; vv : Edb_vv.Version_vector.t }

  type t = {
    mutable peer_version : int;
        (** Highest codec version the peer has advertised in a frame
            this node decoded; 1 until proven higher. *)
    mutable next_id : int;  (** Requester side: next request id. *)
    mutable last_sent : baseline option;
        (** Requester side: the newest request sent — the only
            acknowledgement candidate. *)
    mutable acked : baseline option;
        (** Requester side: the newest request whose reply came back,
            hence a DBVV the peer provably decoded and still stores —
            the delta baseline for the next request. *)
    mutable committed : baseline option;
        (** Source side: a recipient baseline proven stable by a later
            request that referenced it. *)
    mutable candidate : baseline option;
        (** Source side: the newest decoded request; promoted to
            [committed] when a later request references it. *)
  }
end

val create : ?shards:int -> n:int -> unit -> t
(** [create ~n] is an empty cache over peers [0 .. n-1]. [shards]
    (default 1) is the owner's shard count; it sizes the per-shard
    proven vectors. *)

val dimension : t -> int

val shards : t -> int

val note_proven : t -> peer:int -> Edb_vv.Version_vector.t -> unit
(** [note_proven t ~peer vv] records proof that [peer] holds at least
    [vv], merging component-wise into the existing lower bound. *)

val proven : t -> peer:int -> Edb_vv.Version_vector.t option
(** The current lower bound on [peer]'s DBVV — the summary DBVV when
    the peer is sharded — (a snapshot copy), if any session ever
    proved one. *)

val note_proven_shard : t -> peer:int -> shard:int -> Edb_vv.Version_vector.t -> unit
(** [note_proven_shard t ~peer ~shard vv] records proof that [peer]'s
    per-shard DBVV for [shard] is at least [vv], merged component-wise
    like {!note_proven}. *)

val proven_shard : t -> peer:int -> shard:int -> Edb_vv.Version_vector.t option
(** The per-shard lower bound for [shard] (a snapshot copy; all-zero
    until a session proves something about that shard). *)

val mark_current : t -> peer:int -> epoch:int -> unit
(** Record that, as of cluster [epoch], a session with [peer] would be
    answered "you are current". *)

val invalidate_current : t -> peer:int -> unit

val is_current : t -> peer:int -> epoch:int -> bool
(** Whether {!mark_current} was recorded at exactly this [epoch]. Any
    intervening state change anywhere bumps the epoch and refutes
    this. *)

val wire_state : t -> peer:int -> Wire_state.t
(** The live wire-codec state for [peer], created on first use. Mutable
    on purpose: the framing layer ([Edb_persist.Frame]) owns the
    update discipline. *)

val own_wire_version : t -> int
(** The highest wire-codec version this node's transports may speak
    (the frame layer's maximum unless {!set_own_wire_version} pinned it
    down). *)

val set_own_wire_version : t -> int -> unit
(** Pin the node's spoken codec version — e.g. force a node to remain
    a v1 speaker in a mixed-version fleet or a cross-version test.
    [Invalid_argument] below 1. *)

val forget_peer : t -> peer:int -> unit
(** Drop everything known about [peer] — required when [peer] may have
    been rolled back (crash recovery from a checkpoint), which breaks
    the monotonicity assumption behind [proven]. *)

val reset : t -> unit

val is_empty : t -> bool

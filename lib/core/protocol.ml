module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Log_record = Edb_log.Log_record
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector
module Aux_log = Edb_log.Aux_log
module Counters = Edb_metrics.Counters
module Fault = Edb_fault.Fault

let src = Logs.Src.create "edb.node" ~doc:"Epidemic replication node"

module Log = (val Logs.src_log src : Logs.LOG)

type resolution_policy =
  | Report_only
  | Resolve of (local:Message.shipped_item -> remote:Message.shipped_item -> string)

type propagation_mode = Whole_item | Op_log of { depth : int }

type accept_result = { copied : string list; conflicts : int; resolved : int }

(* Everything the Figure 2/3/4 functions need besides the shard replica
   they operate on. The [summary] vector mirrors every DBVV mutation so
   the node-level summary DBVV (component-wise sum of shard DBVVs)
   stays exact; when the node runs unsharded the summary IS the single
   replica's DBVV (physically the same vector), and the [==] guards
   below make the mirroring free. [declare_conflict] and [touch] are
   sinks into the owning node (conflict list, handler, revision), which
   lets parallel per-shard acceptance substitute scratch sinks. *)
type ctx = {
  node_id : int;
  n : int;
  mode : propagation_mode;
  policy : resolution_policy;
  counters : Counters.t;
  summary : Vv.t;
  declare_conflict :
    item:string -> local_vv:Vv.t -> remote_vv:Vv.t -> origin:Conflict.origin -> unit;
  touch : unit -> unit;
}

let incr_own ctx (rep : Replica.t) =
  Vv.incr rep.dbvv ctx.node_id;
  if not (ctx.summary == rep.dbvv) then Vv.incr ctx.summary ctx.node_id

let add_diff ctx (rep : Replica.t) ~newer ~older =
  Vv.add_diff_into rep.dbvv ~newer ~older;
  if not (ctx.summary == rep.dbvv) then Vv.add_diff_into ctx.summary ~newer ~older

let history_of ctx (rep : Replica.t) name =
  match ctx.mode with
  | Whole_item -> None
  | Op_log { depth } ->
    Some
      (match Hashtbl.find_opt rep.histories name with
      | Some history -> history
      | None ->
        let history = Edb_store.Item_history.create ~depth in
        Hashtbl.add rep.histories name history;
        history)

(* Bookkeeping common to every update applied to the regular copy: bump
   the item IVV and DBVV own-components, log the update (§5.3), and in
   op-log mode retain the operation for delta shipping. *)
let record_regular_update ctx (rep : Replica.t) (item : Item.t) ~op =
  ctx.touch ();
  Vv.incr item.ivv ctx.node_id;
  incr_own ctx rep;
  let seq = Vv.get rep.dbvv ctx.node_id in
  Log_vector.add rep.logs ~origin:ctx.node_id ~item:item.name ~seq;
  match history_of ctx rep item.name with
  | None -> ()
  | Some history ->
    Edb_store.Item_history.push history
      { Edb_store.Item_history.origin = ctx.node_id; seq; op }

let update ctx (rep : Replica.t) name op =
  ctx.counters.updates_applied <- ctx.counters.updates_applied + 1;
  match Hashtbl.find_opt rep.aux_items name with
  | Some aux ->
    ctx.touch ();
    (* §5.3 first case: the record stores the IVV excluding this update. *)
    Aux_log.append rep.aux_log { Aux_log.item = name; ivv = Vv.copy aux.ivv; op };
    Item.apply aux op;
    Vv.incr aux.ivv ctx.node_id
  | None ->
    let item = Store.find_or_create rep.store name in
    Item.apply item op;
    record_regular_update ctx rep item ~op

(* ------------------------------------------------------------------ *)
(* SendPropagation (paper Figure 2)                                    *)
(* ------------------------------------------------------------------ *)

(* Op-log mode: can this item's missing updates be shipped as exactly
   the operations the recipient lacks? The recipient reflects, for each
   origin k, precisely the first [recipient_vv(k)] updates of k to this
   shard (the per-origin prefix property, shard-local). A delta is
   provably complete iff for every origin that contributed updates to
   the item:
   - either the recipient already reflects the item's last k-update
     (log record seq <= recipient_vv(k)), or
   - the retained history still holds every k-op the recipient misses:
     all evicted k-ops have seq below the oldest retained k-entry, so
     it suffices that recipient_vv(k) >= oldest_retained_k - 1. *)
let delta_payload ctx (rep : Replica.t) (item : Item.t) ~recipient_vv =
  match history_of ctx rep item.name with
  | None -> None
  | Some history ->
    let threshold = Vv.to_array recipient_vv in
    let rec provable k =
      if k >= ctx.n then true
      else if Vv.get item.ivv k = 0 then provable (k + 1)
      else
        match Log_component.find_record (Log_vector.component rep.logs k) item.name with
        | None ->
          (* No retained log record despite known k-updates (possible
             only in post-conflict states): cannot reason. *)
          false
        | Some last ->
          if last.Log_record.seq <= threshold.(k) then
            (* The recipient reflects every k-update to this item. *)
            provable (k + 1)
          else (
            match
              Edb_store.Item_history.oldest_seq_of_origin history ~origin:k
            with
            | None -> false
            | Some oldest ->
              if threshold.(k) >= oldest - 1 then provable (k + 1) else false)
    in
    if not (provable 0) then None
    else
      Some
        (List.map
           (fun (e : Edb_store.Item_history.entry) ->
             { Message.origin = e.origin; seq = e.seq; op = e.op })
           (Edb_store.Item_history.entries_after history ~threshold))

(* The Fig. 2 body: the per-origin tails the recipient misses and the
   set S of items they reference. [recipient_vv] is the recipient's
   DBVV for this shard. The dominance test and session counters are the
   caller's job (they are per-session, not per-shard). *)
let build_delta ctx (rep : Replica.t) ~recipient_vv =
  let c = ctx.counters in
  let tails = Array.make ctx.n [] in
  (* Items flagged IsSelected while building the tails; the flags give
     the set union S in O(m) and are reset below (§6). *)
  let selected = ref [] in
  for k = 0 to ctx.n - 1 do
    if Vv.get rep.dbvv k > Vv.get recipient_vv k then begin
      let records =
        Log_component.tail_after
          (Log_vector.component rep.logs k)
          ~seq:(Vv.get recipient_vv k)
      in
      tails.(k) <- records;
      (* One traversal both counts the records and flags their items
         (no separate List.length pass). *)
      let examined = ref 0 in
      let flag (r : Log_record.t) =
        incr examined;
        match Store.find_opt rep.store r.item with
        | None ->
          (* A logged update always concerns a materialized item. *)
          assert false
        | Some item ->
          if not item.is_selected then begin
            item.is_selected <- true;
            selected := item :: !selected
          end
      in
      List.iter flag records;
      c.log_records_examined <- c.log_records_examined + !examined
    end
  done;
  let ship (item : Item.t) =
    item.is_selected <- false;
    c.items_examined <- c.items_examined + 1;
    let value, ivv = Item.snapshot item in
    let payload =
      match ctx.mode with
      | Whole_item -> Message.Whole value
      | Op_log _ -> (
        match delta_payload ctx rep item ~recipient_vv with
        | Some ops -> Message.Delta ops
        | None ->
          c.whole_fallbacks <- c.whole_fallbacks + 1;
          Message.Whole value)
    in
    { Message.name = item.name; payload; ivv }
  in
  let items = List.rev_map ship !selected in
  (tails, items)

(* The unsharded SendPropagation, kept verbatim so a [shards = 1] node
   behaves (and counts) exactly as before the Replica split. *)
let handle_request ctx (rep : Replica.t) (req : Message.propagation_request) =
  let c = ctx.counters in
  c.vv_comparisons <- c.vv_comparisons + 1;
  if Vv.dominates_or_equal req.recipient_dbvv rep.dbvv then begin
    c.noop_sessions <- c.noop_sessions + 1;
    Message.You_are_current
  end
  else begin
    c.propagation_sessions <- c.propagation_sessions + 1;
    let tails, items = build_delta ctx rep ~recipient_vv:req.recipient_dbvv in
    Message.Propagate { tails; items }
  end

(* ------------------------------------------------------------------ *)
(* IntraNodePropagation (paper Figure 4)                               *)
(* ------------------------------------------------------------------ *)

let intra_node_propagation ctx (rep : Replica.t) copied_items =
  let c = ctx.counters in
  let catch_up name =
    match Hashtbl.find_opt rep.aux_items name with
    | None -> ()
    | Some aux ->
      let regular = Store.find_or_create rep.store name in
      let rec drain () =
        match Aux_log.earliest rep.aux_log name with
        | Some e ->
          c.vv_comparisons <- c.vv_comparisons + 1;
          (match Vv.compare_vv regular.ivv e.ivv with
          | Equal ->
            (* The regular copy has caught up to the exact state this
               deferred update was applied at: replay it as a fresh
               local update. *)
            Item.apply regular e.op;
            record_regular_update ctx rep regular ~op:e.op;
            Aux_log.remove_earliest rep.aux_log name;
            c.aux_replays <- c.aux_replays + 1;
            drain ()
          | Concurrent ->
            ctx.declare_conflict ~item:name ~local_vv:regular.ivv ~remote_vv:e.ivv
              ~origin:Conflict.Intra_node
          | Dominated ->
            (* The regular copy is still behind; wait for more
               propagation. *)
            ()
          | Dominates ->
            (* The paper asserts "v_i(x) can never dominate a version
               vector of an auxiliary record" (§5.1), but it can: if a
               remote update to x raced the deferred out-of-bound
               update, the regular copy moves strictly past the state
               the deferred update was applied at without containing
               it. Since the deferred update exists in no other
               replica, domination proves the histories diverged, so we
               declare the conflict rather than leave it latent
               (deviation documented in DESIGN.md §5). *)
            ctx.declare_conflict ~item:name ~local_vv:regular.ivv ~remote_vv:e.ivv
              ~origin:Conflict.Intra_node)
        | None ->
          c.vv_comparisons <- c.vv_comparisons + 1;
          if Vv.dominates_or_equal regular.ivv aux.ivv then begin
            (* The regular copy has caught up with the auxiliary copy:
               discard the latter (Fig. 4, final comparison). *)
            ctx.touch ();
            Hashtbl.remove rep.aux_items name
          end
      in
      drain ()
  in
  List.iter catch_up copied_items

(* ------------------------------------------------------------------ *)
(* AcceptPropagation (paper Figure 3)                                  *)
(* ------------------------------------------------------------------ *)

(* Record the resolver's output as a fresh local update so the resolved
   state dominates both conflicting ancestors and propagates normally
   (extension; see DESIGN.md §5). *)
let resolve_propagation_conflict ctx (rep : Replica.t) (local : Item.t)
    (sx : Message.shipped_item) resolver =
  let local_snapshot =
    { Message.name = local.name; payload = Message.Whole local.value; ivv = Vv.copy local.ivv }
  in
  let merged = Vv.copy local.ivv in
  Vv.merge_into merged ~from:sx.ivv;
  add_diff ctx rep ~newer:merged ~older:local.ivv;
  let resolved_value = resolver ~local:local_snapshot ~remote:sx in
  local.value <- resolved_value;
  local.ivv <- merged;
  (* A whole-copy style overwrite: any retained history no longer
     describes a contiguous suffix of this value. *)
  (match history_of ctx rep local.name with
  | None -> ()
  | Some history -> Edb_store.Item_history.clear history);
  record_regular_update ctx rep local ~op:(Operation.Set resolved_value)

(* The Fig. 3 body for one shard's delta. The caller hits the
   "accept.begin" failpoint once per session before the first shard. *)
let accept_delta ctx (rep : Replica.t) ~source ~tails ~items =
  let c = ctx.counters in
  let skip_records = Hashtbl.create 4 in
  let copied = ref [] in
  let conflict_count = ref 0 in
  let resolved_count = ref 0 in
  let consider (sx : Message.shipped_item) =
    (* ...a crash here leaves some shipped items applied and others
       not — torn, unless the caller journaled the whole reply
       first (Durable_node does)... *)
    Fault.hit "accept.item";
    let local = Store.find_or_create rep.store sx.name in
    c.vv_comparisons <- c.vv_comparisons + 1;
    match Vv.compare_vv sx.ivv local.ivv with
    | Dominates -> (
      (* The received copy is strictly newer: adopt it and grow the
         DBVV by the extra updates it has seen (DBVV rule 3, §4.1). *)
      match sx.payload with
      | Message.Whole value ->
        ctx.touch ();
        add_diff ctx rep ~newer:sx.ivv ~older:local.ivv;
        local.value <- value;
        local.ivv <- Vv.copy sx.ivv;
        (* The local history no longer describes a contiguous suffix
           of this value: forget it (op-log mode only). *)
        (match history_of ctx rep sx.name with
        | None -> ()
        | Some history -> Edb_store.Item_history.clear history);
        c.items_copied <- c.items_copied + 1;
        copied := sx.name :: !copied
      | Message.Delta ops ->
        (* Defensive completeness check: the shipped operations must
           account exactly for the per-origin IVV gap. The list is
           measured once here; every later use reuses the count. *)
        let n_ops = List.length ops in
        let expected = ref 0 in
        for k = 0 to ctx.n - 1 do
          expected := !expected + (Vv.get sx.ivv k - Vv.get local.ivv k)
        done;
        if n_ops <> !expected then begin
          Log.err (fun m ->
              m "node %d: delta for %S has %d ops, expected %d; skipping" ctx.node_id
                sx.name n_ops !expected);
          Hashtbl.replace skip_records sx.name ()
        end
        else begin
          ctx.touch ();
          add_diff ctx rep ~newer:sx.ivv ~older:local.ivv;
          List.iter
            (fun (dop : Message.delta_op) ->
              local.value <- Operation.apply local.value dop.op;
              match history_of ctx rep sx.name with
              | None -> ()
              | Some history ->
                Edb_store.Item_history.push history
                  { Edb_store.Item_history.origin = dop.origin; seq = dop.seq; op = dop.op })
            ops;
          local.ivv <- Vv.copy sx.ivv;
          c.delta_ops_applied <- c.delta_ops_applied + n_ops;
          c.items_copied <- c.items_copied + 1;
          copied := sx.name :: !copied
        end)
    | Concurrent -> (
      match (ctx.policy, sx.payload) with
      | Resolve resolver, Message.Whole _ ->
        resolve_propagation_conflict ctx rep local sx resolver;
        incr resolved_count;
        c.items_copied <- c.items_copied + 1;
        copied := sx.name :: !copied
      | Report_only, _ | Resolve _, Message.Delta _ ->
        (* A conflicting delta cannot be resolved: the remote value is
           not reconstructible from ops against a diverged base. *)
        ctx.declare_conflict ~item:sx.name ~local_vv:local.ivv ~remote_vv:sx.ivv
          ~origin:(Conflict.Propagation { source });
        incr conflict_count;
        Hashtbl.replace skip_records sx.name ())
    | Equal ->
      (* Identical copies; no tail record can reference this item in
         conflict-free operation, and stale re-sent records are
         filtered below. *)
      ()
    | Dominated ->
      (* "We do not consider the case when v_i(x) dominates v_j(x)
         because this cannot happen" (§5.1). Reachable only after an
         earlier conflict was reported; drop the stale records. *)
      Log.warn (fun m ->
          m "node %d: local copy of %S is newer than the shipped one" ctx.node_id
            sx.name);
      Hashtbl.replace skip_records sx.name ()
  in
  List.iter consider items;
  (* ...and a crash here has every item applied but no tail records,
     deflating the local logs relative to the DBVV. *)
  Fault.hit "accept.tail";
  (* Append the tails to the local logs (Fig. 3, second loop), skipping
     records of conflicting items and records the local log already
     subsumes (possible only in post-conflict states). *)
  let append_tail k records =
    let component = Log_vector.component rep.logs k in
    let append (r : Log_record.t) =
      if not (Hashtbl.mem skip_records r.item) then begin
        c.log_records_examined <- c.log_records_examined + 1;
        if r.seq > Log_component.latest_seq component then
          Log_component.add component ~item:r.item ~seq:r.seq
      end
    in
    List.iter append records
  in
  Array.iteri append_tail tails;
  let copied = List.rev !copied in
  intra_node_propagation ctx rep copied;
  { copied; conflicts = !conflict_count; resolved = !resolved_count }

(* ------------------------------------------------------------------ *)
(* Out-of-bound copying (paper §5.2)                                   *)
(* ------------------------------------------------------------------ *)

let serve_out_of_bound (rep : Replica.t) (req : Message.oob_request) =
  let snapshot (item : Item.t) =
    let value, ivv = Item.snapshot item in
    { Message.item = req.item; value; ivv }
  in
  match Hashtbl.find_opt rep.aux_items req.item with
  | Some aux ->
    (* "Auxiliary copies are preferred ... the auxiliary copy is never
       older than the regular copy" (§5.2). *)
    snapshot aux
  | None -> snapshot (Store.find_or_create rep.store req.item)

let accept_out_of_bound ctx (rep : Replica.t) ~source (reply : Message.oob_reply) =
  let c = ctx.counters in
  let local_vv =
    match Hashtbl.find_opt rep.aux_items reply.item with
    | Some aux -> aux.Item.ivv
    | None -> (Store.find_or_create rep.store reply.item).Item.ivv
  in
  c.vv_comparisons <- c.vv_comparisons + 1;
  match Vv.compare_vv reply.ivv local_vv with
  | Dominates ->
    ctx.touch ();
    let aux =
      match Hashtbl.find_opt rep.aux_items reply.item with
      | Some aux -> aux
      | None ->
        let aux = Item.create ~name:reply.item ~n:ctx.n in
        Hashtbl.add rep.aux_items reply.item aux;
        aux
    in
    (* Adopt data and IVV; the auxiliary log is deliberately left
       untouched (§5.2). *)
    aux.value <- reply.value;
    aux.ivv <- Vv.copy reply.ivv;
    c.oob_copies <- c.oob_copies + 1;
    `Adopted
  | Equal | Dominated -> `Already_current
  | Concurrent ->
    ctx.declare_conflict ~item:reply.item ~local_vv ~remote_vv:reply.ivv
      ~origin:(Conflict.Out_of_bound { source });
    `Conflict

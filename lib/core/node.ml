module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Log_record = Edb_log.Log_record
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector
module Aux_log = Edb_log.Aux_log
module Counters = Edb_metrics.Counters
module Fault = Edb_fault.Fault

let src = Logs.Src.create "edb.node" ~doc:"Epidemic replication node"

module Log = (val Logs.src_log src : Logs.LOG)

type resolution_policy = Protocol.resolution_policy =
  | Report_only
  | Resolve of (local:Message.shipped_item -> remote:Message.shipped_item -> string)

type propagation_mode = Protocol.propagation_mode =
  | Whole_item
  | Op_log of { depth : int }

type accept_result = Protocol.accept_result = {
  copied : string list;
  conflicts : int;
  resolved : int;
}

type pull_result = Already_current | Pulled of accept_result

type oob_result = [ `Adopted | `Already_current | `Conflict ]

type t = {
  id : int;
  n : int;
  shards : int;
  replicas : Replica.t array;
  (* Component-wise sum of the shard DBVVs. When [shards = 1] it is
     physically the single replica's DBVV, so the unsharded node pays
     nothing for the extra vector and every wire byte stays identical
     to the pre-sharding protocol. *)
  summary : Vv.t;
  counters : Counters.t;
  policy : resolution_policy;
  mode : propagation_mode;
  conflict_handler : Conflict.t -> unit;
  mutable conflicts : Conflict.t list;
  peer_cache : Peer_cache.t;
  (* Bumped on every state mutation; Σ revisions over a cluster is its
     epoch, the staleness gate for cached peer knowledge. Volatile, like
     the peer cache itself. *)
  mutable revision : int;
  (* Fired after every local user update applied to a regular copy, with
     the update in push-stream shape. Best-effort by design: updates
     born on the auxiliary path, conflict resolutions and aux replays
     never fire it — anti-entropy carries those. *)
  mutable update_hook : (Message.push_update -> unit) option;
  ctx : Protocol.ctx;
}

let declare_conflict t ~item ~local_vv ~remote_vv ~origin =
  t.revision <- t.revision + 1;
  let conflict = Conflict.make ~item ~node:t.id ~local_vv ~remote_vv ~origin in
  t.counters.conflicts_detected <- t.counters.conflicts_detected + 1;
  t.conflicts <- conflict :: t.conflicts;
  Log.info (fun m -> m "%a" Conflict.pp conflict);
  t.conflict_handler conflict

let create ?(policy = Report_only) ?(conflict_handler = fun _ -> ())
    ?(mode = Whole_item) ?(shards = 1) ~id ~n () =
  if n <= 0 then invalid_arg "Node.create: n must be positive";
  if id < 0 || id >= n then invalid_arg "Node.create: id out of range";
  if shards < 1 then invalid_arg "Node.create: shards must be >= 1";
  (match mode with
  | Whole_item -> ()
  | Op_log { depth } ->
    if depth < 1 then invalid_arg "Node.create: op-log depth must be >= 1");
  let replicas = Array.init shards (fun _ -> Replica.create ~n) in
  let summary =
    if shards = 1 then replicas.(0).Replica.dbvv else Vv.create ~n
  in
  let counters = Counters.create () in
  let rec t =
    {
      id;
      n;
      shards;
      replicas;
      summary;
      counters;
      policy;
      mode;
      conflict_handler;
      conflicts = [];
      peer_cache = Peer_cache.create ~shards ~n ();
      revision = 0;
      update_hook = None;
      ctx;
    }
  and ctx =
    {
      Protocol.node_id = id;
      n;
      mode;
      policy;
      counters;
      summary;
      declare_conflict =
        (fun ~item ~local_vv ~remote_vv ~origin ->
          declare_conflict t ~item ~local_vv ~remote_vv ~origin);
      touch = (fun () -> t.revision <- t.revision + 1);
    }
  in
  t

let revision t = t.revision

let peer_cache t = t.peer_cache

let wire_version t = Peer_cache.own_wire_version t.peer_cache

let set_wire_version t v = Peer_cache.set_own_wire_version t.peer_cache v

let id t = t.id

let dimension t = t.n

let mode t = t.mode

let shards t = t.shards

let replica t s =
  if s < 0 || s >= t.shards then invalid_arg "Node.replica: shard out of range";
  t.replicas.(s)

let shard_of_item t name = Shard_map.shard_of ~shards:t.shards name

let replica_for t name = t.replicas.(shard_of_item t name)

let dbvv t = Vv.copy t.summary

let dbvv_view t = t.summary

let shard_dbvv_view t s =
  if s < 0 || s >= t.shards then invalid_arg "Node.shard_dbvv_view: shard out of range";
  t.replicas.(s).Replica.dbvv

let shard_dbvvs t = Array.map (fun (r : Replica.t) -> Vv.copy r.dbvv) t.replicas

let counters t = t.counters

(* The unsharded accessors below serve the pre-sharding callers (tests,
   checker internals); a sharded node has no single store/log/aux-log
   to hand out. *)
let single_replica t what =
  if t.shards <> 1 then
    invalid_arg (Printf.sprintf "Node.%s: node is sharded (use Node.replica)" what);
  t.replicas.(0)

let store t = (single_replica t "store").Replica.store

let log_vector t = (single_replica t "log_vector").Replica.logs

let aux_log t = (single_replica t "aux_log").Replica.aux_log

let iter_items f t =
  Array.iter (fun (r : Replica.t) -> Store.iter f r.store) t.replicas

let fold_items f init t =
  Array.fold_left (fun acc (r : Replica.t) -> Store.fold f acc r.store) init t.replicas

let find_item t name = Store.find_opt (replica_for t name).Replica.store name

let read t name =
  let rep = replica_for t name in
  match Hashtbl.find_opt rep.Replica.aux_items name with
  | Some aux -> Some aux.Item.value
  | None -> Option.map (fun (i : Item.t) -> i.value) (Store.find_opt rep.Replica.store name)

let read_regular t name =
  Option.map
    (fun (i : Item.t) -> i.value)
    (Store.find_opt (replica_for t name).Replica.store name)

let item_vv t name =
  Option.map
    (fun (i : Item.t) -> Vv.copy i.ivv)
    (Store.find_opt (replica_for t name).Replica.store name)

let has_aux t name = Hashtbl.mem (replica_for t name).Replica.aux_items name

let aux_count t =
  let total = ref 0 in
  Array.iter (fun r -> total := !total + Replica.aux_count r) t.replicas;
  !total

let aux_entries t =
  let acc = ref [] in
  Array.iter
    (fun (r : Replica.t) ->
      Hashtbl.iter
        (fun name (it : Item.t) -> acc := (name, Vv.copy it.ivv) :: !acc)
        r.aux_items)
    t.replicas;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let aux_vv t name =
  Option.map
    (fun (i : Item.t) -> Vv.copy i.ivv)
    (Hashtbl.find_opt (replica_for t name).Replica.aux_items name)

let conflicts t = t.conflicts

let clear_conflicts t = t.conflicts <- []

let set_update_hook t hook = t.update_hook <- hook

let update t name op =
  match t.update_hook with
  | None -> Protocol.update t.ctx (replica_for t name) name op
  | Some hook ->
    let rep = replica_for t name in
    (* Auxiliary-path updates defer (§5.3) and assign no sequence number
       yet; they reach peers through anti-entropy after replay. *)
    let regular = not (Hashtbl.mem rep.Replica.aux_items name) in
    Protocol.update t.ctx rep name op;
    if regular then (
      match Store.find_opt rep.Replica.store name with
      | None -> ()
      | Some item ->
        hook
          {
            Message.item = item.Item.name;
            seq = Vv.get rep.Replica.dbvv t.id;
            ivv = Vv.copy item.Item.ivv;
            value = item.Item.value;
          })

(* Apply-if-fresh (DESIGN.md §10): a pushed update is applied iff it is
   exactly the next update this node expects from its origin — the
   origin's DBVV component here is [seq - 1] and the update's IVV is the
   local regular IVV plus one origin tick. Under that guard the adoption
   is literally a one-record anti-entropy delta (same Figure 3 path,
   same DBVV/log bookkeeping), so no invariant can move: DBVV sums,
   per-origin prefix and the log bound are preserved by the same
   argument as a pulled session. Anything else — duplicate, reordered,
   raced by anti-entropy, conflicting history — is dropped as stale;
   the periodic session repairs it. *)
let apply_push t ~source (u : Message.push_update) =
  if source < 0 || source >= t.n then invalid_arg "Node.apply_push: source out of range";
  if source = t.id then invalid_arg "Node.apply_push: push from self";
  let rep = replica_for t u.item in
  let c = t.counters in
  c.vv_comparisons <- c.vv_comparisons + 1;
  let next_seq = u.seq = Vv.get rep.Replica.dbvv source + 1 in
  let ivv_is_successor () =
    (* Stale pushes must not materialize items: probe, don't create. *)
    let local = Store.find_opt rep.Replica.store u.item in
    Vv.dimension u.ivv = t.n
    &&
    let ok = ref true in
    for l = 0 to t.n - 1 do
      let here = match local with None -> 0 | Some it -> Vv.get it.Item.ivv l in
      let expected = if l = source then here + 1 else here in
      if Vv.get u.ivv l <> expected then ok := false
    done;
    !ok
  in
  if next_seq && ivv_is_successor () then begin
    let tails = Array.make t.n [] in
    tails.(source) <- [ { Log_record.item = u.item; seq = u.seq } ];
    let items =
      [ { Message.name = u.item; payload = Message.Whole u.value; ivv = u.ivv } ]
    in
    let (_ : accept_result) =
      Protocol.accept_delta t.ctx rep ~source ~tails ~items
    in
    c.push_applied <- c.push_applied + 1;
    `Applied
  end
  else begin
    c.push_stale <- c.push_stale + 1;
    `Stale
  end

let intra_node_propagation t names =
  List.iter
    (fun name -> Protocol.intra_node_propagation t.ctx (replica_for t name) [ name ])
    names

(* ------------------------------------------------------------------ *)
(* Per-shard domain fan-out                                            *)
(* ------------------------------------------------------------------ *)

(* Run every task, using up to [domains] domains (including the calling
   one) with atomic work stealing over the shared {!Domain_pool}. Tasks
   must touch disjoint state; the caller merges any shared effects
   afterwards, in task order. *)
let parallel_run ~domains tasks = Domain_pool.run ~domains tasks

(* ------------------------------------------------------------------ *)
(* SendPropagation (paper Figure 2)                                    *)
(* ------------------------------------------------------------------ *)

(* The request borrows the live vectors rather than copying them: this
   is the per-pull allocation on the steady-state path. Sound because
   the request is consumed synchronously — [handle_propagation_request]
   only reads it, the wire codec serializes it immediately, and no
   caller retains it past the session. *)
let propagation_request t =
  if t.shards = 1 then
    { Message.recipient = t.id; recipient_dbvv = t.summary; recipient_shard_dbvvs = [||] }
  else
    {
      Message.recipient = t.id;
      recipient_dbvv = t.summary;
      recipient_shard_dbvvs = Array.map (fun (r : Replica.t) -> r.dbvv) t.replicas;
    }

let propagation_request_owned t =
  let req = propagation_request t in
  {
    req with
    Message.recipient_dbvv = Vv.copy req.recipient_dbvv;
    recipient_shard_dbvvs = Array.map Vv.copy req.recipient_shard_dbvvs;
  }

let handle_sharded t ~domains (req : Message.propagation_request) =
  if Array.length req.recipient_shard_dbvvs <> t.shards then
    invalid_arg "Node.handle_propagation_request: shard count mismatch";
  let c = t.counters in
  (* The summary comparison answers you-are-current in O(n) regardless
     of the shard count; see DESIGN.md §7 for why summary dominance is
     sound under session-atomic acceptance. *)
  c.vv_comparisons <- c.vv_comparisons + 1;
  if Vv.dominates_or_equal req.recipient_dbvv t.summary then begin
    c.noop_sessions <- c.noop_sessions + 1;
    Message.You_are_current
  end
  else begin
    c.propagation_sessions <- c.propagation_sessions + 1;
    (* Per-shard skip decisions run sequentially (they charge the
       session counters); only non-converged shards build deltas. At
       least one shard ships: a strictly-larger summary component
       implies a strictly-larger component in some shard. *)
    let pending = ref [] in
    for s = t.shards - 1 downto 0 do
      c.vv_comparisons <- c.vv_comparisons + 1;
      let rvv = req.recipient_shard_dbvvs.(s) in
      if Vv.dominates_or_equal rvv t.replicas.(s).Replica.dbvv then
        c.shards_skipped <- c.shards_skipped + 1
      else pending := (s, rvv) :: !pending
    done;
    let pending = Array.of_list !pending in
    let count = Array.length pending in
    let deltas = Array.make count None in
    let build ctx i =
      let s, rvv = pending.(i) in
      let tails, items = Protocol.build_delta ctx t.replicas.(s) ~recipient_vv:rvv in
      deltas.(i) <- Some { Message.shard = s; tails; items }
    in
    if min domains count <= 1 then
      for i = 0 to count - 1 do
        build t.ctx i
      done
    else begin
      (* Delta building only reads replica state (plus the per-item
         IsSelected scratch flags, disjoint per shard) and charges
         counters, so a scratch counter set per shard is the only
         isolation needed; the sums merge commutatively. *)
      let scratch = Array.init count (fun _ -> Counters.create ()) in
      let tasks =
        Array.init count (fun i () ->
            build { t.ctx with Protocol.counters = scratch.(i) } i)
      in
      parallel_run ~domains tasks;
      Array.iter (fun sc -> Counters.add_into c sc) scratch
    end;
    Message.Propagate_sharded
      (Array.to_list deltas |> List.map Option.get)
  end

let handle_propagation_request ?(domains = 1) t req =
  if t.shards = 1 && Array.length req.Message.recipient_shard_dbvvs = 0 then
    Protocol.handle_request t.ctx t.replicas.(0) req
  else handle_sharded t ~domains req

(* ------------------------------------------------------------------ *)
(* AcceptPropagation (paper Figure 3)                                  *)
(* ------------------------------------------------------------------ *)

let combine_results results =
  let copied =
    List.concat_map (fun (r : accept_result) -> r.copied) (Array.to_list results)
  in
  let conflicts =
    Array.fold_left (fun acc (r : accept_result) -> acc + r.conflicts) 0 results
  in
  let resolved =
    Array.fold_left (fun acc (r : accept_result) -> acc + r.resolved) 0 results
  in
  { copied; conflicts; resolved }

let accept_sharded t ~domains ~source deltas =
  Fault.hit "accept.begin";
  List.iter
    (fun (d : Message.shard_delta) ->
      if d.shard < 0 || d.shard >= t.shards then
        invalid_arg "Node.accept_propagation: shard index out of range")
    deltas;
  let deltas = Array.of_list deltas in
  let count = Array.length deltas in
  let results = Array.make count { copied = []; conflicts = 0; resolved = 0 } in
  if min domains count <= 1 then begin
    Array.iteri
      (fun i (d : Message.shard_delta) ->
        results.(i) <-
          Protocol.accept_delta t.ctx t.replicas.(d.shard) ~source ~tails:d.tails
            ~items:d.items)
      deltas;
    combine_results results
  end
  else begin
    (* Shards touch disjoint replicas; the shared effects — counters,
       summary growth, revision bumps, conflict declarations — go to
       per-shard scratch sinks and are merged in shard order below, so
       the result is independent of domain scheduling. Conflict
       handlers therefore run after the parallel section (in shard
       order) rather than interleaved with acceptance; a handler that
       mutates the node must use [domains = 1]. *)
    let scratch_counters = Array.init count (fun _ -> Counters.create ()) in
    let scratch_summary = Array.init count (fun _ -> Vv.create ~n:t.n) in
    let scratch_conflicts = Array.make count [] in
    let scratch_touches = Array.make count 0 in
    let tasks =
      Array.init count (fun i () ->
          let d = deltas.(i) in
          let ctx =
            {
              t.ctx with
              Protocol.counters = scratch_counters.(i);
              summary = scratch_summary.(i);
              declare_conflict =
                (fun ~item ~local_vv ~remote_vv ~origin ->
                  scratch_touches.(i) <- scratch_touches.(i) + 1;
                  scratch_counters.(i).conflicts_detected <-
                    scratch_counters.(i).conflicts_detected + 1;
                  scratch_conflicts.(i) <-
                    Conflict.make ~item ~node:t.id ~local_vv ~remote_vv ~origin
                    :: scratch_conflicts.(i));
              touch = (fun () -> scratch_touches.(i) <- scratch_touches.(i) + 1);
            }
          in
          results.(i) <-
            Protocol.accept_delta ctx t.replicas.(d.shard) ~source ~tails:d.tails
              ~items:d.items)
    in
    parallel_run ~domains tasks;
    for i = 0 to count - 1 do
      Counters.add_into t.counters scratch_counters.(i);
      for l = 0 to t.n - 1 do
        let grown = Vv.get scratch_summary.(i) l in
        if grown <> 0 then Vv.set t.summary l (Vv.get t.summary l + grown)
      done;
      t.revision <- t.revision + scratch_touches.(i);
      List.iter
        (fun conflict ->
          t.conflicts <- conflict :: t.conflicts;
          Log.info (fun m -> m "%a" Conflict.pp conflict);
          t.conflict_handler conflict)
        (List.rev scratch_conflicts.(i))
    done;
    combine_results results
  end

let accept_propagation ?(domains = 1) t ~source reply =
  match reply with
  | Message.You_are_current -> { copied = []; conflicts = 0; resolved = 0 }
  | Message.Propagate { tails; items } ->
    if t.shards <> 1 then
      invalid_arg "Node.accept_propagation: unsharded reply at a sharded node";
    (* Failpoints (see DESIGN.md, "Failure model"): a crash here leaves
       the node exactly as before the session. *)
    Fault.hit "accept.begin";
    Protocol.accept_delta t.ctx t.replicas.(0) ~source ~tails ~items
  | Message.Propagate_sharded deltas -> accept_sharded t ~domains ~source deltas

(* ------------------------------------------------------------------ *)
(* Out-of-bound copying (paper §5.2)                                   *)
(* ------------------------------------------------------------------ *)

let serve_out_of_bound t (req : Message.oob_request) =
  Protocol.serve_out_of_bound (replica_for t req.item) req

let accept_out_of_bound t ~source (reply : Message.oob_reply) =
  (Protocol.accept_out_of_bound t.ctx (replica_for t reply.item) ~source reply
    :> oob_result)

(* ------------------------------------------------------------------ *)
(* In-process sessions                                                 *)
(* ------------------------------------------------------------------ *)

let charge_message (c : Counters.t) bytes =
  c.messages <- c.messages + 1;
  c.bytes_sent <- c.bytes_sent + bytes

let pull ?(domains = 1) ~recipient ~source () =
  if recipient.shards <> source.shards then
    invalid_arg "Node.pull: recipient and source shard counts differ";
  let req = propagation_request recipient in
  charge_message recipient.counters (Message.request_bytes req);
  let reply = handle_propagation_request ~domains source req in
  charge_message source.counters (Message.reply_bytes reply);
  match reply with
  | Message.You_are_current -> Already_current
  | (Message.Propagate _ | Message.Propagate_sharded _) as reply ->
    Pulled (accept_propagation ~domains recipient ~source:source.id reply)

let sync_pair ?(domains = 1) a b =
  let (_ : pull_result) = pull ~domains ~recipient:a ~source:b () in
  let (_ : pull_result) = pull ~domains ~recipient:b ~source:a () in
  ()

let fetch_out_of_bound ~recipient ~source name =
  let req = { Message.item = name } in
  charge_message recipient.counters (Message.oob_request_bytes req);
  let reply = serve_out_of_bound source req in
  charge_message source.counters (Message.oob_reply_bytes reply);
  accept_out_of_bound recipient ~source:source.id reply

(* ------------------------------------------------------------------ *)
(* State export / import                                               *)
(* ------------------------------------------------------------------ *)

module State = struct
  type item = { name : string; value : string; ivv : int array }

  type aux_record = { item : string; ivv : int array; op : Operation.t }

  type shard = {
    items : item list;
    dbvv : int array;
    logs : (string * int) list array;
    aux_items : item list;
    aux_log : aux_record list;
  }

  type t = { id : int; n : int; shards : shard array }
end

let export_state t =
  let item_state (it : Item.t) =
    { State.name = it.name; value = it.value; ivv = Vv.to_array it.ivv }
  in
  let export_shard (rep : Replica.t) =
    let items =
      List.rev (Store.fold (fun acc it -> item_state it :: acc) [] rep.store)
    in
    let logs =
      Array.init t.n (fun origin ->
          List.map
            (fun (r : Log_record.t) -> (r.item, r.seq))
            (Log_component.to_list (Log_vector.component rep.logs origin)))
    in
    let aux_items =
      Hashtbl.fold (fun _ it acc -> item_state it :: acc) rep.aux_items []
      |> List.sort (fun (a : State.item) b -> String.compare a.name b.name)
    in
    let aux_log =
      List.map
        (fun (r : Aux_log.record) ->
          { State.item = r.item; ivv = Vv.to_array r.ivv; op = r.op })
        (Aux_log.to_list rep.aux_log)
    in
    { State.items; dbvv = Vv.to_array rep.dbvv; logs; aux_items; aux_log }
  in
  { State.id = t.id; n = t.n; shards = Array.map export_shard t.replicas }

let import_state ?policy ?conflict_handler ?mode (state : State.t) =
  let shards = Array.length state.shards in
  if shards = 0 then invalid_arg "Node.import_state: no shards";
  let t =
    create ?policy ?conflict_handler ?mode ~shards ~id:state.id ~n:state.n ()
  in
  let import_shard s (shard : State.shard) =
    let rep = t.replicas.(s) in
    if Array.length shard.dbvv <> state.n then
      invalid_arg "Node.import_state: DBVV dimension mismatch";
    if Array.length shard.logs <> state.n then
      invalid_arg "Node.import_state: log vector dimension mismatch";
    let restore_item (st : State.item) =
      if Array.length st.ivv <> state.n then
        invalid_arg "Node.import_state: item IVV dimension mismatch";
      let it = Store.find_or_create rep.Replica.store st.name in
      it.value <- st.value;
      it.ivv <- Vv.of_array st.ivv
    in
    List.iter restore_item shard.items;
    (* [create] made zero DBVVs; overwrite shard and summary in place. *)
    Array.iteri
      (fun l v ->
        Vv.set rep.dbvv l v;
        if not (t.summary == rep.dbvv) then
          Vv.set t.summary l (Vv.get t.summary l + v))
      shard.dbvv;
    Array.iteri
      (fun origin records ->
        List.iter
          (fun (item, seq) ->
            (* Log_component.add enforces the monotonic-seq invariant and
               rejects inconsistent snapshots. *)
            Log_vector.add rep.logs ~origin ~item ~seq)
          records)
      shard.logs;
    List.iter
      (fun (st : State.item) ->
        if Array.length st.ivv <> state.n then
          invalid_arg "Node.import_state: aux IVV dimension mismatch";
        let it = Item.create ~name:st.name ~n:state.n in
        it.value <- st.value;
        it.ivv <- Vv.of_array st.ivv;
        Hashtbl.replace rep.aux_items st.name it)
      shard.aux_items;
    List.iter
      (fun (r : State.aux_record) ->
        Aux_log.append rep.aux_log
          { Aux_log.item = r.item; ivv = Vv.of_array r.ivv; op = r.op })
      shard.aux_log
  in
  Array.iteri import_shard state.shards;
  t

(* ------------------------------------------------------------------ *)
(* Membership reshape                                                  *)
(* ------------------------------------------------------------------ *)

(* Both reshapes rebuild the node through [export_state] / pure array
   surgery / [import_state]: every vector, log component and aux record
   flows through the one code path that already knows how to rebuild a
   node, so a representation added later cannot be silently missed.
   The peer cache comes back cold by construction — proven DBVVs of the
   old dimension cannot survive a membership change. *)

let reshaped ~id ~n ~f_vec ~f_logs t =
  let state = export_state t in
  let reshape_item (it : State.item) = { it with State.ivv = f_vec it.State.ivv } in
  let reshape_shard (sh : State.shard) =
    {
      State.items = List.map reshape_item sh.State.items;
      dbvv = f_vec sh.State.dbvv;
      logs = f_logs sh.State.logs;
      aux_items = List.map reshape_item sh.State.aux_items;
      aux_log =
        List.map
          (fun (r : State.aux_record) -> { r with State.ivv = f_vec r.State.ivv })
          sh.State.aux_log;
    }
  in
  let state = { State.id; n; shards = Array.map reshape_shard state.State.shards } in
  let t' =
    import_state ~policy:t.policy ~conflict_handler:t.conflict_handler ~mode:t.mode
      state
  in
  Counters.add_into t'.counters t.counters;
  t'.conflicts <- t.conflicts;
  t'.revision <- t.revision + 1;
  t'

let extend_dimension t =
  let f_vec v = Vv.to_array (Vv.extend (Vv.of_array v)) in
  let f_logs logs = Array.append logs [| [] |] in
  reshaped ~id:t.id ~n:(t.n + 1) ~f_vec ~f_logs t

let retire_component t ~slot =
  if slot < 0 || slot >= t.n then
    invalid_arg
      (Printf.sprintf "Node.retire_component: slot %d out of bounds [0,%d)" slot t.n);
  if slot = t.id then
    invalid_arg
      (Printf.sprintf "Node.retire_component: node %d cannot retire itself" t.id);
  let f_vec v = Vv.to_array (Vv.remove_component (Vv.of_array v) ~at:slot) in
  let f_logs logs =
    Array.init
      (Array.length logs - 1)
      (fun o -> if o < slot then logs.(o) else logs.(o + 1))
  in
  (* Ids above the vacated slot shift down so the id space stays dense
     [0, n-1] — the same renaming every surviving member applies. *)
  let id = if t.id > slot then t.id - 1 else t.id in
  (* Count what the surgery is about to drop: one component per DBVV,
     item IVV, aux IVV and aux-log IVV, plus the victim's log-vector
     slot per shard. The summary DBVV is physically the shard DBVV when
     shards = 1, so it only counts separately beyond that. *)
  let dropped = ref (if t.shards = 1 then 0 else 1) in
  Array.iter
    (fun (rep : Replica.t) ->
      dropped := !dropped + 2;
      Store.iter (fun _ -> incr dropped) rep.Replica.store;
      dropped := !dropped + Hashtbl.length rep.aux_items;
      dropped := !dropped + List.length (Aux_log.to_list rep.aux_log))
    t.replicas;
  let t' = reshaped ~id ~n:(t.n - 1) ~f_vec ~f_logs t in
  t'.counters.Counters.vector_components_gced <-
    t'.counters.Counters.vector_components_gced + !dropped;
  t'

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let check_replica_invariants ?(log_bound = true) t s =
  let rep = t.replicas.(s) in
  (* Shard DBVV = component-wise sum of the shard's item IVVs (§4.1). *)
  let sums = Array.make t.n 0 in
  Store.iter
    (fun item ->
      for l = 0 to t.n - 1 do
        sums.(l) <- sums.(l) + Vv.get item.Item.ivv l
      done)
    rep.Replica.store;
  let rec check_sum l =
    if l >= t.n then Ok ()
    else if sums.(l) <> Vv.get rep.dbvv l then
      Error
        (Printf.sprintf "shard %d: DBVV[%d] = %d but item IVVs sum to %d" s l
           (Vv.get rep.dbvv l) sums.(l))
    else check_sum (l + 1)
  in
  let check_log_bound () =
    if (not log_bound) || t.conflicts <> [] then Ok ()
    else
      let rec loop k =
        if k >= t.n then Ok ()
        else
          let latest = Log_component.latest_seq (Log_vector.component rep.logs k) in
          if latest > Vv.get rep.dbvv k then
            Error
              (Printf.sprintf
                 "shard %d: log component %d newest seq %d exceeds DBVV[%d] = %d" s k
                 latest k (Vv.get rep.dbvv k))
          else loop (k + 1)
      in
      loop 0
  in
  let check_flags () =
    let stray =
      Store.fold (fun acc item -> acc || item.Item.is_selected) false rep.store
    in
    if stray then
      Error
        (Printf.sprintf "shard %d: stray IsSelected flag outside a propagation" s)
    else Ok ()
  in
  match check_sum 0 with
  | Error _ as e -> e
  | Ok () -> (
    match Log_vector.check_invariants rep.logs with
    | Error msg -> Error (Printf.sprintf "shard %d: %s" s msg)
    | Ok () -> (
      match check_log_bound () with Error _ as e -> e | Ok () -> check_flags ()))

let check_summary t =
  (* Summary DBVV = component-wise sum of the shard DBVVs; trivially
     true (physically the same vector) when shards = 1. *)
  let sums = Array.make t.n 0 in
  Array.iter
    (fun (rep : Replica.t) ->
      for l = 0 to t.n - 1 do
        sums.(l) <- sums.(l) + Vv.get rep.dbvv l
      done)
    t.replicas;
  let rec loop l =
    if l >= t.n then Ok ()
    else if sums.(l) <> Vv.get t.summary l then
      Error
        (Printf.sprintf "summary DBVV[%d] = %d but shard DBVVs sum to %d" l
           (Vv.get t.summary l) sums.(l))
    else loop (l + 1)
  in
  loop 0

let check_invariants ?(log_bound = true) t =
  let rec per_shard s =
    if s >= t.shards then Ok ()
    else
      match check_replica_invariants ~log_bound t s with
      | Error _ as e -> e
      | Ok () -> per_shard (s + 1)
  in
  match per_shard 0 with Error _ as e -> e | Ok () -> check_summary t

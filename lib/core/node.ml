module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Operation = Edb_store.Operation
module Log_record = Edb_log.Log_record
module Log_component = Edb_log.Log_component
module Log_vector = Edb_log.Log_vector
module Aux_log = Edb_log.Aux_log
module Counters = Edb_metrics.Counters
module Fault = Edb_fault.Fault

let src = Logs.Src.create "edb.node" ~doc:"Epidemic replication node"

module Log = (val Logs.src_log src : Logs.LOG)

type resolution_policy =
  | Report_only
  | Resolve of (local:Message.shipped_item -> remote:Message.shipped_item -> string)

type propagation_mode = Whole_item | Op_log of { depth : int }

type accept_result = { copied : string list; conflicts : int; resolved : int }

type pull_result = Already_current | Pulled of accept_result

type oob_result = [ `Adopted | `Already_current | `Conflict ]

type t = {
  id : int;
  n : int;
  store : Store.t;
  dbvv : Vv.t;
  logs : Log_vector.t;
  aux_items : (string, Item.t) Hashtbl.t;
  aux_log : Aux_log.t;
  counters : Counters.t;
  policy : resolution_policy;
  mode : propagation_mode;
  (* Per-item bounded op history; populated only in [Op_log] mode. *)
  histories : (string, Edb_store.Item_history.t) Hashtbl.t;
  conflict_handler : Conflict.t -> unit;
  mutable conflicts : Conflict.t list;
  peer_cache : Peer_cache.t;
  (* Bumped on every state mutation; Σ revisions over a cluster is its
     epoch, the staleness gate for cached peer knowledge. Volatile, like
     the peer cache itself. *)
  mutable revision : int;
}

let create ?(policy = Report_only) ?(conflict_handler = fun _ -> ())
    ?(mode = Whole_item) ~id ~n () =
  if n <= 0 then invalid_arg "Node.create: n must be positive";
  if id < 0 || id >= n then invalid_arg "Node.create: id out of range";
  (match mode with
  | Whole_item -> ()
  | Op_log { depth } ->
    if depth < 1 then invalid_arg "Node.create: op-log depth must be >= 1");
  {
    id;
    n;
    store = Store.create ~n;
    dbvv = Vv.create ~n;
    logs = Log_vector.create ~n;
    aux_items = Hashtbl.create 8;
    aux_log = Aux_log.create ();
    counters = Counters.create ();
    policy;
    mode;
    histories = Hashtbl.create 8;
    conflict_handler;
    conflicts = [];
    peer_cache = Peer_cache.create ~n;
    revision = 0;
  }

let touch t = t.revision <- t.revision + 1

let revision t = t.revision

let peer_cache t = t.peer_cache

let id t = t.id

let dimension t = t.n

let mode t = t.mode

let history_of t name =
  match t.mode with
  | Whole_item -> None
  | Op_log { depth } ->
    Some
      (match Hashtbl.find_opt t.histories name with
      | Some history -> history
      | None ->
        let history = Edb_store.Item_history.create ~depth in
        Hashtbl.add t.histories name history;
        history)

let dbvv t = Vv.copy t.dbvv

let dbvv_view t = t.dbvv

let counters t = t.counters

let store t = t.store

let log_vector t = t.logs

let aux_log t = t.aux_log

let read t name =
  match Hashtbl.find_opt t.aux_items name with
  | Some aux -> Some aux.Item.value
  | None -> Option.map (fun (i : Item.t) -> i.value) (Store.find_opt t.store name)

let read_regular t name =
  Option.map (fun (i : Item.t) -> i.value) (Store.find_opt t.store name)

let item_vv t name =
  Option.map (fun (i : Item.t) -> Vv.copy i.ivv) (Store.find_opt t.store name)

let has_aux t name = Hashtbl.mem t.aux_items name

let aux_count t = Hashtbl.length t.aux_items

let aux_entries t =
  Hashtbl.fold (fun name (it : Item.t) acc -> (name, Vv.copy it.ivv) :: acc) t.aux_items []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let aux_vv t name =
  Option.map (fun (i : Item.t) -> Vv.copy i.ivv) (Hashtbl.find_opt t.aux_items name)

let conflicts t = t.conflicts

let clear_conflicts t = t.conflicts <- []

let declare_conflict t ~item ~local_vv ~remote_vv ~origin =
  touch t;
  let conflict = Conflict.make ~item ~node:t.id ~local_vv ~remote_vv ~origin in
  t.counters.conflicts_detected <- t.counters.conflicts_detected + 1;
  t.conflicts <- conflict :: t.conflicts;
  Log.info (fun m -> m "%a" Conflict.pp conflict);
  t.conflict_handler conflict

(* Bookkeeping common to every update applied to the regular copy: bump
   the item IVV and DBVV own-components, log the update (§5.3), and in
   op-log mode retain the operation for delta shipping. *)
let record_regular_update t (item : Item.t) ~op =
  touch t;
  Vv.incr item.ivv t.id;
  Vv.incr t.dbvv t.id;
  let seq = Vv.get t.dbvv t.id in
  Log_vector.add t.logs ~origin:t.id ~item:item.name ~seq;
  match history_of t item.name with
  | None -> ()
  | Some history ->
    Edb_store.Item_history.push history { Edb_store.Item_history.origin = t.id; seq; op }

let update t name op =
  t.counters.updates_applied <- t.counters.updates_applied + 1;
  match Hashtbl.find_opt t.aux_items name with
  | Some aux ->
    touch t;
    (* §5.3 first case: the record stores the IVV excluding this update. *)
    Aux_log.append t.aux_log { Aux_log.item = name; ivv = Vv.copy aux.ivv; op };
    Item.apply aux op;
    Vv.incr aux.ivv t.id
  | None ->
    let item = Store.find_or_create t.store name in
    Item.apply item op;
    record_regular_update t item ~op

(* ------------------------------------------------------------------ *)
(* SendPropagation (paper Figure 2)                                    *)
(* ------------------------------------------------------------------ *)

(* The request borrows the live DBVV rather than copying it: this is
   the per-pull allocation on the steady-state path. Sound because the
   request is consumed synchronously — [handle_propagation_request] only
   reads it, the wire codec serializes it immediately, and no caller
   retains it past the session. *)
let propagation_request t = { Message.recipient = t.id; recipient_dbvv = t.dbvv }

(* Op-log mode: can this item's missing updates be shipped as exactly
   the operations the recipient lacks? The recipient reflects, for each
   origin k, precisely the first [recipient_dbvv(k)] updates of k (the
   per-origin prefix property). A delta is provably complete iff for
   every origin that contributed updates to the item:
   - either the recipient already reflects the item's last k-update
     (log record seq <= recipient_dbvv(k)), or
   - the retained history still holds every k-op the recipient misses:
     all evicted k-ops have seq below the oldest retained k-entry, so
     it suffices that recipient_dbvv(k) >= oldest_retained_k - 1. *)
let delta_payload t (item : Item.t) ~recipient_dbvv =
  match history_of t item.name with
  | None -> None
  | Some history ->
    let threshold = Vv.to_array recipient_dbvv in
    let rec provable k =
      if k >= t.n then true
      else if Vv.get item.ivv k = 0 then provable (k + 1)
      else
        match Log_component.find_record (Log_vector.component t.logs k) item.name with
        | None ->
          (* No retained log record despite known k-updates (possible
             only in post-conflict states): cannot reason. *)
          false
        | Some last ->
          if last.Log_record.seq <= threshold.(k) then
            (* The recipient reflects every k-update to this item. *)
            provable (k + 1)
          else (
            match
              Edb_store.Item_history.oldest_seq_of_origin history ~origin:k
            with
            | None -> false
            | Some oldest ->
              if threshold.(k) >= oldest - 1 then provable (k + 1) else false)
    in
    if not (provable 0) then None
    else
      Some
        (List.map
           (fun (e : Edb_store.Item_history.entry) ->
             { Message.origin = e.origin; seq = e.seq; op = e.op })
           (Edb_store.Item_history.entries_after history ~threshold))

let handle_propagation_request t (req : Message.propagation_request) =
  let c = t.counters in
  c.vv_comparisons <- c.vv_comparisons + 1;
  if Vv.dominates_or_equal req.recipient_dbvv t.dbvv then begin
    c.noop_sessions <- c.noop_sessions + 1;
    Message.You_are_current
  end
  else begin
    c.propagation_sessions <- c.propagation_sessions + 1;
    let tails = Array.make t.n [] in
    (* Items flagged IsSelected while building the tails; the flags give
       the set union S in O(m) and are reset below (§6). *)
    let selected = ref [] in
    for k = 0 to t.n - 1 do
      if Vv.get t.dbvv k > Vv.get req.recipient_dbvv k then begin
        let records =
          Log_component.tail_after
            (Log_vector.component t.logs k)
            ~seq:(Vv.get req.recipient_dbvv k)
        in
        tails.(k) <- records;
        (* One traversal both counts the records and flags their items
           (no separate List.length pass). *)
        let examined = ref 0 in
        let flag (r : Log_record.t) =
          incr examined;
          match Store.find_opt t.store r.item with
          | None ->
            (* A logged update always concerns a materialized item. *)
            assert false
          | Some item ->
            if not item.is_selected then begin
              item.is_selected <- true;
              selected := item :: !selected
            end
        in
        List.iter flag records;
        c.log_records_examined <- c.log_records_examined + !examined
      end
    done;
    let ship (item : Item.t) =
      item.is_selected <- false;
      c.items_examined <- c.items_examined + 1;
      let value, ivv = Item.snapshot item in
      let payload =
        match t.mode with
        | Whole_item -> Message.Whole value
        | Op_log _ -> (
          match delta_payload t item ~recipient_dbvv:req.recipient_dbvv with
          | Some ops -> Message.Delta ops
          | None ->
            c.whole_fallbacks <- c.whole_fallbacks + 1;
            Message.Whole value)
      in
      { Message.name = item.name; payload; ivv }
    in
    let items = List.rev_map ship !selected in
    Message.Propagate { tails; items }
  end

(* ------------------------------------------------------------------ *)
(* IntraNodePropagation (paper Figure 4)                               *)
(* ------------------------------------------------------------------ *)

let intra_node_propagation t copied_items =
  let c = t.counters in
  let catch_up name =
    match Hashtbl.find_opt t.aux_items name with
    | None -> ()
    | Some aux ->
      let regular = Store.find_or_create t.store name in
      let rec drain () =
        match Aux_log.earliest t.aux_log name with
        | Some e ->
          c.vv_comparisons <- c.vv_comparisons + 1;
          (match Vv.compare_vv regular.ivv e.ivv with
          | Equal ->
            (* The regular copy has caught up to the exact state this
               deferred update was applied at: replay it as a fresh
               local update. *)
            Item.apply regular e.op;
            record_regular_update t regular ~op:e.op;
            Aux_log.remove_earliest t.aux_log name;
            c.aux_replays <- c.aux_replays + 1;
            drain ()
          | Concurrent ->
            declare_conflict t ~item:name ~local_vv:regular.ivv ~remote_vv:e.ivv
              ~origin:Conflict.Intra_node
          | Dominated ->
            (* The regular copy is still behind; wait for more
               propagation. *)
            ()
          | Dominates ->
            (* The paper asserts "v_i(x) can never dominate a version
               vector of an auxiliary record" (§5.1), but it can: if a
               remote update to x raced the deferred out-of-bound
               update, the regular copy moves strictly past the state
               the deferred update was applied at without containing
               it. Since the deferred update exists in no other
               replica, domination proves the histories diverged, so we
               declare the conflict rather than leave it latent
               (deviation documented in DESIGN.md §5). *)
            declare_conflict t ~item:name ~local_vv:regular.ivv ~remote_vv:e.ivv
              ~origin:Conflict.Intra_node)
        | None ->
          c.vv_comparisons <- c.vv_comparisons + 1;
          if Vv.dominates_or_equal regular.ivv aux.ivv then begin
            (* The regular copy has caught up with the auxiliary copy:
               discard the latter (Fig. 4, final comparison). *)
            touch t;
            Hashtbl.remove t.aux_items name
          end
      in
      drain ()
  in
  List.iter catch_up copied_items

(* ------------------------------------------------------------------ *)
(* AcceptPropagation (paper Figure 3)                                  *)
(* ------------------------------------------------------------------ *)

(* Record the resolver's output as a fresh local update so the resolved
   state dominates both conflicting ancestors and propagates normally
   (extension; see DESIGN.md §5). *)
let resolve_propagation_conflict t (local : Item.t) (sx : Message.shipped_item) resolver =
  let local_snapshot =
    { Message.name = local.name; payload = Message.Whole local.value; ivv = Vv.copy local.ivv }
  in
  let merged = Vv.copy local.ivv in
  Vv.merge_into merged ~from:sx.ivv;
  Vv.add_diff_into t.dbvv ~newer:merged ~older:local.ivv;
  let resolved_value = resolver ~local:local_snapshot ~remote:sx in
  local.value <- resolved_value;
  local.ivv <- merged;
  (* A whole-copy style overwrite: any retained history no longer
     describes a contiguous suffix of this value. *)
  (match history_of t local.name with
  | None -> ()
  | Some history -> Edb_store.Item_history.clear history);
  record_regular_update t local ~op:(Operation.Set resolved_value)

let accept_propagation t ~source reply =
  match reply with
  | Message.You_are_current -> { copied = []; conflicts = 0; resolved = 0 }
  | Message.Propagate { tails; items } ->
    (* Failpoints (see DESIGN.md, "Failure model"): a crash here leaves
       the node exactly as before the session... *)
    Fault.hit "accept.begin";
    let c = t.counters in
    let skip_records = Hashtbl.create 4 in
    let copied = ref [] in
    let conflict_count = ref 0 in
    let resolved_count = ref 0 in
    let consider (sx : Message.shipped_item) =
      (* ...a crash here leaves some shipped items applied and others
         not — torn, unless the caller journaled the whole reply
         first (Durable_node does)... *)
      Fault.hit "accept.item";
      let local = Store.find_or_create t.store sx.name in
      c.vv_comparisons <- c.vv_comparisons + 1;
      match Vv.compare_vv sx.ivv local.ivv with
      | Dominates -> (
        (* The received copy is strictly newer: adopt it and grow the
           DBVV by the extra updates it has seen (DBVV rule 3, §4.1). *)
        match sx.payload with
        | Message.Whole value ->
          touch t;
          Vv.add_diff_into t.dbvv ~newer:sx.ivv ~older:local.ivv;
          local.value <- value;
          local.ivv <- Vv.copy sx.ivv;
          (* The local history no longer describes a contiguous suffix
             of this value: forget it (op-log mode only). *)
          (match history_of t sx.name with
          | None -> ()
          | Some history -> Edb_store.Item_history.clear history);
          c.items_copied <- c.items_copied + 1;
          copied := sx.name :: !copied
        | Message.Delta ops ->
          (* Defensive completeness check: the shipped operations must
             account exactly for the per-origin IVV gap. The list is
             measured once here; every later use reuses the count. *)
          let n_ops = List.length ops in
          let expected = ref 0 in
          for k = 0 to t.n - 1 do
            expected := !expected + (Vv.get sx.ivv k - Vv.get local.ivv k)
          done;
          if n_ops <> !expected then begin
            Log.err (fun m ->
                m "node %d: delta for %S has %d ops, expected %d; skipping" t.id
                  sx.name n_ops !expected);
            Hashtbl.replace skip_records sx.name ()
          end
          else begin
            touch t;
            Vv.add_diff_into t.dbvv ~newer:sx.ivv ~older:local.ivv;
            List.iter
              (fun (dop : Message.delta_op) ->
                local.value <- Operation.apply local.value dop.op;
                match history_of t sx.name with
                | None -> ()
                | Some history ->
                  Edb_store.Item_history.push history
                    { Edb_store.Item_history.origin = dop.origin; seq = dop.seq; op = dop.op })
              ops;
            local.ivv <- Vv.copy sx.ivv;
            c.delta_ops_applied <- c.delta_ops_applied + n_ops;
            c.items_copied <- c.items_copied + 1;
            copied := sx.name :: !copied
          end)
      | Concurrent -> (
        match (t.policy, sx.payload) with
        | Resolve resolver, Message.Whole _ ->
          resolve_propagation_conflict t local sx resolver;
          incr resolved_count;
          c.items_copied <- c.items_copied + 1;
          copied := sx.name :: !copied
        | Report_only, _ | Resolve _, Message.Delta _ ->
          (* A conflicting delta cannot be resolved: the remote value is
             not reconstructible from ops against a diverged base. *)
          declare_conflict t ~item:sx.name ~local_vv:local.ivv ~remote_vv:sx.ivv
            ~origin:(Conflict.Propagation { source });
          incr conflict_count;
          Hashtbl.replace skip_records sx.name ())
      | Equal ->
        (* Identical copies; no tail record can reference this item in
           conflict-free operation, and stale re-sent records are
           filtered below. *)
        ()
      | Dominated ->
        (* "We do not consider the case when v_i(x) dominates v_j(x)
           because this cannot happen" (§5.1). Reachable only after an
           earlier conflict was reported; drop the stale records. *)
        Log.warn (fun m ->
            m "node %d: local copy of %S is newer than the shipped one" t.id sx.name);
        Hashtbl.replace skip_records sx.name ()
    in
    List.iter consider items;
    (* ...and a crash here has every item applied but no tail records,
       deflating the local logs relative to the DBVV. *)
    Fault.hit "accept.tail";
    (* Append the tails to the local logs (Fig. 3, second loop), skipping
       records of conflicting items and records the local log already
       subsumes (possible only in post-conflict states). *)
    let append_tail k records =
      let component = Log_vector.component t.logs k in
      let append (r : Log_record.t) =
        if not (Hashtbl.mem skip_records r.item) then begin
          c.log_records_examined <- c.log_records_examined + 1;
          if r.seq > Log_component.latest_seq component then
            Log_component.add component ~item:r.item ~seq:r.seq
        end
      in
      List.iter append records
    in
    Array.iteri append_tail tails;
    let copied = List.rev !copied in
    intra_node_propagation t copied;
    { copied; conflicts = !conflict_count; resolved = !resolved_count }

(* ------------------------------------------------------------------ *)
(* Out-of-bound copying (paper §5.2)                                   *)
(* ------------------------------------------------------------------ *)

let serve_out_of_bound t (req : Message.oob_request) =
  let snapshot (item : Item.t) =
    let value, ivv = Item.snapshot item in
    { Message.item = req.item; value; ivv }
  in
  match Hashtbl.find_opt t.aux_items req.item with
  | Some aux ->
    (* "Auxiliary copies are preferred ... the auxiliary copy is never
       older than the regular copy" (§5.2). *)
    snapshot aux
  | None -> snapshot (Store.find_or_create t.store req.item)

let accept_out_of_bound t ~source (reply : Message.oob_reply) =
  let c = t.counters in
  let local_vv =
    match Hashtbl.find_opt t.aux_items reply.item with
    | Some aux -> aux.Item.ivv
    | None -> (Store.find_or_create t.store reply.item).Item.ivv
  in
  c.vv_comparisons <- c.vv_comparisons + 1;
  match Vv.compare_vv reply.ivv local_vv with
  | Dominates ->
    touch t;
    let aux =
      match Hashtbl.find_opt t.aux_items reply.item with
      | Some aux -> aux
      | None ->
        let aux = Item.create ~name:reply.item ~n:t.n in
        Hashtbl.add t.aux_items reply.item aux;
        aux
    in
    (* Adopt data and IVV; the auxiliary log is deliberately left
       untouched (§5.2). *)
    aux.value <- reply.value;
    aux.ivv <- Vv.copy reply.ivv;
    c.oob_copies <- c.oob_copies + 1;
    `Adopted
  | Equal | Dominated -> `Already_current
  | Concurrent ->
    declare_conflict t ~item:reply.item ~local_vv ~remote_vv:reply.ivv
      ~origin:(Conflict.Out_of_bound { source });
    `Conflict

(* ------------------------------------------------------------------ *)
(* In-process sessions                                                 *)
(* ------------------------------------------------------------------ *)

let charge_message (c : Counters.t) bytes =
  c.messages <- c.messages + 1;
  c.bytes_sent <- c.bytes_sent + bytes

let pull ~recipient ~source =
  let req = propagation_request recipient in
  charge_message recipient.counters (Message.request_bytes req);
  let reply = handle_propagation_request source req in
  charge_message source.counters (Message.reply_bytes reply);
  match reply with
  | Message.You_are_current -> Already_current
  | Message.Propagate _ as reply ->
    Pulled (accept_propagation recipient ~source:source.id reply)

let sync_pair a b =
  let (_ : pull_result) = pull ~recipient:a ~source:b in
  let (_ : pull_result) = pull ~recipient:b ~source:a in
  ()

let fetch_out_of_bound ~recipient ~source name =
  let req = { Message.item = name } in
  charge_message recipient.counters (Message.oob_request_bytes req);
  let reply = serve_out_of_bound source req in
  charge_message source.counters (Message.oob_reply_bytes reply);
  accept_out_of_bound recipient ~source:source.id reply

(* ------------------------------------------------------------------ *)
(* State export / import                                               *)
(* ------------------------------------------------------------------ *)

module State = struct
  type item = { name : string; value : string; ivv : int array }

  type aux_record = { item : string; ivv : int array; op : Operation.t }

  type t = {
    id : int;
    n : int;
    items : item list;
    dbvv : int array;
    logs : (string * int) list array;
    aux_items : item list;
    aux_log : aux_record list;
  }
end

let export_state t =
  let item_state (it : Item.t) =
    { State.name = it.name; value = it.value; ivv = Vv.to_array it.ivv }
  in
  let items = Store.fold (fun acc it -> item_state it :: acc) [] t.store in
  let logs =
    Array.init t.n (fun origin ->
        List.map
          (fun (r : Log_record.t) -> (r.item, r.seq))
          (Log_component.to_list (Log_vector.component t.logs origin)))
  in
  let aux_items = Hashtbl.fold (fun _ it acc -> item_state it :: acc) t.aux_items [] in
  let aux_log =
    List.map
      (fun (r : Aux_log.record) ->
        { State.item = r.item; ivv = Vv.to_array r.ivv; op = r.op })
      (Aux_log.to_list t.aux_log)
  in
  {
    State.id = t.id;
    n = t.n;
    items;
    dbvv = Vv.to_array t.dbvv;
    logs;
    aux_items;
    aux_log;
  }

let import_state ?policy ?conflict_handler ?mode (state : State.t) =
  if Array.length state.dbvv <> state.n then
    invalid_arg "Node.import_state: DBVV dimension mismatch";
  if Array.length state.logs <> state.n then
    invalid_arg "Node.import_state: log vector dimension mismatch";
  let t = create ?policy ?conflict_handler ?mode ~id:state.id ~n:state.n () in
  let restore_item (st : State.item) =
    if Array.length st.ivv <> state.n then
      invalid_arg "Node.import_state: item IVV dimension mismatch";
    let it = Store.find_or_create t.store st.name in
    it.value <- st.value;
    it.ivv <- Vv.of_array st.ivv
  in
  List.iter restore_item state.items;
  (* [create] made a zero DBVV; overwrite it in place. *)
  Array.iteri (fun l v -> Vv.set t.dbvv l v) state.dbvv;
  Array.iteri
    (fun origin records ->
      List.iter
        (fun (item, seq) ->
          (* Log_component.add enforces the monotonic-seq invariant and
             rejects inconsistent snapshots. *)
          Log_vector.add t.logs ~origin ~item ~seq)
        records)
    state.logs;
  List.iter
    (fun (st : State.item) ->
      if Array.length st.ivv <> state.n then
        invalid_arg "Node.import_state: aux IVV dimension mismatch";
      let it = Item.create ~name:st.name ~n:state.n in
      it.value <- st.value;
      it.ivv <- Vv.of_array st.ivv;
      Hashtbl.replace t.aux_items st.name it)
    state.aux_items;
  List.iter
    (fun (r : State.aux_record) ->
      Aux_log.append t.aux_log { Aux_log.item = r.item; ivv = Vv.of_array r.ivv; op = r.op })
    state.aux_log;
  t

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let check_invariants ?(log_bound = true) t =
  (* DBVV = component-wise sum of regular item IVVs (§4.1). *)
  let sums = Array.make t.n 0 in
  Store.iter
    (fun item ->
      for l = 0 to t.n - 1 do
        sums.(l) <- sums.(l) + Vv.get item.Item.ivv l
      done)
    t.store;
  let rec check_sum l =
    if l >= t.n then Ok ()
    else if sums.(l) <> Vv.get t.dbvv l then
      Error
        (Printf.sprintf "DBVV[%d] = %d but item IVVs sum to %d" l (Vv.get t.dbvv l)
           sums.(l))
    else check_sum (l + 1)
  in
  let check_log_bound () =
    if (not log_bound) || t.conflicts <> [] then Ok ()
    else
      let rec loop k =
        if k >= t.n then Ok ()
        else
          let latest = Log_component.latest_seq (Log_vector.component t.logs k) in
          if latest > Vv.get t.dbvv k then
            Error
              (Printf.sprintf "log component %d newest seq %d exceeds DBVV[%d] = %d" k
                 latest k (Vv.get t.dbvv k))
          else loop (k + 1)
      in
      loop 0
  in
  let check_flags () =
    let stray = Store.fold (fun acc item -> acc || item.Item.is_selected) false t.store in
    if stray then Error "stray IsSelected flag outside a propagation computation"
    else Ok ()
  in
  match check_sum 0 with
  | Error _ as e -> e
  | Ok () -> (
    match Log_vector.check_invariants t.logs with
    | Error _ as e -> e
    | Ok () -> (
      match check_log_bound () with Error _ as e -> e | Ok () -> check_flags ()))

module Vv = Edb_vv.Version_vector
module Store = Edb_store.Store
module Item = Edb_store.Item
module Log_vector = Edb_log.Log_vector
module Aux_log = Edb_log.Aux_log

type t = {
  store : Store.t;
  dbvv : Vv.t;
  logs : Log_vector.t;
  aux_items : (string, Item.t) Hashtbl.t;
  aux_log : Aux_log.t;
  histories : (string, Edb_store.Item_history.t) Hashtbl.t;
}

let create ~n =
  {
    store = Store.create ~n;
    dbvv = Vv.create ~n;
    logs = Log_vector.create ~n;
    aux_items = Hashtbl.create 8;
    aux_log = Aux_log.create ();
    histories = Hashtbl.create 8;
  }

let aux_count t = Hashtbl.length t.aux_items

(** Deterministic item → shard mapping.

    Every node of a cluster must place a given item in the same shard,
    and the placement must survive process restarts and be independent
    of the replication factor [n] — otherwise two replicas would
    disagree about which per-shard DBVV covers an update and the
    summary-vector argument of DESIGN.md §7 collapses. The mapping is
    therefore a pure function of the item name alone: FNV-1a (64-bit)
    reduced modulo the shard count. *)

val hash : string -> int64
(** [hash name] is the raw FNV-1a 64-bit hash of [name]. Exposed so
    tests can pin golden vectors. *)

val shard_of : shards:int -> string -> int
(** [shard_of ~shards name] is the shard index in [0, shards) that owns
    [name]. [shards = 1] always yields [0] without hashing. Raises
    [Invalid_argument] if [shards <= 0]. *)

(** One shard's worth of replica state.

    A node is an array of these (see {!Node}): each shard is a
    self-contained copy of the paper's per-node state — store, DBVV,
    per-origin log vector, auxiliary structures, and (in op-log mode)
    bounded per-item histories. All protocol logic lives in
    {!Protocol}, which operates on one replica at a time; sequence
    numbers in [logs] are components of this shard's [dbvv], so the
    per-origin prefix property (paper §5.3) holds shard-locally.

    The record is deliberately transparent: the persistence layer,
    invariant checker and oracle read it directly. *)

type t = {
  store : Edb_store.Store.t;
  dbvv : Edb_vv.Version_vector.t;
  logs : Edb_log.Log_vector.t;
  aux_items : (string, Edb_store.Item.t) Hashtbl.t;
  aux_log : Edb_log.Aux_log.t;
  histories : (string, Edb_store.Item_history.t) Hashtbl.t;
      (** Per-item bounded op history; populated only in op-log mode. *)
}

val create : n:int -> t
(** [create ~n] is an empty shard replica of dimension [n]. *)

val aux_count : t -> int
(** Number of live auxiliary copies in this shard. *)

(** An in-process cluster of protocol nodes.

    Convenience layer used by tests, examples and the deterministic
    experiment tables: all nodes live in one address space and exchange
    messages synchronously. The discrete-event simulator in [edb_sim]
    layers virtual time, latency, loss and crashes on top of the same
    {!Node} API. *)

type t

val create :
  ?seed:int ->
  ?policy:Node.resolution_policy ->
  ?mode:Node.propagation_mode ->
  ?cache:bool ->
  ?shards:int ->
  n:int ->
  unit ->
  t
(** [create ~n ()] is a cluster of [n] fresh nodes. [seed] (default 42)
    drives peer selection in the random rounds; [mode] selects
    whole-item or op-log propagation for every node; [shards] (default
    1) is the shard count every node is created with (all nodes of a
    cluster must agree — see {!Node.create}).

    [cache] (default false) enables the peer-knowledge cache
    ({!Peer_cache}): {!pull} skips a session outright — zero messages,
    result {!Node.Already_current}, counted in
    [Counters.sessions_skipped_cached] — whenever a previous session
    proved it would be a no-op and the cluster {!epoch} shows nothing
    changed since. Skips are {e exact}: a cache-enabled cluster passes
    through bitwise the same states as a cache-disabled one on the same
    schedule (property-tested against the [lib/check] oracle). *)

val n : t -> int

val node : t -> int -> Node.t
(** [node t i] is node [i]. *)

val nodes : t -> Node.t array

val cache_enabled : t -> bool

val shards : t -> int
(** The common shard count of the cluster's nodes. *)

val epoch : t -> int
(** The cluster epoch: a strictly monotone value (bias + Σ node
    revisions) that changes whenever {e any} node's state changes —
    including across {!replace_node} rollbacks, which advance the bias
    past every value the old node contributed. Equal epochs at two
    reads prove the interval was mutation-free; this gates cached
    session skips (see {!Peer_cache}). *)

val replace_node : t -> int -> Node.t -> unit
(** [replace_node t i node] installs [node] as member [i] — used by the
    persistence layer to swap in a node recovered from a checkpoint.
    The node's id and dimension must match. Advances the {!epoch} past
    anything the old member contributed and forgets every other node's
    cached knowledge about peer [i] (the checkpoint may be a rollback,
    which breaks the DBVV-monotonicity assumption cached lower bounds
    rest on). *)

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit
(** [update t ~node ~item op] performs a user update at that node. *)

val read : t -> node:int -> item:string -> string option

val pull : ?domains:int -> t -> recipient:int -> source:int -> Node.pull_result
(** One propagation session between two cluster nodes. With [~cache]
    enabled the session may be skipped entirely (result
    [Already_current], zero messages) when cached peer knowledge proves
    it would be a no-op; a session that does run updates both nodes'
    peer caches (summary and, for sharded nodes, per-shard lower
    bounds). [domains] bounds per-shard parallelism inside the session
    (see {!Node.pull}). *)

val fetch_out_of_bound : t -> recipient:int -> source:int -> string -> Node.oob_result

val random_pull_round : ?domains:int -> t -> unit
(** Every node pulls from one uniformly random other node — one round of
    randomized anti-entropy. A no-op on a singleton cluster (there is
    nobody to pull from). *)

val ring_pull_round : ?domains:int -> t -> unit
(** Node [i] pulls from node [(i + n - 1) mod n] — a deterministic
    schedule in which every node eventually propagates transitively from
    every other (paper Theorem 5 hypothesis). *)

val converged : t -> bool
(** Whether all regular replicas are identical (equal summary and
    per-shard DBVVs, equal item values and IVVs) and no auxiliary
    copies remain pending. *)

val sync_until_converged : ?max_rounds:int -> ?domains:int -> t -> int
(** Runs {!random_pull_round} until {!converged}; returns the number of
    rounds used. Raises [Failure] after [max_rounds] (default 10_000).
    [domains] bounds per-shard parallelism inside each session. *)

val total_counters : t -> Edb_metrics.Counters.t
(** The field-wise sum of all nodes' counters. *)

val reset_counters : t -> unit

val check_invariants : t -> (unit, string) result
(** Every node's {!Node.check_invariants}. *)

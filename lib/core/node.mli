(** A replication node running the paper's protocol (§4–§5).

    Per-node state (paper §4) now lives in one or more shard replicas
    ({!Replica.t}): each shard is a self-contained store + DBVV + log
    vector + auxiliary structures unit, and items are mapped to shards
    by the deterministic hash {!Shard_map.shard_of}. The node itself is
    a thin shell that routes operations to the owning shard, maintains
    the {e summary DBVV} (component-wise sum of the shard DBVVs — the
    O(n) you-are-current answer regardless of the shard count), and
    runs propagation sessions per shard, skipping shards the recipient
    already dominates (counter [shards_skipped]). With [shards = 1]
    (the default) every wire byte, WAL byte and counter is identical to
    the pre-sharding node. See DESIGN.md §7.

    The protocol procedures map one-to-one onto the paper's figures
    (the bodies live in {!Protocol}):

    - {!update} — §5.3;
    - {!handle_propagation_request} — [SendPropagation], Figure 2,
      including the [IsSelected] O(m) set-union trick of §6;
    - {!accept_propagation} — [AcceptPropagation], Figure 3, followed by
      [IntraNodePropagation], Figure 4;
    - {!serve_out_of_bound} / {!accept_out_of_bound} — §5.2.

    All computational work is charged to the node's
    {!Edb_metrics.Counters.t}; message counts and bytes are charged by
    the session helpers {!pull} and {!fetch_out_of_bound} (or by the
    simulator when it delivers messages itself). *)

type t

type resolution_policy = Protocol.resolution_policy =
  | Report_only
      (** The paper's behaviour: declare the conflict, skip the item,
          drop its records from the received tails (Fig. 3). *)
  | Resolve of (local:Message.shipped_item -> remote:Message.shipped_item -> string)
      (** Extension (see DESIGN.md §5): on a propagation conflict, adopt
          the merged version vector, set the value returned by the
          resolver, and record the resolution as a fresh local update so
          it propagates and dominates both ancestors. Resolvers receive
          [Whole] payloads; a conflicting [Delta] item (op-log mode) is
          always report-only, since the remote value cannot be
          reconstructed from operations against a diverged base. *)

type propagation_mode = Protocol.propagation_mode =
  | Whole_item
      (** Ship full item values — the paper's presentation choice
          ("We chose whole data copying as the presentation context",
          §2). *)
  | Op_log of { depth : int }
      (** Ship update records instead (the paper's alternative
          transport, §2; what Oracle Symmetric Replication does). Each
          replica retains the last [depth] operations per item, tagged
          with origin and per-shard sequence number. An item is shipped
          as a [Delta] when the source can prove, from the recipient's
          per-shard DBVV and its retained history, that the shipped
          operations are exactly the missing suffix; otherwise it falls
          back to a [Whole] copy (counted in
          [Counters.whole_fallbacks]). All nodes of a cluster must use
          the same mode. *)

type accept_result = Protocol.accept_result = {
  copied : string list;
      (** Items adopted from the source, in arrival order (ascending
          shard order for sharded sessions). *)
  conflicts : int;  (** Conflicts declared while accepting. *)
  resolved : int;  (** Conflicts auto-resolved (only with [Resolve _]). *)
}

type pull_result =
  | Already_current  (** The source answered "you-are-current". *)
  | Pulled of accept_result

type oob_result = [ `Adopted | `Already_current | `Conflict ]

val create :
  ?policy:resolution_policy ->
  ?conflict_handler:(Conflict.t -> unit) ->
  ?mode:propagation_mode ->
  ?shards:int ->
  id:int ->
  n:int ->
  unit ->
  t
(** [create ~id ~n ()] is a fresh node [id] in a replica set of size
    [n], with empty database. [id] must lie in [\[0, n)]. [shards]
    (default 1) partitions the database into that many independent
    shard replicas; all nodes of a cluster must use the same shard
    count (sessions between nodes with different shard counts are
    rejected). *)

(** {1 Accessors} *)

val id : t -> int

val dimension : t -> int

val mode : t -> propagation_mode

val shards : t -> int
(** The shard count fixed at creation. *)

val replica : t -> int -> Replica.t
(** [replica t s] is shard [s]'s state. Read-only by convention (like
    {!store}); used by the persistence layer and the invariant
    checker. *)

val shard_of_item : t -> string -> int
(** The shard that owns [item] — [Shard_map.shard_of] at this node's
    shard count. *)

val dbvv : t -> Edb_vv.Version_vector.t
(** [dbvv t] is a snapshot copy of the node's summary database version
    vector (the single DBVV when unsharded). *)

val dbvv_view : t -> Edb_vv.Version_vector.t
(** The live summary database version vector itself, not a copy.
    Read-only by convention (like {!store}); mutating it bypasses the
    protocol. Use on hot paths — steady-state convergence checks and
    cached-skip decisions — where the per-call copy of {!dbvv} is
    measurable. *)

val shard_dbvv_view : t -> int -> Edb_vv.Version_vector.t
(** The live per-shard DBVV of the given shard (read-only by
    convention). *)

val shard_dbvvs : t -> Edb_vv.Version_vector.t array
(** Snapshot copies of every shard DBVV, indexed by shard. *)

val revision : t -> int
(** A monotone counter bumped on every state mutation (user updates,
    adoptions, conflict declarations, auxiliary transitions). The sum
    over a cluster's nodes is that cluster's {e epoch}: if two reads of
    the epoch agree, no node state changed in between. Volatile — not
    part of {!State.t}; see {!Peer_cache}. *)

val peer_cache : t -> Peer_cache.t
(** This node's cached knowledge about its peers. Maintained by
    {!Cluster.pull} when the cluster enables caching; volatile (a
    restored node starts with an empty cache). *)

val wire_version : t -> int
(** The highest wire-codec version this node's framed transports may
    speak ({!Peer_cache.own_wire_version}); the frame layer's maximum
    unless pinned by {!set_wire_version}. *)

val set_wire_version : t -> int -> unit
(** Pin this node's spoken wire-codec version (e.g. keep a node on v1
    in a mixed-version fleet). [Invalid_argument] below 1. *)

val counters : t -> Edb_metrics.Counters.t
(** The node's live cost counters (mutable; reset between experiments). *)

val store : t -> Edb_store.Store.t
(** The regular item store of an {e unsharded} node. Exposed read-only
    by convention — mutating it directly bypasses version accounting.
    Raises [Invalid_argument] when [shards > 1]; use {!replica} or the
    item iterators below instead. *)

val log_vector : t -> Edb_log.Log_vector.t
(** The log vector of an unsharded node; [Invalid_argument] when
    [shards > 1]. *)

val aux_log : t -> Edb_log.Aux_log.t
(** The auxiliary log of an unsharded node; [Invalid_argument] when
    [shards > 1]. *)

val iter_items : (Edb_store.Item.t -> unit) -> t -> unit
(** Visit every regular item across all shards, in ascending shard
    order and ascending name order within a shard. *)

val fold_items : ('acc -> Edb_store.Item.t -> 'acc) -> 'acc -> t -> 'acc
(** Fold over every regular item, same order as {!iter_items}. *)

val find_item : t -> string -> Edb_store.Item.t option
(** The regular item replica, looked up in its owning shard. *)

val read : t -> string -> string option
(** [read t item] is the user-visible value: the auxiliary copy when one
    exists (user operations use auxiliary data, §5.2–5.3), else the
    regular copy. [None] if the item was never materialized. *)

val read_regular : t -> string -> string option
(** The regular copy's value only, ignoring auxiliary data. *)

val item_vv : t -> string -> Edb_vv.Version_vector.t option
(** The regular copy's IVV (a snapshot copy). *)

val has_aux : t -> string -> bool
(** Whether an auxiliary copy of the item currently exists. *)

val aux_count : t -> int
(** Number of auxiliary copies currently held across all shards — O(P);
    lets convergence checks skip the per-item {!has_aux} scan. *)

val aux_vv : t -> string -> Edb_vv.Version_vector.t option
(** The auxiliary copy's IVV, when one exists (a snapshot copy). *)

val aux_entries : t -> (string * Edb_vv.Version_vector.t) list
(** Every auxiliary copy as [(item, ivv snapshot)], sorted by item
    name. Read-only inspection hook for the invariant checker
    ([lib/check]), which cross-checks auxiliary copies against the
    auxiliary log (§4.3–4.4). *)

val conflicts : t -> Conflict.t list
(** All conflicts declared at this node, most recent first. *)

val clear_conflicts : t -> unit

(** {1 User operations (§5.3)} *)

val update : t -> string -> Edb_store.Operation.t -> unit
(** [update t item op] performs a user update: on the auxiliary copy —
    appending an auxiliary log record carrying the pre-update IVV and
    the operation — if one exists, otherwise on the regular copy,
    bumping the IVV and the owning shard's DBVV (and summary DBVV)
    own-components and appending the shard's regular log record
    [(item, V_ii)]. *)

val set_update_hook : t -> (Message.push_update -> unit) option -> unit
(** Install (or clear) the local-update hook: fired after every user
    update applied to a {e regular} copy, with the update in push-stream
    shape (item, assigned sequence number, post-update IVV snapshot,
    value). The realtime push channel ([Edb_push.Channel]) uses it to
    enqueue the update for best-effort streaming. Deliberately
    best-effort: auxiliary-path updates, conflict resolutions and
    auxiliary replays do not fire it — anti-entropy carries those. *)

(** {1 Realtime push (best-effort hot path; DESIGN.md §10)} *)

val apply_push : t -> source:int -> Message.push_update -> [ `Applied | `Stale ]
(** Apply a pushed update iff it is {e causally fresh}: exactly the
    next update this node expects from [source] (its sequence number is
    the owning shard's DBVV component for [source] plus one, and its
    IVV is the local regular IVV plus one [source]-tick). A fresh push
    is adopted through the ordinary Figure 3 acceptance path as a
    one-record delta, so every invariant argument of anti-entropy
    applies unchanged; anything else is counted [push_stale] and
    dropped without touching any state (stale pushes never materialize
    items). Raises [Invalid_argument] if [source] is out of range or
    this node itself. *)

(** {1 Update propagation (§5.1)} *)

val propagation_request : t -> Message.propagation_request
(** The request the recipient sends to start a session: its summary
    DBVV plus, when sharded, its per-shard DBVVs. The request
    {e borrows} the live vectors (no copy — this is the per-pull
    allocation on the steady-state path): consume it synchronously,
    i.e. hand it to {!handle_propagation_request} or serialize it
    before the requesting node applies any further update. *)

val propagation_request_owned : t -> Message.propagation_request
(** Like {!propagation_request} but with snapshot copies of every
    vector, safe to retain — what a transported (simulator) request
    must carry. *)

val handle_propagation_request :
  ?domains:int -> t -> Message.propagation_request -> Message.propagation_reply
(** [SendPropagation] (Fig. 2), executed at the source. O(1) when the
    recipient is current (one summary-vector comparison regardless of
    the shard count), O(m) otherwise (§6). Sharded sessions compare
    per-shard DBVVs and skip converged shards individually (counter
    [shards_skipped]); with [domains > 1] the per-shard deltas are
    built in parallel (identical result and counters — the per-shard
    scratch counters merge commutatively). Raises [Invalid_argument]
    when the request's shard count differs from this node's. *)

val accept_propagation :
  ?domains:int -> t -> source:int -> Message.propagation_reply -> accept_result
(** [AcceptPropagation] (Fig. 3) followed by [IntraNodePropagation]
    (Fig. 4), executed at the recipient — per shard for sharded
    replies, in ascending shard order. Records referring to conflicting
    items are dropped from the tails before they are appended to the
    local logs; stale records (sequence number not above the local
    component's newest — possible only after an earlier,
    already-reported conflict) are skipped. With [domains > 1] shards
    are accepted in parallel against scratch sinks merged in shard
    order, which is deterministic; conflict {e handlers} then run after
    the parallel section rather than interleaved, so a handler that
    mutates the node requires [domains = 1] (the default). *)

val intra_node_propagation : t -> string list -> unit
(** [IntraNodePropagation] (Fig. 4) over the given items, each routed
    to its owning shard. Called automatically by {!accept_propagation}
    on the items it copied; exposed for direct testing. *)

(** {1 Out-of-bound copying (§5.2)} *)

val serve_out_of_bound : t -> Message.oob_request -> Message.oob_reply
(** The source's answer: its auxiliary copy if one exists (never older
    than the regular copy), else the regular copy. *)

val accept_out_of_bound : t -> source:int -> Message.oob_reply -> oob_result
(** Adopt the reply as the new auxiliary copy if it strictly dominates
    the local freshest copy; ignore it if equal or older; declare a
    conflict otherwise. Regular structures are never touched. *)

(** {1 Whole sessions between in-process nodes} *)

val pull : ?domains:int -> recipient:t -> source:t -> unit -> pull_result
(** One propagation session: recipient sends its DBVV(s), source runs
    [SendPropagation], recipient runs [AcceptPropagation]. Message
    counts and bytes are charged to each sender's counters. [domains]
    bounds the per-shard parallelism of both halves (default 1 =
    sequential). Raises [Invalid_argument] if the two nodes' shard
    counts differ. *)

val sync_pair : ?domains:int -> t -> t -> unit
(** [sync_pair a b] pulls in both directions ([a] from [b], then [b]
    from [a]), the usual full anti-entropy exchange. *)

val fetch_out_of_bound : recipient:t -> source:t -> string -> oob_result
(** One out-of-bound session for the given item. *)

(** {1 State export / import}

    A faithful, self-contained value representation of a node's entire
    durable state, used by the persistence layer ([edb_persist]) to
    checkpoint and recover nodes. Export and re-import round-trips
    every structure the protocol depends on, shard by shard: items with
    IVVs, the per-shard DBVV, the per-shard log vector (in origin
    order), auxiliary copies and the auxiliary log (in arrival order).
    Exports are deterministic by construction: item lists are in
    ascending name order (the store iterates sorted), auxiliary items
    are sorted, and the summary DBVV is re-derived on import. *)

module State : sig
  type item = { name : string; value : string; ivv : int array }

  type aux_record = { item : string; ivv : int array; op : Edb_store.Operation.t }

  type shard = {
    items : item list;  (** Ascending name order. *)
    dbvv : int array;
    logs : (string * int) list array;  (** Per origin, [(item, seq)] oldest first. *)
    aux_items : item list;  (** Ascending name order. *)
    aux_log : aux_record list;  (** Oldest first. *)
  }

  type t = { id : int; n : int; shards : shard array }
end

val export_state : t -> State.t
(** [export_state t] is a deep copy of [t]'s durable state. Volatile
    state (counters, conflict reports, scratch flags, the peer cache)
    is not part of it. *)

val import_state :
  ?policy:resolution_policy ->
  ?conflict_handler:(Conflict.t -> unit) ->
  ?mode:propagation_mode ->
  State.t ->
  t
(** [import_state state] reconstructs a node with
    [Array.length state.shards] shards. Raises [Invalid_argument] if
    the state is structurally inconsistent (bad dimensions,
    non-monotonic log sequences). The reconstructed node satisfies
    {!check_invariants} whenever the exported one did. Per-item op
    histories are volatile and not part of the state: a node restored
    in [Op_log] mode starts with empty histories and safely falls back
    to whole-item shipping until new updates refill them. *)

(** {1 Membership reshape}

    The two surgeries a membership change applies to a node's vector
    state. Both rebuild the node through {!export_state} / pure array
    surgery / {!import_state}, carry the cost counters and conflict
    reports over, and come back with a cold peer cache (stale proven
    DBVVs of the old dimension cannot survive). The caller — the
    membership layer — is responsible for applying the same surgery to
    every member so dimensions agree again before the next session. *)

val extend_dimension : t -> t
(** [extend_dimension t] is [t] rebuilt over [dimension t + 1] origins:
    every DBVV, item IVV, aux IVV and the log vector gain a zero-valued
    final component for the newly joined site. The node's own id is
    unchanged. Appending a zero preserves every existing comparison. *)

val retire_component : t -> slot:int -> t
(** [retire_component t ~slot] is [t] rebuilt over [dimension t - 1]
    origins: component [slot] is dropped from every DBVV, item IVV, aux
    IVV, and the retired origin's log-vector slot (its update records)
    is discarded. Ids above [slot] shift down by one so the id space
    stays dense; [t]'s own id is renamed accordingly. Only safe once a
    completed retirement fence proves every live replica holds the
    identical value in component [slot] (then the uniform drop
    preserves all comparisons — see DESIGN.md §11). Charges
    [vector_components_gced] with the number of components physically
    removed. Raises [Invalid_argument] if [slot] is out of range or is
    [t]'s own slot. *)

(** {1 Introspection} *)

val check_invariants : ?log_bound:bool -> t -> (unit, string) result
(** Verifies the node-local structural invariants, shard by shard:
    - shard DBVV [V_i\[l\] = Σ_x v_i(x)\[l\]] for every origin [l] — each
      shard's DBVV counts exactly the updates reflected by its regular
      items (§4.1);
    - every log component is ordered and deduplicated with a consistent
      pointer map (§4.2);
    - when the node has seen no conflicts, component [k]'s newest record
      has sequence number at most the shard's [V_i\[k\]];
    - no item carries a stray [IsSelected] flag outside a propagation
      computation (§6);
    - the summary DBVV equals the component-wise sum of the shard
      DBVVs.

    The [seq <= V_i\[k\]] bound is a consequence of the per-origin
    prefix property, which a report-only conflict breaks {e globally}:
    once {e any} node skips a conflicting item's records, other — still
    conflict-free — nodes can legitimately adopt later records of that
    origin without ever reflecting the skipped update. Callers with
    system-wide knowledge (the cluster, the [lib/check] monitors) pass
    [~log_bound:false] once any node of the system has declared a
    conflict; the default [true] applies the bound, still skipping it
    when this node itself has conflicts. *)

(* FNV-1a, 64-bit. Chosen because it is trivially portable: the mapping
   must agree across nodes and across processes, so it cannot depend on
   [Hashtbl.hash] (whose value is not pinned across OCaml releases) or
   on any seeded hash. *)

let fnv_offset_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash name =
  let h = ref fnv_offset_basis in
  for i = 0 to String.length name - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get name i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let shard_of ~shards name =
  if shards <= 0 then invalid_arg "Shard_map.shard_of: shards must be positive";
  if shards = 1 then 0
  else
    (* [Int64.to_int] truncates to the native 63-bit int, so a logical
       shift alone can still land negative; mask the sign bit away
       after truncation so the remainder is non-negative. *)
    let h = Int64.to_int (Int64.shift_right_logical (hash name) 1) land max_int in
    h mod shards

(** The paper's Figure 2/3/4 logic as pure-ish functions over one shard
    replica.

    {!Node} owns an array of {!Replica.t} and a summary DBVV; this
    module holds the protocol itself, parameterized by a {!ctx} that
    carries the per-node ambient state (identity, mode, policy,
    counters, the summary vector to mirror DBVV growth into, and sinks
    for conflicts and revision bumps). Splitting the logic out keeps
    [Node] a thin routing shell and lets sharded acceptance run each
    shard against its own scratch context (see [Node.pull ~domains]). *)

module Vv := Edb_vv.Version_vector

type resolution_policy =
  | Report_only
      (** Detect and report conflicts; leave both copies diverged
          (the paper's §7 default). *)
  | Resolve of (local:Message.shipped_item -> remote:Message.shipped_item -> string)
      (** Deterministic application-level resolver: given both copies,
          produce the merged value, recorded as a fresh local update. *)

type propagation_mode =
  | Whole_item  (** Ship full item values (the paper's presentation). *)
  | Op_log of { depth : int }
      (** Ship exact operation deltas when a bounded per-item history
          (most recent [depth] ops) can prove them complete; fall back
          to whole values otherwise. *)

type accept_result = {
  copied : string list;  (** Names adopted, in shipment order. *)
  conflicts : int;
  resolved : int;
}

type ctx = {
  node_id : int;
  n : int;
  mode : propagation_mode;
  policy : resolution_policy;
  counters : Edb_metrics.Counters.t;
  summary : Vv.t;
      (** The node's summary DBVV; every DBVV mutation is mirrored here
          unless it is physically the replica's own vector (the
          unsharded case), which the implementation detects with [==]. *)
  declare_conflict :
    item:string -> local_vv:Vv.t -> remote_vv:Vv.t -> origin:Conflict.origin -> unit;
  touch : unit -> unit;  (** Revision bump (cache epoch). *)
}

val history_of : ctx -> Replica.t -> string -> Edb_store.Item_history.t option

val record_regular_update : ctx -> Replica.t -> Edb_store.Item.t -> op:Edb_store.Operation.t -> unit

val update : ctx -> Replica.t -> string -> Edb_store.Operation.t -> unit
(** Apply a user update (paper §5.3): to the auxiliary copy with an
    aux-log record if one exists, else to the regular copy. *)

val build_delta :
  ctx ->
  Replica.t ->
  recipient_vv:Vv.t ->
  Edb_log.Log_record.t list array * Message.shipped_item list
(** The Fig. 2 body for one shard: per-origin log tails past
    [recipient_vv] (the recipient's DBVV for this shard) and the set S
    of referenced items. The dominance test and per-session counters
    are the caller's job. *)

val handle_request : ctx -> Replica.t -> Message.propagation_request -> Message.propagation_reply
(** The unsharded SendPropagation (Fig. 2), verbatim pre-refactor:
    dominance test against [recipient_dbvv], then {!build_delta}. *)

val intra_node_propagation : ctx -> Replica.t -> string list -> unit
(** Fig. 4: for each named item, replay deferred aux-log updates onto
    the regular copy while the IVVs allow, then discard the auxiliary
    copy once the regular copy has caught up. *)

val accept_delta :
  ctx ->
  Replica.t ->
  source:int ->
  tails:Edb_log.Log_record.t list array ->
  items:Message.shipped_item list ->
  accept_result
(** The Fig. 3 body for one shard's delta, including the trailing
    {!intra_node_propagation} over the copied items. The caller hits
    the ["accept.begin"] failpoint once per session. *)

val serve_out_of_bound : Replica.t -> Message.oob_request -> Message.oob_reply

val accept_out_of_bound :
  ctx ->
  Replica.t ->
  source:int ->
  Message.oob_reply ->
  [ `Adopted | `Already_current | `Conflict ]

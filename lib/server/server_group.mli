(** Multiple databases over one set of servers (paper §2).

    "When the system maintains multiple databases, a separate instance
    of the protocol runs for each database." A server group hosts any
    number of named databases on the same [n] servers; each database is
    an independent protocol instance (its own DBVVs, log vectors and
    auxiliary structures), so anti-entropy for one database never
    touches another — a hot database can sync every minute while an
    archive syncs nightly.

    The group also wires in the persistence layer: one server's state
    across {e all} its databases can be checkpointed into a directory
    (one snapshot file per database plus a manifest) and swapped back
    in after a crash. *)

type t

val create : ?seed:int -> n:int -> unit -> t
(** [create ~n ()] is a group of [n] servers hosting no databases. *)

val n : t -> int

val create_database :
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?shards:int ->
  t ->
  string ->
  (unit, string) result
(** [create_database t name] starts a new protocol instance ([shards]
    per-node shard count, default 1). Fails if the name is taken. *)

val drop_database : t -> string -> (unit, string) result

val databases : t -> string list
(** Sorted database names. *)

val cluster : t -> string -> (Edb_core.Cluster.t, string) result
(** The protocol instance behind a database, for direct access. *)

val update :
  t -> db:string -> node:int -> item:string -> Edb_store.Operation.t ->
  (unit, string) result

val read : t -> db:string -> node:int -> item:string -> (string option, string) result

val pull :
  t -> db:string -> recipient:int -> source:int ->
  (Edb_core.Node.pull_result, string) result
(** One propagation session within one database. *)

val anti_entropy_round : t -> db:string -> (unit, string) result
(** One random-peer round for that database only. *)

val sync_database : t -> db:string -> (int, string) result
(** Random rounds until the database converges; returns the rounds
    used. *)

val sync_all : ?domains:int -> t -> (string * int) list
(** {!sync_database} for every database. [domains] (default 1) fans the
    databases out over that many OCaml domains; domains left over after
    one per database are given to each cluster for intra-pair per-shard
    parallelism (see {!Edb_core.Node.pull}). Databases are
    share-nothing protocol instances with independent, deterministically
    seeded PRNGs, so the result — rounds per database {e and} every
    replica's final state — is bitwise-identical to the sequential run
    regardless of [domains]. A database that exceeds its round budget
    reports [-1]. *)

val sync_database_wire : ?domains:int -> t -> db:string -> (int, string) result
(** Like {!sync_database}, but every session runs over real encoded
    frames ({!Edb_persist.Frame}): wire-codec version negotiation,
    delta-encoded request DBVVs, and
    {!Edb_metrics.Counters.t.wire_bytes_sent} charged from actual frame
    lengths. Uses deterministic ring rounds, so the byte accounting is
    reproducible; returns the rounds used. *)

val sync_all_wire : ?domains:int -> t -> (string * int) list
(** {!sync_database_wire} for every database, with {!sync_all}'s domain
    fan-out and round-budget conventions ([-1] on budget exhaustion). *)

val anti_entropy_all : ?domains:int -> t -> unit
(** One {!Edb_core.Cluster.random_pull_round} on every database, with
    the same optional domain fan-out and the same determinism guarantee
    as {!sync_all}. *)

val converged : t -> bool
(** Whether every database has converged. *)

val total_counters : t -> Edb_metrics.Counters.t
(** Summed over all databases and servers. *)

(** {1 Server checkpointing} *)

val save_server : t -> dir:string -> node:int -> (unit, string) result
(** [save_server t ~dir ~node] checkpoints server [node]'s replica of
    every database into [dir]: a manifest plus one snapshot file per
    database. The directory is created if missing. *)

val restore_server : t -> dir:string -> node:int -> (unit, string) result
(** [restore_server t ~dir ~node] replaces server [node]'s replica of
    every database listed in the manifest with the checkpointed state.
    Databases in the manifest must still exist in the group. The
    restored replicas rejoin the epidemic exactly like a server that
    was disconnected since the checkpoint. *)

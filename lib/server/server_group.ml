module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Counters = Edb_metrics.Counters
module Snapshot = Edb_persist.Snapshot
module Codec = Edb_persist.Codec
module Frame = Edb_persist.Frame

type database = { cluster : Cluster.t; mode : Node.propagation_mode option }

type t = {
  n : int;
  seed : int;
  databases : (string, database) Hashtbl.t;
  mutable next_db_seed : int;
}

let create ?(seed = 42) ~n () =
  if n <= 0 then invalid_arg "Server_group.create: n must be positive";
  { n; seed; databases = Hashtbl.create 4; next_db_seed = seed }

let n t = t.n

let create_database ?policy ?mode ?shards t name =
  if Hashtbl.mem t.databases name then
    Error (Printf.sprintf "database %S already exists" name)
  else begin
    t.next_db_seed <- t.next_db_seed + 1;
    let cluster =
      Cluster.create ~seed:t.next_db_seed ?policy ?mode ?shards ~n:t.n ()
    in
    Hashtbl.add t.databases name { cluster; mode };
    Ok ()
  end

let drop_database t name =
  if Hashtbl.mem t.databases name then begin
    Hashtbl.remove t.databases name;
    Ok ()
  end
  else Error (Printf.sprintf "no database %S" name)

let databases t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.databases [])

let find t name =
  match Hashtbl.find_opt t.databases name with
  | Some db -> Ok db
  | None -> Error (Printf.sprintf "no database %S" name)

let cluster t name = Result.map (fun db -> db.cluster) (find t name)

let update t ~db ~node ~item op =
  Result.map (fun c -> Cluster.update c ~node ~item op) (cluster t db)

let read t ~db ~node ~item =
  Result.map (fun c -> Cluster.read c ~node ~item) (cluster t db)

let pull t ~db ~recipient ~source =
  Result.map (fun c -> Cluster.pull c ~recipient ~source) (cluster t db)

let anti_entropy_round t ~db =
  Result.map (fun c -> Cluster.random_pull_round c) (cluster t db)

let sync_database t ~db =
  Result.map (fun c -> Cluster.sync_until_converged c) (cluster t db)

(* Framed sync: the same convergence loop, but every session runs over
   real encoded frames ({!Edb_persist.Frame}) — version negotiation,
   DBVV deltas, and [wire_bytes_sent] charged from actual frame
   lengths, where the unframed paths charge only the modeled
   [bytes_sent]. Deterministic ring rounds (a quiet ring converges in
   at most [n - 1] of them) keep the byte accounting reproducible. *)
let wire_ring_round ~domains cluster =
  let n = Cluster.n cluster in
  for i = 0 to n - 1 do
    let recipient = Cluster.node cluster i in
    let source = Cluster.node cluster ((i + 1) mod n) in
    let (_ : Node.pull_result) = Frame.pull ~domains ~recipient ~source () in
    ()
  done

let sync_cluster_wire ?(max_rounds = 10_000) ~domains cluster =
  let rec loop rounds =
    if Cluster.converged cluster then rounds
    else if rounds >= max_rounds then
      failwith
        (Printf.sprintf
           "Server_group.sync_database_wire: not converged after %d rounds"
           max_rounds)
    else begin
      wire_ring_round ~domains cluster;
      loop (rounds + 1)
    end
  in
  loop 0

let sync_database_wire ?(domains = 1) t ~db =
  Result.map (fun c -> sync_cluster_wire ~domains c) (cluster t db)

(* ------------------------------------------------------------------ *)
(* Parallel fan-out over databases                                     *)
(* ------------------------------------------------------------------ *)

(* Databases are share-nothing protocol instances — separate clusters,
   separate PRNGs (deterministically seeded at creation), separate
   counters — so fanning work out over domains cannot race and the
   result is bitwise-identical to the sequential order: tasks are
   indexed up front and each domain writes only its own slots.

   Workers are clamped to the runtime's recommended domain count: on a
   single-core container [~domains:4] must degrade to the sequential
   [Array.map] at zero overhead, not spawn three domains (~1 ms each)
   that only contend for the one CPU — that spawn cost was the whole
   `e16 sync-all domains=4` regression. *)
let parallel_map ~domains f items =
  let len = Array.length items in
  let workers =
    min (min (max 1 domains) (Domain.recommended_domain_count ())) len
  in
  if workers <= 1 then Array.map f items
  else begin
    let results = Array.make len None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < len then begin
          results.(i) <- Some (f items.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function Some r -> r | None -> assert false)
      results
  end

(* Pre-resolve the clusters so domains never touch the databases
   hashtable. *)
let database_clusters t =
  List.filter_map
    (fun name ->
      Option.map (fun db -> (name, db.cluster)) (Hashtbl.find_opt t.databases name))
    (databases t)

let sync_all ?(domains = 1) t =
  let tasks = Array.of_list (database_clusters t) in
  (* Domains left over after one-per-database go to intra-pair shard
     parallelism inside each cluster: with a single fat sharded
     database, [domains = 4] means one domain driving the session and
     per-shard delta construction/acceptance fanned over all four. *)
  let per_cluster = max 1 (domains / max 1 (Array.length tasks)) in
  let sync (name, cluster) =
    match Cluster.sync_until_converged ~domains:per_cluster cluster with
    | rounds -> (name, rounds)
    | exception Failure _ -> (name, -1)
  in
  Array.to_list (parallel_map ~domains sync tasks)

let sync_all_wire ?(domains = 1) t =
  let tasks = Array.of_list (database_clusters t) in
  let per_cluster = max 1 (domains / max 1 (Array.length tasks)) in
  let sync (name, cluster) =
    match sync_cluster_wire ~domains:per_cluster cluster with
    | rounds -> (name, rounds)
    | exception Failure _ -> (name, -1)
  in
  Array.to_list (parallel_map ~domains sync tasks)

let anti_entropy_all ?(domains = 1) t =
  let tasks = Array.of_list (database_clusters t) in
  let round (_, cluster) = Cluster.random_pull_round cluster in
  let (_ : unit array) = parallel_map ~domains round tasks in
  ()

let converged t =
  Hashtbl.fold (fun _ db acc -> acc && Cluster.converged db.cluster) t.databases true

let total_counters t =
  let acc = Counters.create () in
  Hashtbl.iter
    (fun _ db -> Counters.add_into acc (Cluster.total_counters db.cluster))
    t.databases;
  acc

(* ------------------------------------------------------------------ *)
(* Checkpointing one server across all databases                       *)
(* ------------------------------------------------------------------ *)

let manifest_path dir = Filename.concat dir "MANIFEST"

let snapshot_path dir index = Filename.concat dir (Printf.sprintf "db-%04d.snap" index)

let save_server t ~dir ~node =
  if node < 0 || node >= t.n then Error "node out of range"
  else begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let names = databases t in
    (* Manifest contents computed up front (and before the snapshot
       saves, which reuse the same per-domain scratch writer); the file
       is still written last so a crash mid-save leaves no valid
       manifest pointing at incomplete snapshots. *)
    let manifest =
      Codec.Writer.with_scratch (fun w ->
          Codec.Writer.int w node;
          Codec.Writer.list w Codec.Writer.string names;
          Codec.Writer.contents w)
    in
    List.iteri
      (fun index name ->
        match Hashtbl.find_opt t.databases name with
        | None -> ()
        | Some db ->
          Snapshot.save (Cluster.node db.cluster node) ~path:(snapshot_path dir index))
      names;
    let oc = open_out_bin (manifest_path dir ^ ".tmp") in
    output_string oc manifest;
    close_out oc;
    Sys.rename (manifest_path dir ^ ".tmp") (manifest_path dir);
    Ok ()
  end

let read_manifest dir =
  match open_in_bin (manifest_path dir) with
  | exception Sys_error msg -> Error ("cannot open manifest: " ^ msg)
  | ic ->
    let blob = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Codec.Reader.create blob with
    | exception Codec.Reader.Corrupt msg -> Error ("corrupt manifest: " ^ msg)
    | r ->
      let node = Codec.Reader.int r in
      let names = Codec.Reader.list r Codec.Reader.string in
      Codec.Reader.expect_end r;
      Ok (node, names))

let restore_server t ~dir ~node =
  match read_manifest dir with
  | Error _ as e -> e
  | Ok (saved_node, names) ->
    if saved_node <> node then
      Error
        (Printf.sprintf "checkpoint is for server %d, not %d" saved_node node)
    else
      (* Two-phase: load and validate every snapshot before replacing
         anything, so a damaged checkpoint (bit flip, truncation,
         version skew) rejects the whole restore with a clear error and
         leaves the running group untouched — never a server restored
         for some databases but not others. *)
      let load_one index name =
        match Hashtbl.find_opt t.databases name with
        | None -> Error (Printf.sprintf "database %S no longer exists" name)
        | Some db -> (
          match Snapshot.load ?mode:db.mode ~path:(snapshot_path dir index) () with
          | Error msg -> Error (Printf.sprintf "database %S: %s" name msg)
          | Ok restored -> Ok (db, restored))
      in
      let rec load_all index acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
          match load_one index name with
          | Ok loaded -> load_all (index + 1) (loaded :: acc) rest
          | Error _ as e -> e)
      in
      (match load_all 0 [] names with
      | Error _ as e -> e
      | Ok loaded ->
        List.iter
          (fun (db, restored) -> Cluster.replace_node db.cluster node restored)
          loaded;
        Ok ())

(** The reproduction's experiment suite (DESIGN.md §3, EXPERIMENTS.md).

    The paper's evaluation is an asymptotic argument (§6) plus protocol
    comparisons (§8); each function here regenerates one of those claims
    as a deterministic measured table. All tables use operation counts
    (version comparisons, items examined, log records examined, items
    copied, bytes under the explicit size model), so results are exact
    and machine-independent; wall-clock confirmation lives in
    [bench/main.ml].

    Passing [~quick:true] shrinks the sweeps for use in smoke tests. *)

val e1_cost_vs_database_size : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E1 — one propagation round's overhead as the database size [N]
    grows, with the dirty-item count fixed at [m = 64]. The paper's
    protocol is flat in [N]; Demers-style anti-entropy and Lotus grow
    linearly (§1, §6, §8.1). *)

val e2_cost_vs_items_copied : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E2 — propagation overhead as the number of items actually copied
    [m] grows at fixed [N]: linear in [m] with a constant per-item
    factor (§6). *)

val e3_identical_replicas : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E3 — cost of a session between replicas that became identical
    {e indirectly}: O(1) DBVV comparison for the paper's protocol
    vs Lotus's O(N) modified-since scan (§8.1). *)

val e4_message_bytes : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E4 — bytes shipped per propagation as [m] grows: items plus a
    constant per item (§6). *)

val e5_out_of_bound : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E5 — out-of-bound copying costs: the fetch itself is O(1) in the
    database size; intra-node propagation is linear in the number of
    deferred updates (§6). *)

val e6_failure_resilience : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E6 — originator crash mid-propagation: the epidemic protocol
    converges via forwarding; Oracle-style push stays stale until the
    originator recovers (§8.2). *)

val e7_convergence_rounds : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E7 — randomized anti-entropy rounds until full convergence as the
    node count grows: logarithmic epidemic spread ([4] in the paper). *)

val e8_log_dedup : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E8 — retained log records under a skewed update stream: bounded by
    [n·N] and far below the raw update count (§4.2). *)

val e9_conflict_detection : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E9 — the §8.1 lost-update scenario: the paper's protocol flags the
    conflict and preserves both versions; Lotus silently overrides. *)

val e10_log_based_gossip : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E10 — overhead as the {e update} count grows at a fixed dirty-item
    count: the paper's protocol depends only on items; Wuu–Bernstein
    examines every log record (§8.3 footnote 4). *)

val e11_oplog_transport : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E11 (extension) — the paper §2's two transports compared: op-log
    ("update record") shipping vs whole-item copying, as edit size
    shrinks relative to the value size. Delta shipping wins whenever
    edits are small; the bounded history falls back to whole copies
    when a recipient is too far behind. *)

val e12_timeliness_vs_period : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E12 (extension) — the epidemic timeliness/overhead trade-off the
    paper's §8 discusses qualitatively: sweeping the anti-entropy
    period trades convergence lag against session and byte overhead.
    The paper's point: because its per-session overhead is O(1) when
    idle, anti-entropy can afford to run {e often}. *)

val e13_propagation_delay : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E13 (extension) — the distribution of rounds between an update and
    its visibility on every replica under random-pull anti-entropy:
    the delay tail the epidemic literature (Demers et al. [4]) reports
    alongside traffic. *)

(** {2 Legacy experiment loops}

    E12, E13 and E17 now run through the scenario orchestrator
    ([Edb_scenario.Orchestrator]). The original bespoke loops are kept
    here so [test_experiments.ml] can pin the two paths equivalent —
    identical tables (and, for E13, identical cluster counter totals)
    — before the legacy code retires. *)

val e12_legacy : ?quick:bool -> unit -> Edb_metrics.Table.t

val e13_legacy : ?quick:bool -> unit -> Edb_metrics.Table.t

val e13_with_totals :
  ?quick:bool ->
  legacy:bool ->
  unit ->
  Edb_metrics.Table.t * Edb_metrics.Counters.t list
(** The E13 table plus the per-[n] cluster counter totals, from either
    path — what the equivalence test compares field by field. *)

val e17_legacy : ?quick:bool -> unit -> Edb_metrics.Table.t

val e14_token_ablation : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E14 (extension) — the paper §2's two consistency regimes under a
    contended workload: optimistic (conflicts detected, manual
    resolution pending) vs token-protected (zero conflicts, at the cost
    of token transfers). *)

val e15_peer_cache_savings : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E15 (extension) — steady-state message savings from the
    peer-knowledge cache ([Edb_core.Peer_cache]): ring anti-entropy
    rounds on a converged 16-node cluster, cache-enabled vs plain. The
    paper already makes the no-op session O(1) {e work}; the cache makes
    it zero {e messages} — the cheapest no-op session is the one never
    sent (cf. Malkhi et al. on minimizing diffusion messages). *)

val e17_message_loss : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E17 (extension) — convergence rounds and message overhead under
    per-message loss rates \{0, 0.05, 0.2\} on 16 nodes, message-granular
    transport (request and reply each face the loss rate, lost attempts
    time out and retry with bounded backoff) vs the old whole-session
    loss model where a lost session silently vanishes and costs
    nothing. Shows what the session-grain abstraction hides: retries
    buy convergence at higher loss for a measured message/byte
    premium. *)

val e18_sharded_replicas : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E18 (extension) — sharded replicas (DESIGN.md §7): steady-state
    ring rounds under a hot-shard Zipf update stream, shard counts
    \{1, 4, 16\}. A propagation source consults the request's per-shard
    DBVVs and skips every shard the recipient already dominates
    ([shards_skipped]), shipping zero bytes for it, so session bytes
    stay flat as the shard count grows while [domains = 4] shows the
    intra-pair parallel speedup on the shards that do ship. *)

val e19_wire_codec : ?quick:bool -> unit -> Edb_metrics.Table.t
(** Wire codec v2 vs v1 over framed ring sessions on a 16-node cluster:
    real encoded frame lengths ([wire_bytes_sent]) next to the
    fixed-width size model, for a converged idle round and a diverged
    cluster driven to convergence. *)

val e20_push_vs_pull : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E20 (extension) — best-effort realtime push vs pull-only
    anti-entropy (DESIGN.md §10): two orchestrated arms per cell,
    identical but for the push channel, on a 16-node mesh at equal AE
    cadence, sweeping loss rate and per-peer queue capacity. Reports
    the staleness percentiles (p50/p90/p99) of update-to-visibility
    delay for both arms, the p99 ratio, the fraction of AE sessions
    the push arm turns into noops, and the AE wire bytes saved. On the
    lossless cell the push arm's p99 is >= 10x lower and >= half the
    AE sessions arrive already converged (probed by
    [check_bench_json]). *)

val e21_membership_gc : ?quick:bool -> unit -> Edb_metrics.Table.t
(** E21 (extension) — what retirement's version-vector garbage
    collection reclaims: an [n]-member group (up to 128) converges with
    every origin's component live, then the last [n/4] members crash
    and are retired behind the two-phase fence. Reports, before vs
    after, the vector dimension, the wire-v2 varint encoding of a live
    member's summary DBVV (the bytes a framed session actually pays
    per vector), and the size-model bytes of one idle ring pass — all
    three shrink proportionally once the dead components are dropped
    ([vector_components_gced] counts the drops). *)

val all : ?quick:bool -> unit -> (string * Edb_metrics.Table.t) list
(** Every experiment, as [(id, table)] pairs in order. *)

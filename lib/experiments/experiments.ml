module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Counters = Edb_metrics.Counters
module Table = Edb_metrics.Table
module Workload = Edb_workload.Workload
module Demers = Edb_baselines.Demers
module Lotus = Edb_baselines.Lotus
module Oracle = Edb_baselines.Oracle_push
module Wuu = Edb_baselines.Wuu_bernstein
module Driver = Edb_baselines.Driver
module Engine = Edb_sim.Engine
module Network = Edb_sim.Network
module Frame = Edb_persist.Frame
module Wire_v2 = Edb_persist.Wire_v2
module Codec = Edb_persist.Codec
module Group = Edb_membership.Group
module Scenario = Edb_scenario.Scenario
module Orchestrator = Edb_scenario.Orchestrator

let item = Workload.item_name

let payload ~rank ~seq = Workload.payload ~item:(item rank) ~seq ~size:64

(* Update the first [m] items of the universe at [node], stamping them
   with [seq] so repeated dirtying produces fresh values. *)
let dirty_first_m ~update ~node ~m ~seq =
  for rank = 0 to m - 1 do
    update ~node ~item:(item rank) ~op:(Operation.Set (payload ~rank ~seq))
  done

(* A two-node epidemic cluster pre-converged on a universe of [n_items]
   items (every item updated once at node 0 and propagated to node 1). *)
let seeded_pair ~n_items =
  let cluster = Cluster.create ~n:2 () in
  dirty_first_m
    ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
    ~node:0 ~m:n_items ~seq:1;
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  Cluster.reset_counters cluster;
  cluster

(* ------------------------------------------------------------------ *)
(* E1 — propagation overhead vs database size N (m fixed)              *)
(* ------------------------------------------------------------------ *)

let e1_cost_vs_database_size ?(quick = false) () =
  let sizes = if quick then [ 200; 800 ] else [ 1_000; 4_000; 16_000; 64_000 ] in
  let m = if quick then 8 else 64 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E1: one propagation round, %d dirty items, growing database size N \
            (work = vv comparisons + items examined + log records + items copied)"
           m)
      ~columns:[ "N"; "dbvv work"; "demers work"; "lotus work" ]
  in
  List.iter
    (fun n_items ->
      (* The paper's protocol. *)
      let cluster = seeded_pair ~n_items in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
        ~node:0 ~m ~seq:2;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      let dbvv_work = Counters.total_work (Cluster.total_counters cluster) in
      (* Demers-style per-item anti-entropy. *)
      let demers = Demers.create ~n:2 ~universe:(Workload.universe n_items) in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Demers.update demers ~node ~item op)
        ~node:0 ~m ~seq:1;
      (Demers.driver demers).Driver.reset_counters ();
      Demers.session demers ~src:0 ~dst:1;
      let demers_work =
        Counters.total_work ((Demers.driver demers).Driver.total_counters ())
      in
      (* Lotus Notes. *)
      let lotus = Lotus.create ~n:2 ~universe:(Workload.universe n_items) in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Lotus.update lotus ~node ~item op)
        ~node:0 ~m ~seq:1;
      (Lotus.driver lotus).Driver.reset_counters ();
      Lotus.session lotus ~src:0 ~dst:1;
      let lotus_work =
        Counters.total_work ((Lotus.driver lotus).Driver.total_counters ())
      in
      Table.add_int_row table ~label:(string_of_int n_items)
        [ dbvv_work; demers_work; lotus_work ])
    sizes;
  table

(* ------------------------------------------------------------------ *)
(* E2 — propagation overhead vs items copied m (N fixed)               *)
(* ------------------------------------------------------------------ *)

let e2_cost_vs_items_copied ?(quick = false) () =
  let n_items = if quick then 1_024 else 16_384 in
  let ms = if quick then [ 16; 64 ] else [ 16; 64; 256; 1_024; 4_096 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E2: dbvv propagation overhead vs items copied m (N = %d fixed)" n_items)
      ~columns:[ "m"; "work"; "work/m"; "records shipped"; "items copied" ]
  in
  List.iter
    (fun m ->
      let cluster = seeded_pair ~n_items in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
        ~node:0 ~m ~seq:2;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      let total = Cluster.total_counters cluster in
      let work = Counters.total_work total in
      Table.add_int_row table ~label:(string_of_int m)
        [ work; work / m; total.log_records_examined; total.items_copied ])
    ms;
  table

(* ------------------------------------------------------------------ *)
(* E3 — replicas identical through indirect propagation                *)
(* ------------------------------------------------------------------ *)

let e3_identical_replicas ?(quick = false) () =
  let sizes = if quick then [ 256 ] else [ 1_000; 4_000; 16_000 ] in
  let table =
    Table.create
      ~title:
        "E3: session between replicas made identical indirectly (via a third \
         node); work to discover there is nothing to do"
      ~columns:[ "N"; "dbvv work"; "lotus work" ]
  in
  List.iter
    (fun n_items ->
      let m = min 64 n_items in
      (* The paper's protocol: 3 nodes, b and c catch up from a, then c
         pulls from b. *)
      let cluster = Cluster.create ~n:3 () in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
        ~node:0 ~m:n_items ~seq:1;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:2 ~source:0 in
      ignore m;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:2 ~source:1 in
      let dbvv_work = Counters.total_work (Cluster.total_counters cluster) in
      (* Lotus: same topology. *)
      let lotus = Lotus.create ~n:3 ~universe:(Workload.universe n_items) in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Lotus.update lotus ~node ~item op)
        ~node:0 ~m:n_items ~seq:1;
      Lotus.session lotus ~src:0 ~dst:1;
      Lotus.session lotus ~src:0 ~dst:2;
      (Lotus.driver lotus).Driver.reset_counters ();
      Lotus.session lotus ~src:1 ~dst:2;
      let lotus_work =
        Counters.total_work ((Lotus.driver lotus).Driver.total_counters ())
      in
      Table.add_int_row table ~label:(string_of_int n_items) [ dbvv_work; lotus_work ])
    sizes;
  table

(* ------------------------------------------------------------------ *)
(* E4 — message bytes vs items copied                                  *)
(* ------------------------------------------------------------------ *)

let e4_message_bytes ?(quick = false) () =
  let n_items = if quick then 512 else 4_096 in
  let ms = if quick then [ 16; 64 ] else [ 16; 64; 256; 1_024 ] in
  let value_size = 64 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: propagation message size vs m (N = %d, %d-byte values); overhead = \
            bytes beyond the item payloads, constant per item"
           n_items value_size)
      ~columns:[ "m"; "total bytes"; "payload bytes"; "overhead"; "overhead/m" ]
  in
  List.iter
    (fun m ->
      let cluster = seeded_pair ~n_items in
      dirty_first_m
        ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
        ~node:0 ~m ~seq:2;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      (* Bytes the source shipped (the recipient only sent its DBVV). *)
      let source_bytes = (Node.counters (Cluster.node cluster 0)).Counters.bytes_sent in
      let payload_bytes = m * value_size in
      let overhead = source_bytes - payload_bytes in
      Table.add_int_row table ~label:(string_of_int m)
        [ source_bytes; payload_bytes; overhead; overhead / m ])
    ms;
  table

(* ------------------------------------------------------------------ *)
(* E5 — out-of-bound copying and intra-node propagation                *)
(* ------------------------------------------------------------------ *)

let e5_out_of_bound ?(quick = false) () =
  let table =
    Table.create
      ~title:
        "E5: out-of-bound copy cost is O(1) in N; intra-node propagation is \
         linear in the deferred updates k"
      ~columns:[ "scenario"; "vv comparisons"; "aux replays"; "total work" ]
  in
  (* Part A: OOB fetch cost against database size. *)
  let fetch_sizes = if quick then [ 256 ] else [ 1_024; 16_384 ] in
  List.iter
    (fun n_items ->
      let cluster = seeded_pair ~n_items in
      Cluster.update cluster ~node:0 ~item:(item 0)
        (Operation.Set (payload ~rank:0 ~seq:2));
      Cluster.reset_counters cluster;
      let (_ : Node.oob_result) =
        Cluster.fetch_out_of_bound cluster ~recipient:1 ~source:0 (item 0)
      in
      let total = Cluster.total_counters cluster in
      Table.add_row table
        [
          Printf.sprintf "oob fetch, N=%d" n_items;
          string_of_int total.vv_comparisons;
          string_of_int total.aux_replays;
          string_of_int (Counters.total_work total);
        ])
    fetch_sizes;
  (* Part B: intra-node replay cost against deferred update count. *)
  let ks = if quick then [ 1; 8 ] else [ 1; 8; 64; 512 ] in
  List.iter
    (fun k ->
      let cluster = Cluster.create ~n:2 () in
      Cluster.update cluster ~node:0 ~item:"hot" (Operation.Set "h0");
      let (_ : Node.oob_result) =
        Cluster.fetch_out_of_bound cluster ~recipient:1 ~source:0 "hot"
      in
      for i = 1 to k do
        Cluster.update cluster ~node:1 ~item:"hot"
          (Operation.Set (Printf.sprintf "h%d" i))
      done;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      let total = Cluster.total_counters cluster in
      Table.add_row table
        [
          Printf.sprintf "intra-node, k=%d" k;
          string_of_int total.vv_comparisons;
          string_of_int total.aux_replays;
          string_of_int (Counters.total_work total);
        ])
    ks;
  table

(* ------------------------------------------------------------------ *)
(* E6 — originator failure: epidemic forwarding vs Oracle push         *)
(* ------------------------------------------------------------------ *)

let e6_failure_resilience ?(quick = false) () =
  let n = if quick then 6 else 16 in
  let fs = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let recovery_time = 100.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E6: originator of an update crashes after reaching f of %d nodes \
            (anti-entropy period 1.0; Oracle originator recovers at t=%.0f)"
           n recovery_time)
      ~columns:
        [ "f"; "dbvv converge time"; "dbvv stale nodes @t=50"; "oracle stale nodes @t=50"; "oracle converge time" ]
  in
  List.iter
    (fun f ->
      (* The paper's protocol under the simulator. *)
      let _, driver = Edb_baselines.Epidemic_driver.create ~seed:(100 + f) ~n () in
      let engine = Engine.create ~seed:(200 + f) ~driver () in
      driver.Driver.update ~node:0 ~item:"x" ~op:(Operation.Set "v");
      (* The originator reaches f nodes, then crashes. *)
      for dst = 1 to f do
        driver.Driver.session ~src:0 ~dst
      done;
      Engine.schedule engine ~at:0.0 (Engine.Crash 0);
      Engine.schedule engine ~at:0.5
        (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
      let converge_time =
        Engine.run_until_converged engine ~check_every:1.0 ~deadline:1_000.0
      in
      let dbvv_time =
        match converge_time with
        | Some t -> Printf.sprintf "%.0f" t
        | None -> "never"
      in
      let dbvv_stale_at_50 =
        match converge_time with
        | Some t when t <= 50.0 -> 0
        | Some _ | None -> n - 1 - f
      in
      (* Oracle push: nobody forwards; the stranded nodes wait for the
         originator to recover. *)
      let oracle = Oracle.create ~n in
      Oracle.update oracle ~node:0 ~item:"x" (Operation.Set "v");
      for dst = 1 to f do
        Oracle.push_to oracle ~origin:0 ~dst
      done;
      Oracle.crash oracle ~node:0;
      (* Between the crash and the recovery, the reached nodes keep
         "pushing" — they have nothing queued, so nothing changes. *)
      let stale_at_50 = ref 0 in
      for node = 0 to n - 1 do
        if Oracle.is_stale oracle ~node then incr stale_at_50
      done;
      Oracle.recover oracle ~node:0;
      Oracle.push_all oracle ~origin:0;
      let oracle_time =
        if Oracle.converged oracle then Printf.sprintf "%.0f" recovery_time else "never"
      in
      Table.add_row table
        [
          string_of_int f;
          dbvv_time;
          string_of_int dbvv_stale_at_50;
          string_of_int !stale_at_50;
          oracle_time;
        ])
    fs;
  table

(* ------------------------------------------------------------------ *)
(* E7 — epidemic convergence rounds vs cluster size                    *)
(* ------------------------------------------------------------------ *)

let e7_convergence_rounds ?(quick = false) () =
  let ns = if quick then [ 4; 8 ] else [ 4; 8; 16; 32; 64 ] in
  let seeds = [ 1; 2; 3 ] in
  let table =
    Table.create
      ~title:
        "E7: random-peer anti-entropy rounds until one update reaches every \
         node (3 seeds averaged); expected O(log n) epidemic spread"
      ~columns:[ "n"; "avg rounds"; "max rounds"; "avg item copies"; "log2 n" ]
  in
  List.iter
    (fun n ->
      let results =
        List.map
          (fun seed ->
            let cluster = Cluster.create ~seed ~n () in
            Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "v");
            let rounds = Cluster.sync_until_converged cluster in
            let copies = (Cluster.total_counters cluster).Counters.items_copied in
            (rounds, copies))
          seeds
      in
      let rounds = List.map fst results and copies = List.map snd results in
      let avg xs = List.fold_left ( + ) 0 xs / List.length xs in
      let max_rounds = List.fold_left max 0 rounds in
      let log2 = int_of_float (ceil (log (float_of_int n) /. log 2.0)) in
      Table.add_int_row table ~label:(string_of_int n)
        [ avg rounds; max_rounds; avg copies; log2 ])
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E8 — log vector deduplication under a skewed update stream          *)
(* ------------------------------------------------------------------ *)

let e8_log_dedup ?(quick = false) () =
  let n_items = if quick then 200 else 1_000 in
  let counts = if quick then [ 500; 2_000 ] else [ 1_000; 4_000; 16_000 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E8: retained log records after U zipf(1.0) updates over %d items \
            (single node; bound is N = %d)"
           n_items n_items)
      ~columns:[ "U updates"; "retained records"; "distinct items"; "bound n*N" ]
  in
  List.iter
    (fun count ->
      let cluster = Cluster.create ~n:2 () in
      let selector = Workload.Selector.zipfian ~n:n_items ~exponent:1.0 in
      let steps =
        Workload.update_stream ~seed:42 ~selector ~nodes:1 ~count ~value_size:16
      in
      let touched = Hashtbl.create 64 in
      List.iter
        (fun (step : Workload.step) ->
          Hashtbl.replace touched step.item ();
          Cluster.update cluster ~node:0 ~item:step.item step.op)
        steps;
      let retained =
        Edb_log.Log_vector.total_records (Node.log_vector (Cluster.node cluster 0))
      in
      Table.add_int_row table ~label:(string_of_int count)
        [ retained; Hashtbl.length touched; 2 * n_items ])
    counts;
  table

(* ------------------------------------------------------------------ *)
(* E9 — conflict detection vs Lotus's silent override                  *)
(* ------------------------------------------------------------------ *)

let e9_conflict_detection ?quick:(_ = false) () =
  let table =
    Table.create
      ~title:
        "E9: the paper's §8.1 scenario — node i updates x twice, node j once \
         (concurrently), then propagation i->j"
      ~columns:[ "protocol"; "conflicts detected"; "value at j afterwards"; "j's update lost" ]
  in
  (* The paper's protocol. *)
  let cluster = Cluster.create ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "i-v1");
  Cluster.update cluster ~node:0 ~item:"x" (Operation.Set "i-v2");
  Cluster.update cluster ~node:1 ~item:"x" (Operation.Set "j-v1");
  let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
  let total = Cluster.total_counters cluster in
  let j_value = Option.value ~default:"<none>" (Cluster.read cluster ~node:1 ~item:"x") in
  Table.add_row table
    [
      "dbvv";
      string_of_int total.conflicts_detected;
      j_value;
      (if String.equal j_value "j-v1" then "no" else "yes");
    ];
  (* Lotus: the higher sequence number silently wins. *)
  let lotus = Lotus.create ~n:2 ~universe:[ "x" ] in
  Lotus.update lotus ~node:0 ~item:"x" (Operation.Set "i-v1");
  Lotus.update lotus ~node:0 ~item:"x" (Operation.Set "i-v2");
  Lotus.update lotus ~node:1 ~item:"x" (Operation.Set "j-v1");
  Lotus.session lotus ~src:0 ~dst:1;
  let lotus_total = (Lotus.driver lotus).Driver.total_counters () in
  let lotus_j = Option.value ~default:"<none>" (Lotus.read lotus ~node:1 ~item:"x") in
  Table.add_row table
    [
      "lotus";
      string_of_int lotus_total.conflicts_detected;
      lotus_j;
      (if String.equal lotus_j "j-v1" then "no" else "yes");
    ];
  table

(* ------------------------------------------------------------------ *)
(* E10 — overhead vs raw update count (log-based gossip comparison)    *)
(* ------------------------------------------------------------------ *)

let e10_log_based_gossip ?(quick = false) () =
  let m = 32 in
  let counts = if quick then [ 64; 256 ] else [ 32; 128; 512; 2_048 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E10: one session after U updates spread over %d hot items: dbvv \
            cost tracks items, Wuu-Bernstein tracks updates (records examined)"
           m)
      ~columns:
        [ "U updates"; "dbvv records"; "dbvv work"; "wuu records"; "wuu work";
          "2pg records"; "2pg bytes"; "wuu bytes" ]
  in
  List.iter
    (fun count ->
      (* The paper's protocol. *)
      let cluster = Cluster.create ~n:2 () in
      for i = 0 to count - 1 do
        let rank = i mod m in
        Cluster.update cluster ~node:0 ~item:(item rank)
          (Operation.Set (payload ~rank ~seq:i))
      done;
      Cluster.reset_counters cluster;
      let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
      let total = Cluster.total_counters cluster in
      (* Wuu-Bernstein. *)
      let wuu = Wuu.create ~n:2 in
      for i = 0 to count - 1 do
        let rank = i mod m in
        Wuu.update wuu ~node:0 ~item:(item rank) (Operation.Set (payload ~rank ~seq:i))
      done;
      (Wuu.driver wuu).Driver.reset_counters ();
      Wuu.session wuu ~src:0 ~dst:1;
      let wuu_total = (Wuu.driver wuu).Driver.total_counters () in
      (* Two-phase gossip: same linear-in-updates scan, smaller vector
         overhead on the wire. *)
      let tpg = Edb_baselines.Two_phase_gossip.create ~n:2 in
      for i = 0 to count - 1 do
        let rank = i mod m in
        Edb_baselines.Two_phase_gossip.update tpg ~node:0 ~item:(item rank)
          (Operation.Set (payload ~rank ~seq:i))
      done;
      (Edb_baselines.Two_phase_gossip.driver tpg).Driver.reset_counters ();
      Edb_baselines.Two_phase_gossip.session tpg ~src:0 ~dst:1;
      let tpg_total =
        (Edb_baselines.Two_phase_gossip.driver tpg).Driver.total_counters ()
      in
      Table.add_int_row table ~label:(string_of_int count)
        [
          total.log_records_examined;
          Counters.total_work total;
          wuu_total.log_records_examined;
          Counters.total_work wuu_total;
          tpg_total.log_records_examined;
          tpg_total.bytes_sent;
          wuu_total.bytes_sent;
        ])
    counts;
  table

(* ------------------------------------------------------------------ *)
(* E11 — op-log vs whole-item transport (extension; paper §2)          *)
(* ------------------------------------------------------------------ *)

let e11_oplog_transport ?(quick = false) () =
  let m = if quick then 4 else 16 in
  let value_bytes = 4_096 in
  let edits_per_item = 8 in
  let edit_sizes = if quick then [ 8; 512 ] else [ 8; 64; 512; 2_048 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E11: transport comparison - %d items of %d bytes, %d edits each; \
            bytes for one propagation session"
           m value_bytes edits_per_item)
      ~columns:
        [ "edit bytes"; "whole-item bytes"; "op-log bytes"; "ratio"; "fallbacks" ]
  in
  let run_one ~mode ~edit_size =
    let cluster = Cluster.create ?mode ~n:2 () in
    (* Converge on the initial big values first. *)
    for rank = 0 to m - 1 do
      Cluster.update cluster ~node:0 ~item:(item rank)
        (Operation.Set (String.make value_bytes 'a'))
    done;
    let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
    (* Small in-place edits. *)
    for rank = 0 to m - 1 do
      for e = 0 to edits_per_item - 1 do
        Cluster.update cluster ~node:0 ~item:(item rank)
          (Operation.Splice { offset = e * edit_size; data = String.make edit_size 'b' })
      done
    done;
    Cluster.reset_counters cluster;
    let (_ : Node.pull_result) = Cluster.pull cluster ~recipient:1 ~source:0 in
    let total = Cluster.total_counters cluster in
    (total.bytes_sent, total.whole_fallbacks)
  in
  List.iter
    (fun edit_size ->
      let whole_bytes, _ = run_one ~mode:None ~edit_size in
      let delta_bytes, fallbacks =
        run_one ~mode:(Some (Node.Op_log { depth = 16 })) ~edit_size
      in
      Table.add_row table
        [
          string_of_int edit_size;
          string_of_int whole_bytes;
          string_of_int delta_bytes;
          Printf.sprintf "%.1fx" (float_of_int whole_bytes /. float_of_int delta_bytes);
          string_of_int fallbacks;
        ])
    edit_sizes;
  table

(* ------------------------------------------------------------------ *)
(* E12 — timeliness vs anti-entropy period (extension)                 *)
(* ------------------------------------------------------------------ *)

(* E12 runs through the scenario orchestrator; [e12_legacy] keeps the
   original bespoke engine loop so test_experiments.ml can pin the two
   paths equivalent (same tables, same counters) before the legacy loop
   retires. *)

let e12_params quick =
  let n = if quick then 6 else 16 in
  let updates = if quick then 40 else 200 in
  let window = 100.0 in
  let periods = if quick then [ 1.0; 4.0 ] else [ 0.5; 1.0; 2.0; 4.0; 8.0 ] in
  (n, updates, window, periods)

let e12_table ~n ~updates ~window =
  Table.create
    ~title:
      (Printf.sprintf
         "E12: anti-entropy period vs timeliness - %d nodes, %d single-writer \
          updates over %.0f time units; lag = time from last update to full \
          convergence"
         n updates window)
    ~columns:[ "period"; "convergence lag"; "sessions"; "bytes sent"; "noop sessions" ]

let e12_row table ~period ~lag ~sessions ~(total : Counters.t) =
  Table.add_row table
    [
      Printf.sprintf "%.1f" period;
      lag;
      string_of_int sessions;
      string_of_int total.bytes_sent;
      string_of_int total.noop_sessions;
    ]

let e12_scenario ~n ~updates ~window ~period =
  {
    Scenario.name = "e12";
    description = "One E12 cell: timeliness vs anti-entropy period.";
    nodes = n;
    shards = 1;
    items = 200;
    value_size = 64;
    zipf = 1.0;
    single_writer = true;
    cache = false;
    seeds = { Scenario.driver = 77; engine = 78; workload = 79 };
    topology = Scenario.Random;
    period;
    first_at = period /. 2.0;
    latency = 1.0;
    loss = 0.0;
    duplication = 0.0;
    transport = Scenario.Session;
    push = None;
    arrival =
      Scenario.Phases
        [
          {
            Scenario.from_ = 0.0;
            until = window;
            rate = float_of_int updates /. window;
          };
        ];
    faults = [];
    churn = None;
    duration = window;
    tick = period /. 2.0;
    until_converged = true;
    deadline = window +. 500.0;
  }

let e12_timeliness_vs_period ?(quick = false) () =
  let n, updates, window, periods = e12_params quick in
  let table = e12_table ~n ~updates ~window in
  List.iter
    (fun period ->
      let r = Orchestrator.run (e12_scenario ~n ~updates ~window ~period) in
      let lag =
        match r.Orchestrator.converged_at with
        | Some t -> Printf.sprintf "%.1f" (t -. window)
        | None -> "never"
      in
      e12_row table ~period ~lag ~sessions:r.Orchestrator.attempted
        ~total:r.Orchestrator.totals)
    periods;
  table

let e12_legacy ?(quick = false) () =
  let n, updates, window, periods = e12_params quick in
  let table = e12_table ~n ~updates ~window in
  List.iter
    (fun period ->
      let _, driver = Edb_baselines.Epidemic_driver.create ~seed:77 ~n () in
      let engine = Engine.create ~seed:78 ~driver () in
      let selector = Workload.Selector.zipfian ~n:200 ~exponent:1.0 in
      let steps =
        Workload.update_stream ~seed:79 ~selector ~nodes:n ~count:updates ~value_size:64
      in
      List.iteri
        (fun i (step : Workload.step) ->
          (* Single-writer discipline keeps the run conflict-free. *)
          let rank = Scanf.sscanf step.item "item-%d" Fun.id in
          let at = window *. float_of_int i /. float_of_int updates in
          Engine.schedule engine ~at
            (Engine.User_update { node = rank mod n; item = step.item; op = step.op }))
        steps;
      Engine.schedule engine ~at:(period /. 2.0)
        (Engine.Anti_entropy_round { period; policy = Engine.Random_peer });
      Engine.run_until engine window;
      let lag =
        match
          Engine.run_until_converged engine ~check_every:(period /. 2.0)
            ~deadline:(window +. 500.0)
        with
        | Some t -> Printf.sprintf "%.1f" (t -. window)
        | None -> "never"
      in
      e12_row table ~period ~lag ~sessions:(Engine.sessions_attempted engine)
        ~total:(driver.Driver.total_counters ()))
    periods;
  table

(* ------------------------------------------------------------------ *)
(* E13 — update propagation delay distribution (extension)             *)
(* ------------------------------------------------------------------ *)

(* E13 runs through the orchestrator, whose DBVV-watermark staleness
   sampling observes exactly the value-visibility delays the bespoke
   loop measured (per-origin knowledge is prefix-closed, so "every DBVV
   covers the update" = "every replica has the value"). The legacy loop
   stays behind [~legacy:true] for the equivalence pin. *)

let e13_params quick =
  let ns = if quick then [ 8 ] else [ 8; 16; 32 ] in
  let updates = if quick then 30 else 100 in
  (ns, updates, 20)

let e13_table ~updates ~issue_window =
  Table.create
    ~title:
      (Printf.sprintf
         "E13: rounds from update to full visibility on every replica - %d \
          one-shot updates issued over %d random-pull rounds"
         updates issue_window)
    ~columns:[ "n"; "mean"; "p50"; "p90"; "max" ]

let e13_row table ~n ~(delays : Edb_metrics.Histogram.t) =
  let pct p = Printf.sprintf "%.0f" (Edb_metrics.Histogram.percentile delays p) in
  Table.add_row table
    [
      string_of_int n;
      Printf.sprintf "%.1f" (Edb_metrics.Histogram.mean delays);
      pct 50.0;
      pct 90.0;
      Printf.sprintf "%.0f" (Edb_metrics.Histogram.max_value delays);
    ]

(* Distinct item per update so visibility is unambiguous. *)
let e13_schedule ~n ~updates ~issue_window =
  let prng = Edb_util.Prng.create ~seed:(400 + n) in
  List.init updates (fun i ->
      (Edb_util.Prng.int prng issue_window, i, Edb_util.Prng.int prng n))

let e13_scenario ~n ~updates ~issue_window =
  let script =
    List.map
      (fun (at, i, node) ->
        { Scenario.at = float_of_int at; node; item = i; seq = 1 })
      (e13_schedule ~n ~updates ~issue_window)
  in
  {
    Scenario.name = "e13";
    description = "One E13 cell: update-to-visibility delay distribution.";
    nodes = n;
    shards = 1;
    items = updates;
    value_size = 64;
    zipf = 0.0;
    single_writer = false;
    cache = false;
    (* The engine seed reproduces the legacy cluster's peer-draw
       sequence: both are one splitmix64 stream consumed only by peer
       selection (reliable zero-jitter network draws nothing else). *)
    seeds = { Scenario.driver = 300 + n; engine = 300 + n; workload = 0 };
    topology = Scenario.Random;
    period = 1.0;
    first_at = 0.5;
    latency = 0.0;
    loss = 0.0;
    duplication = 0.0;
    transport = Scenario.Session;
    push = None;
    arrival = Scenario.Script script;
    faults = [];
    churn = None;
    (* Round r of the legacy loop is the engine round at r + 0.5; tick
       r + 1 samples right after it. Checking convergence only at ticks
       past [issue_window - 1] reproduces the legacy loop's "never exit
       before the issue window closes" bound exactly. *)
    duration = float_of_int (issue_window - 1);
    tick = 1.0;
    until_converged = true;
    deadline = 400.0;
  }

(* Both E13 paths, also exposing the per-n cluster counter totals the
   equivalence test compares field by field. *)
let e13_with_totals ?(quick = false) ~legacy () =
  let ns, updates, issue_window = e13_params quick in
  let table = e13_table ~updates ~issue_window in
  let totals = ref [] in
  List.iter
    (fun n ->
      if legacy then begin
        let cluster = Cluster.create ~seed:(300 + n) ~n () in
        let delays = Edb_metrics.Histogram.create () in
        let schedule = e13_schedule ~n ~updates ~issue_window in
        let pending = ref [] in
        let round = ref 0 in
        let max_rounds = 400 in
        while (!pending <> [] || !round < issue_window) && !round < max_rounds do
          List.iter
            (fun (at, i, node) ->
              if at = !round then begin
                let name = item i in
                Cluster.update cluster ~node ~item:name
                  (Operation.Set (payload ~rank:i ~seq:1));
                pending := (name, payload ~rank:i ~seq:1, !round) :: !pending
              end)
            schedule;
          Cluster.random_pull_round cluster;
          let visible (name, value, _) =
            let all = ref true in
            for node = 0 to n - 1 do
              match Cluster.read cluster ~node ~item:name with
              | Some v when String.equal v value -> ()
              | Some _ | None -> all := false
            done;
            !all
          in
          let done_, still = List.partition visible !pending in
          List.iter
            (fun (_, _, issued) ->
              Edb_metrics.Histogram.add delays (float_of_int (!round - issued + 1)))
            done_;
          pending := still;
          incr round
        done;
        e13_row table ~n ~delays;
        totals := Cluster.total_counters cluster :: !totals
      end
      else begin
        let r = Orchestrator.run (e13_scenario ~n ~updates ~issue_window) in
        e13_row table ~n ~delays:r.Orchestrator.staleness;
        totals := r.Orchestrator.totals :: !totals
      end)
    ns;
  (table, List.rev !totals)

let e13_propagation_delay ?(quick = false) () =
  fst (e13_with_totals ~quick ~legacy:false ())

let e13_legacy ?(quick = false) () = fst (e13_with_totals ~quick ~legacy:true ())

(* ------------------------------------------------------------------ *)
(* E14 — token ablation: pessimistic vs optimistic under contention    *)
(* ------------------------------------------------------------------ *)

let e14_token_ablation ?(quick = false) () =
  let n = if quick then 3 else 6 in
  let rounds = if quick then 4 else 12 in
  let hot_items = 4 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14: %d nodes all updating %d hot items for %d rounds - optimistic \
            (paper default) vs token-protected (paper SS2's pessimistic option)"
           n hot_items rounds)
      ~columns:
        [ "regime"; "conflicts"; "token transfers"; "hint hops"; "converged"; "work" ]
  in
  let workload update_fn cluster =
    for round = 1 to rounds do
      for node = 0 to n - 1 do
        let name = item ((node + round) mod hot_items) in
        update_fn ~node ~item:name
          (Operation.Set (Printf.sprintf "r%d-n%d" round node))
      done;
      Cluster.random_pull_round cluster
    done
  in
  (* Optimistic: the paper's default, conflicts detected and reported. *)
  let cluster = Cluster.create ~seed:50 ~n () in
  workload (fun ~node ~item op -> Cluster.update cluster ~node ~item op) cluster;
  let converged =
    match Cluster.sync_until_converged ~max_rounds:50 cluster with
    | _ -> "yes"
    | exception Failure _ -> "no (conflicts pending)"
  in
  let total = Cluster.total_counters cluster in
  Table.add_row table
    [
      "optimistic";
      string_of_int total.conflicts_detected;
      "0";
      "0";
      converged;
      string_of_int (Counters.total_work total);
    ];
  (* Pessimistic: every update acquires the item's token first. *)
  let cluster = Cluster.create ~seed:50 ~n () in
  let tokens = Edb_tokens.Token_manager.create cluster in
  workload
    (fun ~node ~item op ->
      match Edb_tokens.Token_manager.update tokens ~node ~item op with
      | Ok _ -> ()
      | Error (`Cycle _) -> failwith "token cycle")
    cluster;
  let converged =
    match Cluster.sync_until_converged ~max_rounds:200 cluster with
    | _ -> "yes"
    | exception Failure _ -> "no"
  in
  let total = Cluster.total_counters cluster in
  Table.add_row table
    [
      "tokens";
      string_of_int total.conflicts_detected;
      string_of_int (Edb_tokens.Token_manager.transfers tokens);
      string_of_int (Edb_tokens.Token_manager.hops_followed tokens);
      converged;
      string_of_int (Counters.total_work total);
    ];
  table

(* ------------------------------------------------------------------ *)
(* E15 — steady-state message savings from the peer-knowledge cache    *)
(* ------------------------------------------------------------------ *)

let e15_peer_cache_savings ?(quick = false) () =
  let nodes = 16 in
  let rounds = if quick then 6 else 20 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E15: %d steady-state ring rounds on a converged %d-node cluster — \
            peer-knowledge cache vs the paper's protocol (savings = messages \
            eliminated)"
           rounds nodes)
      ~columns:
        [ "variant"; "sessions run"; "sessions skipped"; "messages"; "bytes"; "savings" ]
  in
  let steady_counters ~cache =
    let cluster = Cluster.create ~cache ~n:nodes () in
    for rank = 0 to 7 do
      Cluster.update cluster ~node:(rank mod nodes) ~item:(item rank)
        (Operation.Set (payload ~rank ~seq:1))
    done;
    (* Deterministic convergence: n ring rounds propagate transitively
       from every node to every other (paper Theorem 5). *)
    for _ = 1 to nodes do
      Cluster.ring_pull_round cluster
    done;
    assert (Cluster.converged cluster);
    Cluster.reset_counters cluster;
    for _ = 1 to rounds do
      Cluster.ring_pull_round cluster
    done;
    Cluster.total_counters cluster
  in
  let plain = steady_counters ~cache:false in
  let cached = steady_counters ~cache:true in
  let row name (c : Counters.t) =
    let savings =
      if plain.messages = 0 then "0%"
      else
        Printf.sprintf "%.1f%%"
          (100.0
          *. float_of_int (plain.messages - c.messages)
          /. float_of_int plain.messages)
    in
    Table.add_row table
      [
        name;
        string_of_int (c.propagation_sessions + c.noop_sessions);
        string_of_int c.sessions_skipped_cached;
        string_of_int c.messages;
        string_of_int c.bytes_sent;
        savings;
      ]
  in
  row "dbvv" plain;
  row "dbvv+cache" cached;
  table

(* ------------------------------------------------------------------ *)
(* E17 — per-message loss vs the whole-session loss model              *)
(* ------------------------------------------------------------------ *)

(* E17 runs through the orchestrator; [e17_legacy] keeps the bespoke
   loop for the equivalence pin, like E12/E13. *)

let e17_losses = [ 0.0; 0.05; 0.2 ]

let e17_table ~nodes ~period =
  Table.create
    ~title:
      (Printf.sprintf
         "E17: convergence and overhead under message loss, %d nodes, \
          random-peer anti-entropy every %.0f units — whole-session loss \
          (the old model: a lost session just vanishes) vs per-message loss \
          with timeout/retry/backoff (request and reply each face the \
          loss rate; a timed-out attempt is re-sent up to %d times)"
         nodes period Engine.default_retry_policy.Engine.max_retries)
    ~columns:
      [
        "transport"; "loss"; "rounds"; "messages"; "bytes"; "timeouts"; "retries";
        "abandoned"; "conns"; "conn retries";
      ]

let e17_row table ~transport_name ~loss ~rounds ~(totals : Counters.t) =
  Table.add_row table
    [
      transport_name;
      Printf.sprintf "%.2f" loss;
      rounds;
      string_of_int totals.Counters.messages;
      string_of_int totals.Counters.bytes_sent;
      string_of_int totals.Counters.timeouts;
      string_of_int totals.Counters.retries;
      string_of_int totals.Counters.sessions_abandoned;
      string_of_int totals.Counters.connections_opened;
      string_of_int totals.Counters.connection_retries;
    ]

let e17_scenario ~nodes ~period ~deadline ~loss ~transport =
  {
    Scenario.name = "e17";
    description = "One E17 cell: convergence under per-message loss.";
    nodes;
    shards = 1;
    items = 8;
    value_size = 64;
    zipf = 0.0;
    single_writer = false;
    cache = false;
    seeds = { Scenario.driver = 17; engine = 23; workload = 0 };
    topology = Scenario.Random;
    period;
    first_at = period /. 2.0;
    latency = 1.0;
    loss;
    duplication = 0.0;
    transport;
    push = None;
    arrival =
      Scenario.Script
        (List.init 8 (fun rank ->
             { Scenario.at = 0.0; node = rank mod nodes; item = rank; seq = 1 }));
    faults = [];
    churn = None;
    duration = 0.0;
    tick = period;
    until_converged = true;
    deadline;
  }

let e17_message_loss ?(quick = false) () =
  let nodes = if quick then 8 else 16 in
  let period = 5.0 in
  let deadline = 3_000.0 in
  let table = e17_table ~nodes ~period in
  let run ~transport_name ~transport ~loss =
    let r = Orchestrator.run (e17_scenario ~nodes ~period ~deadline ~loss ~transport) in
    let rounds =
      match r.Orchestrator.converged_at with
      | Some at -> Printf.sprintf "%.0f" (at /. period)
      | None -> "-"
    in
    e17_row table ~transport_name ~loss ~rounds ~totals:r.Orchestrator.totals
  in
  List.iter
    (fun loss ->
      run ~transport_name:"session" ~transport:Scenario.Session ~loss;
      run ~transport_name:"message" ~transport:(Scenario.Message Scenario.default_retry)
        ~loss)
    e17_losses;
  table

let e17_legacy ?(quick = false) () =
  let nodes = if quick then 8 else 16 in
  let period = 5.0 in
  let deadline = 3_000.0 in
  let table = e17_table ~nodes ~period in
  let run ~transport_name ~transport ~loss =
    let cluster, driver = Edb_baselines.Epidemic_driver.create ~seed:17 ~n:nodes () in
    let network = Network.create ~loss_probability:loss () in
    let engine = Engine.create ~seed:23 ~network ~transport ~driver () in
    for rank = 0 to 7 do
      Engine.schedule engine ~at:0.0
        (Engine.User_update
           {
             node = rank mod nodes;
             item = item rank;
             op = Operation.Set (payload ~rank ~seq:1);
           })
    done;
    Engine.schedule engine ~at:(period /. 2.0)
      (Engine.Anti_entropy_round { period; policy = Engine.Random_peer });
    let rounds =
      match Engine.run_until_converged engine ~check_every:period ~deadline with
      | Some at -> Printf.sprintf "%.0f" (at /. period)
      | None -> "-"
    in
    ignore cluster;
    e17_row table ~transport_name ~loss ~rounds ~totals:(driver.Driver.total_counters ())
  in
  List.iter
    (fun loss ->
      run ~transport_name:"session" ~transport:Engine.Session_grain ~loss;
      run ~transport_name:"message"
        ~transport:(Engine.Message_grain Engine.default_retry_policy)
        ~loss)
    e17_losses;
  table

(* ------------------------------------------------------------------ *)
(* E18 — sharded replicas: per-shard skipping and parallel sync        *)
(* ------------------------------------------------------------------ *)

let e18_sharded_replicas ?(quick = false) () =
  let nodes = if quick then 8 else 16 in
  let n_items = if quick then 64 else 256 in
  let rounds = if quick then 4 else 10 in
  let updates_per_round = if quick then 8 else 24 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E18: sharded replicas — %d steady-state ring rounds on %d nodes, \
            %d items (1 KiB values), hot-shard Zipf updates (exponent 1.2, \
            so most shards stay converged between rounds); a source skips \
            every shard the recipient's per-shard DBVV already dominates, \
            shipping zero bytes for it, and domains=4 fans per-shard delta \
            work out over the domain pool (clamped to the host's cores)"
           rounds nodes n_items)
      ~columns:
        [
          "shards"; "domains"; "sessions"; "noop"; "shards skipped"; "bytes";
          "wall ms";
        ]
  in
  let run ~shards ~domains =
    let cluster = Cluster.create ~shards ~n:nodes () in
    (* Seed the full universe at node 0 and converge, so steady state
       starts from identical replicas. *)
    dirty_first_m
      ~update:(fun ~node ~item ~op -> Cluster.update cluster ~node ~item op)
      ~node:0 ~m:n_items ~seq:1;
    for _ = 1 to nodes do
      Cluster.ring_pull_round ~domains cluster
    done;
    assert (Cluster.converged cluster);
    Cluster.reset_counters cluster;
    (* Steady state: a Zipf-skewed trickle of updates — the hot items
       cluster into few shards, leaving the rest converged — then a
       ring round to spread them. *)
    let selector = Workload.Selector.zipfian ~n:n_items ~exponent:1.2 in
    let prng = Edb_util.Prng.create ~seed:(1800 + shards) in
    let started = Unix.gettimeofday () in
    for round = 1 to rounds do
      for _ = 1 to updates_per_round do
        let rank = Workload.Selector.pick selector prng in
        Cluster.update cluster ~node:0 ~item:(item rank)
          (Operation.Set
             (Workload.payload ~item:(item rank) ~seq:(1 + round) ~size:1024))
      done;
      Cluster.ring_pull_round ~domains cluster
    done;
    let elapsed_ms = (Unix.gettimeofday () -. started) *. 1000.0 in
    let totals = Cluster.total_counters cluster in
    Table.add_row table
      [
        string_of_int shards;
        string_of_int domains;
        string_of_int totals.Counters.propagation_sessions;
        string_of_int totals.Counters.noop_sessions;
        string_of_int totals.Counters.shards_skipped;
        string_of_int totals.Counters.bytes_sent;
        Printf.sprintf "%.1f" elapsed_ms;
      ]
  in
  List.iter
    (fun shards ->
      run ~shards ~domains:1;
      if shards > 1 then run ~shards ~domains:4)
    [ 1; 4; 16 ];
  table

(* ------------------------------------------------------------------ *)
(* E19 — wire codec v2: measured bytes on the wire                     *)
(* ------------------------------------------------------------------ *)

let e19_wire_codec ?(quick = false) () =
  let nodes = 16 in
  let n_items = if quick then 32 else 128 in
  let updates_per_node = if quick then 2 else 8 in
  let value_size = 256 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E19: wire codec v2 vs v1 — framed ring sessions on %d nodes, \
            %d items (%d B values), counting real encoded frame lengths \
            (wire bytes) next to the fixed-width size model; v2 = varints \
            + per-message name interning + sparse IVVs + request DBVVs \
            delta-encoded against the peer's acknowledged baseline \
            (absolute fallback on any mismatch, so compression never \
            risks correctness)"
           nodes n_items value_size)
      ~columns:
        [
          "scenario"; "codec"; "sessions"; "rounds"; "bytes (model)";
          "wire bytes"; "wire B/session"; "vs v1";
        ]
  in
  let wire_ring_round cluster =
    for i = 0 to nodes - 1 do
      let recipient = Cluster.node cluster i in
      let source = Cluster.node cluster ((i + 1) mod nodes) in
      let (_ : Node.pull_result) = Frame.pull ~recipient ~source () in
      ()
    done
  in
  let converge cluster =
    let rounds = ref 0 in
    while not (Cluster.converged cluster) do
      incr rounds;
      if !rounds > 10 * nodes then failwith "E19: cluster failed to converge";
      wire_ring_round cluster
    done;
    !rounds
  in
  let run ~version ~diverged =
    let cluster = Cluster.create ~seed:1900 ~n:nodes () in
    if version = 1 then
      for i = 0 to nodes - 1 do
        Node.set_wire_version (Cluster.node cluster i) 1
      done;
    (* History plus warm-up: seed every node, converge over frames so
       every ring pair has negotiated its codec version (pessimistic v1
       start) and, under v2, holds an acknowledged delta baseline —
       then measure the steady state, not the handshake. *)
    for rank = 0 to n_items - 1 do
      Cluster.update cluster ~node:(rank mod nodes) ~item:(item rank)
        (Operation.Set (Workload.payload ~item:(item rank) ~seq:1 ~size:value_size))
    done;
    let (_ : int) = converge cluster in
    wire_ring_round cluster;
    Cluster.reset_counters cluster;
    if diverged then
      for node = 0 to nodes - 1 do
        for k = 0 to updates_per_node - 1 do
          let rank = ((node * updates_per_node) + k) mod n_items in
          Cluster.update cluster ~node ~item:(item rank)
            (Operation.Set
               (Workload.payload ~item:(item rank) ~seq:2 ~size:value_size))
        done
      done;
    let rounds =
      if diverged then converge cluster
      else begin
        wire_ring_round cluster;
        1
      end
    in
    let totals = Cluster.total_counters cluster in
    (totals, rounds)
  in
  let scenario ~name ~diverged =
    let v1, v1_rounds = run ~version:1 ~diverged in
    let v2, v2_rounds = run ~version:2 ~diverged in
    let per_session (c : Counters.t) =
      let sessions = c.propagation_sessions + c.noop_sessions in
      if sessions = 0 then 0.0
      else float_of_int c.wire_bytes_sent /. float_of_int sessions
    in
    let row codec (c : Counters.t) rounds reduction =
      Table.add_row table
        [
          name;
          codec;
          string_of_int (c.propagation_sessions + c.noop_sessions);
          string_of_int rounds;
          string_of_int c.bytes_sent;
          string_of_int c.wire_bytes_sent;
          Printf.sprintf "%.1f" (per_session c);
          reduction;
        ]
    in
    row "v1" v1 v1_rounds "-";
    row "v2" v2 v2_rounds
      (if per_session v1 = 0.0 then "-"
       else
         Printf.sprintf "-%.1f%%"
           (100.0 *. (1.0 -. (per_session v2 /. per_session v1))))
  in
  scenario ~name:"converged idle round" ~diverged:false;
  scenario ~name:"diverged, to convergence" ~diverged:true;
  table

(* ------------------------------------------------------------------ *)
(* E20 — realtime push vs pull-only anti-entropy                       *)
(* ------------------------------------------------------------------ *)

(* Two arms per cell, identical except for the push channel: same
   seeds, same message-grain transport, same anti-entropy cadence. The
   push arm streams each update to every peer within roughly
   [flush_period + latency], so updates are globally visible long
   before the next anti-entropy round — the staleness percentiles
   collapse, and most rounds arrive to find both ends already equal
   (noop sessions). Anti-entropy stays on throughout: it is the
   correctness mechanism, and under loss it silently repairs whatever
   the unacknowledged pushes dropped.

   The workload window opens only at [e20_warmup]: pushes flow solely
   to peers that have provably negotiated wire v2, and under the
   random-peer cadence covering all 120 node pairs takes ~40 rounds
   (coupon collector). The idle warm-up — identical in both arms, all
   sessions noops — lets E20 measure the steady state instead of the
   handshake, and the noop/session fractions are windowed past it. *)
let e20_warmup = 240.0

let e20_scenario ~loss ~capacity ~push =
  {
    Scenario.name = "e20";
    description = "One E20 cell: realtime push vs pull-only anti-entropy.";
    nodes = 16;
    shards = 1;
    items = 64;
    value_size = 64;
    zipf = 1.0;
    single_writer = true;
    cache = false;
    seeds = { Scenario.driver = 91; engine = 92; workload = 93 };
    topology = Scenario.Random;
    period = 4.0;
    first_at = 1.0;
    latency = 1.0;
    loss;
    duplication = 0.0;
    transport = Scenario.Message Scenario.default_retry;
    push =
      (if push then
         Some { Scenario.capacity; drop = Scenario.Drop_oldest; flush_period = 0.25 }
       else None);
    arrival =
      (* Sparse load: well under one update per anti-entropy period
         cluster-wide. Pushes make an update globally visible in
         ~flush + latency, so at this rate most AE rounds genuinely
         arrive converged; a denser stream would hide the noop savings
         behind updates still in flight when a session lands. The rate
         is chosen so the (evenly spaced) inter-update gap of 20/3 is
         aperiodic against the 4.0 AE period — a gap that divides the
         period would phase-lock every push wave into the same spot of
         every round. *)
      Scenario.Phases
        [ { Scenario.from_ = e20_warmup; until = e20_warmup +. 240.0; rate = 0.15 } ];
    faults = [];
    churn = None;
    duration = e20_warmup +. 240.0;
    tick = 0.5;
    until_converged = true;
    deadline = 900.0;
  }

let e20_push_vs_pull ?(quick = false) () =
  let cells =
    if quick then [ (0.0, 64) ]
    else [ (0.0, 64); (0.0, 4); (0.1, 64); (0.3, 64); (0.3, 4) ]
  in
  let table =
    Table.create
      ~title:
        "E20: best-effort realtime push vs pull-only anti-entropy — 16-node \
         mesh, steady single-writer load, equal AE cadence in both arms; \
         staleness percentiles of update-to-global-visibility delay, the \
         fraction of AE sessions that arrive already converged (noop), and \
         the AE wire bytes the push arm no longer ships (its own frame bytes \
         counted separately under push overflow/drops)"
      ~columns:
        [
          "loss"; "capacity"; "pull p50"; "push p50"; "pull p90"; "push p90";
          "pull p99"; "push p99"; "p99 ratio"; "ae skipped frac";
          "ae bytes saved"; "push overflow";
        ]
  in
  List.iter
    (fun (loss, capacity) ->
      let pull = Orchestrator.run (e20_scenario ~loss ~capacity ~push:false) in
      let push = Orchestrator.run (e20_scenario ~loss ~capacity ~push:true) in
      let pct (r : Orchestrator.result) p =
        Edb_metrics.Histogram.percentile r.Orchestrator.staleness p
      in
      let pull_p99 = pct pull 99.0 and push_p99 = pct push 99.0 in
      let noop_frac =
        (* Window past the warm-up: during it the cluster is idle, so
           every session is a noop in {e both} arms and would inflate
           the fraction. The tick rows carry cumulative counters;
           subtract the last pre-workload sample. The denominator is
           noop + propagation {e decodes} rather than engine session
           attempts: under loss a retransmitted request can be judged
           at the source more than once, and a session whose frames
           never get through is judged zero times. *)
        let at_warmup field =
          List.fold_left
            (fun acc (tk : Orchestrator.tick) ->
              if tk.time <= e20_warmup then List.assoc field tk.counters else acc)
            0 push.Orchestrator.ticks
        in
        let noop =
          push.Orchestrator.totals.Counters.noop_sessions
          - at_warmup "noop_sessions"
        in
        let prop =
          push.Orchestrator.totals.Counters.propagation_sessions
          - at_warmup "propagation_sessions"
        in
        if noop + prop = 0 then 0.0
        else float_of_int noop /. float_of_int (noop + prop)
      in
      let ae_bytes (r : Orchestrator.result) =
        r.Orchestrator.totals.wire_bytes_sent
        - r.Orchestrator.totals.push_wire_bytes
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" loss;
          string_of_int capacity;
          Printf.sprintf "%.2f" (pct pull 50.0);
          Printf.sprintf "%.2f" (pct push 50.0);
          Printf.sprintf "%.2f" (pct pull 90.0);
          Printf.sprintf "%.2f" (pct push 90.0);
          Printf.sprintf "%.2f" pull_p99;
          Printf.sprintf "%.2f" push_p99;
          (if push_p99 = 0.0 then "-"
           else Printf.sprintf "%.1f" (pull_p99 /. push_p99));
          Printf.sprintf "%.2f" noop_frac;
          string_of_int (ae_bytes pull - ae_bytes push);
          string_of_int push.Orchestrator.totals.push_dropped_overflow;
        ])
    cells;
  table

(* ------------------------------------------------------------------ *)
(* E21 — membership GC: vector and wire bytes before/after retirement  *)
(* ------------------------------------------------------------------ *)

(* The closed-world cost the membership subsystem reclaims: every
   DBVV/IVV/log vector is O(n) in nodes that {e ever} existed, and the
   idle anti-entropy session ships those vectors forever. Retiring a
   quarter of the members drops their components from every vector on
   every live replica, so both the per-vector wire encoding and the
   steady-state session bytes shrink proportionally — measured here as
   exact byte counts, before and after the fence completes. *)

(* One full ring pass over the group's live, session-capable members,
   followed by a controller pass. *)
let e21_ring_pass g =
  let names =
    Array.to_list (Group.roster g)
    |> List.filter (fun name ->
           Group.alive g ~name
           &&
           match Group.status g ~name with
           | Group.Joining | Group.Active | Group.Draining -> true
           | Group.Departed | Group.Retiring | Group.Retired -> false)
  in
  let arr = Array.of_list names in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    match Group.sync g ~a:arr.(i) ~b:arr.((i + 1) mod k) with
    | Ok () -> ()
    | Error msg -> failwith msg
  done;
  ignore (Group.observe g : Group.event list)

let e21_settle g =
  let budget = ref (4 * Array.length (Group.roster g)) in
  let settled () =
    Group.pending_fences g = []
    && Group.converged g
    && Array.for_all
         (fun name ->
           match Group.status g ~name with
           | Group.Active | Group.Departed | Group.Retired -> true
           | Group.Joining | Group.Draining | Group.Retiring -> false)
         (Group.roster g)
  in
  while (not (settled ())) && !budget > 0 do
    e21_ring_pass g;
    decr budget
  done;
  assert (settled ())

(* The real varint wire encoding of one live member's summary DBVV
   (wire v2, checksum trailer excluded) — the bytes a framed session
   actually pays per vector, next to the fixed-width size model. *)
let e21_dbvv_wire_bytes g =
  let name =
    Array.to_list (Group.roster g)
    |> List.find (fun name ->
           Group.alive g ~name && Group.status g ~name = Group.Active)
  in
  let w = Codec.Writer.create () in
  Wire_v2.encode_vv w (Node.dbvv_view (Group.node g ~name));
  String.length (Codec.Writer.contents w) - 4

(* Size-model bytes of one idle ring pass (8 bytes per vector
   component, so the per-session vector tax is explicit). *)
let e21_idle_pass_bytes g =
  let before = (Group.counters_total g).Counters.bytes_sent in
  e21_ring_pass g;
  (Group.counters_total g).Counters.bytes_sent - before

let e21_membership_gc ?(quick = false) () =
  let ns = if quick then [ 8; 16 ] else [ 8; 32; 128 ] in
  let table =
    Table.create
      ~title:
        "E21: retirement garbage collection — vector components, their v2 \
         wire encoding, and size-model bytes of one idle ring pass, before \
         vs after retiring n/4 dead members"
      ~columns:
        [
          "n"; "retired"; "components"; "components'"; "dbvv wire B";
          "dbvv wire B'"; "idle pass B"; "idle pass B'"; "gc'd";
        ]
  in
  List.iter
    (fun n ->
      let g = Group.create ~shards:1 ~n () in
      (* One update per member so every origin's component is live. *)
      for name = 0 to n - 1 do
        match
          Group.update g ~name ~item:(item name)
            (Operation.Set (payload ~rank:name ~seq:1))
        with
        | Ok () -> ()
        | Error msg -> failwith msg
      done;
      e21_settle g;
      let components = int_of_float (Group.mean_vector_components g) in
      let wire_before = e21_dbvv_wire_bytes g in
      let idle_before = e21_idle_pass_bytes g in
      (* Crash and retire the last quarter of the roster. *)
      let retired = n / 4 in
      for name = n - retired to n - 1 do
        Group.crash g ~name;
        match Group.retire g ~name with
        | Ok () -> ()
        | Error msg -> failwith msg
      done;
      e21_settle g;
      let components' = int_of_float (Group.mean_vector_components g) in
      let wire_after = e21_dbvv_wire_bytes g in
      let idle_after = e21_idle_pass_bytes g in
      let gced = (Group.counters_total g).Counters.vector_components_gced in
      Table.add_row table
        [
          string_of_int n;
          string_of_int retired;
          string_of_int components;
          string_of_int components';
          string_of_int wire_before;
          string_of_int wire_after;
          string_of_int idle_before;
          string_of_int idle_after;
          string_of_int gced;
        ])
    ns;
  table

let all ?(quick = false) () =
  [
    ("E1", e1_cost_vs_database_size ~quick ());
    ("E2", e2_cost_vs_items_copied ~quick ());
    ("E3", e3_identical_replicas ~quick ());
    ("E4", e4_message_bytes ~quick ());
    ("E5", e5_out_of_bound ~quick ());
    ("E6", e6_failure_resilience ~quick ());
    ("E7", e7_convergence_rounds ~quick ());
    ("E8", e8_log_dedup ~quick ());
    ("E9", e9_conflict_detection ~quick ());
    ("E10", e10_log_based_gossip ~quick ());
    ("E11", e11_oplog_transport ~quick ());
    ("E12", e12_timeliness_vs_period ~quick ());
    ("E13", e13_propagation_delay ~quick ());
    ("E14", e14_token_ablation ~quick ());
    ("E15", e15_peer_cache_savings ~quick ());
    ("E17", e17_message_loss ~quick ());
    ("E18", e18_sharded_replicas ~quick ());
    ("E19", e19_wire_codec ~quick ());
    ("E20", e20_push_vs_pull ~quick ());
    ("E21", e21_membership_gc ~quick ());
  ]

(** The discrete-event simulation engine.

    Drives any replication protocol (through
    {!Edb_baselines.Driver.t}) over virtual time: user updates arrive,
    anti-entropy sessions fire on schedules, nodes crash and recover,
    the network delays, drops, duplicates or reorders sessions.

    {b Determinism guarantees.} A run is a pure function of the engine
    seed, the network configuration, and the sequence of [schedule]
    calls: all randomness comes from one seeded splitmix64 generator
    (never the OCaml stdlib [Random]), events with equal timestamps
    execute in the order they were scheduled (the event queue breaks
    ties FIFO), and the engine itself never consults wall-clock time.
    Re-running the same schedule with the same seed reproduces every
    delivery, loss, duplication and peer choice exactly — which is what
    lets the fault-schedule explorer ([lib/check]) shrink failing
    schedules and replay them from a printed seed.

    A session scheduled at time [T] between alive, connected endpoints
    executes at [T + delay]; if either endpoint is down at execution
    time, or the network loses the attempt, nothing happens — there is
    no retransmission, matching the paper's model where anti-entropy
    simply runs again later. *)

type t

type peer_policy =
  | Random_peer  (** Each node pulls from one uniformly random peer. *)
  | Ring  (** Node [i] pulls from node [i-1 mod n]. *)

type event =
  | User_update of { node : int; item : string; op : Edb_store.Operation.t }
  | Session of { src : int; dst : int }
      (** Begin one propagation session carrying [src]'s knowledge to
          [dst]. *)
  | Session_delivery of { src : int; dst : int }
      (** Internal: the session's network delay has elapsed; execute
          it. *)
  | Crash of int
  | Recover of int
  | Anti_entropy_round of { period : float; policy : peer_policy }
      (** Fire one round for every alive node and reschedule itself
          after [period]. *)
  | Custom of (t -> unit)  (** Escape hatch for experiment-specific logic. *)

val create :
  ?seed:int -> ?network:Network.t -> driver:Edb_baselines.Driver.t -> unit -> t

val driver : t -> Edb_baselines.Driver.t

val now : t -> float

val alive : t -> int -> bool

val schedule : t -> at:float -> event -> unit
(** [schedule t ~at e] enqueues [e] at absolute virtual time [at]
    (which must not precede {!now}). *)

val schedule_after : t -> delay:float -> event -> unit

val run_until : t -> float -> unit
(** [run_until t deadline] processes events with time <= [deadline] and
    advances the clock to [deadline]. *)

val step : t -> bool
(** [step t] processes the single earliest event; [false] when the
    queue is empty. *)

val run_until_quiescent : ?max_events:int -> t -> bool
(** [run_until_quiescent t] processes events in deterministic order
    until the queue drains or [max_events] (default [100_000]) have
    executed; [true] iff the queue drained. Bounded by event count, not
    wall time, so tests driving finite schedules cannot hang. Note that
    a pending {!Anti_entropy_round} reschedules itself forever and will
    exhaust the budget — use {!run_until} for recurring schedules. *)

val run_until_converged :
  t -> check_every:float -> deadline:float -> float option
(** [run_until_converged t ~check_every ~deadline] runs the simulation,
    testing [driver.converged] every [check_every] time units; returns
    the first check time at which it held, or [None] if the deadline
    passed first. *)

val sessions_attempted : t -> int
(** Total sessions that reached execution (delivered, both ends up). *)

val sessions_lost : t -> int
(** Session attempts dropped by the network or a dead endpoint. *)

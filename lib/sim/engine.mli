(** The discrete-event simulation engine.

    Drives any replication protocol (through
    {!Edb_baselines.Driver.t}) over virtual time: user updates arrive,
    anti-entropy sessions fire on schedules, nodes crash and recover,
    the network delays, drops, duplicates or reorders sessions.

    {b Determinism guarantees.} A run is a pure function of the engine
    seed, the network configuration, and the sequence of [schedule]
    calls: all randomness comes from one seeded splitmix64 generator
    (never the OCaml stdlib [Random]), events with equal timestamps
    execute in the order they were scheduled (the event queue breaks
    ties FIFO), and the engine itself never consults wall-clock time.
    Re-running the same schedule with the same seed reproduces every
    delivery, loss, duplication and peer choice exactly — which is what
    lets the fault-schedule explorer ([lib/check]) shrink failing
    schedules and replay them from a printed seed.

    {b Transports.} Under the default {!Session_grain} transport a
    session scheduled at time [T] between alive, connected endpoints
    executes atomically at [T + delay]; if either endpoint is down at
    execution time, or the network loses the attempt, nothing happens —
    there is no retransmission, matching the paper's model where
    anti-entropy simply runs again later.

    Under {!Message_grain} (requires a driver with
    {!Edb_baselines.Driver.t.granular} support) a session is three
    observable points — request built at the recipient, reply built at
    the source, reply accepted back at the recipient — joined by two
    wire messages, each separately subject to loss, delay, duplication,
    reordering and partitions, with endpoint crashes able to land
    {e between} them. A per-attempt timeout drives bounded exponential
    backoff with jitter (seeded from the engine PRNG); after
    [max_retries] re-sends the session is abandoned to a later
    anti-entropy round. Timeouts, retries and abandonments are charged
    to the initiating node's {!Edb_metrics.Counters}. *)

type t

type peer_policy =
  | Random_peer  (** Each node pulls from one uniformly random peer. *)
  | Ring  (** Node [i] pulls from node [i-1 mod n]. *)

type retry_policy = Edb_transport.Transport.retry_policy = {
  timeout : float;  (** Per-attempt reply deadline. *)
  backoff_base : float;  (** Delay before the first re-send. *)
  backoff_factor : float;  (** Multiplier per further attempt. *)
  backoff_max : float;  (** Backoff cap. *)
  jitter : float;
      (** Each backoff is stretched by a uniform factor in
          [\[1, 1+jitter)], drawn from the engine PRNG. *)
  max_retries : int;  (** Re-sends before the session is abandoned. *)
}
(** Re-exported from the transport seam
    ({!Edb_transport.Transport.retry_policy}, the canonical home): the
    socket daemon runs the very same policy and backoff arithmetic over
    real connections. *)

val default_retry_policy : retry_policy
(** timeout 4.0, backoff 0.5 doubling to a cap of 8.0, jitter 0.5,
    3 retries — tuned to the default network's base latency of 1.0
    (round trip 2.0, so a timeout means a message was really lost,
    reordered far, or an endpoint is down). *)

type transport =
  | Session_grain  (** Atomic whole-session delivery (the default). *)
  | Message_grain of retry_policy
      (** Independent request/reply messages with timeout-retry. *)

type event =
  | User_update of { node : int; item : string; op : Edb_store.Operation.t }
  | Session of { src : int; dst : int }
      (** Begin one propagation session carrying [src]'s knowledge to
          [dst]. *)
  | Session_delivery of { src : int; dst : int }
      (** Internal (session-grain): the session's network delay has
          elapsed; execute it. *)
  | Request_delivery of {
      sid : int;
      src : int;
      dst : int;
      msg : Edb_baselines.Driver.message;
    }
      (** Internal (message-grain): [dst]'s propagation request reaches
          the source. *)
  | Reply_delivery of {
      sid : int;
      src : int;
      dst : int;
      msg : Edb_baselines.Driver.message;
    }
      (** Internal (message-grain): the reply reaches the recipient. *)
  | Session_timeout of { sid : int; attempt : int }
      (** Internal (message-grain): an attempt's reply deadline
          passed. *)
  | Session_retry of { sid : int }
      (** Internal (message-grain): backoff elapsed; re-send. *)
  | Push_flush of { period : float; until : float }
      (** Drain every alive node's push queues toward ready peers
          (requires a driver with {!Edb_baselines.Driver.t.push};
          raises [Invalid_argument] otherwise) and reschedule after
          [period] while the next firing is at or before [until] — a
          bounded cadence, so quiescence-driven runs still drain. Each
          flushed frame is one unacknowledged network message, faulted
          independently; its loss/delay/duplication draws come from a
          {e separate} PRNG stream derived from the seed, so enabling
          push never perturbs the main stream's draws. *)
  | Push_delivery of { src : int; dst : int; msg : Edb_baselines.Driver.message }
      (** Internal: a push frame reaches [dst]; applied iff alive. *)
  | Crash of int
  | Recover of int
  | Anti_entropy_round of { period : float; policy : peer_policy }
      (** Fire one round for every alive node and reschedule itself
          after [period]. *)
  | Custom of (t -> unit)  (** Escape hatch for experiment-specific logic. *)

val create :
  ?seed:int ->
  ?network:Network.t ->
  ?transport:transport ->
  driver:Edb_baselines.Driver.t ->
  unit ->
  t
(** Raises [Invalid_argument] if [transport] is {!Message_grain} but
    the driver has no granular support. *)

val driver : t -> Edb_baselines.Driver.t

val now : t -> float

val alive : t -> int -> bool

val schedule : t -> at:float -> event -> unit
(** [schedule t ~at e] enqueues [e] at absolute virtual time [at]
    (which must not precede {!now}). *)

val schedule_after : t -> delay:float -> event -> unit

val run_until : t -> float -> unit
(** [run_until t deadline] processes events with time <= [deadline] and
    advances the clock to [deadline]. *)

val step : t -> bool
(** [step t] processes the single earliest event; [false] when the
    queue is empty. *)

val run_until_quiescent : ?max_events:int -> t -> bool
(** [run_until_quiescent t] processes events in deterministic order
    until the queue drains or [max_events] (default [100_000]) have
    executed; [true] iff the queue drained. Bounded by event count, not
    wall time, so tests driving finite schedules cannot hang. Note that
    a pending {!Anti_entropy_round} reschedules itself forever and will
    exhaust the budget — use {!run_until} for recurring schedules.
    Message-grain sessions always drain: retries are bounded by the
    policy's budget and every timeout clock eventually fires. *)

val run_until_converged :
  t -> check_every:float -> deadline:float -> float option
(** [run_until_converged t ~check_every ~deadline] runs the simulation,
    testing [driver.converged] every [check_every] time units; returns
    the first check time at which it held, or [None] if the deadline
    passed first. *)

val sessions_attempted : t -> int
(** Session-grain: sessions that reached execution (delivered, both
    ends up). Message-grain: sessions whose first reply was accepted. *)

val sessions_lost : t -> int
(** Session-grain: attempts dropped by the network or a dead endpoint.
    Message-grain: sessions with a dead initiator at start, plus
    sessions abandoned after the retry budget. *)

val sessions_in_flight : t -> int
(** Message-grain sessions started but neither completed nor
    abandoned. *)

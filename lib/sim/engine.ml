module Prng = Edb_util.Prng
module Driver = Edb_baselines.Driver
module Counters = Edb_metrics.Counters
module Transport = Edb_transport.Transport
module Sim_transport = Edb_transport.Sim_transport

type peer_policy = Random_peer | Ring

(* Message-granular transport: per-attempt timeout, bounded exponential
   backoff with jitter (drawn from the engine PRNG, so runs replay from
   the seed), and a retry budget after which the session is abandoned
   to a later anti-entropy round — the paper's recovery story. The
   policy and its timeout/backoff arithmetic are the transport seam's
   ({!Edb_transport.Transport}), shared with the socket daemon; this
   engine re-exports the canonical type. *)
type retry_policy = Transport.retry_policy = {
  timeout : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  max_retries : int;
}

let default_retry_policy = Transport.default_retry_policy

type transport = Session_grain | Message_grain of retry_policy

(* One in-flight message-granular session. Completion removes the entry
   from the table; everything arriving afterwards (late replies from
   superseded attempts, duplicates) is still applied — the protocol
   must be idempotent — but no longer drives the session machinery. *)
type session_state = {
  s_src : int;  (* data source: answers the request *)
  s_dst : int;  (* initiator/recipient: sends the request, accepts the reply *)
  mutable attempt : int;  (* 0-based attempt number *)
}

type event =
  | User_update of { node : int; item : string; op : Edb_store.Operation.t }
  | Session of { src : int; dst : int }
  | Session_delivery of { src : int; dst : int }
  | Request_delivery of { sid : int; src : int; dst : int; msg : Driver.message }
  | Reply_delivery of { sid : int; src : int; dst : int; msg : Driver.message }
  | Session_timeout of { sid : int; attempt : int }
  | Session_retry of { sid : int }
  | Push_flush of { period : float; until : float }
  | Push_delivery of { src : int; dst : int; msg : Driver.message }
  | Crash of int
  | Recover of int
  | Anti_entropy_round of { period : float; policy : peer_policy }
  | Custom of (t -> unit)

and t = {
  queue : event Event_queue.t;
  mutable now : float;
  prng : Prng.t;
  push_prng : Prng.t;
      (* Push traffic draws its network randomness from a separate
         stream derived from the seed, so enabling or disabling the push
         channel never perturbs the main stream — a push-off run and a
         push-on run see identical session loss/delay/duplication draws,
         which is what the push-equivalence explorer relies on. *)
  driver : Driver.t;
  network : Network.t;
  transport : transport;
  alive : bool array;
  sessions : (int, session_state) Hashtbl.t;
  mutable next_sid : int;
  mutable sessions_attempted : int;
  mutable sessions_lost : int;
}

let create ?(seed = 1) ?network ?(transport = Session_grain) ~driver () =
  let network = match network with Some n -> n | None -> Network.create () in
  (match transport with
  | Session_grain -> ()
  | Message_grain _ ->
    if driver.Driver.granular = None then
      invalid_arg "Engine.create: driver has no message-granular support");
  {
    queue = Event_queue.create ();
    now = 0.0;
    prng = Prng.create ~seed;
    push_prng = Prng.create ~seed:(seed lxor 0x70757368) (* "push" *);
    driver;
    network;
    transport;
    alive = Array.make driver.Driver.n true;
    sessions = Hashtbl.create 16;
    next_sid = 0;
    sessions_attempted = 0;
    sessions_lost = 0;
  }

let driver t = t.driver

let now t = t.now

let alive t node = t.alive.(node)

let schedule t ~at event =
  if at < t.now then invalid_arg "Engine.schedule: event in the past";
  Event_queue.push t.queue ~time:at event

let schedule_after t ~delay event = schedule t ~at:(t.now +. delay) event

let random_peer t ~self =
  let n = t.driver.Driver.n in
  let peer = Prng.int t.prng (n - 1) in
  if peer >= self then peer + 1 else peer

let granular t =
  match t.driver.Driver.granular with
  | Some g -> g
  | None -> assert false (* checked in [create] *)

(* One directed hop [from_] -> [to_] through {!Sim_transport.hop},
   which owns the PRNG draw order (blocked short-circuits; then lost,
   delay, duplicated, delay) that replayed explorer schedules depend
   on — the session-grain path below consumes randomness in the same
   pattern. *)
let send_message t ~from_ ~to_ make_event =
  Sim_transport.hop
    ~blocked:(fun () -> Network.blocked t.network from_ to_)
    ~lost:(fun () -> Network.lost t.network t.prng)
    ~delay:(fun () -> Network.delay t.network t.prng)
    ~duplicated:(fun () -> Network.duplicated t.network t.prng)
    ~deliver:(fun delay -> schedule_after t ~delay (make_event ()))

(* Like [send_message], but all draws come from the dedicated push
   stream — see the [push_prng] field note. *)
let send_push t ~from_ ~to_ make_event =
  Sim_transport.hop
    ~blocked:(fun () -> Network.blocked t.network from_ to_)
    ~lost:(fun () -> Network.lost t.network t.push_prng)
    ~delay:(fun () -> Network.delay t.network t.push_prng)
    ~duplicated:(fun () -> Network.duplicated t.network t.push_prng)
    ~deliver:(fun delay -> schedule_after t ~delay (make_event ()))

(* (Re)issue one session attempt: build the request at the initiator,
   put it on the wire toward the source, and start the attempt's
   timeout clock. A dead initiator sends nothing, but the timeout still
   runs so the session eventually completes or abandons. *)
let send_request t ~policy sid st =
  if t.alive.(st.s_dst) then begin
    (* Each attempt is one transport dial, charged like the socket
       transport charges connect(2): first send opens, re-sends after a
       timeout are the retry subset. *)
    Transport.Charge.dial ~retry:(st.attempt > 0)
      (t.driver.Driver.counters ~node:st.s_dst);
    let msg = (granular t).Driver.make_request ~dst:st.s_dst ~src:st.s_src in
    send_message t ~from_:st.s_dst ~to_:st.s_src (fun () ->
        Request_delivery { sid; src = st.s_src; dst = st.s_dst; msg })
  end;
  schedule_after t ~delay:policy.timeout (Session_timeout { sid; attempt = st.attempt })

let rec execute t event =
  match event with
  | User_update { node; item; op } ->
    if t.alive.(node) then t.driver.Driver.update ~node ~item ~op
  | Session { src; dst } -> (
    match t.transport with
    | Message_grain policy ->
      (* Message-granular: the initiator must be up to issue the
         request; everything after that — loss of either message,
         endpoint crashes between messages, duplicates, reordering —
         is handled per hop, backed by the timeout/retry machinery. *)
      if t.alive.(dst) then begin
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        let st = { s_src = src; s_dst = dst; attempt = 0 } in
        Hashtbl.add t.sessions sid st;
        send_request t ~policy sid st
      end
      else t.sessions_lost <- t.sessions_lost + 1
    | Session_grain ->
      (* A session only begins if the initiating endpoints are up and the
         pair is not partitioned; the network may still lose it, and may
         deliver it twice (each copy with its own delay). *)
      if
        t.alive.(src) && t.alive.(dst)
        && (not (Network.blocked t.network src dst))
        && not (Network.lost t.network t.prng)
      then begin
        schedule_after t ~delay:(Network.delay t.network t.prng)
          (Session_delivery { src; dst });
        if Network.duplicated t.network t.prng then
          schedule_after t ~delay:(Network.delay t.network t.prng)
            (Session_delivery { src; dst })
      end
      else t.sessions_lost <- t.sessions_lost + 1)
  | Session_delivery { src; dst } ->
    (* Endpoints may have died while the session was in flight. *)
    if t.alive.(src) && t.alive.(dst) then begin
      t.sessions_attempted <- t.sessions_attempted + 1;
      t.driver.Driver.session ~src ~dst
    end
    else t.sessions_lost <- t.sessions_lost + 1
  | Request_delivery { sid; src; dst; msg } ->
    (* The request reaches the data source, which answers it whether or
       not the session has since completed or been abandoned (a real
       responder cannot know). Duplicate requests produce duplicate
       replies; both are charged — that is the honest message cost. *)
    if t.alive.(src) then begin
      let reply = (granular t).Driver.make_reply ~src ~dst msg in
      send_message t ~from_:src ~to_:dst (fun () ->
          Reply_delivery { sid; src; dst; msg = reply })
    end
  | Reply_delivery { sid; src; dst; msg } ->
    if t.alive.(dst) then begin
      (* Apply unconditionally — duplicates and replies from superseded
         or abandoned attempts included. AcceptPropagation's dominance
         checks make redelivery a no-op, and the chaos explorer
         verifies exactly that. *)
      (granular t).Driver.accept_reply ~dst ~src msg;
      match Hashtbl.find_opt t.sessions sid with
      | Some _ ->
        (* First reply completes the session: stop the retry machinery. *)
        t.sessions_attempted <- t.sessions_attempted + 1;
        Hashtbl.remove t.sessions sid
      | None -> ()
    end
  | Session_timeout { sid; attempt } -> (
    match Hashtbl.find_opt t.sessions sid with
    | None -> () (* completed or abandoned; stale clock *)
    | Some st ->
      if st.attempt = attempt then begin
        (* This attempt's reply did not arrive in time. *)
        (match t.transport with
        | Session_grain -> assert false
        | Message_grain policy -> (
          let c = t.driver.Driver.counters ~node:st.s_dst in
          c.Counters.timeouts <- c.Counters.timeouts + 1;
          (* The verdict and backoff curve come from the shared seam
             ({!Transport.Flow}); only the jitter draw stays here, on
             the engine PRNG, so schedules replay from the seed. *)
          match Transport.Flow.on_timeout policy ~attempt:st.attempt with
          | Transport.Flow.Abandon ->
            c.Counters.sessions_abandoned <- c.Counters.sessions_abandoned + 1;
            t.sessions_lost <- t.sessions_lost + 1;
            Hashtbl.remove t.sessions sid
          | Transport.Flow.Retry { attempt; backoff } ->
            c.Counters.retries <- c.Counters.retries + 1;
            st.attempt <- attempt;
            let backoff =
              Transport.Flow.jittered policy backoff ~u:(Prng.float t.prng 1.0)
            in
            schedule_after t ~delay:backoff (Session_retry { sid })))
      end)
  | Session_retry { sid } -> (
    match Hashtbl.find_opt t.sessions sid with
    | None -> () (* completed in the backoff window *)
    | Some st -> (
      match t.transport with
      | Session_grain -> assert false
      | Message_grain policy -> send_request t ~policy sid st))
  | Push_flush { period; until } -> (
    match t.driver.Driver.push with
    | None -> invalid_arg "Engine: Push_flush scheduled but the driver has no push stream"
    | Some stream ->
      (* Every alive node drains its queues; each resulting one-way
         frame is its own network message (lost, delayed, duplicated
         independently) with no timeout, no retry, no acknowledgement —
         a dropped push is simply repaired by anti-entropy later. *)
      for src = 0 to t.driver.Driver.n - 1 do
        if t.alive.(src) then
          List.iter
            (fun (dst, msg) ->
              (* Each flushed frame is one fire-and-forget dial — never
                 a retry; push has no acknowledgement to time out on. *)
              Transport.Charge.dial (t.driver.Driver.counters ~node:src);
              send_push t ~from_:src ~to_:dst (fun () ->
                  Push_delivery { src; dst; msg }))
            (stream.Driver.flush ~src)
      done;
      if t.now +. period <= until then
        schedule_after t ~delay:period (Push_flush { period; until }))
  | Push_delivery { src; dst; msg } ->
    if t.alive.(dst) then begin
      match t.driver.Driver.push with
      | Some stream -> stream.Driver.deliver ~dst ~src msg
      | None -> assert false (* only scheduled by Push_flush *)
    end
  | Crash node -> t.alive.(node) <- false
  | Recover node -> t.alive.(node) <- true
  | Anti_entropy_round { period; policy } ->
    let n = t.driver.Driver.n in
    for dst = 0 to n - 1 do
      if t.alive.(dst) then begin
        let src =
          match policy with
          | Random_peer -> random_peer t ~self:dst
          | Ring -> (dst + n - 1) mod n
        in
        execute_session_start t ~src ~dst
      end
    done;
    schedule_after t ~delay:period (Anti_entropy_round { period; policy })
  | Custom f -> f t

and execute_session_start t ~src ~dst = execute t (Session { src; dst })

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, event) ->
    t.now <- max t.now time;
    execute t event;
    true

let run_until t deadline =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= deadline ->
      let (_ : bool) = step t in
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- max t.now deadline

let run_until_quiescent ?(max_events = 100_000) t =
  let rec loop budget =
    if budget <= 0 then false else if step t then loop (budget - 1) else true
  in
  loop max_events

let run_until_converged t ~check_every ~deadline =
  let rec loop checkpoint =
    if checkpoint > deadline then None
    else begin
      run_until t checkpoint;
      if t.driver.Driver.converged () then Some checkpoint
      else loop (checkpoint +. check_every)
    end
  in
  (* Always process at least one checkpoint: convergence is only
     meaningful once the events due now have executed. *)
  loop (t.now +. check_every)

let sessions_attempted t = t.sessions_attempted

let sessions_lost t = t.sessions_lost

let sessions_in_flight t = Hashtbl.length t.sessions

module Prng = Edb_util.Prng
module Driver = Edb_baselines.Driver

type peer_policy = Random_peer | Ring

type event =
  | User_update of { node : int; item : string; op : Edb_store.Operation.t }
  | Session of { src : int; dst : int }
  | Session_delivery of { src : int; dst : int }
  | Crash of int
  | Recover of int
  | Anti_entropy_round of { period : float; policy : peer_policy }
  | Custom of (t -> unit)

and t = {
  queue : event Event_queue.t;
  mutable now : float;
  prng : Prng.t;
  driver : Driver.t;
  network : Network.t;
  alive : bool array;
  mutable sessions_attempted : int;
  mutable sessions_lost : int;
}

let create ?(seed = 1) ?network ~driver () =
  let network = match network with Some n -> n | None -> Network.create () in
  {
    queue = Event_queue.create ();
    now = 0.0;
    prng = Prng.create ~seed;
    driver;
    network;
    alive = Array.make driver.Driver.n true;
    sessions_attempted = 0;
    sessions_lost = 0;
  }

let driver t = t.driver

let now t = t.now

let alive t node = t.alive.(node)

let schedule t ~at event =
  if at < t.now then invalid_arg "Engine.schedule: event in the past";
  Event_queue.push t.queue ~time:at event

let schedule_after t ~delay event = schedule t ~at:(t.now +. delay) event

let random_peer t ~self =
  let n = t.driver.Driver.n in
  let peer = Prng.int t.prng (n - 1) in
  if peer >= self then peer + 1 else peer

let rec execute t event =
  match event with
  | User_update { node; item; op } ->
    if t.alive.(node) then t.driver.Driver.update ~node ~item ~op
  | Session { src; dst } ->
    (* A session only begins if the initiating endpoints are up and the
       pair is not partitioned; the network may still lose it, and may
       deliver it twice (each copy with its own delay). *)
    if
      t.alive.(src) && t.alive.(dst)
      && (not (Network.blocked t.network src dst))
      && not (Network.lost t.network t.prng)
    then begin
      schedule_after t ~delay:(Network.delay t.network t.prng)
        (Session_delivery { src; dst });
      if Network.duplicated t.network t.prng then
        schedule_after t ~delay:(Network.delay t.network t.prng)
          (Session_delivery { src; dst })
    end
    else t.sessions_lost <- t.sessions_lost + 1
  | Session_delivery { src; dst } ->
    (* Endpoints may have died while the session was in flight. *)
    if t.alive.(src) && t.alive.(dst) then begin
      t.sessions_attempted <- t.sessions_attempted + 1;
      t.driver.Driver.session ~src ~dst
    end
    else t.sessions_lost <- t.sessions_lost + 1
  | Crash node -> t.alive.(node) <- false
  | Recover node -> t.alive.(node) <- true
  | Anti_entropy_round { period; policy } ->
    let n = t.driver.Driver.n in
    for dst = 0 to n - 1 do
      if t.alive.(dst) then begin
        let src =
          match policy with
          | Random_peer -> random_peer t ~self:dst
          | Ring -> (dst + n - 1) mod n
        in
        execute_session_start t ~src ~dst
      end
    done;
    schedule_after t ~delay:period (Anti_entropy_round { period; policy })
  | Custom f -> f t

and execute_session_start t ~src ~dst = execute t (Session { src; dst })

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, event) ->
    t.now <- max t.now time;
    execute t event;
    true

let run_until t deadline =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when time <= deadline ->
      let (_ : bool) = step t in
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.now <- max t.now deadline

let run_until_quiescent ?(max_events = 100_000) t =
  let rec loop budget =
    if budget <= 0 then false else if step t then loop (budget - 1) else true
  in
  loop max_events

let run_until_converged t ~check_every ~deadline =
  let rec loop checkpoint =
    if checkpoint > deadline then None
    else begin
      run_until t checkpoint;
      if t.driver.Driver.converged () then Some checkpoint
      else loop (checkpoint +. check_every)
    end
  in
  (* Always process at least one checkpoint: convergence is only
     meaningful once the events due now have executed. *)
  loop (t.now +. check_every)

let sessions_attempted t = t.sessions_attempted

let sessions_lost t = t.sessions_lost

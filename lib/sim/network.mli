(** The virtual network between replication nodes.

    Models the properties the paper's setting cares about: anti-entropy
    over slow or intermittent links ("during the next dial-up session",
    §1), lossy transport, and partitions. Sessions between partitioned
    or crashed endpoints simply do not happen — the epidemic process
    routes around them, which is exactly what experiment E6
    demonstrates.

    Two additional fault modes exercise the protocol under adversarial
    delivery orders (the schedules where causality-metadata bugs hide):

    - {b duplication} — a session attempt may be delivered twice, each
      copy with its own delay. The protocol must be idempotent: the
      second delivery finds the recipient current.
    - {b reordering} — a session attempt may be held back by an extra
      random delay, so sessions issued later can overtake it. *)

type t

val create :
  ?base_latency:float ->
  ?jitter_mean:float ->
  ?loss_probability:float ->
  ?duplicate_probability:float ->
  ?reorder_probability:float ->
  ?reorder_spread:float ->
  unit ->
  t
(** [create ()] is a reliable zero-jitter network with
    [base_latency = 1.0] time units and no duplication or reordering.
    [reorder_spread] (default 5.0) is the maximum extra delay added to
    a reordered session. *)

val delay : t -> Edb_util.Prng.t -> float
(** [delay t prng] samples one session's network delay: base latency
    plus exponential jitter, plus — with probability
    [reorder_probability] — a uniform extra delay in
    [\[0, reorder_spread)] that lets later sessions overtake this
    one. *)

val lost : t -> Edb_util.Prng.t -> bool
(** [lost t prng] decides whether a session attempt is lost. *)

val duplicated : t -> Edb_util.Prng.t -> bool
(** [duplicated t prng] decides whether a session attempt is delivered
    twice. *)

val set_loss_probability : t -> float -> unit
(** Change the loss probability mid-simulation — the fault-schedule
    explorer uses this to restore a reliable network before driving the
    system to quiescence. *)

val set_duplicate_probability : t -> float -> unit

val set_reorder_probability : t -> float -> unit

val partition : t -> int -> int -> unit
(** [partition t a b] blocks sessions between [a] and [b] (both
    directions). Idempotent. *)

val heal : t -> int -> int -> unit
(** [heal t a b] unblocks the pair. *)

val heal_all : t -> unit

val blocked : t -> int -> int -> bool

module Prng = Edb_util.Prng

type t = {
  base_latency : float;
  jitter_mean : float;
  mutable loss_probability : float;
  mutable duplicate_probability : float;
  mutable reorder_probability : float;
  reorder_spread : float;
  blocked_pairs : (int * int, unit) Hashtbl.t;
}

let create ?(base_latency = 1.0) ?(jitter_mean = 0.0) ?(loss_probability = 0.0)
    ?(duplicate_probability = 0.0) ?(reorder_probability = 0.0)
    ?(reorder_spread = 5.0) () =
  {
    base_latency;
    jitter_mean;
    loss_probability;
    duplicate_probability;
    reorder_probability;
    reorder_spread;
    blocked_pairs = Hashtbl.create 8;
  }

let delay t prng =
  let base =
    if t.jitter_mean <= 0.0 then t.base_latency
    else t.base_latency +. Prng.exponential prng ~mean:t.jitter_mean
  in
  if t.reorder_probability > 0.0 && Prng.chance prng t.reorder_probability then
    base +. Prng.float prng t.reorder_spread
  else base

let lost t prng = Prng.chance prng t.loss_probability

let duplicated t prng =
  t.duplicate_probability > 0.0 && Prng.chance prng t.duplicate_probability

let set_loss_probability t p = t.loss_probability <- p

let set_duplicate_probability t p = t.duplicate_probability <- p

let set_reorder_probability t p = t.reorder_probability <- p

let key a b = if a <= b then (a, b) else (b, a)

let partition t a b = Hashtbl.replace t.blocked_pairs (key a b) ()

let heal t a b = Hashtbl.remove t.blocked_pairs (key a b)

let heal_all t = Hashtbl.reset t.blocked_pairs

let blocked t a b = Hashtbl.mem t.blocked_pairs (key a b)

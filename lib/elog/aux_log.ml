module Dll = Edb_util.Dll
module Vv = Edb_vv.Version_vector

type record = { item : string; ivv : Vv.t; op : Edb_store.Operation.t }

type t = {
  records : record Dll.t;
  (* Per-item FIFO of nodes, giving O(1) Earliest(x) and O(1) removal of
     the earliest record. Queues of emptied items are dropped lazily. *)
  per_item : (string, record Dll.node Queue.t) Hashtbl.t;
}

let create () = { records = Dll.create (); per_item = Hashtbl.create 8 }

let append t r =
  let node = Dll.append t.records r in
  let queue =
    match Hashtbl.find_opt t.per_item r.item with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.per_item r.item q;
      q
  in
  Queue.add node queue

let earliest t item =
  match Hashtbl.find_opt t.per_item item with
  | None -> None
  | Some q -> if Queue.is_empty q then None else Some (Dll.value (Queue.peek q))

let remove_earliest t item =
  match Hashtbl.find_opt t.per_item item with
  | None -> invalid_arg "Aux_log.remove_earliest: no record for item"
  | Some q ->
    if Queue.is_empty q then invalid_arg "Aux_log.remove_earliest: no record for item";
    let node = Queue.pop q in
    Dll.remove t.records node;
    if Queue.is_empty q then Hashtbl.remove t.per_item item

let has_records_for t item = earliest t item <> None

let length t = Dll.length t.records

let to_list t = Dll.to_list t.records

let records_for t item =
  match Hashtbl.find_opt t.per_item item with
  | None -> []
  | Some q -> Queue.fold (fun acc node -> Dll.value node :: acc) [] q |> List.rev

let storage_bytes t =
  Dll.fold_left
    (fun acc r ->
      acc + Edb_store.Operation.size_bytes r.op + (8 * Vv.dimension r.ivv) + 16)
    0 t.records

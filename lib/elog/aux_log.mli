(** The auxiliary log [AUX_i] (paper §4.4).

    Stores the updates a node applied to out-of-bound data items, with
    everything needed to {e re-do} them later on the regular copy:
    the item name, the IVV the auxiliary copy had {e before} the update,
    and the operation itself. Unlike regular log records these can be
    large — but they never travel between nodes.

    Supports the two operations §4.4 requires in O(1):
    [Earliest(x)] and removal of the earliest record of an item. *)

type record = {
  item : string;
  ivv : Edb_vv.Version_vector.t;
      (** The auxiliary copy's IVV at the time the update was applied,
          excluding this update. Intra-node propagation replays the
          operation only when the regular copy reaches exactly this
          IVV. *)
  op : Edb_store.Operation.t;
}

type t

val create : unit -> t

val append : t -> record -> unit
(** [append t r] adds [r] at the tail. O(1). *)

val earliest : t -> string -> record option
(** [earliest t item] is the paper's [Earliest(x)]: the oldest retained
    record for [item], if any. O(1). *)

val remove_earliest : t -> string -> unit
(** [remove_earliest t item] drops the record {!earliest} would return.
    Raises [Invalid_argument] if there is none. O(1). *)

val has_records_for : t -> string -> bool

val length : t -> int
(** [length t] is the total number of retained records. *)

val to_list : t -> record list
(** [to_list t] is every retained record, oldest first. For tests and
    inspection. *)

val records_for : t -> string -> record list
(** [records_for t item] is every retained record for [item], oldest
    first. Read-only inspection hook for the invariant checker
    ([lib/check]): the per-item IVVs must be strictly increasing in the
    dominance order (§4.4). *)

val storage_bytes : t -> int
(** [storage_bytes t] is the cost-model size of the log: per record, the
    operation payload plus one IVV. This is the storage overhead the
    paper accepts in exchange for out-of-bound freshness (§1). *)

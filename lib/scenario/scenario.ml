module Json = Edb_metrics.Json

type topology = Random | Ring

type retry = {
  timeout : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  max_retries : int;
}

type transport = Session | Message of retry

type drop = Drop_oldest | Drop_newest

type push = { capacity : int; drop : drop; flush_period : float }

type phase = { from_ : float; until : float; rate : float }

type scripted = { at : float; node : int; item : int; seq : int }

type arrival = Phases of phase list | Script of scripted list

type fault =
  | Crash of { at : float; node : int }
  | Recover of { at : float; node : int }
  | Partition of { at : float; a : int; b : int }
  | Heal of { at : float; a : int; b : int }
  | Loss of { at : float; p : float }
  | Duplication of { at : float; p : float }

type churn_op =
  | Join of { at : float; donor : int }
  | Leave of { at : float; name : int }
  | Retire of { at : float; name : int }

type churn = { ops : churn_op list }

type seeds = { driver : int; engine : int; workload : int }

type t = {
  name : string;
  description : string;
  nodes : int;
  shards : int;
  items : int;
  value_size : int;
  zipf : float;
  single_writer : bool;
  cache : bool;
  seeds : seeds;
  topology : topology;
  period : float;
  first_at : float;
  latency : float;
  loss : float;
  duplication : float;
  transport : transport;
  push : push option;
  arrival : arrival;
  faults : fault list;
  churn : churn option;
  duration : float;
  tick : float;
  until_converged : bool;
  deadline : float;
}

let equal (a : t) (b : t) = a = b

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

(* Float fields always print as Float (never Int), so the canonical
   form of a scenario is unique and the round-trip test can demand
   bit-identical output. *)

let json_of_topology = function
  | Random -> Json.String "random"
  | Ring -> Json.String "ring"

let json_of_transport = function
  | Session -> Json.String "session"
  | Message r ->
    Json.Obj
      [
        ("timeout", Json.Float r.timeout);
        ("backoff_base", Json.Float r.backoff_base);
        ("backoff_factor", Json.Float r.backoff_factor);
        ("backoff_max", Json.Float r.backoff_max);
        ("jitter", Json.Float r.jitter);
        ("max_retries", Json.Int r.max_retries);
      ]

let drop_name = function Drop_oldest -> "drop-oldest" | Drop_newest -> "drop-newest"

let json_of_push (p : push) =
  Json.Obj
    [
      ("capacity", Json.Int p.capacity);
      ("drop", Json.String (drop_name p.drop));
      ("flush_period", Json.Float p.flush_period);
    ]

let json_of_arrival = function
  | Phases phases ->
    Json.Obj
      [
        ( "phases",
          Json.List
            (List.map
               (fun (p : phase) ->
                 Json.Obj
                   [
                     ("from", Json.Float p.from_);
                     ("until", Json.Float p.until);
                     ("rate", Json.Float p.rate);
                   ])
               phases) );
      ]
  | Script steps ->
    Json.Obj
      [
        ( "script",
          Json.List
            (List.map
               (fun (s : scripted) ->
                 Json.Obj
                   [
                     ("at", Json.Float s.at);
                     ("node", Json.Int s.node);
                     ("item", Json.Int s.item);
                     ("seq", Json.Int s.seq);
                   ])
               steps) );
      ]

let json_of_fault f =
  let tagged kind rest = Json.Obj (("kind", Json.String kind) :: rest) in
  match f with
  | Crash { at; node } -> tagged "crash" [ ("at", Json.Float at); ("node", Json.Int node) ]
  | Recover { at; node } ->
    tagged "recover" [ ("at", Json.Float at); ("node", Json.Int node) ]
  | Partition { at; a; b } ->
    tagged "partition" [ ("at", Json.Float at); ("a", Json.Int a); ("b", Json.Int b) ]
  | Heal { at; a; b } ->
    tagged "heal" [ ("at", Json.Float at); ("a", Json.Int a); ("b", Json.Int b) ]
  | Loss { at; p } -> tagged "loss" [ ("at", Json.Float at); ("p", Json.Float p) ]
  | Duplication { at; p } ->
    tagged "duplication" [ ("at", Json.Float at); ("p", Json.Float p) ]

let json_of_churn_op op =
  let tagged kind rest = Json.Obj (("kind", Json.String kind) :: rest) in
  match op with
  | Join { at; donor } ->
    tagged "join" [ ("at", Json.Float at); ("donor", Json.Int donor) ]
  | Leave { at; name } ->
    tagged "leave" [ ("at", Json.Float at); ("name", Json.Int name) ]
  | Retire { at; name } ->
    tagged "retire" [ ("at", Json.Float at); ("name", Json.Int name) ]

let json_of_churn (c : churn) =
  Json.Obj [ ("ops", Json.List (List.map json_of_churn_op c.ops)) ]

let to_json t =
  Json.Obj
    ([
      ("schema", Json.Int 1);
      ("name", Json.String t.name);
      ("description", Json.String t.description);
      ("nodes", Json.Int t.nodes);
      ("shards", Json.Int t.shards);
      ("items", Json.Int t.items);
      ("value_size", Json.Int t.value_size);
      ("zipf", Json.Float t.zipf);
      ("single_writer", Json.Bool t.single_writer);
      ("cache", Json.Bool t.cache);
      ( "seeds",
        Json.Obj
          [
            ("driver", Json.Int t.seeds.driver);
            ("engine", Json.Int t.seeds.engine);
            ("workload", Json.Int t.seeds.workload);
          ] );
      ("topology", json_of_topology t.topology);
      ( "anti_entropy",
        Json.Obj
          [ ("period", Json.Float t.period); ("first_at", Json.Float t.first_at) ] );
      ( "network",
        Json.Obj
          [
            ("latency", Json.Float t.latency);
            ("loss", Json.Float t.loss);
            ("duplication", Json.Float t.duplication);
          ] );
      ("transport", json_of_transport t.transport);
    ]
    (* Emitted only when enabled, so pre-push scenario files keep their
       canonical bytes. *)
    @ (match t.push with None -> [] | Some p -> [ ("push", json_of_push p) ])
    @ [
        ("arrival", json_of_arrival t.arrival);
        ("faults", Json.List (List.map json_of_fault t.faults));
      ]
    (* Emitted only when present, so fixed-membership scenario files
       keep their canonical bytes. *)
    @ (match t.churn with None -> [] | Some c -> [ ("churn", json_of_churn c) ])
    @ [
        ("duration", Json.Float t.duration);
        ("tick", Json.Float t.tick);
        ("until_converged", Json.Bool t.until_converged);
        ("deadline", Json.Float t.deadline);
      ])

let to_string t = Json.to_string (to_json t)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

(* Every malformation funnels through [Bad], caught at the [of_json]
   boundary — the single error type the hostile-input tests demand. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> bad "missing field %S" name

let get_int name j =
  match field name j with
  | Json.Int i -> i
  | _ -> bad "field %S: expected an integer" name

let get_float name j =
  match Json.to_float_opt (field name j) with
  | Some f when Float.is_finite f -> f
  | Some _ -> bad "field %S: non-finite number" name
  | None -> bad "field %S: expected a number" name

let get_bool name j =
  match field name j with
  | Json.Bool b -> b
  | _ -> bad "field %S: expected a boolean" name

let get_string name j =
  match field name j with
  | Json.String s -> s
  | _ -> bad "field %S: expected a string" name

let get_list name j =
  match field name j with
  | Json.List l -> l
  | _ -> bad "field %S: expected a list" name

let topology_of_json j =
  match get_string "topology" j with
  | "random" -> Random
  | "ring" -> Ring
  | other -> bad "unknown topology %S" other

let transport_of_json j =
  match field "transport" j with
  | Json.String "session" -> Session
  | Json.String other -> bad "unknown transport %S" other
  | Json.Obj _ as r ->
    Message
      {
        timeout = get_float "timeout" r;
        backoff_base = get_float "backoff_base" r;
        backoff_factor = get_float "backoff_factor" r;
        backoff_max = get_float "backoff_max" r;
        jitter = get_float "jitter" r;
        max_retries = get_int "max_retries" r;
      }
  | _ -> bad "field \"transport\": expected \"session\" or a retry policy"

let arrival_of_json j =
  let a = field "arrival" j in
  match (Json.member "phases" a, Json.member "script" a) with
  | Some (Json.List phases), None ->
    Phases
      (List.map
         (fun p ->
           {
             from_ = get_float "from" p;
             until = get_float "until" p;
             rate = get_float "rate" p;
           })
         phases)
  | None, Some (Json.List steps) ->
    Script
      (List.map
         (fun s ->
           {
             at = get_float "at" s;
             node = get_int "node" s;
             item = get_int "item" s;
             seq = get_int "seq" s;
           })
         steps)
  | _ -> bad "field \"arrival\": expected {\"phases\": [...]} or {\"script\": [...]}"

let drop_of_string = function
  | "drop-oldest" -> Drop_oldest
  | "drop-newest" -> Drop_newest
  | other -> bad "unknown drop policy %S" other

let push_of_json j =
  match Json.member "push" j with
  | None -> None
  | Some p ->
    Some
      {
        capacity = get_int "capacity" p;
        drop = drop_of_string (get_string "drop" p);
        flush_period = get_float "flush_period" p;
      }

let churn_op_of_json o =
  match get_string "kind" o with
  | "join" -> Join { at = get_float "at" o; donor = get_int "donor" o }
  | "leave" -> Leave { at = get_float "at" o; name = get_int "name" o }
  | "retire" -> Retire { at = get_float "at" o; name = get_int "name" o }
  | other -> bad "unknown churn op kind %S" other

let churn_of_json j =
  match Json.member "churn" j with
  | None -> None
  | Some c -> Some { ops = List.map churn_op_of_json (get_list "ops" c) }

let fault_of_json f =
  match get_string "kind" f with
  | "crash" -> Crash { at = get_float "at" f; node = get_int "node" f }
  | "recover" -> Recover { at = get_float "at" f; node = get_int "node" f }
  | "partition" ->
    Partition { at = get_float "at" f; a = get_int "a" f; b = get_int "b" f }
  | "heal" -> Heal { at = get_float "at" f; a = get_int "a" f; b = get_int "b" f }
  | "loss" -> Loss { at = get_float "at" f; p = get_float "p" f }
  | "duplication" -> Duplication { at = get_float "at" f; p = get_float "p" f }
  | other -> bad "unknown fault kind %S" other

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check_node t ctx node =
  if node < 0 || node >= t.nodes then bad "%s: node %d out of range [0, %d)" ctx node t.nodes

let check_prob ctx p =
  if not (Float.is_finite p && p >= 0.0 && p <= 1.0) then
    bad "%s: probability %g out of [0, 1]" ctx p

let check t =
  if t.name = "" then bad "name must be non-empty";
  if t.nodes < 2 then bad "nodes must be >= 2";
  if t.shards < 1 then bad "shards must be >= 1";
  if t.items < 1 then bad "items must be >= 1";
  if t.value_size < 1 then bad "value_size must be >= 1";
  if not (Float.is_finite t.zipf && t.zipf >= 0.0) then bad "zipf must be >= 0";
  if not (Float.is_finite t.period && t.period > 0.0) then bad "period must be > 0";
  if not (Float.is_finite t.first_at && t.first_at >= 0.0) then
    bad "first_at must be >= 0";
  if not (Float.is_finite t.latency && t.latency >= 0.0) then
    bad "latency must be >= 0";
  check_prob "network loss" t.loss;
  check_prob "network duplication" t.duplication;
  (match t.transport with
  | Session -> ()
  | Message r ->
    if not (Float.is_finite r.timeout && r.timeout > 0.0) then
      bad "retry timeout must be > 0";
    if not (Float.is_finite r.backoff_base && r.backoff_base >= 0.0) then
      bad "retry backoff_base must be >= 0";
    if not (Float.is_finite r.backoff_factor && r.backoff_factor >= 1.0) then
      bad "retry backoff_factor must be >= 1";
    if not (Float.is_finite r.backoff_max && r.backoff_max >= r.backoff_base) then
      bad "retry backoff_max must be >= backoff_base";
    if not (Float.is_finite r.jitter && r.jitter >= 0.0) then
      bad "retry jitter must be >= 0";
    if r.max_retries < 0 then bad "retry max_retries must be >= 0");
  (match t.push with
  | None -> ()
  | Some p ->
    (match t.transport with
    | Message _ -> ()
    | Session ->
      bad
        "push requires the message-grain transport (wire-version negotiation \
         happens on real frames)");
    if p.capacity < 1 then bad "push capacity must be >= 1";
    if not (Float.is_finite p.flush_period && p.flush_period > 0.0) then
      bad "push flush_period must be > 0");
  if not (Float.is_finite t.duration && t.duration >= 0.0) then
    bad "duration must be >= 0";
  if not (Float.is_finite t.tick && t.tick > 0.0) then bad "tick must be > 0";
  if not (Float.is_finite t.deadline && t.deadline >= t.duration) then
    bad "deadline must be >= duration";
  if (not t.until_converged) && t.duration <= 0.0 then
    bad "a scenario without until_converged needs duration > 0";
  (match t.arrival with
  | Phases phases ->
    List.iter
      (fun (p : phase) ->
        if not (Float.is_finite p.from_ && p.from_ >= 0.0) then
          bad "phase from must be >= 0";
        if not (Float.is_finite p.until && p.until > p.from_) then
          bad "phase until must be > from";
        if p.until > t.duration then bad "phase until must be <= duration";
        if not (Float.is_finite p.rate && p.rate >= 0.0) then
          bad "phase rate must be >= 0")
      phases
  | Script steps ->
    List.iter
      (fun (s : scripted) ->
        if not (Float.is_finite s.at && s.at >= 0.0 && s.at <= t.duration) then
          bad "script at must be in [0, duration]";
        check_node t "script" s.node;
        if s.item < 0 || s.item >= t.items then
          bad "script: item %d out of range [0, %d)" s.item t.items;
        if s.seq < 1 then bad "script seq must be >= 1")
      steps);
  List.iter
    (fun f ->
      let at =
        match f with
        | Crash { at; _ } | Recover { at; _ } | Partition { at; _ } | Heal { at; _ }
        | Loss { at; _ } | Duplication { at; _ } ->
          at
      in
      if not (Float.is_finite at && at >= 0.0) then bad "fault at must be >= 0";
      match f with
      | Crash { node; _ } | Recover { node; _ } -> check_node t "fault" node
      | Partition { a; b; _ } | Heal { a; b; _ } ->
        check_node t "fault" a;
        check_node t "fault" b;
        if a = b then bad "fault: partition endpoints must differ"
      | Loss { p; _ } -> check_prob "fault loss" p
      | Duplication { p; _ } -> check_prob "fault duplication" p)
    t.faults;
  match t.churn with
  | None -> ()
  | Some c ->
    (match t.transport with
    | Session -> ()
    | Message _ ->
      bad
        "churn scenarios run the synchronous membership schedule (transport must \
         be \"session\")");
    if t.push <> None then bad "churn scenarios do not support the push channel";
    if not t.single_writer then
      bad "churn scenarios require single_writer (item ownership must survive \
           membership changes)";
    if t.topology <> Ring then
      bad "churn scenarios use the ring schedule (topology must be \"ring\")";
    List.iter
      (fun f ->
        match f with
        | Crash _ | Recover _ -> ()
        | Partition _ | Heal _ | Loss _ | Duplication _ ->
          bad "churn scenarios support only crash/recover faults")
      t.faults;
    List.iter
      (fun op ->
        let at, who =
          match op with
          | Join { at; donor } -> (at, donor)
          | Leave { at; name } | Retire { at; name } -> (at, name)
        in
        if not (Float.is_finite at && at >= 0.0 && at <= t.duration) then
          bad "churn op at must be in [0, duration]";
        if who < 0 then bad "churn op member must be >= 0")
      c.ops

let validate t = match check t with () -> Ok () | exception Bad msg -> Error msg

(* Every key the printer can emit. A scenario file with anything else
   at top level is rejected outright — a typo like "pussh" must fail
   loudly instead of silently running with the default. *)
let known_keys =
  [
    "schema"; "name"; "description"; "nodes"; "shards"; "items"; "value_size";
    "zipf"; "single_writer"; "cache"; "seeds"; "topology"; "anti_entropy";
    "network"; "transport"; "push"; "arrival"; "faults"; "churn"; "duration";
    "tick"; "until_converged"; "deadline";
  ]

let reject_unknown_keys j =
  match j with
  | Json.Obj fields ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k known_keys) then bad "unknown top-level field %S" k)
      fields
  | _ -> bad "a scenario must be a JSON object"

let of_json j =
  match
    reject_unknown_keys j;
    let schema = get_int "schema" j in
    if schema <> 1 then bad "unsupported schema version %d" schema;
    let seeds_j = field "seeds" j in
    let ae = field "anti_entropy" j in
    let net = field "network" j in
    let t =
      {
        name = get_string "name" j;
        description = get_string "description" j;
        nodes = get_int "nodes" j;
        shards = get_int "shards" j;
        items = get_int "items" j;
        value_size = get_int "value_size" j;
        zipf = get_float "zipf" j;
        single_writer = get_bool "single_writer" j;
        cache = get_bool "cache" j;
        seeds =
          {
            driver = get_int "driver" seeds_j;
            engine = get_int "engine" seeds_j;
            workload = get_int "workload" seeds_j;
          };
        topology = topology_of_json j;
        period = get_float "period" ae;
        first_at = get_float "first_at" ae;
        latency = get_float "latency" net;
        loss = get_float "loss" net;
        duplication = get_float "duplication" net;
        transport = transport_of_json j;
        push = push_of_json j;
        arrival = arrival_of_json j;
        faults = List.map fault_of_json (get_list "faults" j);
        churn = churn_of_json j;
        duration = get_float "duration" j;
        tick = get_float "tick" j;
        until_converged = get_bool "until_converged" j;
        deadline = get_float "deadline" j;
      }
    in
    check t;
    t
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let of_string s =
  match Json.of_string s with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Built-in scenarios                                                  *)
(* ------------------------------------------------------------------ *)

(* Mirrors Engine.default_retry_policy; spelled out so a scenario file
   carries the full policy and never depends on simulator defaults. *)
let default_retry =
  {
    timeout = 4.0;
    backoff_base = 0.5;
    backoff_factor = 2.0;
    backoff_max = 8.0;
    jitter = 0.5;
    max_retries = 3;
  }

let steady =
  {
    name = "steady";
    description =
      "Steady Zipfian single-writer load on a reliable 8-node mesh; the \
       baseline curve every other scenario is read against.";
    nodes = 8;
    shards = 1;
    items = 64;
    value_size = 64;
    zipf = 1.0;
    single_writer = true;
    cache = false;
    seeds = { driver = 11; engine = 12; workload = 13 };
    topology = Random;
    period = 2.0;
    first_at = 1.0;
    latency = 1.0;
    loss = 0.0;
    duplication = 0.0;
    transport = Session;
    push = None;
    arrival = Phases [ { from_ = 0.0; until = 40.0; rate = 2.0 } ];
    faults = [];
    churn = None;
    duration = 40.0;
    tick = 2.0;
    until_converged = true;
    deadline = 140.0;
  }

let diurnal =
  {
    steady with
    name = "diurnal";
    description =
      "A day-shaped load ramp: quiet, a 5x peak, quiet again — the per-tick \
       series shows anti-entropy absorbing the burst.";
    nodes = 12;
    items = 128;
    seeds = { driver = 21; engine = 22; workload = 23 };
    arrival =
      Phases
        [
          { from_ = 0.0; until = 30.0; rate = 1.0 };
          { from_ = 30.0; until = 60.0; rate = 5.0 };
          { from_ = 60.0; until = 90.0; rate = 1.0 };
        ];
    duration = 90.0;
    tick = 3.0;
    deadline = 240.0;
  }

let churn =
  {
    steady with
    name = "churn";
    description =
      "Nodes crash and recover mid-load and a partition opens and heals; \
       staleness spikes while the epidemic routes around the holes.";
    nodes = 10;
    items = 96;
    seeds = { driver = 31; engine = 32; workload = 33 };
    arrival = Phases [ { from_ = 0.0; until = 60.0; rate = 2.0 } ];
    faults =
      [
        Crash { at = 10.0; node = 3 };
        Crash { at = 14.0; node = 7 };
        Recover { at = 28.0; node = 3 };
        Partition { at = 30.0; a = 1; b = 2 };
        Recover { at = 40.0; node = 7 };
        Heal { at = 44.0; a = 1; b = 2 };
      ];
    duration = 60.0;
    tick = 2.0;
    deadline = 240.0;
  }

let lossy_mesh =
  {
    steady with
    name = "lossy-mesh";
    description =
      "Message-granular transport under heavy per-message loss and \
       duplication, with a mid-run loss spike; timeouts, retries and \
       abandonments appear in the tick series.";
    nodes = 12;
    seeds = { driver = 41; engine = 42; workload = 43 };
    loss = 0.15;
    duplication = 0.05;
    transport = Message default_retry;
    arrival = Phases [ { from_ = 0.0; until = 50.0; rate = 2.0 } ];
    faults = [ Loss { at = 20.0; p = 0.35 }; Loss { at = 35.0; p = 0.05 } ];
    duration = 50.0;
    tick = 2.5;
    deadline = 400.0;
  }

let converged_idle =
  {
    steady with
    name = "converged-idle";
    description =
      "A burst of load then a long idle tail with the peer cache on: after \
       convergence every round is skipped from cached knowledge and only \
       sessions_skipped_cached keeps climbing.";
    items = 48;
    cache = true;
    seeds = { driver = 51; engine = 52; workload = 53 };
    arrival = Phases [ { from_ = 0.0; until = 20.0; rate = 2.0 } ];
    duration = 80.0;
    tick = 4.0;
    deadline = 200.0;
  }

let smoke =
  {
    steady with
    name = "smoke";
    description =
      "Five ticks of light load on four nodes — the tier-1 @scenario alias \
       budget.";
    nodes = 4;
    items = 16;
    value_size = 32;
    seeds = { driver = 61; engine = 62; workload = 63 };
    period = 1.0;
    first_at = 0.5;
    arrival = Phases [ { from_ = 0.0; until = 4.0; rate = 2.0 } ];
    duration = 5.0;
    tick = 1.0;
    until_converged = false;
    deadline = 5.0;
  }

let default_push = { capacity = 64; drop = Drop_oldest; flush_period = 0.25 }

let push_smoke =
  {
    smoke with
    name = "push-smoke";
    description =
      "The smoke workload with the realtime push channel on: message-grain \
       transport, every push counter exercised — the tier-1 @push alias \
       budget.";
    seeds = { driver = 71; engine = 72; workload = 73 };
    transport = Message default_retry;
    push = Some default_push;
    duration = 8.0;
    arrival = Phases [ { from_ = 0.0; until = 6.0; rate = 2.0 } ];
    deadline = 8.0;
  }

let push_vs_pull =
  {
    steady with
    name = "push-vs-pull";
    description =
      "A 16-node mesh under steady single-writer load with the push channel \
       streaming updates between anti-entropy rounds; compare against the \
       same run with \"push\" removed to see the staleness collapse and the \
       AE rounds arriving already converged (experiment E20 sweeps this \
       against loss rate and queue capacity).";
    nodes = 16;
    items = 64;
    seeds = { driver = 81; engine = 82; workload = 83 };
    transport = Message default_retry;
    push = Some default_push;
    arrival = Phases [ { from_ = 0.0; until = 40.0; rate = 2.0 } ];
    duration = 40.0;
    tick = 2.0;
    deadline = 200.0;
  }

let membership_churn =
  {
    steady with
    name = "membership-churn";
    description =
      "Steady load while the replica set itself churns: a newcomer joins from \
       a live donor, a member drains out gracefully, and a crashed member is \
       retired behind a two-phase fence — the per-tick membership series \
       shows the live set shrink and the mean vector length drop when the \
       dead component is garbage-collected.";
    nodes = 6;
    items = 48;
    seeds = { driver = 91; engine = 92; workload = 93 };
    topology = Ring;
    arrival = Phases [ { from_ = 0.0; until = 40.0; rate = 2.0 } ];
    faults = [ Crash { at = 18.0; node = 2 } ];
    churn =
      Some
        {
          ops =
            [
              Join { at = 6.0; donor = 0 };
              Leave { at = 12.0; name = 1 };
              Retire { at = 24.0; name = 2 };
            ];
        };
    duration = 40.0;
    tick = 2.0;
    until_converged = true;
    deadline = 160.0;
  }

let builtins =
  [
    steady; diurnal; churn; lossy_mesh; converged_idle; smoke; push_smoke;
    push_vs_pull; membership_churn;
  ]

let builtin name = List.find_opt (fun t -> String.equal t.name name) builtins

let builtin_names = List.map (fun t -> t.name) builtins

module Json = Edb_metrics.Json
module Histogram = Edb_metrics.Histogram
module Counters = Edb_metrics.Counters
module Engine = Edb_sim.Engine
module Network = Edb_sim.Network
module Workload = Edb_workload.Workload
module Driver = Edb_baselines.Driver
module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Vv = Edb_vv.Version_vector
module Operation = Edb_store.Operation
module Group = Edb_membership.Group

type stale = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ : float;
}

type membership_sample = { live : int; mean_components : float }

type tick = {
  index : int;
  time : float;
  alive : int;
  attempted : int;
  lost : int;
  in_flight : int;
  issued : int;
  visible : int;
  counters : (string * int) list;
  staleness : stale option;
  membership : membership_sample option;
}

type result = {
  scenario : Scenario.t;
  converged_at : float option;
  end_time : float;
  ticks : tick list;
  issued : int;
  visible : int;
  staleness : Histogram.t;
  totals : Counters.t;
  attempted : int;
  lost : int;
}

(* ------------------------------------------------------------------ *)
(* Arrival compilation                                                 *)
(* ------------------------------------------------------------------ *)

(* Compile the arrival plan into [(at, node, item, op)] in issue order.
   Phase timing is [from + span * i / count] — the same float
   expression the bespoke experiment loops used, so the ported E12
   reproduces its legacy schedule bit-for-bit. *)
let compile_arrival (sc : Scenario.t) =
  match sc.arrival with
  | Script steps ->
    List.map
      (fun (s : Scenario.scripted) ->
        let item = Workload.item_name s.item in
        let op = Operation.Set (Workload.payload ~item ~seq:s.seq ~size:sc.value_size) in
        (s.at, s.node, item, op))
      steps
  | Phases phases ->
    let counts =
      List.map
        (fun (p : Scenario.phase) ->
          int_of_float (((p.until -. p.from_) *. p.rate) +. 0.5))
        phases
    in
    let total = List.fold_left ( + ) 0 counts in
    let selector = Workload.Selector.zipfian ~n:sc.items ~exponent:sc.zipf in
    let steps =
      Workload.update_stream ~seed:sc.seeds.workload ~selector ~nodes:sc.nodes
        ~count:total ~value_size:sc.value_size
    in
    let steps =
      if not sc.single_writer then steps
      else
        List.map
          (fun (step : Workload.step) ->
            let rank = Scanf.sscanf step.item "item-%d" Fun.id in
            { step with node = rank mod sc.nodes })
          steps
    in
    let remaining = ref steps in
    let take () =
      match !remaining with
      | [] -> assert false (* counts sum to the stream length *)
      | s :: rest ->
        remaining := rest;
        s
    in
    List.concat
      (List.map2
         (fun (p : Scenario.phase) count ->
           let span = p.until -. p.from_ in
           List.init count (fun i ->
               let step = take () in
               let at =
                 p.from_ +. (span *. float_of_int i /. float_of_int count)
               in
               (at, step.Workload.node, step.Workload.item, step.Workload.op)))
         phases counts)

(* ------------------------------------------------------------------ *)
(* The membership runner                                               *)
(* ------------------------------------------------------------------ *)

(* A scenario with a churn block runs on {!Edb_membership.Group}
   instead of the simulator engine: membership is variable, so the
   fixed-dimension cluster/driver machinery does not apply. The runner
   is synchronous and fully deterministic — events execute in (time,
   class, declaration) order with the same class tie-break as the
   engine path (updates, then anti-entropy rounds, then faults, then
   membership ops), and an anti-entropy round is one ring pass over the
   current participant set followed by a controller pass. *)

type churn_ev =
  | Ev_update of int * string * Operation.t
  | Ev_round
  | Ev_crash of int
  | Ev_recover of int
  | Ev_join of int
  | Ev_leave of int
  | Ev_retire of int

let run_churn (sc : Scenario.t) (churn : Scenario.churn) =
  let g = Group.create ~shards:sc.shards ~n:sc.nodes () in
  let timeline =
    let evs = ref [] in
    let idx = ref 0 in
    let add at cls ev =
      evs := (at, cls, !idx, ev) :: !evs;
      incr idx
    in
    List.iter
      (fun (at, node, item, op) -> add at 0 (Ev_update (node, item, op)))
      (compile_arrival sc);
    let rec rounds at = if at <= sc.deadline then begin add at 1 Ev_round; rounds (at +. sc.period) end in
    rounds sc.first_at;
    List.iter
      (fun (f : Scenario.fault) ->
        match f with
        | Scenario.Crash { at; node } -> add at 2 (Ev_crash node)
        | Scenario.Recover { at; node } -> add at 2 (Ev_recover node)
        | Scenario.Partition _ | Scenario.Heal _ | Scenario.Loss _
        | Scenario.Duplication _ ->
          (* Rejected by validation for churn scenarios. *)
          assert false)
      sc.faults;
    List.iter
      (fun (op : Scenario.churn_op) ->
        match op with
        | Scenario.Join { at; donor } -> add at 3 (Ev_join donor)
        | Scenario.Leave { at; name } -> add at 3 (Ev_leave name)
        | Scenario.Retire { at; name } -> add at 3 (Ev_retire name))
      churn.ops;
    List.sort
      (fun (ta, ca, ia, _) (tb, cb, ib, _) -> compare (ta, ca, ia) (tb, cb, ib))
      !evs
  in
  let issued = ref 0 and attempted = ref 0 in
  let issued_by = Hashtbl.create 16 in
  let participants () =
    Array.to_list (Group.roster g)
    |> List.filter (fun name ->
           Group.alive g ~name
           &&
           match Group.status g ~name with
           | Group.Joining | Group.Active | Group.Draining -> true
           | Group.Departed | Group.Retiring | Group.Retired -> false)
  in
  let exec = function
    | Ev_update (node, item, op) -> (
      (* The owner routing of [compile_arrival] names a stable member;
         an update whose owner cannot accept it right now (crashed,
         draining, departed) is simply not offered — membership churn
         sheds that slice of the load. *)
      match Group.update g ~name:node ~item op with
      | Ok () ->
        incr issued;
        Hashtbl.replace issued_by node
          (1 + Option.value ~default:0 (Hashtbl.find_opt issued_by node))
      | Error _ -> ())
    | Ev_round ->
      (match participants () with
      | [] | [ _ ] -> ()
      | ps ->
        let arr = Array.of_list ps in
        let k = Array.length arr in
        for i = 0 to k - 1 do
          let a = arr.(i) and b = arr.((i + 1) mod k) in
          match Group.sync g ~a ~b with
          | Ok () -> incr attempted
          | Error _ -> ()
        done);
      ignore (Group.observe g : Group.event list)
    | Ev_crash n -> if Group.alive g ~name:n then Group.crash g ~name:n
    | Ev_recover n ->
      if not (Group.alive g ~name:n) then
        ignore (Group.recover g ~name:n : (unit, string) Stdlib.result)
    | Ev_join donor -> ignore (Group.join g ~donor : (int, string) Stdlib.result)
    | Ev_leave name -> ignore (Group.leave g ~name : (unit, string) Stdlib.result)
    | Ev_retire name -> ignore (Group.retire g ~name : (unit, string) Stdlib.result)
  in
  (* Updates globally visible: per origin, the slowest full-epoch
     participant's DBVV component bounds how many of the origin's
     issued updates every live replica holds. An origin that has been
     retired contributes all of its updates — its fence proved them
     uniformly replicated before the component was dropped.

     The instantaneous bound collapses while a freshly appended
     membership event leaves no member at the controller's epoch; the
     sampler clamps to the running maximum, since global visibility is
     monotone by definition. *)
  let visible_now () =
    let roster = Group.roster g in
    let full =
      List.filter
        (fun name -> Group.member_epoch g ~name = Group.epoch g)
        (participants ())
    in
    Hashtbl.fold
      (fun origin count acc ->
        let slot = ref None in
        Array.iteri (fun i n -> if n = origin then slot := Some i) roster;
        match (!slot, full) with
        | None, _ -> acc + count
        | Some _, [] -> acc
        | Some s, full ->
          let m =
            List.fold_left
              (fun m name ->
                min m (Vv.get (Node.dbvv_view (Group.node g ~name)) s))
              max_int full
          in
          acc + min count m)
      issued_by 0
  in
  let settled () =
    Group.pending_fences g = []
    && Array.for_all
         (fun name ->
           match Group.status g ~name with
           | Group.Active | Group.Departed | Group.Retired -> true
           | Group.Joining | Group.Draining | Group.Retiring -> false)
         (Group.roster g)
    && Group.converged g
  in
  let sampler = Sampler.create () in
  let ticks = ref [] in
  let visible = ref 0 in
  let converged_at = ref None in
  let sample ~index ~time =
    visible := max !visible (visible_now ());
    ticks :=
      {
        index;
        time;
        alive = Group.live_count g;
        attempted = !attempted;
        lost = 0;
        in_flight = 0;
        issued = !issued;
        visible = !visible;
        counters = Sampler.sample sampler (Group.counters_total g);
        staleness = None;
        membership =
          Some
            {
              live = Group.live_count g;
              mean_components = Group.mean_vector_components g;
            };
      }
      :: !ticks
  in
  sample ~index:0 ~time:0.0;
  let pending = ref timeline in
  let advance_to time =
    let rec go () =
      match !pending with
      | (at, _, _, ev) :: rest when at <= time ->
        pending := rest;
        exec ev;
        go ()
      | _ -> ()
    in
    go ()
  in
  let end_time = ref 0.0 in
  let rec loop k =
    let time = float_of_int k *. sc.tick in
    if time <= sc.deadline then begin
      advance_to time;
      end_time := time;
      sample ~index:k ~time;
      let stop =
        if sc.until_converged then
          if time > sc.duration && settled () then begin
            converged_at := Some time;
            true
          end
          else time >= sc.deadline
        else time >= sc.duration
      in
      if not stop then loop (k + 1)
    end
  in
  loop 1;
  {
    scenario = sc;
    converged_at = !converged_at;
    end_time = !end_time;
    ticks = List.rev !ticks;
    issued = !issued;
    visible = !visible;
    staleness = Histogram.create ();
    totals = Group.counters_total g;
    attempted = !attempted;
    lost = 0;
  }

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_classic (sc : Scenario.t) =
  (* Deterministic failpoint replay for armed Probability triggers. *)
  Edb_fault.Fault.seed_prng sc.seeds.engine;
  let push_config =
    match sc.push with
    | None -> None
    | Some (p : Scenario.push) ->
      Some
        {
          Edb_push.Channel.capacity = p.capacity;
          policy =
            (match p.drop with
            | Scenario.Drop_oldest -> Edb_push.Bounded_queue.Drop_oldest
            | Scenario.Drop_newest -> Edb_push.Bounded_queue.Drop_newest);
          flush_period = p.flush_period;
        }
  in
  let cluster, driver =
    Edb_baselines.Epidemic_driver.create ~seed:sc.seeds.driver ~cache:sc.cache
      ~shards:sc.shards ?push:push_config ~n:sc.nodes ()
  in
  let network =
    Network.create ~base_latency:sc.latency ~loss_probability:sc.loss
      ~duplicate_probability:sc.duplication ()
  in
  let transport =
    match sc.transport with
    | Scenario.Session -> Engine.Session_grain
    | Scenario.Message r ->
      Engine.Message_grain
        {
          Engine.timeout = r.timeout;
          backoff_base = r.backoff_base;
          backoff_factor = r.backoff_factor;
          backoff_max = r.backoff_max;
          jitter = r.jitter;
          max_retries = r.max_retries;
        }
  in
  let engine = Engine.create ~seed:sc.seeds.engine ~network ~transport ~driver () in
  let issued = ref 0 and visible = ref 0 in
  (* Per-origin issue times, in issue order: the DBVV watermark pops
     them front-first as updates become globally visible. *)
  let queues = Array.init sc.nodes (fun _ -> Queue.create ()) in
  let seen = Array.make sc.nodes 0 in
  (* Insertion order fixes the FIFO tie-break at equal timestamps:
     updates, then anti-entropy, then faults. *)
  List.iter
    (fun (at, node, item, op) ->
      Engine.schedule engine ~at
        (Engine.Custom
           (fun eng ->
             (* Same guard as the engine's own User_update event; the
                wrapper only adds staleness bookkeeping. *)
             if Engine.alive eng node then begin
               driver.Driver.update ~node ~item ~op;
               incr issued;
               Queue.push (Engine.now eng) queues.(node)
             end)))
    (compile_arrival sc);
  let policy =
    match sc.topology with
    | Scenario.Random -> Engine.Random_peer
    | Scenario.Ring -> Engine.Ring
  in
  Engine.schedule engine ~at:sc.first_at
    (Engine.Anti_entropy_round { period = sc.period; policy });
  (match sc.push with
  | None -> ()
  | Some (p : Scenario.push) ->
    (* The flush cadence stops at the deadline; by then the workload is
       over, the queues have been drained, and anti-entropy owns the
       remaining convergence work. *)
    Engine.schedule engine ~at:p.flush_period
      (Engine.Push_flush { period = p.flush_period; until = sc.deadline }));
  List.iter
    (fun (f : Scenario.fault) ->
      match f with
      | Scenario.Crash { at; node } -> Engine.schedule engine ~at (Engine.Crash node)
      | Scenario.Recover { at; node } ->
        Engine.schedule engine ~at (Engine.Recover node)
      | Scenario.Partition { at; a; b } ->
        Engine.schedule engine ~at
          (Engine.Custom (fun _ -> Network.partition network a b))
      | Scenario.Heal { at; a; b } ->
        Engine.schedule engine ~at (Engine.Custom (fun _ -> Network.heal network a b))
      | Scenario.Loss { at; p } ->
        Engine.schedule engine ~at
          (Engine.Custom (fun _ -> Network.set_loss_probability network p))
      | Scenario.Duplication { at; p } ->
        Engine.schedule engine ~at
          (Engine.Custom (fun _ -> Network.set_duplicate_probability network p)))
    sc.faults;
  let sampler = Sampler.create () in
  let total_hist = Histogram.create () in
  let ticks = ref [] in
  let converged_at = ref None in
  let sample ~index ~time =
    let window = Histogram.create () in
    for o = 0 to sc.nodes - 1 do
      (* Global visibility watermark for origin o: the slowest node's
         per-origin knowledge. Crashed nodes hold it down — an update
         is not globally visible while a replica still lacks it. *)
      let m = ref max_int in
      for i = 0 to sc.nodes - 1 do
        let v = Vv.get (Node.dbvv_view (Cluster.node cluster i)) o in
        if v < !m then m := v
      done;
      while seen.(o) < !m && not (Queue.is_empty queues.(o)) do
        let t0 = Queue.pop queues.(o) in
        let d = time -. t0 in
        Histogram.add window d;
        Histogram.add total_hist d;
        incr visible;
        seen.(o) <- seen.(o) + 1
      done
    done;
    let alive = ref 0 in
    for i = 0 to sc.nodes - 1 do
      if Engine.alive engine i then incr alive
    done;
    let staleness =
      if Histogram.count window = 0 then None
      else
        Some
          {
            count = Histogram.count window;
            mean = Histogram.mean window;
            p50 = Histogram.percentile window 50.0;
            p90 = Histogram.percentile window 90.0;
            p99 = Histogram.percentile window 99.0;
            max_ = Histogram.max_value window;
          }
    in
    ticks :=
      {
        index;
        time;
        alive = !alive;
        attempted = Engine.sessions_attempted engine;
        lost = Engine.sessions_lost engine;
        in_flight = Engine.sessions_in_flight engine;
        issued = !issued;
        visible = !visible;
        counters = Sampler.sample sampler (driver.Driver.total_counters ());
        staleness;
        membership = None;
      }
      :: !ticks
  in
  sample ~index:0 ~time:0.0;
  let rec loop k =
    (* Multiply, not accumulate: tick times stay exact for the
       binary-representable tick widths the scenarios use. *)
    let time = float_of_int k *. sc.tick in
    if time <= sc.deadline then begin
      Engine.run_until engine time;
      sample ~index:k ~time;
      let stop =
        if sc.until_converged then
          if time > sc.duration && driver.Driver.converged () then begin
            converged_at := Some time;
            true
          end
          else time >= sc.deadline
        else time >= sc.duration
      in
      if not stop then loop (k + 1)
    end
  in
  loop 1;
  {
    scenario = sc;
    converged_at = !converged_at;
    end_time = Engine.now engine;
    ticks = List.rev !ticks;
    issued = !issued;
    visible = !visible;
    staleness = total_hist;
    totals = driver.Driver.total_counters ();
    attempted = Engine.sessions_attempted engine;
    lost = Engine.sessions_lost engine;
  }

let run (sc : Scenario.t) =
  (match Scenario.validate sc with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Orchestrator.run: %s" msg));
  match sc.churn with
  | Some churn -> run_churn sc churn
  | None -> run_classic sc

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let stale_json = function
  | None -> Json.Null
  | Some s ->
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("mean", Json.Float s.mean);
        ("p50", Json.Float s.p50);
        ("p90", Json.Float s.p90);
        ("p99", Json.Float s.p99);
        ("max", Json.Float s.max_);
      ]

let hist_json h =
  if Histogram.count h = 0 then Json.Null
  else
    stale_json
      (Some
         {
           count = Histogram.count h;
           mean = Histogram.mean h;
           p50 = Histogram.percentile h 50.0;
           p90 = Histogram.percentile h 90.0;
           p99 = Histogram.percentile h 99.0;
           max_ = Histogram.max_value h;
         })

let counters_json counters =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) counters)

let tick_json t =
  Json.Obj
    [
      ("index", Json.Int t.index);
      ("time", Json.Float t.time);
      ("alive", Json.Int t.alive);
      ( "sessions",
        Json.Obj
          [
            ("attempted", Json.Int t.attempted);
            ("lost", Json.Int t.lost);
            ("in_flight", Json.Int t.in_flight);
          ] );
      ( "updates",
        Json.Obj [ ("issued", Json.Int t.issued); ("visible", Json.Int t.visible) ] );
      ("counters", counters_json t.counters);
      ("staleness", stale_json t.staleness);
      ( "membership",
        match t.membership with
        | None -> Json.Null
        | Some m ->
          Json.Obj
            [
              ("live", Json.Int m.live);
              ("mean_vector_components", Json.Float m.mean_components);
            ] );
    ]

let to_json ~generated_by r =
  let last_counters =
    match List.rev r.ticks with [] -> [] | last :: _ -> last.counters
  in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("kind", Json.String "timeseries");
      ("generated_by", Json.String generated_by);
      ("scenario", Scenario.to_json r.scenario);
      ("ticks", Json.List (List.map tick_json r.ticks));
      ( "summary",
        Json.Obj
          [
            ( "converged_at",
              match r.converged_at with Some t -> Json.Float t | None -> Json.Null );
            ("end_time", Json.Float r.end_time);
            ( "updates",
              Json.Obj
                [ ("issued", Json.Int r.issued); ("visible", Json.Int r.visible) ] );
            ( "sessions",
              Json.Obj
                [ ("attempted", Json.Int r.attempted); ("lost", Json.Int r.lost) ] );
            ("staleness", hist_json r.staleness);
            ("counters", counters_json last_counters);
          ] );
    ]

let to_string ~generated_by r = Json.to_string (to_json ~generated_by r)

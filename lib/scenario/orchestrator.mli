(** Compile a {!Scenario.t} onto the simulator and sample it.

    The orchestrator builds the paper's protocol cluster behind the
    {!Edb_baselines.Driver} facade, compiles the scenario's arrival
    plan into scheduled update events, its fault plan into engine
    events, and its anti-entropy cadence into a self-rescheduling
    round — then advances virtual time tick by tick, snapshotting a
    {!tick} row after each step.

    {b Determinism.} A run is a pure function of the scenario value:
    all randomness comes from the scenario's seeds (the
    {!Edb_fault.Fault} registry PRNG is reseeded from the engine seed
    at run start), and at equal timestamps updates execute before
    anti-entropy rounds before faults, in declaration order — the
    engine queue's FIFO tie-break over our fixed insertion order. The
    golden-run test pins the whole JSON emission byte-for-byte.

    {b Staleness.} An update by origin [o] is {e globally visible}
    once every node's summary DBVV covers it — per-origin knowledge is
    prefix-closed under anti-entropy, so the k-th issued update of [o]
    is visible exactly when [min over nodes of dbvv\[o\] >= k]. Each
    tick credits newly visible updates with delay
    [tick time - issue time], into both the tick's window histogram
    and the run's cumulative one.

    {b Convergence.} With [until_converged] set, [driver.converged]
    is consulted only at ticks strictly after [duration] (the workload
    window), matching the bespoke experiment loops this layer
    replaces; the run ends at the first converged tick, or at the last
    tick not after [deadline]. *)

type stale = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_ : float;
}
(** Summary of one staleness histogram (delays in virtual time).
    Percentiles are nondecreasing: [p50 <= p90 <= p99 <= max_]. *)

type membership_sample = { live : int; mean_components : float }
(** Per-tick membership hygiene of a churn run: participant count and
    mean vector dimension over participants — the series that shows a
    retirement's component drop land. *)

type tick = {
  index : int;  (** 0 is the pre-run snapshot at time 0. *)
  time : float;
  alive : int;  (** Nodes up at sample time. *)
  attempted : int;  (** {!Edb_sim.Engine.sessions_attempted}, cumulative. *)
  lost : int;
  in_flight : int;
  issued : int;  (** User updates executed so far (cumulative). *)
  visible : int;  (** Updates globally visible so far (cumulative). *)
  counters : (string * int) list;
      (** Monotone cumulative cluster totals, one entry per
          {!Edb_metrics.Counters.fields}, via {!Sampler}. *)
  staleness : stale option;
      (** Delays of updates that became visible {e this} tick;
          [None] when none did. *)
  membership : membership_sample option;
      (** [Some] on every tick of a churn run; [None] on classic
          fixed-membership runs (emitted as JSON [null]). *)
}

type result = {
  scenario : Scenario.t;
  converged_at : float option;
  end_time : float;
  ticks : tick list;  (** In index order, starting at 0. *)
  issued : int;
  visible : int;
  staleness : Edb_metrics.Histogram.t;  (** All delays, cumulative. *)
  totals : Edb_metrics.Counters.t;  (** Raw driver totals at run end. *)
  attempted : int;
  lost : int;
}

val run : Scenario.t -> result
(** Raises [Invalid_argument] only on scenarios that fail
    {!Scenario.validate} — validated scenarios always run.

    A scenario with a [churn] block runs on the synchronous membership
    runner ({!Edb_membership.Group}) instead of the simulator engine:
    events execute in (time, class, declaration) order with the same
    class tie-break as the engine path (updates, anti-entropy rounds,
    faults, then membership ops), an anti-entropy round is one ring
    pass over the current participants plus a controller pass, and
    convergence additionally requires every join, drain and retirement
    fence to have resolved. Updates whose owner cannot accept them
    (crashed, draining, departed) are shed, not queued; an update is
    visible once every full-epoch participant's DBVV covers it, with a
    retired origin's updates all visible (its fence proved them
    uniformly replicated before the component drop). *)

val to_json : generated_by:string -> result -> Edb_metrics.Json.t
(** The [BENCH_timeseries.json] document: schema header, the scenario
    itself, the tick rows, and a run summary. Deterministic layout —
    committed and golden-tested byte-for-byte. *)

val to_string : generated_by:string -> result -> string

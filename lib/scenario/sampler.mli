(** Monotone per-tick counter sampling.

    The orchestrator samples the driver's cluster-wide counter totals
    every tick. Those raw totals are {e not} monotone: a node restored
    from a checkpoint ([Cluster.replace_node]) arrives with fresh
    zero counters, so the cluster sum drops by everything the old
    incarnation had charged — the dangling-total bug class the
    time-series layer must not inherit. The sampler folds any backward
    step into a per-field base, so the reported cumulative series only
    ever grows: work done before a restore stays counted, and new work
    after it accrues on top. Iterates
    {!Edb_metrics.Counters.fields}, the canonical enumeration, so
    every counter is covered by construction. *)

type t

val create : unit -> t

val sample : t -> Edb_metrics.Counters.t -> (string * int) list
(** [sample t totals] folds the raw snapshot into the monotone series
    and returns one [(field, cumulative)] pair per
    {!Edb_metrics.Counters.fields} entry, in canonical order.
    Per field: the reported value never decreases across calls, equals
    the raw total while no reset intervened, and stays flat across a
    reset until new work accrues (pinned in [test_scenario.ml]). *)

module Counters = Edb_metrics.Counters

type t = { base : int array; last : int array }

let create () =
  let n = List.length Counters.fields in
  { base = Array.make n 0; last = Array.make n 0 }

let sample t (totals : Counters.t) =
  List.mapi
    (fun i (name, get) ->
      let cur = get totals in
      (* A backward step means some node's counters were reset (e.g. a
         checkpoint restore swapped in a fresh node): keep the lost
         ground in [base] so the cumulative series stays monotone. *)
      if cur < t.last.(i) then t.base.(i) <- t.base.(i) + (t.last.(i) - cur);
      t.last.(i) <- cur;
      (name, t.base.(i) + cur))
    Counters.fields

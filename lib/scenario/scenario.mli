(** Declarative simulation scenarios.

    A scenario is the complete, serializable description of one
    simulated run: cluster shape (nodes, shards, peer-cache), workload
    (arrival phases with rates and Zipf skew, or an explicit update
    script), anti-entropy cadence and peer topology, network conditions
    (latency, loss, duplication), transport grain, a fault schedule
    (crashes, recoveries, partitions, mid-run loss changes), and the
    observation plan (duration, tick width, convergence deadline).

    Scenarios are data, not code: they round-trip through the
    dependency-free JSON of {!Edb_metrics.Json}, ship as files under
    [scenarios/], and are compiled onto the existing
    {!Edb_sim.Engine} + {!Edb_workload.Workload} machinery by
    {!Orchestrator}. Determinism is total — a scenario plus its three
    seeds is a pure function to a per-tick time series (the golden-run
    tests in [test/test_scenario.ml] pin this byte-for-byte). *)

type topology =
  | Random  (** Each node pulls from one uniformly random peer. *)
  | Ring  (** Node [i] pulls from node [i-1 mod n]. *)

type retry = {
  timeout : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  max_retries : int;
}
(** Mirrors {!Edb_sim.Engine.retry_policy} field for field, so a
    scenario file fully determines the message-grain transport. *)

type transport =
  | Session  (** Atomic whole-session delivery. *)
  | Message of retry  (** Per-message delivery with timeout/retry. *)

val default_retry : retry
(** {!Edb_sim.Engine.default_retry_policy}, spelled out, so scenario
    files carry the full policy instead of depending on simulator
    defaults. *)

type drop =
  | Drop_oldest  (** Shed the head: keep the freshest updates. *)
  | Drop_newest  (** Shed the arrival: keep what was already queued. *)
(** Mirrors {!Edb_push.Bounded_queue.policy}; spelled "drop-oldest" /
    "drop-newest" in scenario files. *)

type push = { capacity : int; drop : drop; flush_period : float }
(** The best-effort realtime push channel (DESIGN.md §10): per-peer
    queue bound, overflow policy, and drain cadence. Requires the
    message-grain transport — push frames only flow to peers that have
    negotiated wire v2, which happens on real frames. *)

val default_push : push
(** 64 updates per peer, drop-oldest, flushed every 0.25 time units —
    {!Edb_push.Channel.default_config}, spelled out. *)

type phase = { from_ : float; until : float; rate : float }
(** Updates arrive evenly at [rate] per time unit over
    [\[from_, until)]; consecutive phases with different rates model
    diurnal ramps. Items come from the scenario's Zipf selector. *)

type scripted = { at : float; node : int; item : int; seq : int }
(** One explicit update: at virtual time [at], [node] sets item rank
    [item] to the deterministic payload for [(item, seq)]. *)

type arrival =
  | Phases of phase list
  | Script of scripted list
      (** Exact update placement — what the ported experiments use. *)

type fault =
  | Crash of { at : float; node : int }
  | Recover of { at : float; node : int }
  | Partition of { at : float; a : int; b : int }
  | Heal of { at : float; a : int; b : int }
  | Loss of { at : float; p : float }
      (** Set the network loss probability to [p] at time [at]. *)
  | Duplication of { at : float; p : float }

type churn_op =
  | Join of { at : float; donor : int }
      (** A fresh member bootstraps from [donor] at time [at]; skipped
          if the donor is not a live active member then. *)
  | Leave of { at : float; name : int }
      (** [name] begins a graceful drain at time [at]. *)
  | Retire of { at : float; name : int }
      (** Start the retirement fence for [name] at time [at]; the op
          requires the victim already departed or crashed (pair it with
          a [Crash] fault). *)

type churn = { ops : churn_op list }
(** Dynamic-membership schedule. A scenario with a [churn] block runs
    on the synchronous membership runner ({!Edb_membership.Group})
    instead of the simulator engine: anti-entropy rounds are ring
    sessions over the current participant set followed by a controller
    pass, and every tick carries a membership sample (live-set size,
    mean vector length). Requires session transport, no push channel,
    single-writer updates, ring topology, and crash/recover faults
    only. *)

type seeds = { driver : int; engine : int; workload : int }
(** [driver] seeds the protocol cluster, [engine] the simulator (peer
    choice, loss draws, retry jitter — and the {!Edb_fault.Fault}
    registry PRNG, reseeded at run start for deterministic failpoint
    replay), [workload] the update stream of a [Phases] arrival. *)

type t = {
  name : string;
  description : string;
  nodes : int;
  shards : int;
  items : int;
  value_size : int;
  zipf : float;  (** Zipf exponent of item popularity; 0 = uniform. *)
  single_writer : bool;
      (** Route each item's updates to its fixed owner
          ([rank mod nodes]), keeping the run conflict-free. *)
  cache : bool;  (** Enable the peer-knowledge cache. *)
  seeds : seeds;
  topology : topology;
  period : float;  (** Anti-entropy round period. *)
  first_at : float;  (** Time of the first anti-entropy round. *)
  latency : float;  (** Network base latency. *)
  loss : float;
  duplication : float;
  transport : transport;
  push : push option;
      (** Enable the realtime push channel; [None] is the classic
          pull-only protocol (and what every pre-push scenario file
          parses to — the "push" key is simply absent). *)
  arrival : arrival;
  faults : fault list;
  churn : churn option;
      (** Membership schedule; [None] is the classic fixed-membership
          run (and what every pre-churn scenario file parses to — the
          "churn" key is simply absent). *)
  duration : float;  (** The workload window; ticks cover it. *)
  tick : float;  (** Sampling interval of the time series. *)
  until_converged : bool;
      (** Keep ticking past [duration] until the driver reports
          convergence (checked only at ticks strictly after
          [duration]) or [deadline] passes. *)
  deadline : float;
}

val equal : t -> t -> bool
(** Structural equality (floats compared exactly — scenarios
    round-trip bit-for-bit through the printer). *)

val validate : t -> (unit, string) result
(** Range- and sanity-checks every field (node/item indices in range,
    probabilities in [\[0,1\]], positive tick and period, finite
    floats, [deadline >= duration], ...). *)

val to_json : t -> Edb_metrics.Json.t

val to_string : t -> string
(** Canonical pretty-printed JSON — the committed [scenarios/*.json]
    files are exactly this output (pinned by a test). *)

val of_json : Edb_metrics.Json.t -> (t, string) result
(** Parse and {!validate}. Every failure — missing field, wrong type,
    out-of-range value, {e unknown top-level field} (a typo like
    "pussh" must fail loudly, not silently run with the default) — is
    an [Error]; no exception escapes. *)

val of_string : string -> (t, string) result

(** {1 Built-in scenarios} *)

val builtins : t list
(** [steady], [diurnal], [churn], [lossy-mesh], [converged-idle], the
    tiny [smoke] used by the tier-1 [@scenario] alias, [push-smoke]
    (its push-channel counterpart behind [@push]), [push-vs-pull]
    (the E20 headline configuration) and [membership-churn] (the
    dynamic-membership schedule: join, graceful leave, retirement). *)

val builtin : string -> t option

val builtin_names : string list

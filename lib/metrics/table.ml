type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match column count";
  t.rows <- t.rows @ [ cells ]

let add_int_row t ~label vs = add_row t (label :: List.map string_of_int vs)

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let width col =
    List.fold_left (fun w row -> max w (String.length (List.nth row col))) 0 all
  in
  let widths = List.init ncols width in
  let pad ~left s w =
    let fill = String.make (w - String.length s) ' ' in
    if left then s ^ fill else fill ^ s
  in
  let render_row row =
    let cells =
      List.mapi (fun col cell -> pad ~left:(col = 0) cell (List.nth widths col)) row
    in
    "  " ^ String.concat "  " cells
  in
  let rule =
    "  " ^ String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) t.rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let title t = t.title

let columns t = t.columns

let rows t = t.rows

(** A minimal, dependency-free JSON value type with an emitter and a
    parser.

    Exists so the bench harness can write [BENCH_micro.json] — the
    machine-readable perf trajectory every PR diffs against — and so
    the [@bench-smoke] checker can re-read and validate it, without
    pulling a JSON package into the build. The emitter produces
    standard JSON; the parser accepts everything the emitter produces
    (plus ordinary hand-written JSON — the only simplification is that
    [\u] escapes outside ASCII decode to ['?'], which the emitter never
    generates). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize. [indent] (default true) pretty-prints with two-space
    indentation and a trailing newline — the stable, diffable layout
    [BENCH_micro.json] is committed in. Non-finite floats become
    [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key], if any;
    [None] on non-objects. *)

val to_float_opt : t -> float option
(** Numeric value of an [Int] or [Float]. *)

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val of_table : Table.t -> t
(** A {!Table.t} as [{title; columns; rows}] — the deterministic counter
    tables, machine-readable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.is_integer (f /. 0.) then
      (* JSON has no NaN/Infinity; degrade to null rather than emit an
         unparseable token. *)
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) x)
      xs;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\": ";
        emit buf ~indent ~level:(level + 1) x)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1_024 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

type cursor = { data : string; mutable pos : int }

let peek c = if c.pos < String.length c.data then Some c.data.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected %c at offset %d, found %c" ch c.pos got
  | None -> parse_error "expected %c at offset %d, found end of input" ch c.pos

let expect_literal c lit value =
  let len = String.length lit in
  if c.pos + len <= String.length c.data && String.sub c.data c.pos len = lit then begin
    c.pos <- c.pos + len;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_error "unterminated escape at offset %d" c.pos
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.data then
            parse_error "truncated \\u escape at offset %d" c.pos;
          let hex = String.sub c.data c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> parse_error "bad \\u escape %S at offset %d" hex c.pos
          in
          c.pos <- c.pos + 4;
          (* Only the escapes we emit (< 0x20) need round-tripping; wider
             code points are stored as '?' rather than implementing full
             UTF-8 encoding for data we never produce. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | e -> parse_error "bad escape \\%c at offset %d" e c.pos);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let token = String.sub c.data start (c.pos - start) in
  match int_of_string_opt token with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" token start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at offset %d" c.pos
  | Some '"' -> String (parse_string_body c)
  | Some 'n' -> expect_literal c "null" Null
  | Some 't' -> expect_literal c "true" (Bool true)
  | Some 'f' -> expect_literal c "false" (Bool false)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List (List.rev (v :: acc))
        | _ -> parse_error "expected , or ] at offset %d" c.pos
      in
      items []
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev (kv :: acc))
        | _ -> parse_error "expected , or } at offset %d" c.pos
      in
      fields []
    end
  | Some _ -> parse_number c

let of_string data =
  let c = { data; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length data then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None

let of_table table =
  Obj
    [
      ("title", String (Table.title table));
      ("columns", List (List.map (fun c -> String c) (Table.columns table)));
      ( "rows",
        List
          (List.map
             (fun row -> List (List.map (fun cell -> String cell) row))
             (Table.rows table)) );
    ]

(** Plain-text table rendering for experiment output.

    Every experiment in [bench/main.ml] prints one of these tables; the
    same rows are recorded in EXPERIMENTS.md. Columns are right-aligned
    except the first, which is left-aligned. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] is an empty table. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. The number of cells must match the
    number of columns. *)

val add_int_row : t -> label:string -> int list -> unit
(** [add_int_row t ~label vs] appends [label :: List.map string_of_int vs]. *)

val render : t -> string
(** [render t] is the formatted table, with title, header and rule. *)

val print : t -> unit
(** [print t] writes {!render} to stdout followed by a blank line. *)

val title : t -> string

val columns : t -> string list

val rows : t -> string list list
(** Raw cells in insertion order — used by [Json] exporters that record
    the deterministic counter tables machine-readably. *)

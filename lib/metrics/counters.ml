type t = {
  mutable vv_comparisons : int;
  mutable items_examined : int;
  mutable log_records_examined : int;
  mutable items_copied : int;
  mutable messages : int;
  mutable bytes_sent : int;
  mutable wire_bytes_sent : int;
  mutable updates_applied : int;
  mutable conflicts_detected : int;
  mutable propagation_sessions : int;
  mutable noop_sessions : int;
  mutable aux_replays : int;
  mutable oob_copies : int;
  mutable delta_ops_applied : int;
  mutable whole_fallbacks : int;
  mutable sessions_skipped_cached : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable sessions_abandoned : int;
  mutable connections_opened : int;
  mutable connection_retries : int;
  mutable shards_skipped : int;
  mutable push_sent : int;
  mutable push_applied : int;
  mutable push_stale : int;
  mutable push_dropped_overflow : int;
  mutable push_wire_bytes : int;
  mutable joins_completed : int;
  mutable retirements_completed : int;
  mutable vector_components_gced : int;
}

let create () =
  {
    vv_comparisons = 0;
    items_examined = 0;
    log_records_examined = 0;
    items_copied = 0;
    messages = 0;
    bytes_sent = 0;
    wire_bytes_sent = 0;
    updates_applied = 0;
    conflicts_detected = 0;
    propagation_sessions = 0;
    noop_sessions = 0;
    aux_replays = 0;
    oob_copies = 0;
    delta_ops_applied = 0;
    whole_fallbacks = 0;
    sessions_skipped_cached = 0;
    timeouts = 0;
    retries = 0;
    sessions_abandoned = 0;
    connections_opened = 0;
    connection_retries = 0;
    shards_skipped = 0;
    push_sent = 0;
    push_applied = 0;
    push_stale = 0;
    push_dropped_overflow = 0;
    push_wire_bytes = 0;
    joins_completed = 0;
    retirements_completed = 0;
    vector_components_gced = 0;
  }

let reset t =
  t.vv_comparisons <- 0;
  t.items_examined <- 0;
  t.log_records_examined <- 0;
  t.items_copied <- 0;
  t.messages <- 0;
  t.bytes_sent <- 0;
  t.wire_bytes_sent <- 0;
  t.updates_applied <- 0;
  t.conflicts_detected <- 0;
  t.propagation_sessions <- 0;
  t.noop_sessions <- 0;
  t.aux_replays <- 0;
  t.oob_copies <- 0;
  t.delta_ops_applied <- 0;
  t.whole_fallbacks <- 0;
  t.sessions_skipped_cached <- 0;
  t.timeouts <- 0;
  t.retries <- 0;
  t.sessions_abandoned <- 0;
  t.connections_opened <- 0;
  t.connection_retries <- 0;
  t.shards_skipped <- 0;
  t.push_sent <- 0;
  t.push_applied <- 0;
  t.push_stale <- 0;
  t.push_dropped_overflow <- 0;
  t.push_wire_bytes <- 0;
  t.joins_completed <- 0;
  t.retirements_completed <- 0;
  t.vector_components_gced <- 0

let copy t =
  {
    vv_comparisons = t.vv_comparisons;
    items_examined = t.items_examined;
    log_records_examined = t.log_records_examined;
    items_copied = t.items_copied;
    messages = t.messages;
    bytes_sent = t.bytes_sent;
    wire_bytes_sent = t.wire_bytes_sent;
    updates_applied = t.updates_applied;
    conflicts_detected = t.conflicts_detected;
    propagation_sessions = t.propagation_sessions;
    noop_sessions = t.noop_sessions;
    aux_replays = t.aux_replays;
    oob_copies = t.oob_copies;
    delta_ops_applied = t.delta_ops_applied;
    whole_fallbacks = t.whole_fallbacks;
    sessions_skipped_cached = t.sessions_skipped_cached;
    timeouts = t.timeouts;
    retries = t.retries;
    sessions_abandoned = t.sessions_abandoned;
    connections_opened = t.connections_opened;
    connection_retries = t.connection_retries;
    shards_skipped = t.shards_skipped;
    push_sent = t.push_sent;
    push_applied = t.push_applied;
    push_stale = t.push_stale;
    push_dropped_overflow = t.push_dropped_overflow;
    push_wire_bytes = t.push_wire_bytes;
    joins_completed = t.joins_completed;
    retirements_completed = t.retirements_completed;
    vector_components_gced = t.vector_components_gced;
  }

let add_into acc t =
  acc.vv_comparisons <- acc.vv_comparisons + t.vv_comparisons;
  acc.items_examined <- acc.items_examined + t.items_examined;
  acc.log_records_examined <- acc.log_records_examined + t.log_records_examined;
  acc.items_copied <- acc.items_copied + t.items_copied;
  acc.messages <- acc.messages + t.messages;
  acc.bytes_sent <- acc.bytes_sent + t.bytes_sent;
  acc.wire_bytes_sent <- acc.wire_bytes_sent + t.wire_bytes_sent;
  acc.updates_applied <- acc.updates_applied + t.updates_applied;
  acc.conflicts_detected <- acc.conflicts_detected + t.conflicts_detected;
  acc.propagation_sessions <- acc.propagation_sessions + t.propagation_sessions;
  acc.noop_sessions <- acc.noop_sessions + t.noop_sessions;
  acc.aux_replays <- acc.aux_replays + t.aux_replays;
  acc.oob_copies <- acc.oob_copies + t.oob_copies;
  acc.delta_ops_applied <- acc.delta_ops_applied + t.delta_ops_applied;
  acc.whole_fallbacks <- acc.whole_fallbacks + t.whole_fallbacks;
  acc.sessions_skipped_cached <- acc.sessions_skipped_cached + t.sessions_skipped_cached;
  acc.timeouts <- acc.timeouts + t.timeouts;
  acc.retries <- acc.retries + t.retries;
  acc.sessions_abandoned <- acc.sessions_abandoned + t.sessions_abandoned;
  acc.connections_opened <- acc.connections_opened + t.connections_opened;
  acc.connection_retries <- acc.connection_retries + t.connection_retries;
  acc.shards_skipped <- acc.shards_skipped + t.shards_skipped;
  acc.push_sent <- acc.push_sent + t.push_sent;
  acc.push_applied <- acc.push_applied + t.push_applied;
  acc.push_stale <- acc.push_stale + t.push_stale;
  acc.push_dropped_overflow <- acc.push_dropped_overflow + t.push_dropped_overflow;
  acc.push_wire_bytes <- acc.push_wire_bytes + t.push_wire_bytes;
  acc.joins_completed <- acc.joins_completed + t.joins_completed;
  acc.retirements_completed <- acc.retirements_completed + t.retirements_completed;
  acc.vector_components_gced <- acc.vector_components_gced + t.vector_components_gced

let diff ~after ~before =
  {
    vv_comparisons = after.vv_comparisons - before.vv_comparisons;
    items_examined = after.items_examined - before.items_examined;
    log_records_examined = after.log_records_examined - before.log_records_examined;
    items_copied = after.items_copied - before.items_copied;
    messages = after.messages - before.messages;
    bytes_sent = after.bytes_sent - before.bytes_sent;
    wire_bytes_sent = after.wire_bytes_sent - before.wire_bytes_sent;
    updates_applied = after.updates_applied - before.updates_applied;
    conflicts_detected = after.conflicts_detected - before.conflicts_detected;
    propagation_sessions = after.propagation_sessions - before.propagation_sessions;
    noop_sessions = after.noop_sessions - before.noop_sessions;
    aux_replays = after.aux_replays - before.aux_replays;
    oob_copies = after.oob_copies - before.oob_copies;
    delta_ops_applied = after.delta_ops_applied - before.delta_ops_applied;
    whole_fallbacks = after.whole_fallbacks - before.whole_fallbacks;
    sessions_skipped_cached =
      after.sessions_skipped_cached - before.sessions_skipped_cached;
    timeouts = after.timeouts - before.timeouts;
    retries = after.retries - before.retries;
    sessions_abandoned = after.sessions_abandoned - before.sessions_abandoned;
    connections_opened = after.connections_opened - before.connections_opened;
    connection_retries = after.connection_retries - before.connection_retries;
    shards_skipped = after.shards_skipped - before.shards_skipped;
    push_sent = after.push_sent - before.push_sent;
    push_applied = after.push_applied - before.push_applied;
    push_stale = after.push_stale - before.push_stale;
    push_dropped_overflow = after.push_dropped_overflow - before.push_dropped_overflow;
    push_wire_bytes = after.push_wire_bytes - before.push_wire_bytes;
    joins_completed = after.joins_completed - before.joins_completed;
    retirements_completed = after.retirements_completed - before.retirements_completed;
    vector_components_gced =
      after.vector_components_gced - before.vector_components_gced;
  }

let total_work t =
  t.vv_comparisons + t.items_examined + t.log_records_examined + t.items_copied

(* The single canonical field enumeration. Every consumer that walks
   "all counters" — the pretty-printer below, the per-tick scenario
   sampler, the time-series JSON emitter and its validator — iterates
   this list, so a counter added to the record but not listed here is
   invisible everywhere at once (and the field-coverage test in
   test_metrics.ml flags the arity mismatch). This is the guard against
   the dangling-total bug class: a counter that exists but is never
   re-sampled after a reset. *)
let fields =
  [
    ("vv_comparisons", fun t -> t.vv_comparisons);
    ("items_examined", fun t -> t.items_examined);
    ("log_records_examined", fun t -> t.log_records_examined);
    ("items_copied", fun t -> t.items_copied);
    ("messages", fun t -> t.messages);
    ("bytes_sent", fun t -> t.bytes_sent);
    ("wire_bytes_sent", fun t -> t.wire_bytes_sent);
    ("updates_applied", fun t -> t.updates_applied);
    ("conflicts_detected", fun t -> t.conflicts_detected);
    ("propagation_sessions", fun t -> t.propagation_sessions);
    ("noop_sessions", fun t -> t.noop_sessions);
    ("aux_replays", fun t -> t.aux_replays);
    ("oob_copies", fun t -> t.oob_copies);
    ("delta_ops_applied", fun t -> t.delta_ops_applied);
    ("whole_fallbacks", fun t -> t.whole_fallbacks);
    ("sessions_skipped_cached", fun t -> t.sessions_skipped_cached);
    ("timeouts", fun t -> t.timeouts);
    ("retries", fun t -> t.retries);
    ("sessions_abandoned", fun t -> t.sessions_abandoned);
    ("connections_opened", fun t -> t.connections_opened);
    ("connection_retries", fun t -> t.connection_retries);
    ("shards_skipped", fun t -> t.shards_skipped);
    ("push_sent", fun t -> t.push_sent);
    ("push_applied", fun t -> t.push_applied);
    ("push_stale", fun t -> t.push_stale);
    ("push_dropped_overflow", fun t -> t.push_dropped_overflow);
    ("push_wire_bytes", fun t -> t.push_wire_bytes);
    ("joins_completed", fun t -> t.joins_completed);
    ("retirements_completed", fun t -> t.retirements_completed);
    ("vector_components_gced", fun t -> t.vector_components_gced);
  ]

let field_names = List.map fst fields

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, get) ->
      let v = get t in
      if v <> 0 then Format.fprintf fmt "  %-22s %d@," name v)
    fields;
  Format.fprintf fmt "@]"

(** Machine-independent cost counters.

    The paper's evaluation is a complexity argument (§6): overhead is
    measured in version-vector comparisons, log records examined, items
    scanned and bytes shipped — not in seconds on 1995 hardware. Every
    protocol implementation (the paper's and the baselines) charges its
    work to one of these counters, and the experiment tables in
    [bench/main.ml] report them, so the reproduced "shape" is exact and
    deterministic. Wall-clock Bechamel micro-benches complement them. *)

type t = {
  mutable vv_comparisons : int;
      (** Version-vector (or sequence-number / timestamp) comparisons. *)
  mutable items_examined : int;
      (** Data items whose control state was inspected — the O(N) cost
          of per-item anti-entropy the paper eliminates. *)
  mutable log_records_examined : int;
      (** Log records read while computing or applying a propagation. *)
  mutable items_copied : int;  (** Item values actually transferred. *)
  mutable messages : int;  (** Messages sent. *)
  mutable bytes_sent : int;  (** Total payload bytes under the size model. *)
  mutable wire_bytes_sent : int;
      (** Bytes actually put on the wire: the lengths of the encoded
          frames a transport sent (requests, replies, naks), measured
          at encode time. Zero on the in-process fast paths, which ship
          no frames; compare with [bytes_sent], the machine-independent
          size {e model} those paths charge. *)
  mutable updates_applied : int;  (** User updates executed. *)
  mutable conflicts_detected : int;  (** Inconsistencies declared. *)
  mutable propagation_sessions : int;
      (** Anti-entropy sessions that shipped data. *)
  mutable noop_sessions : int;
      (** Sessions answered "you-are-current" (or equivalent). *)
  mutable aux_replays : int;
      (** Auxiliary-log records replayed by intra-node propagation. *)
  mutable oob_copies : int;  (** Out-of-bound item transfers. *)
  mutable delta_ops_applied : int;
      (** Update records applied by op-log propagation. *)
  mutable whole_fallbacks : int;
      (** Items shipped whole because the op history could not prove a
          delta complete. *)
  mutable sessions_skipped_cached : int;
      (** Anti-entropy sessions skipped outright — zero messages —
          because cached peer knowledge proved the session would be a
          no-op (see [Edb_core.Peer_cache]). Not counted in
          [noop_sessions], which tallies sessions that actually ran. *)
  mutable timeouts : int;
      (** Message-granular sessions whose reply did not arrive within
          the transport's per-attempt timeout (see
          [Edb_sim.Engine] message-grain transport). *)
  mutable retries : int;
      (** Session attempts re-sent after a timeout (bounded
          exponential backoff). *)
  mutable sessions_abandoned : int;
      (** Sessions given up after exhausting the retry budget — left
          for a later anti-entropy round, the paper's recovery story. *)
  mutable connections_opened : int;
      (** Transport connections dialed to carry frames: one per
          message-granular session attempt (initial send and every
          retry re-dial) and one per flushed push frame. Charged
          identically by the simulated transport ([Edb_sim.Engine])
          and the socket transport ([Edb_transport.Socket_transport]),
          where it counts actual [connect(2)] calls. *)
  mutable connection_retries : int;
      (** The subset of {!connections_opened} that were re-dials: a
          session attempt re-sent after a timeout (simulated
          transport) or a re-connect after a refused/timed-out dial
          (socket transport). *)
  mutable shards_skipped : int;
      (** Shards skipped individually inside a propagation session
          because the recipient's per-shard DBVV already dominated the
          source's — the sharded analogue of a you-are-current answer,
          charged only when the node runs with [shards > 1]. *)
  mutable push_sent : int;
      (** Updates drained from the best-effort per-peer push queues and
          handed to the transport (see [Edb_push.Channel]). Counted per
          update, not per frame. *)
  mutable push_applied : int;
      (** Pushed updates applied on the receiver because they were
          causally fresh per its DBVV (exactly the next expected
          sequence number from the origin). *)
  mutable push_stale : int;
      (** Pushed updates discarded on arrival — duplicate, reordered,
          or already covered by anti-entropy. Dropping them is safe by
          construction: anti-entropy remains the correctness path. *)
  mutable push_dropped_overflow : int;
      (** Updates evicted from a bounded per-peer push queue on
          overflow (either end, per the configured drop policy). Each
          one is latency lost, never correctness: the next anti-entropy
          session repairs it. *)
  mutable push_wire_bytes : int;
      (** Encoded bytes of push frames put on the wire — the subset of
          [wire_bytes_sent] attributable to the realtime stream. *)
  mutable joins_completed : int;
      (** Joins that reached activation: the joiner's summary DBVV came
          to dominate the donor's transfer watermark, so it began
          serving reads and pushes (see [Edb_membership.Group]).
          Charged at the joiner. *)
  mutable retirements_completed : int;
      (** Retirement fences that completed: every required live member
          acknowledged the fence target, so the dead origin's vector
          component was garbage-collected cluster-wide. Charged once
          per member that performed the drop. *)
  mutable vector_components_gced : int;
      (** Individual vector components physically removed by retirement
          surgery — one per DBVV, IVV, and log-vector slot dropped —
          the bytes-per-vector savings E21 measures. *)
}

val create : unit -> t
(** [create ()] is an all-zero counter set. *)

val reset : t -> unit

val copy : t -> t

val add_into : t -> t -> unit
(** [add_into acc t] accumulates [t] into [acc], field-wise. *)

val diff : after:t -> before:t -> t
(** [diff ~after ~before] is the field-wise difference — the cost of the
    work done between two snapshots. *)

val total_work : t -> int
(** [total_work t] is a single scalar summary:
    comparisons + items examined + records examined + items copied.
    Used when an experiment needs one "overhead" number per cell. *)

val fields : (string * (t -> int)) list
(** The canonical field enumeration, in declaration order: one
    [(name, getter)] pair per counter. {b Every} consumer that walks
    "all counters" — {!pp}, the scenario time-series sampler
    ([Edb_scenario.Sampler]), the [BENCH_timeseries.json] emitter and
    its validator — iterates this list, so a counter that exists in the
    record but is missing here would silently vanish from every report
    (the dangling-total bug class). Keep it exhaustive; the
    field-coverage test in [test_metrics.ml] cross-checks it against
    [add_into]/[diff]. *)

val field_names : string list
(** [List.map fst fields]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump; zero fields are omitted. *)

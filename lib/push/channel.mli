(** The best-effort per-peer update stream (DESIGN.md §10).

    A channel hangs off one node's local-update hook: every user update
    applied to a regular copy is fanned out onto one bounded queue per
    peer ({!Bounded_queue}), and a transport periodically {!flush}es
    the queues of reachable peers into push frames. The channel itself
    makes {e no} promise — no ordering, no delivery, no retention
    beyond the queue bound. Receivers apply a pushed update only when
    it is causally fresh ([Edb_core.Node.apply_push]); anti-entropy
    remains the sole correctness mechanism and repairs whatever this
    hot path drops. *)

type config = {
  capacity : int;  (** Per-peer queue bound; at least 1. *)
  policy : Bounded_queue.policy;  (** What to shed on overflow. *)
  flush_period : float;
      (** Seconds between queue drains — the streaming cadence a
          transport should schedule. *)
}

val default_config : config
(** 64 updates per peer, drop-oldest, 0.25 s cadence. *)

type t

val create : config:config -> Edb_core.Node.t -> t
(** Attach a channel to [node]: installs the node's update hook (any
    previous hook is replaced) and creates one bounded queue per peer.
    Overflow drops are charged to the node's [push_dropped_overflow]
    counter. *)

val config : t -> config

val detach : t -> unit
(** Remove the update hook; queued updates are kept but no new ones
    accrue. *)

val flush : t -> ready:(int -> bool) -> (int * Edb_core.Message.push_update list) list
(** Drain the queue of every peer for which [ready peer] is [true],
    in ascending peer order, skipping empty queues. [ready] is the
    transport's reachability/negotiation gate (e.g. "has this peer
    proven wire v2?"); queues of never-ready peers simply fill and
    shed per the policy. The caller owns counting [push_sent] and the
    wire bytes — the channel knows nothing about framing. *)

val pending : t -> int -> int
(** Updates currently queued for the given peer. *)

type policy = Drop_oldest | Drop_newest

let policy_name = function
  | Drop_oldest -> "drop-oldest"
  | Drop_newest -> "drop-newest"

type 'a t = {
  capacity : int;
  policy : policy;
  q : 'a Queue.t;
  mutable dropped : int;
}

let create ~capacity ~policy =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  { capacity; policy; q = Queue.create (); dropped = 0 }

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let dropped t = t.dropped

let push t x =
  if Queue.length t.q < t.capacity then begin
    Queue.push x t.q;
    `Stored
  end
  else begin
    t.dropped <- t.dropped + 1;
    (match t.policy with
    | Drop_newest -> ()
    | Drop_oldest ->
      ignore (Queue.pop t.q);
      Queue.push x t.q);
    `Overflow
  end

let drain t =
  let out = List.rev (Queue.fold (fun acc x -> x :: acc) [] t.q) in
  Queue.clear t.q;
  out

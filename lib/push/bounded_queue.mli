(** A bounded FIFO with an explicit overflow policy — the per-peer
    buffer of the best-effort push channel (DESIGN.md §10).

    The bound is the channel's entire backpressure story: when a peer
    is slow, partitioned, or still speaking wire v1, its queue fills
    and further traffic is shed according to the policy. Every eviction
    is counted; none is a correctness event, because anti-entropy
    re-derives whatever the stream drops. *)

type policy =
  | Drop_oldest
      (** On overflow, evict the front (oldest) element to admit the
          new one — keeps the stream biased towards fresh data. *)
  | Drop_newest
      (** On overflow, discard the incoming element — keeps whatever
          was already queued. *)

val policy_name : policy -> string
(** ["drop-oldest"] / ["drop-newest"], the scenario-file spelling. *)

type 'a t

val create : capacity:int -> policy:policy -> 'a t
(** [Invalid_argument] when [capacity < 1]. *)

val push : 'a t -> 'a -> [ `Stored | `Overflow ]
(** Enqueue, applying the overflow policy when full. [`Overflow] means
    exactly one element was dropped (the incoming one under
    [Drop_newest], the oldest queued one under [Drop_oldest]) and the
    drop counter advanced by one. *)

val drain : 'a t -> 'a list
(** All queued elements in FIFO order; the queue is left empty. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val dropped : 'a t -> int
(** Total elements dropped by overflow since creation. *)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters

type config = {
  capacity : int;
  policy : Bounded_queue.policy;
  flush_period : float;
}

let default_config =
  { capacity = 64; policy = Bounded_queue.Drop_oldest; flush_period = 0.25 }

type t = {
  node : Node.t;
  config : config;
  queues : Message.push_update Bounded_queue.t array;
}

let create ~config node =
  let n = Node.dimension node in
  let id = Node.id node in
  let queues =
    Array.init n (fun _ ->
        Bounded_queue.create ~capacity:config.capacity ~policy:config.policy)
  in
  let t = { node; config; queues } in
  let counters = Node.counters node in
  Node.set_update_hook node
    (Some
       (fun u ->
         for peer = 0 to n - 1 do
           if peer <> id then
             match Bounded_queue.push t.queues.(peer) u with
             | `Stored -> ()
             | `Overflow ->
               counters.Counters.push_dropped_overflow <-
                 counters.Counters.push_dropped_overflow + 1
         done));
  t

let config t = t.config

let detach t = Node.set_update_hook t.node None

let pending t peer = Bounded_queue.length t.queues.(peer)

let flush t ~ready =
  let n = Node.dimension t.node in
  let id = Node.id t.node in
  let out = ref [] in
  for peer = n - 1 downto 0 do
    if peer <> id && (not (Bounded_queue.is_empty t.queues.(peer))) && ready peer
    then out := (peer, Bounded_queue.drain t.queues.(peer)) :: !out
  done;
  !out

module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector
module Message = Edb_core.Message

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Codec.Reader.Corrupt msg)) fmt

let encode_operation w (op : Operation.t) =
  match op with
  | Operation.Set v ->
    Codec.Writer.int w 0;
    Codec.Writer.string w v
  | Operation.Splice { offset; data } ->
    Codec.Writer.int w 1;
    Codec.Writer.int w offset;
    Codec.Writer.string w data

let decode_operation r =
  match Codec.Reader.int r with
  | 0 -> Operation.Set (Codec.Reader.string r)
  | 1 ->
    let offset = Codec.Reader.int r in
    if offset < 0 then corrupt "negative splice offset %d" offset;
    let data = Codec.Reader.string r in
    Operation.Splice { offset; data }
  | tag -> corrupt "unknown operation tag %d" tag

let encode_vv w vv = Codec.Writer.array w Codec.Writer.int (Vv.to_array vv)

let decode_vv r =
  let a =
    Codec.Reader.array r (fun r ->
        let v = Codec.Reader.int r in
        if v < 0 then corrupt "negative version-vector component %d" v;
        v)
  in
  if Array.length a = 0 then corrupt "empty version vector";
  Vv.of_array a

let encode_log_record w (record : Edb_log.Log_record.t) =
  Codec.Writer.string w record.item;
  Codec.Writer.int w record.seq

let decode_log_record r =
  let item = Codec.Reader.string r in
  let seq = Codec.Reader.int r in
  if seq < 1 then corrupt "log record sequence %d below 1" seq;
  { Edb_log.Log_record.item; seq }

let encode_payload w (payload : Message.payload) =
  match payload with
  | Message.Whole value ->
    Codec.Writer.int w 0;
    Codec.Writer.string w value
  | Message.Delta ops ->
    Codec.Writer.int w 1;
    Codec.Writer.list w
      (fun w (dop : Message.delta_op) ->
        Codec.Writer.int w dop.origin;
        Codec.Writer.int w dop.seq;
        encode_operation w dop.op)
      ops

let decode_payload r =
  match Codec.Reader.int r with
  | 0 -> Message.Whole (Codec.Reader.string r)
  | 1 ->
    let decode_delta_op r =
      let origin = Codec.Reader.int r in
      if origin < 0 then corrupt "negative delta-op origin %d" origin;
      let seq = Codec.Reader.int r in
      if seq < 1 then corrupt "delta-op sequence %d below 1" seq;
      let op = decode_operation r in
      { Message.origin; seq; op }
    in
    Message.Delta (Codec.Reader.list r decode_delta_op)
  | tag -> corrupt "unknown payload tag %d" tag

let encode_shipped_item w (s : Message.shipped_item) =
  Codec.Writer.string w s.name;
  encode_payload w s.payload;
  encode_vv w s.ivv

let decode_shipped_item r =
  let name = Codec.Reader.string r in
  let payload = decode_payload r in
  let ivv = decode_vv r in
  { Message.name; payload; ivv }

let encode_propagation_reply w (reply : Message.propagation_reply) =
  match reply with
  | Message.You_are_current -> Codec.Writer.int w 0
  | Message.Propagate { tails; items } ->
    Codec.Writer.int w 1;
    Codec.Writer.array w
      (fun w records -> Codec.Writer.list w encode_log_record records)
      tails;
    Codec.Writer.list w encode_shipped_item items

  | Message.Propagate_sharded deltas ->
    Codec.Writer.int w 2;
    Codec.Writer.list w
      (fun w (d : Message.shard_delta) ->
        Codec.Writer.int w d.shard;
        Codec.Writer.array w
          (fun w records -> Codec.Writer.list w encode_log_record records)
          d.tails;
        Codec.Writer.list w encode_shipped_item d.items)
      deltas

let decode_propagation_reply r =
  match Codec.Reader.int r with
  | 0 -> Message.You_are_current
  | 1 ->
    let tails = Codec.Reader.array r (fun r -> Codec.Reader.list r decode_log_record) in
    let items = Codec.Reader.list r decode_shipped_item in
    Message.Propagate { tails; items }
  | 2 ->
    let decode_shard_delta r =
      let shard = Codec.Reader.int r in
      if shard < 0 then corrupt "negative shard index %d" shard;
      let tails =
        Codec.Reader.array r (fun r -> Codec.Reader.list r decode_log_record)
      in
      let items = Codec.Reader.list r decode_shipped_item in
      { Message.shard; tails; items }
    in
    Message.Propagate_sharded (Codec.Reader.list r decode_shard_delta)
  | tag -> corrupt "unknown reply tag %d" tag

(* The request never travels through the WAL or a snapshot — sessions
   are not journaled from the requesting side — so this codec is new
   with the framed transports and has no pinned-fixture constraint.
   Still fixed-width, like every v1 form. *)
let encode_propagation_request w (req : Message.propagation_request) =
  Codec.Writer.int w req.recipient;
  encode_vv w req.recipient_dbvv;
  Codec.Writer.array w (fun w vv -> encode_vv w vv) req.recipient_shard_dbvvs

let decode_propagation_request r =
  let recipient = Codec.Reader.int r in
  let recipient_dbvv = decode_vv r in
  let recipient_shard_dbvvs = Codec.Reader.array r decode_vv in
  { Message.recipient; recipient_dbvv; recipient_shard_dbvvs }

let encode_oob_request w (req : Message.oob_request) =
  Codec.Writer.string w req.item

let decode_oob_request r = { Message.item = Codec.Reader.string r }

let encode_oob_reply w (reply : Message.oob_reply) =
  Codec.Writer.string w reply.item;
  Codec.Writer.string w reply.value;
  encode_vv w reply.ivv

let decode_oob_reply r =
  let item = Codec.Reader.string r in
  let value = Codec.Reader.string r in
  let ivv = decode_vv r in
  { Message.item; value; ivv }

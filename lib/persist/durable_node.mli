(** A protocol node with crash-consistent durability.

    Combines {!Snapshot} checkpoints with a {!Wal} redo journal: every
    state-mutating protocol step — user updates, accepted propagation
    replies, adopted out-of-bound replies — is journaled {e before}
    being applied, and {!checkpoint} folds the journal into a fresh
    snapshot. {!open_or_create} recovers by loading the latest
    checkpoint and re-executing the journal, reconstructing the exact
    pre-crash state.

    Exactness matters for more than durability: a node's update
    sequence numbers are globally meaningful (other replicas may
    already hold log records naming them), so recovery must reproduce
    the same updates under the same numbers — which deterministic
    replay guarantees — rather than restart numbering from the
    checkpoint.

    Mutations must go through this wrapper's entry points; driving the
    wrapped {!node} directly bypasses the journal. *)

type t

val open_or_create :
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?shards:int ->
  dir:string ->
  id:int ->
  n:int ->
  unit ->
  (t * Wal.replay_result, string) result
(** [open_or_create ~dir ~id ~n ()] loads the checkpoint in [dir] (or
    starts fresh) and replays the journal. The directory is created if
    missing. Fails if the checkpoint is unreadable or does not match
    [id]/[n]/[shards] (default 1). The replay result reports recovered
    records and whether a torn tail was discarded. *)

val node : t -> Edb_core.Node.t
(** The live node. Read through it freely; mutate only through the
    wrapper. *)

val update : t -> string -> Edb_store.Operation.t -> unit
(** Journal, then apply, a user update (§5.3). *)

val pull_from : t -> source:Edb_core.Node.t -> Edb_core.Node.pull_result
(** One propagation session pulling from [source]: the source's reply
    is journaled, then accepted. *)

val fetch_out_of_bound_from :
  t -> source:Edb_core.Node.t -> string -> Edb_core.Node.oob_result
(** One out-of-bound fetch; the reply is journaled, then accepted. *)

val apply_push :
  t -> source:int -> Edb_core.Message.push_update -> [ `Applied | `Stale ]
(** A received push, journaled before the freshness check. The push
    channel itself is volatile, but an {e applied} push changes state
    that later journaled AE replies build on — skipping the journal
    would leave recovery replaying those replies against a state
    missing the push. Stale pushes are journaled too (replay re-judges
    and drops them); a run with push disabled appends no tag-3 records,
    so its WAL stays byte-identical to pre-push builds. *)

val checkpoint : t -> unit
(** Write a fresh snapshot atomically and reset the journal. *)

val journal_records : t -> int
(** Records appended to the journal since the last checkpoint. *)

val close : t -> unit

(** A protocol node with crash-consistent durability.

    Combines {!Snapshot} checkpoints with a {!Wal} redo journal: every
    state-mutating protocol step — user updates, accepted propagation
    replies, adopted out-of-bound replies — is journaled {e before}
    being applied, and {!checkpoint} folds the journal into a fresh
    snapshot. {!open_or_create} recovers by loading the latest
    checkpoint and re-executing the journal, reconstructing the exact
    pre-crash state.

    Exactness matters for more than durability: a node's update
    sequence numbers are globally meaningful (other replicas may
    already hold log records naming them), so recovery must reproduce
    the same updates under the same numbers — which deterministic
    replay guarantees — rather than restart numbering from the
    checkpoint.

    Mutations must go through this wrapper's entry points; driving the
    wrapped {!node} directly bypasses the journal. *)

type t

type membership_op =
  | Extend of { name : int }
      (** Dimension grew by one for the joining site [name]. *)
  | Retire of { slot : int; name : int }
      (** Component [slot] (retired site [name]) was dropped. *)

val open_or_create :
  ?policy:Edb_core.Node.resolution_policy ->
  ?mode:Edb_core.Node.propagation_mode ->
  ?shards:int ->
  dir:string ->
  id:int ->
  n:int ->
  unit ->
  (t * Wal.replay_result, string) result
(** [open_or_create ~dir ~id ~n ()] loads the checkpoint in [dir] (or
    starts fresh) and replays the journal. The directory is created if
    missing. Fails if the checkpoint is unreadable or does not match
    [id]/[n]/[shards] (default 1). The replay result reports recovered
    records and whether a torn tail was discarded.

    [id] and [n] name the {e checkpoint} geometry: journaled membership
    reshapes (tag-4 records) replay on top of it, so the recovered
    {!node} may end at a different dimension or id — inspect it, and
    {!membership_log}, after opening. *)

val node : t -> Edb_core.Node.t
(** The live node. Read through it freely; mutate only through the
    wrapper. *)

val update : t -> string -> Edb_store.Operation.t -> unit
(** Journal, then apply, a user update (§5.3). *)

val pull_from : t -> source:Edb_core.Node.t -> Edb_core.Node.pull_result
(** One propagation session pulling from [source]: the source's reply
    is journaled, then accepted. *)

val accept_reply : t -> source:int -> Edb_core.Message.propagation_reply -> unit
(** Journal, then accept, a propagation reply that arrived from a
    remote transport already decoded (the socket daemon's session
    path) — the same commit discipline as {!pull_from}, which covers
    the in-process case. [You_are_current] is a no-op and journals
    nothing. *)

val fetch_out_of_bound_from :
  t -> source:Edb_core.Node.t -> string -> Edb_core.Node.oob_result
(** One out-of-bound fetch; the reply is journaled, then accepted. *)

val apply_push :
  t -> source:int -> Edb_core.Message.push_update -> [ `Applied | `Stale ]
(** A received push, journaled before the freshness check. The push
    channel itself is volatile, but an {e applied} push changes state
    that later journaled AE replies build on — skipping the journal
    would leave recovery replaying those replies against a state
    missing the push. Stale pushes are journaled too (replay re-judges
    and drops them); a run with push disabled appends no tag-3 records,
    so its WAL stays byte-identical to pre-push builds. *)

val extend_dimension : t -> name:int -> unit
(** Journal, then apply, the join reshape: every vector gains a zero
    component for site [name] (see [Edb_core.Node.extend_dimension]).
    The journal append is the commit point — a crash before it loses
    the reshape (the membership layer re-issues it), a crash after it
    replays the reshape on recovery. *)

val retire_component : t -> slot:int -> name:int -> unit
(** Journal, then apply, the retirement reshape: component [slot]
    (retired site [name]) is dropped from every vector (see
    [Edb_core.Node.retire_component]). Same commit discipline as
    {!extend_dimension}. Fence {e acknowledgements} are deliberately
    not journaled: recovery re-judges any standing fence from the
    recovered DBVVs, the same way replayed AE replies re-judge
    freshness. *)

val membership_log : t -> membership_op list
(** Membership reshapes applied since the last checkpoint, oldest
    first — the replayed tag-4 records plus any appended by this
    process. After a crash the membership layer uses this to rebuild
    its view (epoch, roster) before re-judging fences. *)

val set_group_commit : t -> bool -> unit
(** Switch group commit on or off (default off). While on, journal
    appends buffer in the WAL channel and the caller owes a {!sync}
    before acting on the journaled state externally — the sync, not the
    append, becomes the commit point, and a crash before it recovers to
    the state before every unsynced record (each record is one complete
    session effect, appended in completion order, so the synced prefix
    is always a valid pre/post-session history). Turning group commit
    off syncs any pending batch first. *)

val sync : t -> unit
(** Release the current group-commit batch with one WAL flush. The
    daemon calls this once per event-loop turn, after every handler has
    journaled and before any reply buffered in that turn is written to
    a socket — so no reply ever precedes the durability of its commit
    record. A no-op when nothing is pending. *)

val unsynced_records : t -> int
(** Journal records appended since the last {!sync} (0 unless group
    commit is on). *)

val checkpoint : t -> unit
(** Write a fresh snapshot atomically and reset the journal (syncing
    any pending group-commit batch first). *)

val journal_records : t -> int
(** Records appended to the journal since the last checkpoint. *)

val close : t -> unit

module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector
module Message = Edb_core.Message
module W = Codec.Writer
module R = Codec.Reader

let corrupt fmt = Printf.ksprintf (fun msg -> raise (R.Corrupt msg)) fmt

(* ------------------------------------------------------------------ *)
(* Name interning                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-message dictionary: the first occurrence of a name ships as
   [varint 0; vstring] and implicitly takes the next index; every later
   occurrence ships as [varint (index + 1)]. Item names repeat a lot in
   a propagation reply — once per log record plus once per shipped item
   — so this collapses each name to one or two bytes after its debut.
   The dictionary never crosses a message boundary: encoder and decoder
   both start empty per message, so frames stay self-contained. *)
module Dict = struct
  module Writer = struct
    let create () : (string, int) Hashtbl.t = Hashtbl.create 32

    let string d w s =
      match Hashtbl.find_opt d s with
      | Some k -> W.varint w (k + 1)
      | None ->
        W.varint w 0;
        W.vstring w s;
        Hashtbl.add d s (Hashtbl.length d)
  end

  module Reader = struct
    type t = { mutable names : string array; mutable count : int }

    let create () = { names = Array.make 32 ""; count = 0 }

    let string d r =
      match R.varint r with
      | 0 ->
        let s = R.vstring r in
        if d.count = Array.length d.names then begin
          let bigger = Array.make (2 * d.count) "" in
          Array.blit d.names 0 bigger 0 d.count;
          d.names <- bigger
        end;
        d.names.(d.count) <- s;
        d.count <- d.count + 1;
        s
      | k ->
        if k < 1 || k > d.count then
          corrupt "name index %d outside interning table of %d" (k - 1) d.count
        else d.names.(k - 1)
  end
end

(* ------------------------------------------------------------------ *)
(* Version vectors: sparse and delta forms                             *)
(* ------------------------------------------------------------------ *)

(* Sparse form: [varint count] then [count] strictly-ascending
   [(varint origin, varint value)] pairs, zero components omitted. The
   dimension is not encoded — both ends of a session share [n]. *)
let encode_vv w vv =
  let n = Vv.dimension vv in
  let nz = ref 0 in
  for j = 0 to n - 1 do
    if Vv.get vv j <> 0 then incr nz
  done;
  W.varint w !nz;
  for j = 0 to n - 1 do
    let v = Vv.get vv j in
    if v <> 0 then begin
      W.varint w j;
      W.varint w v
    end
  done

let decode_sparse_pairs r ~n ~what fill =
  let count = R.varint r in
  if count < 0 || count > n then
    corrupt "%s carries %d entries over dimension %d" what count n;
  let prev = ref (-1) in
  for _ = 1 to count do
    let j = R.varint r in
    if j <= !prev || j >= n then
      corrupt "%s origin %d out of order or range (dimension %d)" what j n;
    prev := j;
    let v = R.varint r in
    if v <= 0 then corrupt "%s entry at origin %d is %d, not positive" what j v;
    fill j v
  done

let decode_vv r ~n =
  if n < 1 then invalid_arg "Wire_v2.decode_vv: dimension below 1";
  let a = Array.make n 0 in
  decode_sparse_pairs r ~n ~what:"sparse version vector" (fun j v -> a.(j) <- v);
  Vv.of_array a

(* Delta form: the sparse encoding of [vv - baseline]. Only valid when
   [vv] dominates or equals [baseline] — DBVVs are monotone, so a
   requester's current vector always dominates any vector it sent
   earlier. In the steady state the diff is all-zero and the whole
   vector costs one byte. *)
let encode_vv_delta w ~baseline vv =
  let n = Vv.dimension vv in
  if Vv.dimension baseline <> n then
    invalid_arg "Wire_v2.encode_vv_delta: dimension mismatch";
  let nz = ref 0 in
  for j = 0 to n - 1 do
    let d = Vv.get vv j - Vv.get baseline j in
    if d < 0 then invalid_arg "Wire_v2.encode_vv_delta: baseline not dominated";
    if d <> 0 then incr nz
  done;
  W.varint w !nz;
  for j = 0 to n - 1 do
    let d = Vv.get vv j - Vv.get baseline j in
    if d <> 0 then begin
      W.varint w j;
      W.varint w d
    end
  done

let decode_vv_delta r ~baseline =
  let n = Vv.dimension baseline in
  let a = Vv.to_array baseline in
  decode_sparse_pairs r ~n ~what:"delta version vector" (fun j d ->
      if a.(j) > max_int - d then
        corrupt "delta version vector overflows at origin %d" j;
      a.(j) <- a.(j) + d);
  Vv.of_array a

(* A cheap commitment to the baseline's contents, carried next to the
   baseline id in delta requests. The id alone already pins the vector;
   the checksum turns a bookkeeping bug on either side into a loud
   [Corrupt] (answered with a Nak and an absolute retry) instead of a
   silently wrong reconstruction. *)
let vv_checksum vv =
  let h = ref (Vv.dimension vv) in
  for j = 0 to Vv.dimension vv - 1 do
    h := (!h * 31) + Vv.get vv j;
    h := !h land 0x3FFF_FFFF
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Operations and payloads                                             *)
(* ------------------------------------------------------------------ *)

let encode_operation w (op : Operation.t) =
  match op with
  | Operation.Set v ->
    W.byte w 0;
    W.vstring w v
  | Operation.Splice { offset; data } ->
    W.byte w 1;
    (* The one zig-zag field: offsets are non-negative today, but the
       splice form is the natural home for a signed displacement and
       zig-zag keeps small values of either sign to one byte. *)
    W.svarint w offset;
    W.vstring w data

let decode_operation r =
  match R.byte r with
  | 0 -> Operation.Set (R.vstring r)
  | 1 ->
    let offset = R.svarint r in
    if offset < 0 then corrupt "negative splice offset %d" offset;
    let data = R.vstring r in
    Operation.Splice { offset; data }
  | tag -> corrupt "unknown operation tag %d" tag

let encode_payload w (payload : Message.payload) =
  match payload with
  | Message.Whole value ->
    W.byte w 0;
    W.vstring w value
  | Message.Delta ops ->
    W.byte w 1;
    W.varint w (List.length ops);
    List.iter
      (fun (dop : Message.delta_op) ->
        W.varint w dop.origin;
        W.varint w dop.seq;
        encode_operation w dop.op)
      ops

let checked_count r count what =
  (* Every element of every v2 form costs at least one byte, so a count
     beyond the unread payload is forged. Elements are decoded one by
     one (no up-front allocation), but rejecting early keeps a hostile
     count from looping millions of times over a short buffer. *)
  if count < 0 || count > R.remaining r then
    corrupt "%s count %d exceeds %d remaining payload bytes" what count
      (R.remaining r)

let decode_payload r ~n =
  match R.byte r with
  | 0 -> Message.Whole (R.vstring r)
  | 1 ->
    let count = R.varint r in
    checked_count r count "delta-op";
    Message.Delta
      (List.init count (fun _ ->
           let origin = R.varint r in
           if origin < 0 || origin >= n then
             corrupt "delta-op origin %d outside dimension %d" origin n;
           let seq = R.varint r in
           if seq < 1 then corrupt "delta-op sequence %d below 1" seq;
           let op = decode_operation r in
           { Message.origin; seq; op }))
  | tag -> corrupt "unknown payload tag %d" tag

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let encode_shipped_item dict w (s : Message.shipped_item) =
  Dict.Writer.string dict w s.name;
  encode_payload w s.payload;
  encode_vv w s.ivv

let decode_shipped_item dict r ~n =
  let name = Dict.Reader.string dict r in
  let payload = decode_payload r ~n in
  let ivv = decode_vv r ~n in
  { Message.name; payload; ivv }

(* Tails ship sparsely: only origins whose tail is non-empty appear,
   as strictly-ascending [(origin, record count, records)] groups. A
   nearly-converged session has mostly-empty tails, which v1's dense
   [n]-slot array paid 8 bytes each for. *)
let encode_tails dict w tails =
  let nz = ref 0 in
  Array.iter (fun tail -> if tail <> [] then incr nz) tails;
  W.varint w !nz;
  Array.iteri
    (fun origin tail ->
      if tail <> [] then begin
        W.varint w origin;
        W.varint w (List.length tail);
        List.iter
          (fun (record : Edb_log.Log_record.t) ->
            Dict.Writer.string dict w record.item;
            W.varint w record.seq)
          tail
      end)
    tails

let decode_tails dict r ~n =
  let tails = Array.make n [] in
  let count = R.varint r in
  if count < 0 || count > n then
    corrupt "tail vector carries %d origins over dimension %d" count n;
  let prev = ref (-1) in
  for _ = 1 to count do
    let origin = R.varint r in
    if origin <= !prev || origin >= n then
      corrupt "tail origin %d out of order or range (dimension %d)" origin n;
    prev := origin;
    let len = R.varint r in
    checked_count r len "log-record";
    if len < 1 then corrupt "empty tail encoded for origin %d" origin;
    tails.(origin) <-
      List.init len (fun _ ->
          let item = Dict.Reader.string dict r in
          let seq = R.varint r in
          if seq < 1 then corrupt "log record sequence %d below 1" seq;
          { Edb_log.Log_record.item; seq })
  done;
  tails

let encode_items dict w items =
  W.varint w (List.length items);
  List.iter (encode_shipped_item dict w) items

let decode_items dict r ~n =
  let count = R.varint r in
  checked_count r count "shipped-item";
  List.init count (fun _ -> decode_shipped_item dict r ~n)

let encode_propagation_reply w (reply : Message.propagation_reply) =
  let dict = Dict.Writer.create () in
  match reply with
  | Message.You_are_current -> W.byte w 0
  | Message.Propagate { tails; items } ->
    W.byte w 1;
    encode_tails dict w tails;
    encode_items dict w items
  | Message.Propagate_sharded deltas ->
    W.byte w 2;
    W.varint w (List.length deltas);
    List.iter
      (fun (d : Message.shard_delta) ->
        W.varint w d.shard;
        encode_tails dict w d.tails;
        encode_items dict w d.items)
      deltas

let decode_propagation_reply r ~n =
  let dict = Dict.Reader.create () in
  match R.byte r with
  | 0 -> Message.You_are_current
  | 1 ->
    let tails = decode_tails dict r ~n in
    let items = decode_items dict r ~n in
    Message.Propagate { tails; items }
  | 2 ->
    let count = R.varint r in
    checked_count r count "shard-delta";
    Message.Propagate_sharded
      (List.init count (fun _ ->
           let shard = R.varint r in
           if shard < 0 then corrupt "negative shard index %d" shard;
           let tails = decode_tails dict r ~n in
           let items = decode_items dict r ~n in
           { Message.shard; tails; items }))
  | tag -> corrupt "unknown reply tag %d" tag

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let encode_propagation_request w ?baseline (req : Message.propagation_request) =
  W.varint w req.recipient;
  (match baseline with
  | Some (id, bvv)
    when Vv.dimension bvv = Vv.dimension req.recipient_dbvv
         && Vv.dominates_or_equal req.recipient_dbvv bvv ->
    W.byte w 1;
    W.varint w id;
    W.varint w (vv_checksum bvv);
    encode_vv_delta w ~baseline:bvv req.recipient_dbvv
  | Some _ | None ->
    (* No usable baseline (or one the current vector no longer
       dominates, which a rollback on our own side could produce):
       ship the absolute sparse form. *)
    W.byte w 0;
    encode_vv w req.recipient_dbvv);
  W.varint w (Array.length req.recipient_shard_dbvvs);
  Array.iter (encode_vv w) req.recipient_shard_dbvvs

let decode_propagation_request r ~n ~resolve =
  let recipient = R.varint r in
  if recipient < 0 then corrupt "negative recipient id %d" recipient;
  let recipient_dbvv, used_baseline =
    match R.byte r with
    | 0 -> (decode_vv r ~n, None)
    | 1 ->
      let id = R.varint r in
      if id < 1 then corrupt "delta baseline id %d below 1" id;
      let sum = R.varint r in
      (match resolve id with
      | None -> corrupt "unknown delta baseline id %d" id
      | Some bvv ->
        if Vv.dimension bvv <> n then
          corrupt "delta baseline id %d has dimension %d, expected %d" id
            (Vv.dimension bvv) n;
        if vv_checksum bvv <> sum then
          corrupt "delta baseline id %d checksum mismatch" id;
        (decode_vv_delta r ~baseline:bvv, Some id))
    | tag -> corrupt "unknown request-DBVV tag %d" tag
  in
  let shard_count = R.varint r in
  checked_count r shard_count "shard-DBVV";
  let recipient_shard_dbvvs =
    Array.init shard_count (fun _ -> decode_vv r ~n)
  in
  ({ Message.recipient; recipient_dbvv; recipient_shard_dbvvs }, used_baseline)

(* ------------------------------------------------------------------ *)
(* Out-of-bound fetches                                                *)
(* ------------------------------------------------------------------ *)

let encode_oob_request w (req : Message.oob_request) = W.vstring w req.item

let decode_oob_request r = { Message.item = R.vstring r }

let encode_oob_reply w (reply : Message.oob_reply) =
  W.vstring w reply.item;
  W.vstring w reply.value;
  encode_vv w reply.ivv

let decode_oob_reply r ~n =
  let item = R.vstring r in
  let value = R.vstring r in
  let ivv = decode_vv r ~n in
  { Message.item; value; ivv }

(* ------------------------------------------------------------------ *)
(* Push batches (best-effort realtime stream)                          *)
(* ------------------------------------------------------------------ *)

let encode_push w updates =
  let dict = Dict.Writer.create () in
  W.varint w (List.length updates);
  List.iter
    (fun (u : Message.push_update) ->
      Dict.Writer.string dict w u.item;
      W.varint w u.seq;
      encode_vv w u.ivv;
      W.vstring w u.value)
    updates

let decode_push r ~n =
  let dict = Dict.Reader.create () in
  let count = R.varint r in
  checked_count r count "push-update";
  List.init count (fun _ ->
      let item = Dict.Reader.string dict r in
      let seq = R.varint r in
      if seq < 1 then corrupt "push-update sequence %d below 1" seq;
      let ivv = decode_vv r ~n in
      let value = R.vstring r in
      { Message.item; seq; ivv; value })

(** A write-ahead (redo) log of opaque records.

    Framing per record: 8-byte length, payload, 4-byte Adler-32 of the
    payload. {!replay} applies complete, checksummed records in order.
    It distinguishes two kinds of damage: a final frame {e cut short by
    end-of-file} is the torn tail of a crashed append — expected, the
    tail is discarded and reported so callers can log the data-loss
    window — whereas a {e fully present} frame that fails its checksum
    (or carries a nonsense length) is corruption of data that was once
    durably written, and replay refuses with [Error] rather than
    silently un-acknowledging updates other replicas may already have
    observed.

    {!Durable_node} journals protocol mutations here between
    checkpoints; on recovery the snapshot is loaded and the journal
    re-executed, reconstructing the exact pre-crash state (including
    sequence numbers other replicas may already have observed —
    re-assigning those to different updates would corrupt the
    epidemic, which is why recovery must replay rather than restart). *)

val adler32 : string -> int
(** The checksum used by the record framing (and by {!Snapshot}'s
    payload guard) — Adler-32, matching [Codec]'s trailer. *)

type writer

val open_writer : path:string -> writer
(** [open_writer ~path] opens (creating if needed) the log for
    appending. *)

val append : ?flush:bool -> writer -> string -> unit
(** [append w record] frames, writes and flushes one record. With
    [~flush:false] the frame is written to the channel buffer but not
    flushed — the caller owes a later {!sync} (group commit); a crash
    before the sync loses the unsynced suffix as if those appends never
    happened. Carries the ["wal.append.partial"] failpoint
    ({!Edb_fault.Fault}): when it fires, the header and half the
    payload are flushed and the append "crashes" by raising, leaving a
    torn tail on disk. *)

val sync : writer -> unit
(** [sync w] flushes every record appended so far to the OS — the
    commit point for a group-commit batch built with
    [append ~flush:false]. Idempotent; a no-op when nothing is
    pending. *)

val close_writer : writer -> unit

type replay_result = {
  records : int;  (** Complete records applied. *)
  torn_tail : bool;
      (** Whether a final frame truncated by end-of-file was
          discarded. *)
}

val replay : path:string -> f:(string -> unit) -> (replay_result, string) result
(** [replay ~path ~f] applies [f] to every intact record in order. A
    missing file is an empty log ([Ok {records = 0; _}]); a torn tail is
    [Ok {torn_tail = true; _}]; a damaged complete frame anywhere is
    [Error] (and [f] has already been applied to the records before
    it). *)

val reset : path:string -> unit
(** [reset ~path] truncates the log to empty (after a checkpoint). *)

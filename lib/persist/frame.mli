(** Message framing and wire-codec version negotiation (DESIGN.md §8).

    A frame is one session message inside the {!Codec} envelope:
    a three-byte header — body version, sender's advertised maximum
    version, kind (request / reply / nak) — then a v2 request id
    (v2 frames only) and the body in {!Wire} (v1) or {!Wire_v2} (v2)
    form.

    Negotiation starts pessimistic: every node speaks v1 to a peer
    until a frame decoded from that peer advertises higher (recorded in
    {!Edb_core.Peer_cache.Wire_state}). The first request between two
    fresh nodes is therefore v1, but its reply can already be v2. A
    pinned-v1 node ({!Edb_core.Node.set_wire_version}) interoperates
    transparently; the durable formats (WAL, snapshots) always use v1
    and never see frames.

    The v2 request may carry its DBVV as a delta against a {e baseline}
    — the vector of an earlier request the peer has provably decoded
    (its reply echoed that request's id) and still retains (two
    retention slots per peer; see {!decode_request}). A source that
    cannot resolve a baseline answers with a {e Nak}, which makes the
    requester drop its baseline and retry absolute — lost state costs
    one round trip, never correctness. All baseline state lives in the
    volatile peer cache, so crash recovery resets to v1/absolute.

    Decoders raise {!Codec.Reader.Corrupt} (and nothing else) on any
    malformed, truncated, or unresolvable frame. *)

val max_version : int
(** The newest wire-codec version this build speaks (2). Equals
    [Edb_core.Peer_cache]'s default advertised version (asserted in the
    test suite). *)

type decoded_reply =
  | Reply of Edb_core.Message.propagation_reply * int
      (** The reply and the echoed request id (0 from v1 frames). *)
  | Nak of int
      (** The source could not decode the request (echoing its id when
          known); the requester's baseline has been dropped, retry
          absolute. *)

val encode_request : Edb_core.Node.t -> dst:int -> string
(** Build and encode this node's propagation request for peer [dst] at
    the negotiated version, assigning a request id and recording the
    sent vector as [last_sent] (v2 only). *)

val decode_request :
  Edb_core.Node.t -> src:int -> string -> Edb_core.Message.propagation_request * int
(** Decode a request frame received from [src], returning the request
    and its id (0 for v1). Records [src]'s advertised version, resolves
    delta baselines against the per-peer retention slots and updates
    them. Raises {!Codec.Reader.Corrupt} on any mismatch — answer with
    {!encode_nak}. *)

val encode_reply :
  Edb_core.Node.t -> dst:int -> req_id:int -> Edb_core.Message.propagation_reply -> string

val encode_nak : Edb_core.Node.t -> dst:int -> req_id:int -> string

val decode_reply : Edb_core.Node.t -> src:int -> string -> decoded_reply
(** Decode a reply or nak frame from [src]. Records [src]'s advertised
    version; a reply echoing the newest outstanding request id promotes
    that request's vector to the delta baseline, a nak drops it. *)

val push_ready : Edb_core.Node.t -> dst:int -> bool
(** Whether the best-effort push stream may flow to [dst]: this node
    speaks v2 and a decoded frame from [dst] has advertised v2. Until
    negotiation proves that, push queues for [dst] fill and shed per
    their policy — v1 peers simply never receive push frames. *)

val encode_push :
  Edb_core.Node.t -> dst:int -> Edb_core.Message.push_update list -> string
(** Encode a one-way push frame (kind 3, always codec v2) carrying the
    given batch. [Invalid_argument] when the peer has not negotiated
    v2 — gate with {!push_ready}. *)

val decode_push :
  Edb_core.Node.t -> src:int -> string -> Edb_core.Message.push_update list
(** Decode a push frame from [src], recording its advertised version.
    Raises {!Codec.Reader.Corrupt} on anything malformed; the receiver
    just drops such frames (anti-entropy repairs). *)

(** {1 Framing over byte streams}

    Frames are self-checking but not self-delimiting, so transports
    that speak a byte stream (the socket transport, DESIGN.md §12)
    carry each record behind a 4-byte little-endian length prefix.
    {!Reader} is the incremental reassembly side: it accepts chunks cut
    at {e any} byte boundary — mid-prefix, mid-header, mid-checksum —
    and yields complete records in order. *)

val max_stream_record : int
(** Upper bound on a stream record's length (64 MiB); a prefix claiming
    more is rejected as corrupt rather than allocated. *)

val to_wire : string -> string
(** [to_wire record] is the record behind its length prefix, ready to
    write to a stream. [Invalid_argument] beyond
    {!max_stream_record}. *)

module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> string -> unit
  (** Append a chunk (or the [off]/[len] slice of one) to the
      reassembly buffer. *)

  val next : t -> string option
  (** The next complete record, if one has fully arrived; [None] means
      feed more bytes. Raises {!Codec.Reader.Corrupt} when the stream
      is unrecoverable (a length prefix claiming more than
      {!max_stream_record}). *)

  val pending : t -> int
  (** Buffered bytes not yet returned as records. *)
end

val respond : ?domains:int -> Edb_core.Node.t -> src:int -> string -> string
(** [respond node ~src frame] is the source side of one session
    message: decode the request, run the paper's [SendPropagation],
    and encode the reply — or a nak when the request does not decode.
    Charges [node]'s counters: one message, modeled [bytes_sent], and
    actual {!Edb_metrics.Counters.t.wire_bytes_sent}. *)

val pull :
  ?domains:int ->
  recipient:Edb_core.Node.t ->
  source:Edb_core.Node.t ->
  unit ->
  Edb_core.Node.pull_result
(** {!Edb_core.Node.pull} over real frames: encode the request, decode
    it at the source, encode the reply, decode and apply it — charging
    both modeled bytes (identical to the unframed pull) and actual
    wire bytes on both ends. A nak (lost baseline) is retried once
    with an absolute vector. *)

val sync_pair : ?domains:int -> Edb_core.Node.t -> Edb_core.Node.t -> unit
(** {!pull} in both directions. *)

val describe : ?n:int -> string -> string
(** Human-readable dump of a frame (either version) for [edb_cli wire].
    v2 bodies are dimension-implicit, so [n] is required for them;
    delta-encoded DBVVs are printed symbolically (the baseline lives
    only in the source's slots). Raises {!Codec.Reader.Corrupt} on
    malformed frames. *)

(** Shared binary codecs for protocol values.

    Used by {!Snapshot} (node state) and {!Wal} (journaled mutations).
    Every decoder raises {!Codec.Reader.Corrupt} on malformed input. *)

val encode_operation : Codec.Writer.t -> Edb_store.Operation.t -> unit

val decode_operation : Codec.Reader.t -> Edb_store.Operation.t

val encode_vv : Codec.Writer.t -> Edb_vv.Version_vector.t -> unit

val decode_vv : Codec.Reader.t -> Edb_vv.Version_vector.t

val encode_log_record : Codec.Writer.t -> Edb_log.Log_record.t -> unit

val decode_log_record : Codec.Reader.t -> Edb_log.Log_record.t

val encode_shipped_item : Codec.Writer.t -> Edb_core.Message.shipped_item -> unit

val decode_shipped_item : Codec.Reader.t -> Edb_core.Message.shipped_item

val encode_propagation_reply :
  Codec.Writer.t -> Edb_core.Message.propagation_reply -> unit

val decode_propagation_reply : Codec.Reader.t -> Edb_core.Message.propagation_reply

val encode_propagation_request :
  Codec.Writer.t -> Edb_core.Message.propagation_request -> unit
(** The fixed-width v1 request form used by the framed transports
    ({!Frame}); requests are never journaled, so unlike the reply
    codecs this one carries no WAL-compatibility constraint. *)

val decode_propagation_request :
  Codec.Reader.t -> Edb_core.Message.propagation_request

val encode_oob_request : Codec.Writer.t -> Edb_core.Message.oob_request -> unit

val decode_oob_request : Codec.Reader.t -> Edb_core.Message.oob_request

val encode_oob_reply : Codec.Writer.t -> Edb_core.Message.oob_reply -> unit

val decode_oob_reply : Codec.Reader.t -> Edb_core.Message.oob_reply

(** Wire format v2 — the compact codec (DESIGN.md §8).

    Where {!Wire} (v1) spends a fixed 8 bytes per integer and re-ships
    every item name in full, v2 uses LEB128 varints, a per-message
    name-interning dictionary, sparse [(origin, count)] version
    vectors, and — for the request DBVV — an optional delta against a
    baseline the peer provably still holds. Framing, version
    negotiation and baseline bookkeeping live in {!Frame}; this module
    is the pure byte layout.

    Unlike v1, the v2 forms are dimension-implicit: decoders take the
    cluster dimension [~n] from the session context instead of reading
    it off the wire, and validate every origin against it. All decoders
    raise {!Codec.Reader.Corrupt} (and nothing else) on malformed
    input. *)

val encode_vv : Codec.Writer.t -> Edb_vv.Version_vector.t -> unit
(** Sparse form: [varint count] then strictly-ascending
    [(varint origin, varint value)] pairs, zero components omitted. *)

val decode_vv : Codec.Reader.t -> n:int -> Edb_vv.Version_vector.t

val encode_vv_delta :
  Codec.Writer.t ->
  baseline:Edb_vv.Version_vector.t ->
  Edb_vv.Version_vector.t ->
  unit
(** The sparse encoding of [vv - baseline]. [Invalid_argument] unless
    [vv] dominates or equals [baseline] (the caller checks first and
    falls back to {!encode_vv}). *)

val decode_vv_delta :
  Codec.Reader.t -> baseline:Edb_vv.Version_vector.t -> Edb_vv.Version_vector.t

val vv_checksum : Edb_vv.Version_vector.t -> int
(** A cheap 30-bit commitment to a vector's contents, shipped with the
    baseline id in delta requests so a baseline mixup surfaces as
    {!Codec.Reader.Corrupt} instead of a wrong reconstruction. *)

val encode_operation : Codec.Writer.t -> Edb_store.Operation.t -> unit

val decode_operation : Codec.Reader.t -> Edb_store.Operation.t

val encode_propagation_reply :
  Codec.Writer.t -> Edb_core.Message.propagation_reply -> unit

val decode_propagation_reply :
  Codec.Reader.t -> n:int -> Edb_core.Message.propagation_reply

val encode_propagation_request :
  Codec.Writer.t ->
  ?baseline:int * Edb_vv.Version_vector.t ->
  Edb_core.Message.propagation_request ->
  unit
(** [baseline] is [(id, vv)] of a request the peer has acknowledged;
    when given and dominated by the current DBVV, the request ships the
    delta form tagged with [id] and {!vv_checksum}; otherwise the
    absolute sparse form. *)

val decode_propagation_request :
  Codec.Reader.t ->
  n:int ->
  resolve:(int -> Edb_vv.Version_vector.t option) ->
  Edb_core.Message.propagation_request * int option
(** [resolve id] must return the baseline vector stored under [id]
    (the source's committed/candidate slots, see {!Frame}); [None] or
    a checksum mismatch raises {!Codec.Reader.Corrupt} — the framed
    transports answer that with a Nak and the requester falls back to
    an absolute vector. Returns the request and the baseline id it was
    decoded against, if any. *)

val encode_oob_request : Codec.Writer.t -> Edb_core.Message.oob_request -> unit

val decode_oob_request : Codec.Reader.t -> Edb_core.Message.oob_request

val encode_oob_reply : Codec.Writer.t -> Edb_core.Message.oob_reply -> unit

val decode_oob_reply : Codec.Reader.t -> n:int -> Edb_core.Message.oob_reply

val encode_push : Codec.Writer.t -> Edb_core.Message.push_update list -> unit
(** A push batch: [varint count], then per update the interned item
    name, [varint seq], sparse IVV and the whole value. Reuses the
    per-message dictionary and sparse-vv forms of the session codec;
    there is no v1 form — push frames exist only at v2. *)

val decode_push : Codec.Reader.t -> n:int -> Edb_core.Message.push_update list

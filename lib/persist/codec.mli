(** A small self-describing binary codec.

    Used by {!Snapshot} to serialize node state. Deliberately simple
    and dependency-free: length-prefixed strings, varint-free fixed
    64-bit integers (node state is dominated by values, not integers),
    and an Adler-32 style checksum trailer so a truncated or corrupted
    snapshot is rejected instead of silently loaded. *)

module Writer : sig
  type t

  val create : unit -> t

  val with_scratch : (t -> 'a) -> 'a
  (** [with_scratch f] runs [f] with a per-domain reusable writer
      (cleared before [f] sees it) instead of allocating a fresh
      buffer — the allocation-free path for encode-heavy callers.
      The writer is only valid during [f]; take {!contents} before
      returning. Nested calls and concurrent domains each get their
      own buffer. *)

  val int : t -> int -> unit
  (** Little-endian 64-bit. *)

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val bool : t -> bool -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Count-prefixed sequence. *)

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit

  val contents : t -> string
  (** The payload followed by a 4-byte checksum trailer. *)
end

module Reader : sig
  type t

  exception Corrupt of string
  (** Raised on truncation, trailing garbage, or checksum mismatch. *)

  val create : string -> t
  (** [create data] validates the checksum trailer immediately and
      raises {!Corrupt} if it does not match. *)

  val int : t -> int

  val string : t -> string

  val bool : t -> bool

  val list : t -> (t -> 'a) -> 'a list

  val array : t -> (t -> 'a) -> 'a array

  val expect_end : t -> unit
  (** Raises {!Corrupt} unless every payload byte was consumed. *)
end

(** A small self-describing binary codec.

    Used by {!Snapshot} to serialize node state and by the wire codecs
    ({!Wire}, {!Wire_v2}). Deliberately simple and dependency-free:
    length-prefixed strings, fixed 64-bit integers for the durable
    formats (node state is dominated by values, not integers), LEB128
    varints for wire format v2 where the integers themselves dominate,
    and an Adler-32 style checksum trailer so a truncated or corrupted
    payload is rejected instead of silently loaded. *)

module Writer : sig
  type t

  val create : unit -> t

  val with_scratch : (t -> 'a) -> 'a
  (** [with_scratch f] runs [f] with a per-domain reusable writer
      (cleared before [f] sees it) instead of allocating a fresh
      buffer — the allocation-free path for encode-heavy callers.
      The writer is only valid during [f]; take {!contents} before
      returning. Nested calls and concurrent domains each get their
      own buffer. *)

  val int : t -> int -> unit
  (** Little-endian 64-bit. *)

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val bool : t -> bool -> unit

  val byte : t -> int -> unit
  (** One unsigned byte; [Invalid_argument] outside [\[0, 255\]]. *)

  val varint : t -> int -> unit
  (** LEB128: 7 value bits per byte, little-endian groups, high bit as
      the continuation flag. Small non-negative ints cost one byte; a
      negative int round-trips but costs the full 9 bytes. *)

  val svarint : t -> int -> unit
  (** Zig-zag then LEB128 — for the few signed fields, where small
      magnitudes of either sign must stay short. *)

  val vstring : t -> string -> unit
  (** Varint-length-prefixed bytes (the wire-v2 string form; {!string}
      is the fixed-width form). *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Count-prefixed sequence. *)

  val array : t -> (t -> 'a -> unit) -> 'a array -> unit

  val contents : t -> string
  (** The payload followed by a 4-byte checksum trailer. *)
end

module Reader : sig
  type t

  exception Corrupt of string
  (** Raised on truncation, trailing garbage, or checksum mismatch. *)

  val create : string -> t
  (** [create data] validates the checksum trailer immediately and
      raises {!Corrupt} if it does not match. *)

  val int : t -> int

  val string : t -> string

  val bool : t -> bool

  val byte : t -> int

  val varint : t -> int
  (** Raises {!Corrupt} on truncation or a varint longer than 9 bytes
      (more than 63 value bits). *)

  val svarint : t -> int

  val vstring : t -> string

  val list : t -> (t -> 'a) -> 'a list
  (** Raises {!Corrupt} when the count is negative or exceeds the
      remaining payload (a forged count never reaches the allocator). *)

  val array : t -> (t -> 'a) -> 'a array

  val remaining : t -> int
  (** Unread payload bytes — the bound hand-rolled decoders (e.g.
      {!Wire_v2}) use to reject forged element counts before
      allocating. *)

  val expect_end : t -> unit
  (** Raises {!Corrupt} unless every payload byte was consumed. *)
end
